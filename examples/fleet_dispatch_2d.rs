//! 2-D fleet dispatch — the multi-dimensional extension in action
//! (paper §7): taxis move on a city map; dispatch continuously tracks the
//! k nearest to a hotspot with rank tolerance, and a geofenced downtown
//! rectangle with fraction tolerance.
//!
//! Run with: `cargo run --release -p asf-bench --example fleet_dispatch_2d`

use asf_core::multidim::engine2d::{Engine2d, Workload2d};
use asf_core::multidim::{oracle2d, FtRect2d, Point2, Region, Rtp2d};
use asf_core::protocol::SelectionHeuristic;
use asf_core::tolerance::{FractionTolerance, RankTolerance};
use workloads::{Walk2dConfig, Walk2dWorkload};

fn main() {
    let cfg = Walk2dConfig {
        num_objects: 800,
        width: 1000.0,
        height: 1000.0,
        sigma: 12.0,
        horizon: 1200.0,
        ..Default::default()
    };
    let hotspot = Point2::new(650.0, 420.0);
    let (k, r) = (6usize, 4usize);

    // Rank-tolerant k-NN around the hotspot.
    let mut w = Walk2dWorkload::new(cfg);
    let initial = w.initial_positions();
    let mut knn = Engine2d::new(&initial, Rtp2d::new(hotspot, k, r).unwrap());
    knn.run(&mut w);
    let rank_tol = RankTolerance::new(k, r).unwrap();
    let rank_ok =
        oracle2d::rank_violation_2d(hotspot, rank_tol, &knn.answer(), knn.fleet()).is_none();
    println!(
        "k-NN dispatch at {hotspot}: {} messages, {} expansions, bound radius {:.1}, guarantee {}",
        knn.ledger().total(),
        knn.protocol().expansions(),
        knn.protocol().radius(),
        if rank_ok { "holds ✓" } else { "VIOLATED ✗" }
    );
    assert!(rank_ok);

    // Fraction-tolerant downtown geofence.
    let (lo, hi) = (Point2::new(300.0, 300.0), Point2::new(600.0, 550.0));
    let tol = FractionTolerance::symmetric(0.2).unwrap();
    let mut w = Walk2dWorkload::new(cfg);
    let protocol = FtRect2d::new(lo, hi, tol, SelectionHeuristic::BoundaryNearest, 99).unwrap();
    let mut fence = Engine2d::new(&initial, protocol);
    fence.run(&mut w);
    let region = Region::rect(lo, hi);
    let fence_ok =
        oracle2d::fraction_region_violation(&region, tol, &fence.answer(), fence.fleet()).is_none();
    println!(
        "downtown geofence: {} messages, |A| = {}, n+ = {}, n- = {}, guarantee {}",
        fence.ledger().total(),
        fence.answer().len(),
        fence.protocol().n_plus(),
        fence.protocol().n_minus(),
        if fence_ok { "holds ✓" } else { "VIOLATED ✗" }
    );
    assert!(fence_ok);

    println!("\nthe 1-D protocols generalize to the plane exactly as §7 of the paper predicts.");
}
