//! Danger-zone alerting (the paper's §3.4 motivating example): soldiers
//! carry position sensors; command must warn everyone inside a danger zone.
//! A bounded fraction of false alarms (warnings to soldiers outside the
//! zone) is acceptable — false positives are cheap, missed soldiers are
//! not — so the tolerance is asymmetric: generous `ε⁺`, tight `ε⁻`.
//!
//! Run with: `cargo run --release -p asf-bench --example danger_zone`

use asf_core::engine::Engine;
use asf_core::oracle;
use asf_core::protocol::{FtNrp, FtNrpConfig, SelectionHeuristic};
use asf_core::query::RangeQuery;
use asf_core::tolerance::FractionTolerance;
use asf_core::workload::Workload;
use workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    // 500 soldiers moving along a 1-D patrol corridor [0, 1000] m.
    let cfg = SyntheticConfig {
        num_streams: 500,
        value_range: (0.0, 1000.0),
        sigma: 15.0, // gentler movement than the default
        horizon: 2000.0,
        ..Default::default()
    };
    // The danger zone: positions 300..450 m.
    let zone = RangeQuery::new(300.0, 450.0).unwrap();
    // Tolerate up to 30% false alarms but at most 5% missed soldiers.
    let tol = FractionTolerance::new(0.3, 0.05).unwrap();

    let mut workload = SyntheticWorkload::new(cfg);
    let config =
        FtNrpConfig { heuristic: SelectionHeuristic::BoundaryNearest, reinit_on_exhaustion: true };
    let protocol = FtNrp::new(zone, tol, config, 2024).unwrap();
    let mut engine = Engine::new(&workload.initial_values(), protocol);

    engine.run(&mut workload);

    let answer = engine.answer();
    let truth = oracle::true_range_answer(zone, engine.fleet());
    let metrics = answer
        .fraction_metrics(engine.fleet().len(), |id| zone.contains(engine.fleet().true_value(id)));

    println!("danger zone [300, 450] m, {} soldiers", cfg.num_streams);
    println!("messages over the mission: {}", engine.ledger().total());
    println!("re-initializations: {}", engine.protocol().reinits());
    println!(
        "warned {} soldiers; truly in zone: {}; false alarms F+ = {:.3} (<= 0.3), missed F- = {:.3} (<= 0.05)",
        answer.len(),
        truth.len(),
        metrics.f_plus(),
        metrics.f_minus()
    );
    assert!(metrics.within(&tol), "tolerance violated");
    println!("asymmetric tolerance guarantee holds ✓");
}
