//! A fleet of concurrent range queries on the sharded stream server.
//!
//! Scenario: a monitoring service maintains six standing dashboards, each
//! an entity-based range query ("which sensors read 400–600 right now?"),
//! over one population of 2 000 sensor streams. The queries share one
//! elementary-cell filter per source (`MultiRangeZt` plan sharing) and run
//! on `asf-server` with 4 threaded shards; the same run is repeated on the
//! single-threaded engine to show the answers — and the message bill — are
//! byte-identical.
//!
//! Run with: `cargo run --release --example server_fleet`
//!
//! Pass `--trace-out <path>` to dump the run's span timeline as Chrome
//! trace-event JSON (open in Perfetto or `chrome://tracing`).

use asf_core::engine::Engine;
use asf_core::multi_query::{CellMode, MultiRangeZt};
use asf_core::query::RangeQuery;
use asf_core::workload::{UpdateEvent, VecWorkload, Workload};
use asf_server::{
    CoordMode, DurabilityConfig, ExecMode, ScatterMode, ServerConfig, ShardedServer,
    TelemetryConfig, TraceDepth,
};
use simkit::fault::FaultMix;
use streamnet::{ChaosConfig, StreamId};
use workloads::{SyntheticConfig, SyntheticWorkload};

fn queries() -> Vec<RangeQuery> {
    vec![
        RangeQuery::new(0.0, 150.0).unwrap(),
        RangeQuery::new(100.0, 300.0).unwrap(),
        RangeQuery::new(250.0, 500.0).unwrap(),
        RangeQuery::new(400.0, 600.0).unwrap(),
        RangeQuery::new(550.0, 800.0).unwrap(),
        RangeQuery::new(750.0, 1000.0).unwrap(),
    ]
}

fn main() {
    let mut trace_out: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--trace-out" => trace_out = Some(argv.next().expect("--trace-out needs a path")),
            other => panic!("unknown argument {other:?} (supported: --trace-out <path>)"),
        }
    }

    let mut w = SyntheticWorkload::new(SyntheticConfig {
        num_streams: 2_000,
        horizon: 200.0,
        seed: 2024,
        ..Default::default()
    });
    let initial = w.initial_values();
    let mut events: Vec<UpdateEvent> = Vec::new();
    while let Some(ev) = w.next_event() {
        events.push(ev);
    }
    println!(
        "population: {} streams, {} updates, {} standing queries (shared cell filters)\n",
        initial.len(),
        events.len(),
        queries().len()
    );

    // Sharded, threaded server with the pipelined (double-buffered)
    // coordinator — shards evaluate window t+1 while the coordinator
    // drains window t's reports — and broadcast scatter: each window is a
    // shared columnar batch the shards self-partition, so the coordinator
    // never copies events per shard.
    let config = ServerConfig {
        num_shards: 4,
        batch_size: 1024,
        mode: ExecMode::Threaded,
        channel_capacity: 2,
        coordinator: CoordMode::Pipelined,
        scatter: ScatterMode::Broadcast,
        telemetry: TelemetryConfig {
            causes: true,
            trace: if trace_out.is_some() { TraceDepth::Fine } else { TraceDepth::Off },
            trace_capacity: 65_536,
        },
    };
    let protocol = MultiRangeZt::with_mode(queries(), CellMode::SourceResident).unwrap();
    let mut server = ShardedServer::new(&initial, protocol, config);
    server.initialize();
    // Durable state: every ingestion chunk is journaled (write-ahead,
    // synced) before it applies, and checkpoints land in the background —
    // the crash-and-recover demo at the end rebuilds from this directory.
    let durable_dir = std::env::temp_dir().join(format!("asf-server-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&durable_dir);
    let durable = DurabilityConfig::new(&durable_dir).checkpoint_every(16_384);
    server.enable_durability(durable.clone()).expect("open durability dir");
    server.ingest_batch(&events);

    println!("asf-server (4 shards, threaded):");
    for (j, q) in queries().iter().enumerate() {
        println!(
            "  dashboard {j}: [{:>6.1}, {:>6.1}] -> {:>4} sensors",
            q.lo(),
            q.hi(),
            server.protocol().answer_of(j).len()
        );
    }
    println!("  messages: {}", server.ledger().breakdown());
    println!("  metrics:  {}", server.metrics().summary());
    let m = server.metrics();
    println!(
        "  pipeline: window depth {} (1 = serial, 2 = double-buffered), {:.1} reports \
         coalesced per quiescent point, {:.1}us of drain hidden behind shard evaluation",
        m.max_inflight_windows,
        m.coalesced_reports_per_group().unwrap_or(f64::NAN),
        m.overlap_saved_ns as f64 / 1_000.0,
    );
    println!(
        "  scatter:  {:.1} KiB of window payload shared by reference across {} rounds, \
         coordinator fan-out {:.1}us total; per-shard ownership scans {:.1}us (parallel)\n",
        m.window_bytes_shared as f64 / 1024.0,
        m.rounds,
        m.scatter_ns as f64 / 1_000.0,
        m.shard_scan_ns.iter().sum::<u64>() as f64 / 1_000.0,
    );
    println!(
        "  durable:  {} checkpoints ({:.1}us coordinator-side serialize), write-ahead \
         journal {:.1} KiB\n",
        m.checkpoints,
        m.checkpoint_ns as f64 / 1_000.0,
        m.journal_bytes as f64 / 1024.0,
    );
    let breakdown = server.cause_breakdown();
    if breakdown.is_empty() {
        println!("  causes:   (no protocol messages attributed)\n");
    } else {
        println!("  causes (messages by originating protocol decision):");
        for line in breakdown.lines() {
            println!("    {line}");
        }
        println!();
    }
    if let Some(path) = &trace_out {
        let json = server.export_chrome_trace();
        let events = asf_telemetry::validate_chrome_trace(&json).expect("trace must validate");
        std::fs::write(path, &json).expect("write trace file");
        println!("  trace:    {events} events -> {path}\n");
    }

    // Reference: the single-threaded simulation engine.
    let protocol = MultiRangeZt::with_mode(queries(), CellMode::SourceResident).unwrap();
    let mut engine = Engine::new(&initial, protocol);
    engine.initialize();
    let mut vw = VecWorkload::new(initial.clone(), events.clone());
    engine.run(&mut vw);

    let identical = (0..queries().len())
        .all(|j| server.protocol().answer_of(j) == engine.protocol().answer_of(j))
        && server.ledger() == engine.ledger();
    println!(
        "single-threaded engine agrees byte-for-byte (answers + ledger): {}",
        if identical { "yes" } else { "NO (bug!)" }
    );
    assert!(identical);

    // Crash (drop without shutdown) and recover from disk: the latest
    // checkpoint plus a journal-suffix replay rebuilds the same bytes.
    drop(server);
    let protocol = MultiRangeZt::with_mode(queries(), CellMode::SourceResident).unwrap();
    let recovered = ShardedServer::recover(&initial, protocol, config, durable)
        .expect("recover from durability dir");
    let recovered_ok = (0..queries().len())
        .all(|j| recovered.protocol().answer_of(j) == engine.protocol().answer_of(j))
        && recovered.ledger() == engine.ledger();
    println!(
        "crash + recover: {:.2}ms of journal replay -> byte-identical again: {}",
        recovered.metrics().recovery_replay_ns as f64 / 1_000_000.0,
        if recovered_ok { "yes" } else { "NO (bug!)" }
    );
    assert!(recovered_ok);
    recovered.shutdown();
    let _ = std::fs::remove_dir_all(&durable_dir);

    // Unreliable-fleet demo: the same dashboards with the source↔server
    // channel behind a seeded fault injector — 5% frame loss plus light
    // delay/duplication and occasional crash-restarts. Chaos composes
    // with durability: every checkpoint embeds the serialized channel
    // machine, so the crash at the end of this phase recovers
    // *mid-fault-storm*. The authoritative ledger still meters only the
    // logical protocol; retransmissions, ghosts, and heartbeats land in
    // the chaos overhead counters.
    let mix = FaultMix {
        drop_p: 0.05,
        delay_p: 0.02,
        dup_p: 0.02,
        crash_p: 0.001,
        max_delay_ticks: 256,
        max_outage_ticks: 2048,
    };
    let chaos_dir = std::env::temp_dir().join(format!("asf-fleet-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&chaos_dir);
    let chaos_durable = DurabilityConfig::new(&chaos_dir).checkpoint_every(16_384);
    let protocol = MultiRangeZt::with_mode(queries(), CellMode::SourceResident).unwrap();
    let mut faulty = ShardedServer::new(&initial, protocol, config);
    faulty.initialize();
    faulty.enable_durability(chaos_durable.clone()).expect("open chaos durability dir");
    faulty.enable_chaos(ChaosConfig::new(2024, mix, u64::MAX).lease_ticks(4096));
    faulty.ingest_batch(&events);
    let stats = *faulty.chaos_stats().expect("chaos enabled");
    let m = faulty.metrics().clone();
    println!("\nunreliable fleet (5% loss + delay/dup + crash-restarts, faults never cease):");
    println!(
        "  channel:  {} overhead frames ({} heartbeats, {} dup ghosts), {} reports lost, \
         {} delayed, {} source crashes",
        stats.overhead_frames,
        stats.heartbeats_sent,
        stats.dup_frames,
        stats.reports_lost,
        stats.reports_delayed,
        stats.crashes,
    );
    println!(
        "  repair:   retries {}, timeouts {}, epoch rejects {}, dead sources {}, \
         {} repair re-probes, {:.1}us spent repairing",
        m.retries,
        m.timeouts,
        m.epoch_rejects,
        m.dead_sources,
        stats.repaired_sources,
        m.repair_ns as f64 / 1_000.0,
    );
    let lease_hist = m.lease_len_hist();
    println!(
        "  leases:   {} renewals, {} expirations ({} spurious); adaptive lease lengths \
         p50 {:.0} / p99 {:.0} ticks over {} changes",
        stats.lease_renewals,
        stats.lease_expirations,
        m.spurious_expirations,
        lease_hist.percentile(50.0).unwrap_or(f64::NAN),
        lease_hist.percentile(99.0).unwrap_or(f64::NAN),
        lease_hist.count(),
    );
    println!(
        "  durable:  {} repair fan-outs charged as one batched frame each; channel \
         machine adds {:.1} KiB to every checkpoint",
        m.repair_batches,
        m.chaos_state_bytes as f64 / 1024.0,
    );
    let live = faulty.live_view();
    let vouched = (0..initial.len()).filter(|&i| live.is_known(StreamId(i as u32))).count();
    println!(
        "  degraded: live view vouches for {vouched}/{} sources (expired leases are \
         excluded until a repair re-probe revives them)",
        initial.len()
    );

    // Crash inside the fault storm and recover: the checkpointed channel
    // machine (fault-RNG resume words included) plus the journal suffix
    // rebuilds the chaotic run bit-exact — same answers, same fault
    // counters, storm still active.
    let faulty_answers: Vec<_> =
        (0..queries().len()).map(|j| faulty.protocol().answer_of(j).clone()).collect();
    let faulty_ledger = faulty.ledger().clone();
    drop(faulty); // crash: no shutdown, no final checkpoint
    let protocol = MultiRangeZt::with_mode(queries(), CellMode::SourceResident).unwrap();
    let restormed = ShardedServer::recover(&initial, protocol, config, chaos_durable)
        .expect("recover mid-fault-storm");
    let restormed_ok = (0..queries().len())
        .all(|j| restormed.protocol().answer_of(j) == faulty_answers[j])
        && restormed.ledger() == &faulty_ledger
        && restormed.chaos_stats() == Some(&stats)
        && restormed.chaos().is_some_and(|c| c.faults_active());
    println!(
        "  recover:  crash mid-storm + recover -> byte-identical, storm still live: {}",
        if restormed_ok { "yes" } else { "NO (bug!)" }
    );
    assert!(restormed_ok);
    restormed.shutdown();
    let _ = std::fs::remove_dir_all(&chaos_dir);
}
