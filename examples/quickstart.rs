//! Quickstart: monitor a range query over a small synthetic stream
//! population with fraction-based tolerance, and compare the communication
//! bill against the exact (no-filter) baseline.
//!
//! Run with: `cargo run --release -p asf-bench --example quickstart`

use asf_core::engine::Engine;
use asf_core::oracle;
use asf_core::protocol::{FtNrp, FtNrpConfig, NoFilter, SelectionHeuristic};
use asf_core::query::RangeQuery;
use asf_core::tolerance::FractionTolerance;
use asf_core::workload::Workload;
use workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    // 1. A stream population: 1000 sensors, values drifting in [0, 1000].
    let cfg = SyntheticConfig { num_streams: 1000, horizon: 1000.0, ..Default::default() };

    // 2. A continuous entity-based query: "which sensors read 400..600?"
    let query = RangeQuery::new(400.0, 600.0).unwrap();

    // 3. A non-value tolerance: at most 20% of the returned set may be
    //    wrong, at most 20% of the true set may be missing.
    let tol = FractionTolerance::symmetric(0.2).unwrap();

    // Exact baseline: no filters, every update travels to the server.
    let mut workload = SyntheticWorkload::new(cfg);
    let mut exact = Engine::new(&workload.initial_values(), NoFilter::range(query));
    exact.run(&mut workload);

    // FT-NRP: adaptive filters exploiting the tolerance.
    let mut workload = SyntheticWorkload::new(cfg); // same seed -> same data
    let config =
        FtNrpConfig { heuristic: SelectionHeuristic::BoundaryNearest, reinit_on_exhaustion: false };
    let protocol = FtNrp::new(query, tol, config, 42).unwrap();
    let mut tolerant = Engine::new(&workload.initial_values(), protocol);
    tolerant.run(&mut workload);

    // Compare answers against ground truth at the end of the run.
    let truth = oracle::true_range_answer(query, tolerant.fleet());
    let answer = tolerant.answer();
    let metrics = answer.fraction_metrics(tolerant.fleet().len(), |id| {
        query.contains(tolerant.fleet().true_value(id))
    });

    println!("exact (no filter): {} messages", exact.ledger().total());
    println!("FT-NRP (eps=0.2):  {} messages", tolerant.ledger().total());
    println!(
        "savings: {:.1}%",
        100.0 * (1.0 - tolerant.ledger().total() as f64 / exact.ledger().total() as f64)
    );
    println!(
        "answer quality: |A| = {} (truth {}), F+ = {:.3}, F- = {:.3} (tolerance 0.2)",
        answer.len(),
        truth.len(),
        metrics.f_plus(),
        metrics.f_minus()
    );
    assert!(metrics.within(&tol), "tolerance guarantee violated!");
    println!("tolerance guarantee holds ✓");
}
