//! Sensor battery accounting (the paper's §5.1.1 claim): FT-NRP "shuts
//! down" `n⁺ + n⁻` sensors with `[-∞, ∞]` / `[∞, ∞]` filters — they never
//! transmit, which saves battery. This example quantifies per-sensor
//! message traffic under ZT-NRP vs FT-NRP.
//!
//! Run with: `cargo run --release -p asf-bench --example sensor_battery`

use asf_core::engine::Engine;
use asf_core::protocol::{FtNrp, FtNrpConfig, SelectionHeuristic, ZtNrp};
use asf_core::query::RangeQuery;
use asf_core::tolerance::FractionTolerance;
use asf_core::workload::Workload;
use simkit::percentile;
use workloads::{SyntheticConfig, SyntheticWorkload};

fn traffic_summary(label: &str, engine_traffic: Vec<f64>) {
    let total: f64 = engine_traffic.iter().sum();
    let silent = engine_traffic.iter().filter(|&&t| t <= 3.0).count();
    println!(
        "{label:<22} total={total:<8} p50={:<6.1} p99={:<6.1} sensors with <= 3 msgs: {silent}",
        percentile(&engine_traffic, 50.0),
        percentile(&engine_traffic, 99.0),
    );
}

fn main() {
    let cfg = SyntheticConfig { num_streams: 400, horizon: 2000.0, ..Default::default() };
    let query = RangeQuery::new(400.0, 600.0).unwrap();

    // Zero tolerance: every sensor carries [l, u] and reports crossings.
    let mut w = SyntheticWorkload::new(cfg);
    let mut zt = Engine::new(&w.initial_values(), ZtNrp::new(query));
    zt.run(&mut w);
    let zt_traffic: Vec<f64> = zt.fleet().iter().map(|s| s.traffic() as f64).collect();

    // Fraction tolerance 0.3: some sensors are silenced entirely.
    let mut w = SyntheticWorkload::new(cfg);
    let tol = FractionTolerance::symmetric(0.3).unwrap();
    let config =
        FtNrpConfig { heuristic: SelectionHeuristic::BoundaryNearest, reinit_on_exhaustion: false };
    let mut ft = Engine::new(&w.initial_values(), FtNrp::new(query, tol, config, 7).unwrap());
    ft.run(&mut w);
    let ft_traffic: Vec<f64> = ft.fleet().iter().map(|s| s.traffic() as f64).collect();

    println!("per-sensor message traffic over the run ({} sensors):\n", cfg.num_streams);
    traffic_summary("ZT-NRP (exact):", zt_traffic);
    traffic_summary("FT-NRP (eps=0.3):", ft_traffic);

    let silenced: Vec<_> = ft.protocol().silenced().collect();
    println!(
        "\nFT-NRP silenced {} sensors outright (n+ = {}, n- = {});",
        silenced.len(),
        ft.protocol().n_plus(),
        ft.protocol().n_minus()
    );
    println!("a silenced sensor transmits nothing after setup — its radio can sleep.");
}
