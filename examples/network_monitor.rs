//! Network monitoring (the paper's §6.1 scenario and DoS-detection
//! motivation): a central console watches 800 subnets and continuously
//! reports the top-k subnets by traffic volume, tolerating answers that
//! rank up to `r` positions below the true top-k.
//!
//! Run with: `cargo run --release -p asf-bench --example network_monitor`

use asf_core::engine::Engine;
use asf_core::oracle;
use asf_core::protocol::{NoFilter, Rtp};
use asf_core::query::RankQuery;
use asf_core::tolerance::RankTolerance;
use asf_core::workload::Workload;
use workloads::{TcpLikeConfig, TcpLikeWorkload};

fn main() {
    let cfg = TcpLikeConfig { total_events: 20_000, ..Default::default() };
    let k = 20;

    // Exact top-k, no filters: the console drowns in updates.
    let mut workload = TcpLikeWorkload::new(cfg);
    let query = RankQuery::top_k(k).unwrap();
    let mut exact = Engine::new(&workload.initial_values(), NoFilter::rank(query));
    exact.run(&mut workload);
    println!("no filter:       {:>8} messages (exact top-{k})", exact.ledger().total());

    // RTP with increasing rank slack.
    for r in [0usize, 5, 10, 20] {
        let mut workload = TcpLikeWorkload::new(cfg);
        let protocol = Rtp::new(query, r).unwrap();
        let mut engine = Engine::new(&workload.initial_values(), protocol);
        engine.run(&mut workload);

        // Verify the rank-tolerance guarantee against ground truth.
        let tol = RankTolerance::new(k, r).unwrap();
        let violation = oracle::rank_violation(query, tol, &engine.answer(), engine.fleet());
        println!(
            "RTP r={r:<2}:        {:>8} messages ({} bound redeployments, guarantee {})",
            engine.ledger().total(),
            engine.ledger().broadcast_ops(),
            if violation.is_none() { "holds ✓" } else { "VIOLATED ✗" }
        );
        assert!(violation.is_none(), "rank tolerance violated: {violation:?}");
    }

    println!("\nEvery answer stream is guaranteed to truly rank within k + r.");
}
