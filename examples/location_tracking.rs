//! Location tracking (the paper's k-NN motivation): vehicles report
//! positions along a highway; a dispatcher continuously wants the k
//! vehicles nearest an incident. Rank tolerance is the natural error
//! language — "give me trucks among the 8 nearest" is meaningful without
//! knowing whether distances are meters or miles.
//!
//! Run with: `cargo run --release -p asf-bench --example location_tracking`

use asf_core::engine::Engine;
use asf_core::oracle;
use asf_core::protocol::{FtRp, FtRpConfig, Rtp, ZtRp};
use asf_core::query::RankQuery;
use asf_core::tolerance::{FractionTolerance, RankTolerance};
use asf_core::workload::Workload;
use workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    // 600 vehicles on a 100 km highway (positions in meters / 100).
    let cfg = SyntheticConfig {
        num_streams: 600,
        value_range: (0.0, 1000.0),
        sigma: 8.0,
        horizon: 1500.0,
        ..Default::default()
    };
    let incident_at = 640.0;
    let k = 5;
    let query = RankQuery::knn(incident_at, k).unwrap();

    println!(
        "dispatch: {k} nearest of {} vehicles to the incident at {incident_at}",
        cfg.num_streams
    );

    // Exact continuous k-NN (ZT-RP): recompute on every crossing.
    let mut w = SyntheticWorkload::new(cfg);
    let mut zt = Engine::new(&w.initial_values(), ZtRp::new(query).unwrap());
    zt.run(&mut w);
    println!(
        "ZT-RP (exact):       {:>9} messages, {} bound recomputes",
        zt.ledger().total(),
        zt.protocol().recomputes()
    );

    // RTP: tolerate vehicles ranked up to k + 3.
    let r = 3;
    let mut w = SyntheticWorkload::new(cfg);
    let mut rtp = Engine::new(&w.initial_values(), Rtp::new(query, r).unwrap());
    rtp.run(&mut w);
    let rank_tol = RankTolerance::new(k, r).unwrap();
    let rank_ok = oracle::rank_violation(query, rank_tol, &rtp.answer(), rtp.fleet()).is_none();
    println!(
        "RTP (r={r}):           {:>9} messages, {} expansions, guarantee {}",
        rtp.ledger().total(),
        rtp.protocol().expansions(),
        if rank_ok { "holds ✓" } else { "VIOLATED ✗" }
    );
    assert!(rank_ok);

    // FT-RP: tolerate 20% wrong / 20% missing vehicles.
    let tol = FractionTolerance::symmetric(0.2).unwrap();
    let mut w = SyntheticWorkload::new(cfg);
    let protocol = FtRp::new(query, tol, FtRpConfig::default(), 5).unwrap();
    let mut ft = Engine::new(&w.initial_values(), protocol);
    ft.run(&mut w);
    let frac_ok = oracle::fraction_rank_violation(query, tol, &ft.answer(), ft.fleet()).is_none();
    println!(
        "FT-RP (eps=0.2):     {:>9} messages, {} bound recomputes, guarantee {}",
        ft.ledger().total(),
        ft.protocol().reinits(),
        if frac_ok { "holds ✓" } else { "VIOLATED ✗" }
    );
}
