//! Criterion microbenches for the hot kernels of the reproduction:
//! filter crossing checks, ranking, protocol maintenance steps, event-queue
//! operations, and workload generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use asf_core::engine::Engine;
use asf_core::protocol::{FtNrp, FtNrpConfig, Rtp, ZtNrp};
use asf_core::query::{RangeQuery, RankQuery, RankSpace};
use asf_core::rank::{midpoint_threshold, rank_values};
use asf_core::tolerance::FractionTolerance;
use asf_core::workload::Workload;
use simkit::{EventQueue, SimRng};
use streamnet::{Filter, StreamId};
use workloads::{SyntheticConfig, SyntheticWorkload};

fn bench_filter_checks(c: &mut Criterion) {
    let filter = Filter::interval(400.0, 600.0);
    c.bench_function("filter/violated", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for i in 0..1000 {
                let prev = (i * 7 % 1000) as f64;
                let cur = (i * 13 % 1000) as f64;
                if filter.violated(black_box(prev), black_box(cur)) {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank");
    for n in [800usize, 5000] {
        let mut rng = SimRng::seed_from_u64(1);
        let values: Vec<(StreamId, f64)> =
            (0..n).map(|i| (StreamId(i as u32), rng.next_f64() * 1000.0)).collect();
        group.bench_with_input(BenchmarkId::new("rank_values", n), &values, |b, values| {
            b.iter(|| rank_values(RankSpace::Knn { q: 500.0 }, values.iter().copied()))
        });
        group.bench_with_input(
            BenchmarkId::new("midpoint_threshold", n),
            &values,
            |b, values| {
                b.iter(|| {
                    midpoint_threshold(RankSpace::Knn { q: 500.0 }, values.iter().copied(), 50)
                })
            },
        );
    }
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            let mut x = 0x9E3779B97F4A7C15u64;
            for i in 0..1000u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                q.schedule((x >> 11) as f64, i);
            }
            let mut sum = 0u64;
            while let Some((_, i)) = q.pop() {
                sum += i as u64;
            }
            sum
        })
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload/synthetic_10k_events", |b| {
        b.iter(|| {
            let cfg = SyntheticConfig {
                num_streams: 1000,
                horizon: 200.0,
                seed: 7,
                ..Default::default()
            };
            let mut w = SyntheticWorkload::new(cfg);
            let mut n = 0u32;
            while w.next_event().is_some() {
                n += 1;
            }
            n
        })
    });
}

fn bench_protocol_maintenance(c: &mut Criterion) {
    let cfg =
        SyntheticConfig { num_streams: 1000, horizon: 100.0, seed: 3, ..Default::default() };
    let range = RangeQuery::new(400.0, 600.0).unwrap();

    let mut group = c.benchmark_group("protocol_run");
    group.sample_size(20);
    group.bench_function("zt_nrp_1k_streams", |b| {
        b.iter(|| {
            let mut w = SyntheticWorkload::new(cfg);
            let mut engine = Engine::new(&w.initial_values(), ZtNrp::new(range));
            engine.run(&mut w);
            engine.ledger().total()
        })
    });
    group.bench_function("ft_nrp_1k_streams", |b| {
        b.iter(|| {
            let mut w = SyntheticWorkload::new(cfg);
            let tol = FractionTolerance::symmetric(0.2).unwrap();
            let p = FtNrp::new(range, tol, FtNrpConfig::default(), 1).unwrap();
            let mut engine = Engine::new(&w.initial_values(), p);
            engine.run(&mut w);
            engine.ledger().total()
        })
    });
    group.bench_function("rtp_1k_streams", |b| {
        b.iter(|| {
            let mut w = SyntheticWorkload::new(cfg);
            let q = RankQuery::knn(500.0, 20).unwrap();
            let mut engine = Engine::new(&w.initial_values(), Rtp::new(q, 10).unwrap());
            engine.run(&mut w);
            engine.ledger().total()
        })
    });
    group.finish();
}

fn bench_multidim(c: &mut Criterion) {
    use asf_core::multidim::engine2d::{Engine2d, Workload2d};
    use asf_core::multidim::{Point2, Region, Rtp2d};
    use workloads::{Walk2dConfig, Walk2dWorkload};

    c.bench_function("multidim/region_checks", |b| {
        let disk = Region::disk(Point2::new(500.0, 500.0), 120.0);
        b.iter(|| {
            let mut hits = 0u32;
            for i in 0..1000 {
                let p = Point2::new((i * 7 % 1000) as f64, (i * 13 % 1000) as f64);
                if disk.contains(black_box(p)) {
                    hits += 1;
                }
            }
            hits
        })
    });

    let mut group = c.benchmark_group("multidim_run");
    group.sample_size(20);
    group.bench_function("rtp2d_500_objects", |b| {
        b.iter(|| {
            let cfg = Walk2dConfig {
                num_objects: 500,
                horizon: 100.0,
                seed: 3,
                ..Default::default()
            };
            let mut w = Walk2dWorkload::new(cfg);
            let q = Point2::new(500.0, 500.0);
            let mut engine =
                Engine2d::new(&w.initial_positions(), Rtp2d::new(q, 10, 5).unwrap());
            engine.run(&mut w);
            engine.ledger().total()
        })
    });
    group.finish();
}

fn bench_multi_query(c: &mut Criterion) {
    use asf_core::multi_query::{CellMode, MultiRangeZt};

    let queries: Vec<RangeQuery> =
        (0..8).map(|j| RangeQuery::new(100.0 * j as f64, 100.0 * j as f64 + 250.0).unwrap()).collect();
    let cfg =
        SyntheticConfig { num_streams: 1000, horizon: 100.0, seed: 5, ..Default::default() };

    let mut group = c.benchmark_group("multi_query_run");
    group.sample_size(20);
    for (mode, label) in
        [(CellMode::ServerManaged, "server_cells"), (CellMode::SourceResident, "resident_cells")]
    {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut w = SyntheticWorkload::new(cfg);
                let p = MultiRangeZt::with_mode(queries.clone(), mode).unwrap();
                let mut engine = Engine::new(&w.initial_values(), p);
                engine.run(&mut w);
                engine.ledger().total()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_filter_checks,
    bench_ranking,
    bench_event_queue,
    bench_workload_generation,
    bench_protocol_maintenance,
    bench_multidim,
    bench_multi_query
);
criterion_main!(benches);
