//! Microbenches for the hot kernels of the reproduction: filter crossing
//! checks, ranking, protocol maintenance steps, event-queue operations, and
//! workload generation.
//!
//! Dependency-free harness (`harness = false`): each kernel is timed over a
//! fixed iteration count and reported as ns/iter. Run with
//! `cargo bench -p bench_harness` (or `--bench micro -- --quick`).

use std::hint::black_box;
use std::time::Instant;

use asf_core::engine::Engine;
use asf_core::protocol::{FtNrp, FtNrpConfig, Rtp, ZtNrp};
use asf_core::query::{RangeQuery, RankQuery, RankSpace};
use asf_core::rank::{midpoint_threshold, rank_values};
use asf_core::tolerance::FractionTolerance;
use asf_core::workload::Workload;
use simkit::{EventQueue, SimRng};
use streamnet::{Filter, StreamId};
use workloads::{SyntheticConfig, SyntheticWorkload};

/// Times `f` over `iters` iterations (after one warm-up) and prints ns/iter.
fn bench<T>(name: &str, iters: u64, mut f: impl FnMut() -> T) {
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let total = start.elapsed();
    let per = total.as_nanos() as f64 / iters as f64;
    println!("{name:<44} {per:>14.1} ns/iter   ({iters} iters)");
}

fn scale() -> u64 {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("ASF_QUICK").is_ok_and(|v| v == "1");
    if quick {
        1
    } else {
        10
    }
}

fn bench_filter_checks(mul: u64) {
    let filter = Filter::interval(400.0, 600.0);
    bench("filter/violated_1k", 100 * mul, || {
        let mut hits = 0u32;
        for i in 0..1000 {
            let prev = (i * 7 % 1000) as f64;
            let cur = (i * 13 % 1000) as f64;
            if filter.violated(black_box(prev), black_box(cur)) {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_ranking(mul: u64) {
    for n in [800usize, 5000] {
        let mut rng = SimRng::seed_from_u64(1);
        let values: Vec<(StreamId, f64)> =
            (0..n).map(|i| (StreamId(i as u32), rng.next_f64() * 1000.0)).collect();
        bench(&format!("rank/rank_values_{n}"), 20 * mul, || {
            rank_values(RankSpace::Knn { q: 500.0 }, values.iter().copied())
        });
        bench(&format!("rank/midpoint_threshold_{n}"), 20 * mul, || {
            midpoint_threshold(RankSpace::Knn { q: 500.0 }, values.iter().copied(), 50)
        });
    }
}

fn bench_event_queue(mul: u64) {
    bench("event_queue/schedule_pop_1k", 100 * mul, || {
        let mut q = EventQueue::with_capacity(1024);
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..1000u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            q.schedule((x >> 11) as f64, i);
        }
        let mut sum = 0u64;
        while let Some((_, i)) = q.pop() {
            sum += i as u64;
        }
        sum
    });
}

fn bench_workload_generation(mul: u64) {
    bench("workload/synthetic_10k_events", 5 * mul, || {
        let cfg =
            SyntheticConfig { num_streams: 1000, horizon: 200.0, seed: 7, ..Default::default() };
        let mut w = SyntheticWorkload::new(cfg);
        let mut n = 0u32;
        while w.next_event().is_some() {
            n += 1;
        }
        n
    });
}

fn bench_protocol_maintenance(mul: u64) {
    let cfg = SyntheticConfig { num_streams: 1000, horizon: 100.0, seed: 3, ..Default::default() };
    let range = RangeQuery::new(400.0, 600.0).unwrap();

    bench("protocol_run/zt_nrp_1k_streams", 3 * mul, || {
        let mut w = SyntheticWorkload::new(cfg);
        let mut engine = Engine::new(&w.initial_values(), ZtNrp::new(range));
        engine.run(&mut w);
        engine.ledger().total()
    });
    bench("protocol_run/ft_nrp_1k_streams", 3 * mul, || {
        let mut w = SyntheticWorkload::new(cfg);
        let tol = FractionTolerance::symmetric(0.2).unwrap();
        let p = FtNrp::new(range, tol, FtNrpConfig::default(), 1).unwrap();
        let mut engine = Engine::new(&w.initial_values(), p);
        engine.run(&mut w);
        engine.ledger().total()
    });
    bench("protocol_run/rtp_1k_streams", 3 * mul, || {
        let mut w = SyntheticWorkload::new(cfg);
        let q = RankQuery::knn(500.0, 20).unwrap();
        let mut engine = Engine::new(&w.initial_values(), Rtp::new(q, 10).unwrap());
        engine.run(&mut w);
        engine.ledger().total()
    });
}

fn bench_multidim(mul: u64) {
    use asf_core::multidim::engine2d::{Engine2d, Workload2d};
    use asf_core::multidim::{Point2, Region, Rtp2d};
    use workloads::{Walk2dConfig, Walk2dWorkload};

    let disk = Region::disk(Point2::new(500.0, 500.0), 120.0);
    bench("multidim/region_checks_1k", 100 * mul, || {
        let mut hits = 0u32;
        for i in 0..1000 {
            let p = Point2::new((i * 7 % 1000) as f64, (i * 13 % 1000) as f64);
            if disk.contains(black_box(p)) {
                hits += 1;
            }
        }
        hits
    });

    bench("multidim_run/rtp2d_500_objects", 3 * mul, || {
        let cfg = Walk2dConfig { num_objects: 500, horizon: 100.0, seed: 3, ..Default::default() };
        let mut w = Walk2dWorkload::new(cfg);
        let q = Point2::new(500.0, 500.0);
        let mut engine = Engine2d::new(&w.initial_positions(), Rtp2d::new(q, 10, 5).unwrap());
        engine.run(&mut w);
        engine.ledger().total()
    });
}

fn bench_multi_query(mul: u64) {
    use asf_core::multi_query::{CellMode, MultiRangeZt};

    let queries: Vec<RangeQuery> = (0..8)
        .map(|j| RangeQuery::new(100.0 * j as f64, 100.0 * j as f64 + 250.0).unwrap())
        .collect();
    let cfg = SyntheticConfig { num_streams: 1000, horizon: 100.0, seed: 5, ..Default::default() };

    for (mode, label) in
        [(CellMode::ServerManaged, "server_cells"), (CellMode::SourceResident, "resident_cells")]
    {
        bench(&format!("multi_query_run/{label}"), 3 * mul, || {
            let mut w = SyntheticWorkload::new(cfg);
            let p = MultiRangeZt::with_mode(queries.clone(), mode).unwrap();
            let mut engine = Engine::new(&w.initial_values(), p);
            engine.run(&mut w);
            engine.ledger().total()
        });
    }
}

fn main() {
    let mul = scale();
    println!("# micro benches (multiplier {mul}x; use --quick for 1x)\n");
    bench_filter_checks(mul);
    bench_ranking(mul);
    bench_event_queue(mul);
    bench_workload_generation(mul);
    bench_protocol_maintenance(mul);
    bench_multidim(mul);
    bench_multi_query(mul);
}
