//! # bench_harness — shared plumbing for the figure-reproduction binaries
//!
//! Each `bin/figNN` binary regenerates one figure of the paper's evaluation
//! (§6): it sweeps the same parameters, runs the same protocols over the
//! same class of workload, and prints the series the figure plots. The
//! helpers here keep the binaries small: run a protocol to completion and
//! report its message ledger, and print aligned series tables.
//!
//! All binaries accept `--quick` (or `ASF_QUICK=1`) to run a reduced-scale
//! sweep for smoke-testing; the default scale is the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use asf_core::engine::Engine;
use asf_core::protocol::Protocol;
use asf_core::workload::Workload;
use streamnet::{Ledger, MessageKind};

/// Sweep scale, chosen from the command line / environment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced population/horizon for smoke tests (`--quick`).
    Quick,
    /// The paper's scale (default).
    Paper,
}

impl Scale {
    /// Parses `--quick` from `std::env::args` or `ASF_QUICK=1` from the
    /// environment.
    pub fn from_env() -> Scale {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("ASF_QUICK").is_ok_and(|v| v == "1");
        if quick {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Whether this is the reduced scale.
    pub fn is_quick(&self) -> bool {
        *self == Scale::Quick
    }
}

/// Outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Protocol name.
    pub protocol: &'static str,
    /// Full message ledger.
    pub ledger: Ledger,
    /// Workload events applied.
    pub events: u64,
    /// Reports the server actually processed — the paper's *server
    /// computation* savings claim in one number: with no filter this equals
    /// `events`; filters shrink it.
    pub server_reports: u64,
}

impl RunResult {
    /// The paper's headline metric: total messages.
    pub fn messages(&self) -> u64 {
        self.ledger.total()
    }

    /// Fraction of workload events that reached the server at all.
    pub fn server_load(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.server_reports as f64 / self.events as f64
        }
    }
}

/// Runs `protocol` over `workload` until exhaustion.
pub fn run_to_completion<P: Protocol>(protocol: P, workload: &mut dyn Workload) -> RunResult {
    let initial = workload.initial_values();
    let mut engine = Engine::new(&initial, protocol);
    engine.run(workload);
    RunResult {
        protocol: engine.protocol().name(),
        ledger: engine.ledger().clone(),
        events: engine.events_processed(),
        server_reports: engine.reports_processed(),
    }
}

/// A named series of y-values over a shared x-axis.
pub struct Series {
    /// Legend label.
    pub label: String,
    /// One value per x-axis point.
    pub values: Vec<f64>,
}

/// Prints a figure as an aligned table: one row per x value, one column per
/// series — the same rows the paper's plot shows.
pub fn print_table(title: &str, x_label: &str, xs: &[String], series: &[Series]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = Vec::new();
    let x_width = xs.iter().map(|x| x.len()).chain([x_label.len()]).max().unwrap_or(8) + 2;
    print!("{x_label:<x_width$}");
    for s in series {
        let w = s.label.len().max(12) + 2;
        widths.push(w);
        print!("{:>w$}", s.label);
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:<x_width$}");
        for (s, &w) in series.iter().zip(widths.iter()) {
            let v = s.values.get(i).copied().unwrap_or(f64::NAN);
            if v.fract() == 0.0 && v.abs() < 1e15 {
                print!("{:>w$}", format!("{}", v as i64));
            } else {
                print!("{v:>w$.3}");
            }
        }
        println!();
    }
}

/// Prints the per-class message breakdown of a run (used by the cost-model
/// ablation and appended to some figures for context).
pub fn print_breakdown(label: &str, ledger: &Ledger) {
    print!("  {label:<28}");
    for kind in MessageKind::ALL {
        print!(" {}={}", kind.label(), ledger.count(kind));
    }
    println!(" total={}", ledger.total());
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_core::protocol::ZtNrp;
    use asf_core::query::RangeQuery;
    use asf_core::workload::VecWorkload;

    #[test]
    fn run_to_completion_reports_ledger() {
        let initial = vec![450.0, 700.0];
        let mut w = VecWorkload::new(initial, vec![]);
        let result = run_to_completion(ZtNrp::new(RangeQuery::new(400.0, 600.0).unwrap()), &mut w);
        assert_eq!(result.protocol, "ZT-NRP");
        // 2n probes + n broadcast.
        assert_eq!(result.messages(), 6);
        assert_eq!(result.events, 0);
    }

    #[test]
    fn scale_default_is_paper() {
        // No --quick in the test harness args (cargo passes test filters,
        // not --quick).
        assert!(!Scale::from_env().is_quick() || std::env::var("ASF_QUICK").is_ok());
    }
}
