//! Ablation — per-message-class breakdown of every protocol, plus the
//! server-computation proxy.
//!
//! The paper reports one number (total messages) and claims "significant
//! savings in both communication overhead and server computation"; this
//! ablation decomposes the former by class (DESIGN.md §3.3) — updates
//! (crossings), probes (Fix_Error / expansion searches), installs, and
//! broadcasts (bound redeployments) — and quantifies the latter as the
//! fraction of workload events that reach the server at all.

use asf_core::protocol::{FtNrp, FtNrpConfig, FtRp, FtRpConfig, NoFilter, Rtp, ZtNrp, ZtRp};
use asf_core::query::{RangeQuery, RankQuery};
use asf_core::tolerance::FractionTolerance;
use bench_harness::{print_breakdown, run_to_completion, Scale};
use workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    let scale = Scale::from_env();
    let cfg = if scale.is_quick() {
        SyntheticConfig { num_streams: 300, horizon: 100.0, ..Default::default() }
    } else {
        SyntheticConfig { num_streams: 2000, horizon: 400.0, ..Default::default() }
    };
    let range = RangeQuery::new(400.0, 600.0).unwrap();
    let k = if scale.is_quick() { 20 } else { 60 };
    let knn = RankQuery::knn(500.0, k).unwrap();
    let tol = FractionTolerance::symmetric(0.2).unwrap();

    println!(
        "\n## Ablation: message breakdown by class ({} streams, horizon {}, eps=0.2, k={k})\n",
        cfg.num_streams, cfg.horizon
    );

    let fresh = || SyntheticWorkload::new(cfg);
    let show = |label: &str, r: &bench_harness::RunResult| {
        print_breakdown(label, &r.ledger);
        println!(
            "  {:<28} server handled {} of {} events ({:.1}% load)",
            "",
            r.server_reports,
            r.events,
            100.0 * r.server_load()
        );
    };

    let r = run_to_completion(NoFilter::range(range), &mut fresh());
    show("no-filter (range)", &r);

    let r = run_to_completion(ZtNrp::new(range), &mut fresh());
    show("ZT-NRP", &r);

    let r = run_to_completion(
        FtNrp::new(range, tol, FtNrpConfig::default(), 42).unwrap(),
        &mut fresh(),
    );
    show("FT-NRP", &r);

    let r = run_to_completion(NoFilter::rank(knn), &mut fresh());
    show("no-filter (k-NN)", &r);

    let r = run_to_completion(Rtp::new(knn, 10).unwrap(), &mut fresh());
    show("RTP (r=10)", &r);

    let r = run_to_completion(ZtRp::new(knn).unwrap(), &mut fresh());
    show("ZT-RP", &r);

    let r =
        run_to_completion(FtRp::new(knn, tol, FtRpConfig::default(), 42).unwrap(), &mut fresh());
    show("FT-RP", &r);
}
