//! Figure 12 — FT-NRP on synthetic data: messages over the `(ε⁺, ε⁻)` grid.
//!
//! The §6.2 synthetic model: 5000 streams, values initially uniform in
//! `[0, 1000]`, exponential inter-arrivals (mean 20), `N(0, 20)` steps;
//! range query `[400, 600]`. Expected shape: totals decrease as either
//! tolerance grows (modest relative savings — the paper's z-axis spans
//! ≈46k down to ≈36k).

use asf_core::protocol::{FtNrp, FtNrpConfig, SelectionHeuristic};
use asf_core::query::RangeQuery;
use asf_core::tolerance::FractionTolerance;
use bench_harness::{print_table, run_to_completion, Scale, Series};
use workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    let scale = Scale::from_env();
    let cfg = if scale.is_quick() {
        SyntheticConfig { num_streams: 500, horizon: 400.0, ..Default::default() }
    } else {
        SyntheticConfig { horizon: 4000.0, ..Default::default() }
    };
    let query = RangeQuery::new(400.0, 600.0).unwrap();
    let epsilons = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

    let mut series = Vec::new();
    for &ep in &epsilons {
        let mut values = Vec::new();
        for &em in &epsilons {
            let tol = FractionTolerance::new(ep, em).unwrap();
            let config =
                FtNrpConfig { heuristic: SelectionHeuristic::Random, reinit_on_exhaustion: false };
            let protocol = FtNrp::new(query, tol, config, 42).unwrap();
            let mut w = SyntheticWorkload::new(cfg);
            values.push(run_to_completion(protocol, &mut w).messages() as f64);
        }
        series.push(Series { label: format!("eps+={ep}"), values });
    }

    let xs: Vec<String> = epsilons.iter().map(|e| format!("eps-={e}")).collect();
    print_table(
        &format!(
            "Figure 12: FT-NRP on synthetic data ({} streams, horizon {}), range [400, 600]",
            cfg.num_streams, cfg.horizon
        ),
        "",
        &xs,
        &series,
    );
}
