//! Compares a freshly produced `server_throughput` snapshot against the
//! committed `BENCH_server.json` baseline.
//!
//! Two classes of difference:
//!
//! * **Schema drift** — top-level keys, the per-row field set of
//!   `results`, or the set of result-row identities
//!   (scenario/shards/mode/coord/scatter) changed. This is a **hard
//!   failure** (exit 1): someone added, renamed, or dropped a field
//!   without updating the committed baseline and
//!   `crates/bench/README.md`.
//! * **Numeric drift** — a shared numeric field moved beyond its
//!   tolerance. **Advisory only** (reported, exit 0): the committed
//!   baseline is a full-scale run while CI produces `--quick` snapshots,
//!   so absolute numbers legitimately differ by orders of magnitude;
//!   the report exists to make unexpected *shape* changes (a ratio field
//!   collapsing, a fraction leaving `[0, 1]`) visible in the log.
//!
//! Usage: `bench_diff <fresh.json> [<committed.json>]` (the baseline
//! defaults to `BENCH_server.json` in the working directory).

use std::collections::BTreeSet;
use std::process::ExitCode;

use asf_telemetry::json::{self, Value};

/// Fields compared with a *scale-free* tolerance: ratios, fractions, and
/// per-round rates that should be comparable between quick and full runs.
/// Everything else (event counts, nanosecond totals, throughput) is
/// scale-dependent and only reported when it changes by more than 100x.
const SCALE_FREE: &[(&str, f64)] = &[
    ("parallel_fraction", 0.5),
    ("window_depth", 0.5),
    // Pool warm-up amortizes over ~10x fewer rounds at --quick scale, so
    // quick runs legitimately sit ~10x above the full-scale baseline;
    // only an order-of-magnitude pooling regression should surface.
    ("allocs_per_round", 15.0),
];

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn top_level_keys(v: &Value) -> BTreeSet<String> {
    v.as_object().map(|m| m.iter().map(|(k, _)| k.clone()).collect()).unwrap_or_default()
}

/// The identity of one result row — the sweep coordinates.
fn row_identity(row: &Value) -> String {
    let s = |k: &str| row.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
    let n = |k: &str| row.get(k).and_then(Value::as_f64).unwrap_or(f64::NAN);
    format!(
        "{}/shards={}/{}/{}/{}",
        s("scenario"),
        n("shards"),
        s("mode"),
        s("coord"),
        s("scatter")
    )
}

fn row_fields(row: &Value) -> BTreeSet<String> {
    row.as_object().map(|m| m.iter().map(|(k, _)| k.clone()).collect()).unwrap_or_default()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(fresh_path) = args.next() else {
        eprintln!("usage: bench_diff <fresh.json> [<committed.json>]");
        return ExitCode::FAILURE;
    };
    let committed_path = args.next().unwrap_or_else(|| "BENCH_server.json".to_string());

    let (fresh, committed) = match (load(&fresh_path), load(&committed_path)) {
        (Ok(f), Ok(c)) => (f, c),
        (f, c) => {
            for r in [f, c] {
                if let Err(e) = r {
                    eprintln!("bench_diff: {e}");
                }
            }
            return ExitCode::FAILURE;
        }
    };

    let mut schema_errors: Vec<String> = Vec::new();

    // 1. Top-level key set.
    let fresh_keys = top_level_keys(&fresh);
    let committed_keys = top_level_keys(&committed);
    for k in committed_keys.difference(&fresh_keys) {
        schema_errors.push(format!("top-level key \"{k}\" missing from fresh snapshot"));
    }
    for k in fresh_keys.difference(&committed_keys) {
        schema_errors.push(format!(
            "top-level key \"{k}\" is new (update BENCH_server.json and the README)"
        ));
    }

    // 2. Named top-level sub-objects whose key sets are part of the schema
    // (e.g. the `recovery` block). Presence is scale-dependent for some of
    // them (`telemetry_overhead` is `null` under `--quick`), so the key-set
    // comparison only runs when both sides materialized an object.
    for name in ["recovery", "telemetry_overhead", "chaos", "chaos_recovery", "multi_query"] {
        let (Some(c), Some(f)) = (committed.get(name), fresh.get(name)) else { continue };
        if c.as_object().is_none() || f.as_object().is_none() {
            continue;
        }
        let ck = top_level_keys(c);
        let fk = top_level_keys(f);
        for k in ck.difference(&fk) {
            schema_errors.push(format!("{name}.{k} missing from fresh snapshot"));
        }
        for k in fk.difference(&ck) {
            schema_errors
                .push(format!("{name}.{k} is new (update BENCH_server.json and the README)"));
        }
    }

    // 3. Result rows: identities and per-row field sets.
    let empty: Vec<Value> = Vec::new();
    let rows_of = |v: &Value| -> Vec<Value> {
        v.get("results").and_then(Value::as_array).unwrap_or(&empty).to_vec()
    };
    let fresh_rows = rows_of(&fresh);
    let committed_rows = rows_of(&committed);
    let find = |rows: &[Value], id: &str| rows.iter().find(|r| row_identity(r) == id).cloned();

    for row in &committed_rows {
        let id = row_identity(row);
        match find(&fresh_rows, &id) {
            None => schema_errors.push(format!("result row {id} missing from fresh snapshot")),
            Some(fresh_row) => {
                let cf = row_fields(row);
                let ff = row_fields(&fresh_row);
                for k in cf.difference(&ff) {
                    schema_errors.push(format!("row {id}: field \"{k}\" missing from fresh row"));
                }
                for k in ff.difference(&cf) {
                    schema_errors.push(format!("row {id}: field \"{k}\" is new"));
                }
            }
        }
    }
    for row in &fresh_rows {
        let id = row_identity(row);
        if find(&committed_rows, &id).is_none() {
            schema_errors.push(format!("result row {id} is new"));
        }
    }

    // 4. Advisory numeric drift on matching rows.
    let mut advisories = 0usize;
    for row in &committed_rows {
        let id = row_identity(row);
        let Some(fresh_row) = find(&fresh_rows, &id) else { continue };
        let Some(members) = row.as_object() else { continue };
        for (k, v) in members {
            let (Some(old), Some(new)) = (v.as_f64(), fresh_row.get(k).and_then(Value::as_f64))
            else {
                continue;
            };
            let tolerance =
                SCALE_FREE.iter().find(|(name, _)| name == k).map(|&(_, tol)| tol).unwrap_or(100.0);
            let denom = old.abs().max(1e-9);
            let rel = (new - old).abs() / denom;
            if rel > tolerance {
                advisories += 1;
                eprintln!(
                    "advisory: {id}.{k}: committed {old:.4} vs fresh {new:.4} \
                     ({rel:.1}x beyond tolerance {tolerance})"
                );
            }
        }
    }

    println!(
        "bench_diff: {} committed rows, {} fresh rows, {} schema errors, {} numeric advisories",
        committed_rows.len(),
        fresh_rows.len(),
        schema_errors.len(),
        advisories
    );
    if !schema_errors.is_empty() {
        for e in &schema_errors {
            eprintln!("schema drift: {e}");
        }
        eprintln!(
            "bench_diff: schema drift detected — regenerate BENCH_server.json with \
             `cargo run --release -p bench_harness --bin server_throughput` and document \
             new fields in crates/bench/README.md"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
