//! Figure 11 — FT-NRP scalability: messages vs. number of streams.
//!
//! The TCP-like workload is scaled from 200 to 2000 subnets (the per-subnet
//! event rate stays fixed, so the total event count grows linearly), with
//! symmetric tolerance `ε⁺ = ε⁻ ∈ {0, 0.2, 0.3, 0.4, 0.5}`. Expected shape
//! (paper): near-linear growth, with higher tolerance flattening the line —
//! "for a larger number of streams, the performance gains more by using
//! higher tolerance values".

use asf_core::protocol::{FtNrp, FtNrpConfig, SelectionHeuristic};
use asf_core::query::RangeQuery;
use asf_core::tolerance::FractionTolerance;
use bench_harness::{print_table, run_to_completion, Scale, Series};
use workloads::{TcpLikeConfig, TcpLikeWorkload};

fn main() {
    let scale = Scale::from_env();
    let ns: Vec<usize> =
        if scale.is_quick() { vec![200, 600, 1000] } else { (1..=10).map(|i| i * 200).collect() };
    let query = RangeQuery::new(400.0, 600.0).unwrap();
    let epsilons = [0.0, 0.2, 0.3, 0.4, 0.5];

    let mut series = Vec::new();
    for &eps in &epsilons {
        let mut values = Vec::new();
        for &n in &ns {
            let cfg = TcpLikeConfig::scaled_to(n);
            let tol = FractionTolerance::symmetric(eps).unwrap();
            let config =
                FtNrpConfig { heuristic: SelectionHeuristic::Random, reinit_on_exhaustion: false };
            let protocol = FtNrp::new(query, tol, config, 42).unwrap();
            let mut w = TcpLikeWorkload::new(cfg);
            values.push(run_to_completion(protocol, &mut w).messages() as f64);
        }
        series.push(Series { label: format!("eps+=eps-={eps}"), values });
    }

    let xs: Vec<String> = ns.iter().map(|n| n.to_string()).collect();
    print_table(
        "Figure 11: FT-NRP scalability on TCP-like data, range [400, 600]",
        "streams",
        &xs,
        &series,
    );
}
