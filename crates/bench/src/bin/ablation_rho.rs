//! Ablation — the Equation-16 split policy for FT-RP.
//!
//! The paper fixes only the budget *line* `ρ⁻ = ρ⁺/(ε⁺−1) + m`; where to
//! sit on it is an open implementation choice (DESIGN.md §3.4). This
//! ablation compares the three `RhoPolicy` points (balanced, all-positive,
//! all-negative) across tolerance levels, reporting both messages and
//! forced bound recomputations.

use asf_core::protocol::{FtRp, FtRpConfig};
use asf_core::query::RankQuery;
use asf_core::tolerance::{FractionTolerance, RhoPolicy};
use bench_harness::{print_table, Scale, Series};
use workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    let scale = Scale::from_env();
    let cfg = if scale.is_quick() {
        SyntheticConfig { num_streams: 500, horizon: 100.0, ..Default::default() }
    } else {
        SyntheticConfig { num_streams: 2000, horizon: 400.0, ..Default::default() }
    };
    let k = if scale.is_quick() { 30 } else { 60 };
    let epsilons = [0.1, 0.2, 0.3, 0.4, 0.5];
    let policies = [
        (RhoPolicy::Balanced, "balanced"),
        (RhoPolicy::MaxPositive, "max-positive"),
        (RhoPolicy::MaxNegative, "max-negative"),
    ];

    let mut series = Vec::new();
    for (policy, label) in policies {
        let mut msgs = Vec::new();
        let mut reinits = Vec::new();
        for &eps in &epsilons {
            let query = RankQuery::knn(500.0, k).unwrap();
            let tol = FractionTolerance::symmetric(eps).unwrap();
            let config = FtRpConfig { rho_policy: policy, ..Default::default() };
            let protocol = FtRp::new(query, tol, config, 42).unwrap();
            let initial_workload = &mut SyntheticWorkload::new(cfg);
            let initial = asf_core::workload::Workload::initial_values(initial_workload);
            let mut engine = asf_core::engine::Engine::new(&initial, protocol);
            engine.run(initial_workload);
            msgs.push(engine.ledger().total() as f64);
            reinits.push(engine.protocol().reinits() as f64);
        }
        series.push(Series { label: format!("{label} msgs"), values: msgs });
        series.push(Series { label: format!("{label} reinits"), values: reinits });
    }

    let xs: Vec<String> = epsilons.iter().map(|e| e.to_string()).collect();
    print_table(
        &format!("Ablation: FT-RP RhoPolicy (k={k}, {} streams)", cfg.num_streams),
        "eps+/-",
        &xs,
        &series,
    );
}
