//! Throughput of the sharded server vs. shard count on a synthetic
//! 100k-source workload, written to `BENCH_server.json` so later PRs have a
//! perf trajectory. Three scenarios run: the ZT-NRP range query (the
//! broadcast-free, speculation-friendly workload), an RTP k-NN rank query
//! (bound redeployments cut speculation; rank maintenance rides the
//! incremental `RankIndex`), and an FT-RP *reinit storm* (zero tolerance,
//! so every boundary crossing forces a full probe_all + fleet-wide filter
//! redeployment — batched fleet ops + the delta rank-index refresh, run
//! over a truncated event stream to bound wall time).
//!
//! Every configuration runs under both coordinators — `serial` (evaluate a
//! window, then drain its reports) and `pipelined` (drain window *t* while
//! the shards evaluate window *t+1*, batch fleet ops attributed to their
//! shard-parallel component) — so the pipeline's effect on the modeled
//! scaling is visible side by side. Both produce byte-identical answers.
//!
//! Flags: `--quick` (reduced scale), `--scenario <name>` (run one scenario
//! only, e.g. `--scenario reinit_storm`).
//!
//! Every emitted field is documented in `crates/bench/README.md`.

use std::fmt::Write as _;
use std::time::Instant;

use asf_core::protocol::{FtRp, FtRpConfig, Protocol, Rtp, ZtNrp};
use asf_core::query::{RangeQuery, RankQuery};
use asf_core::tolerance::FractionTolerance;
use asf_core::workload::{UpdateEvent, Workload};
use asf_server::{CoordMode, ExecMode, ServerConfig, ShardedServer};
use bench_harness::Scale;
use workloads::{SyntheticConfig, SyntheticWorkload};

struct RunStats {
    scenario: &'static str,
    shards: usize,
    mode: &'static str,
    coord: &'static str,
    init_ns: u64,
    init_probe_ns: u64,
    init_index_ns: u64,
    init_deploy_ns: u64,
    ingest_wall_ns: u64,
    critical_path_ns: u64,
    serial_ns: u64,
    scatter_ns: u64,
    fleet_parallel_ns: u64,
    fleet_wall_ns: u64,
    index_parallel_ns: u64,
    overlap_saved_ns: u64,
    reports_per_group: f64,
    window_depth: u64,
    parallel_fraction: f64,
    occupancy_skew: f64,
    batch_p50_us: f64,
    batch_p99_us: f64,
    messages: u64,
    reports: u64,
    events: u64,
}

impl RunStats {
    /// The data-plane time a perfectly parallel deployment waits for:
    /// per-round max shard evaluation + per-op max shard fleet work +
    /// pure coordinator serial time − drain time hidden behind pipelined
    /// evaluation. See `crates/bench/README.md`.
    fn modeled_ns(&self) -> u64 {
        (self.critical_path_ns + self.fleet_parallel_ns + self.index_parallel_ns + self.serial_ns)
            .saturating_sub(self.overlap_saved_ns)
            .max(1)
    }

    fn wall_updates_per_sec(&self) -> f64 {
        self.events as f64 / (self.ingest_wall_ns as f64 / 1e9)
    }

    fn modeled_updates_per_sec(&self) -> f64 {
        self.events as f64 / (self.modeled_ns() as f64 / 1e9)
    }
}

fn run_one<P: Protocol>(
    scenario: &'static str,
    initial: &[f64],
    events: &[UpdateEvent],
    protocol: P,
    shards: usize,
    mode: ExecMode,
    coord: CoordMode,
) -> RunStats {
    let config = ServerConfig {
        num_shards: shards,
        batch_size: 8192,
        mode,
        channel_capacity: 2,
        coordinator: coord,
    };
    let mut server = ShardedServer::new(initial, protocol, config);
    let t0 = Instant::now();
    server.initialize();
    let init_ns = t0.elapsed().as_nanos() as u64;
    // Initialization is the only thing that has run: the cumulative ctx
    // stats are exactly its probe / index-build components.
    let init_probe_ns = server.ctx_stats().probe_ns;
    let init_index_ns = server.ctx_stats().index_build_ns;
    let init_deploy_ns = init_ns.saturating_sub(init_probe_ns + init_index_ns);
    let t1 = Instant::now();
    server.ingest_batch(events);
    let ingest_wall_ns = t1.elapsed().as_nanos() as u64;
    let reports = server.reports_processed();
    let messages = server.ledger().total();
    let m = server.metrics().clone();
    server.shutdown();
    RunStats {
        scenario,
        shards,
        mode: match mode {
            ExecMode::Inline => "inline",
            ExecMode::Threaded => "threaded",
        },
        coord: match coord {
            CoordMode::Serial => "serial",
            CoordMode::Pipelined => "pipelined",
        },
        init_ns,
        init_probe_ns,
        init_index_ns,
        init_deploy_ns,
        ingest_wall_ns,
        critical_path_ns: m.critical_path_ns,
        serial_ns: m.serial_ns,
        scatter_ns: m.scatter_ns,
        fleet_parallel_ns: m.fleet.parallel_ns,
        fleet_wall_ns: m.fleet.wall_ns,
        index_parallel_ns: m.index_parallel_ns,
        overlap_saved_ns: m.overlap_saved_ns,
        reports_per_group: m.coalesced_reports_per_group().unwrap_or(0.0),
        window_depth: m.max_inflight_windows,
        parallel_fraction: m.parallel_fraction(),
        occupancy_skew: m.occupancy_skew().unwrap_or(f64::NAN),
        batch_p50_us: m.batch_latency_ns(50.0).unwrap_or(0.0) / 1_000.0,
        batch_p99_us: m.batch_latency_ns(99.0).unwrap_or(0.0) / 1_000.0,
        messages,
        reports,
        events: events.len() as u64,
    }
}

fn json_run(s: &RunStats) -> String {
    format!(
        "    {{\"scenario\": \"{}\", \"shards\": {}, \"mode\": \"{}\", \"coord\": \"{}\", \
         \"events\": {}, \
         \"init_ns\": {}, \"init_probe_ns\": {}, \"init_index_ns\": {}, \"init_deploy_ns\": {}, \
         \"ingest_wall_ns\": {}, \"critical_path_ns\": {}, \"serial_ns\": {}, \
         \"scatter_ns\": {}, \"fleet_parallel_ns\": {}, \"fleet_wall_ns\": {}, \
         \"index_parallel_ns\": {}, \"overlap_saved_ns\": {}, \"modeled_ns\": {}, \
         \"wall_updates_per_sec\": {:.0}, \
         \"modeled_updates_per_sec\": {:.0}, \"reports_per_group\": {:.2}, \
         \"window_depth\": {}, \"parallel_fraction\": {:.4}, \
         \"occupancy_skew\": {:.4}, \"batch_p50_us\": {:.1}, \"batch_p99_us\": {:.1}, \
         \"messages\": {}, \"reports\": {}}}",
        s.scenario,
        s.shards,
        s.mode,
        s.coord,
        s.events,
        s.init_ns,
        s.init_probe_ns,
        s.init_index_ns,
        s.init_deploy_ns,
        s.ingest_wall_ns,
        s.critical_path_ns,
        s.serial_ns,
        s.scatter_ns,
        s.fleet_parallel_ns,
        s.fleet_wall_ns,
        s.index_parallel_ns,
        s.overlap_saved_ns,
        s.modeled_ns(),
        s.wall_updates_per_sec(),
        s.modeled_updates_per_sec(),
        s.reports_per_group,
        s.window_depth,
        s.parallel_fraction,
        s.occupancy_skew,
        s.batch_p50_us,
        s.batch_p99_us,
        s.messages,
        s.reports,
    )
}

fn scenario_filter() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--scenario" {
            return args.next();
        }
    }
    None
}

fn main() {
    let scale = Scale::from_env();
    let only = scenario_filter();
    let wants = |name: &str| only.as_deref().is_none_or(|s| s == name);
    let (num_streams, horizon) = if scale.is_quick() { (10_000, 20.0) } else { (100_000, 60.0) };
    let seed = 0xBE7C;
    let cfg = SyntheticConfig { num_streams, horizon, seed, ..Default::default() };
    let query = RangeQuery::new(400.0, 600.0).unwrap();

    eprintln!("generating workload ({num_streams} streams, horizon {horizon}) ...");
    let mut w = SyntheticWorkload::new(cfg);
    let initial = w.initial_values();
    let mut events: Vec<UpdateEvent> = Vec::new();
    while let Some(ev) = w.next_event() {
        events.push(ev);
    }
    eprintln!("{} events", events.len());

    // RTP rank scenario: k-NN around the domain centre with rank slack —
    // scenario diversity beyond the range workload (bound redeployments
    // cut speculation; the incremental rank index carries maintenance).
    let rank_query = RankQuery::knn(500.0, 16).unwrap();
    let rank_r = 16usize;

    // Reinit-storm scenario: FT-RP with zero tolerance degenerates its
    // answer-size window to [k, k], so *every* boundary crossing forces a
    // full re-initialization — probe_all, a delta index refresh, and a
    // fleet-wide install_many. Run over a truncated event stream (each
    // storm costs ~3n messages at n = 100k).
    let storm_tol = FractionTolerance::symmetric(0.0).unwrap();
    let storm_events = &events[..events.len() / 5];

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut results: Vec<RunStats> = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        for mode in [ExecMode::Inline, ExecMode::Threaded] {
            for coord in [CoordMode::Serial, CoordMode::Pipelined] {
                let mut run = |stats: RunStats| {
                    eprintln!(
                        "  wall {:>10.0} upd/s   modeled {:>10.0} upd/s   serial {:>6.1}ms   \
                         fleet// {:>6.1}ms   overlap {:>6.1}ms",
                        stats.wall_updates_per_sec(),
                        stats.modeled_updates_per_sec(),
                        stats.serial_ns as f64 / 1e6,
                        stats.fleet_parallel_ns as f64 / 1e6 + stats.index_parallel_ns as f64 / 1e6,
                        stats.overlap_saved_ns as f64 / 1e6,
                    );
                    results.push(stats);
                };
                if wants("zt_nrp_range") {
                    eprintln!("running zt_nrp_range shards={shards} {mode:?} {coord:?} ...");
                    run(run_one(
                        "zt_nrp_range",
                        &initial,
                        &events,
                        ZtNrp::new(query),
                        shards,
                        mode,
                        coord,
                    ));
                }
                if wants("rtp_knn") {
                    eprintln!("running rtp_knn shards={shards} {mode:?} {coord:?} ...");
                    run(run_one(
                        "rtp_knn",
                        &initial,
                        &events,
                        Rtp::new(rank_query, rank_r).unwrap(),
                        shards,
                        mode,
                        coord,
                    ));
                }
                if wants("reinit_storm") {
                    eprintln!("running reinit_storm shards={shards} {mode:?} {coord:?} ...");
                    run(run_one(
                        "reinit_storm",
                        &initial,
                        storm_events,
                        FtRp::new(rank_query, storm_tol, FtRpConfig::default(), seed).unwrap(),
                        shards,
                        mode,
                        coord,
                    ));
                }
            }
        }
    }

    // Headline speedups come from the pipelined coordinator (the default)
    // in inline mode — the per-shard work model on this container.
    let modeled_of = |scenario: &str, shards: usize| {
        results
            .iter()
            .find(|s| {
                s.scenario == scenario
                    && s.shards == shards
                    && s.mode == "inline"
                    && s.coord == "pipelined"
            })
            .map(|s| s.modeled_updates_per_sec())
            .unwrap_or(f64::NAN)
    };
    let speedup_8x = modeled_of("zt_nrp_range", 8) / modeled_of("zt_nrp_range", 1);
    let rtp_speedup_8x = modeled_of("rtp_knn", 8) / modeled_of("rtp_knn", 1);
    let storm_speedup_8x = modeled_of("reinit_storm", 8) / modeled_of("reinit_storm", 1);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"server_throughput\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"num_streams\": {num_streams}, \"events\": {}, \"horizon\": \
         {horizon}, \"sigma\": 20.0, \"seed\": {seed}}},",
        events.len()
    );
    let _ = writeln!(
        json,
        "  \"scenarios\": {{\"zt_nrp_range\": \"ZT-NRP [400, 600]\", \"rtp_knn\": \"RTP \
         knn(500, k=16, r=16)\", \"reinit_storm\": \"FT-RP knn(500, k=16) eps=0 — every \
         crossing reinitializes (probe_all + delta index refresh + fleet-wide install_many); \
         events/5\"}},"
    );
    let _ = writeln!(json, "  \"hardware\": {{\"cpus\": {cpus}}},");
    let _ = writeln!(
        json,
        "  \"note\": \"modeled_ns = critical_path_ns + fleet_parallel_ns + \
         index_parallel_ns + serial_ns - overlap_saved_ns; wall numbers on a {cpus}-CPU container cannot exceed one core. \
         Every field is documented in crates/bench/README.md.\","
    );
    let _ = writeln!(json, "  \"modeled_speedup_8_shards_vs_1\": {speedup_8x:.2},");
    let _ = writeln!(json, "  \"rtp_modeled_speedup_8_shards_vs_1\": {rtp_speedup_8x:.2},");
    let _ =
        writeln!(json, "  \"reinit_storm_modeled_speedup_8_shards_vs_1\": {storm_speedup_8x:.2},");
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        json.push_str(&json_run(s));
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if only.is_none() {
        std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
        eprintln!("wrote BENCH_server.json");
    } else {
        eprintln!("(--scenario filter active: BENCH_server.json not overwritten)");
    }
    println!("{json}");
    eprintln!(
        "modeled speedup 8 shards vs 1 (pipelined/inline): zt_nrp {speedup_8x:.2}x, rtp \
         {rtp_speedup_8x:.2}x, reinit_storm {storm_speedup_8x:.2}x"
    );
}
