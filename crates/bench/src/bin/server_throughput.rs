//! Throughput of the sharded server vs. shard count on a synthetic
//! 100k-source workload, written to `BENCH_server.json` so later PRs have a
//! perf trajectory. Three scenarios run: the ZT-NRP range query (the
//! broadcast-free, speculation-friendly workload), an RTP k-NN rank query
//! (bound redeployments cut speculation; rank maintenance rides the
//! incremental `RankIndex`), and an FT-RP *reinit storm* (zero tolerance,
//! so every boundary crossing forces a full probe_all + fleet-wide filter
//! redeployment — batched fleet ops + the delta rank-index refresh, run
//! over a truncated event stream to bound wall time).
//!
//! Every configuration runs under both coordinators — `serial` (evaluate a
//! window, then drain its reports) and `pipelined` (drain window *t* while
//! the shards evaluate window *t+1*) — with **broadcast scatter** (shared
//! columnar windows, the default; one `Arc` clone per shard per round) and,
//! on the inline/pipelined modeling rows, the **eager** per-shard-copy
//! scatter baseline, so the collapse of `scatter_ns` into per-shard
//! `partition_scan_ns` is visible side by side. All modes produce
//! byte-identical answers.
//!
//! A global counting allocator audits the coordinator window loop: steady
//! state rounds must run out of pooled buffers, and `allocs_per_round`
//! in the JSON proves it.
//!
//! Two observability gates ride along: a **silent-ingest steady-state
//! audit** (after a warm-up pass over an all-silent workload, further
//! rounds must allocate *nothing* — the pooled window and report buffers
//! must fully recycle) and a **telemetry overhead** measurement (min-of-3
//! ZT-NRP ingest walls with cause attribution + fine tracing on vs.
//! everything off; the ratio is recorded and gated at full scale).
//!
//! A **recovery** measurement rides along (full runs and
//! `--scenario recovery`): a 500k-source population (50k at `--quick`) is
//! checkpointed mid-stream, crashed, and recovered. Recovery (checkpoint
//! restore + journal-suffix replay) is raced against the checkpoint-free
//! alternative: the product's own cold path, a fleet-wide `probe_all`
//! reinitialization storm followed by a full journal replay (measured by
//! deleting the snapshots and recovering again). A bare `probe_all`
//! init — which does NOT reach the pre-crash state and deployed would
//! cost two network messages per source — is recorded for reference.
//! The state-equivalent ratio lands in the JSON's `recovery` object and
//! is gated (> 1x) at full scale. `--fault-smoke` additionally forces one
//! mid-checkpoint crash, recovers, and asserts byte-identity with the
//! durable prefix.
//!
//! A **chaos overhead sweep** rides along (full runs and
//! `--scenario chaos`): the ZT-NRP workload is re-ingested over the
//! fault-injected source↔server channel (`streamnet::ChaosState`) at 1%,
//! 5%, and 20% frame loss. The authoritative ledger still meters only the
//! logical protocol; everything the unreliable network added —
//! retransmissions, duplicate ghosts, heartbeats — lands in
//! `overhead_frames`, and the per-level ratio of the two goes into the
//! JSON's `chaos` object together with retry/timeout/epoch-reject/repair
//! counters.
//!
//! A **durable-chaos scenario** rides along (full runs and
//! `--scenario chaos_recovery`), in two phases. Phase A prices the
//! adaptive-lease + batched-repair machinery at 20% frame loss: the same
//! seeded chaotic run twice, once with fixed leases and per-channel repair
//! charging (the baseline, behind `ChaosConfig` flags) and once with the
//! tuned defaults — batched chunk-end repair must cut repair frames ≥ 10x
//! and adaptive leases must cut spurious expirations ≥ 2x (gated at full
//! scale). Phase B composes chaos with durability and crashes mid-storm:
//! warm recovery (checkpointed channel machine + journal-suffix replay
//! resuming the fault schedule's RNG) is timed against a cold resync from
//! scratch (snapshots deleted, whole journal replayed while re-entering
//! the fault stream from tick zero); both must reproduce the crashed
//! server's answers and ledger exactly. Everything lands in the JSON's
//! `chaos_recovery` object.
//!
//! A **multi-query sweep** rides along (full runs and
//! `--scenario multi_query`): one shared-cell MULTI-ZT protocol serves m
//! range queries over the same population for m across three orders of
//! magnitude, recording per-event cost, the interval-stabbing router's
//! mean queries-touched-per-report fan-out, and a byte-identical
//! `NaiveScan` (O(m) per report) baseline at the affordable m levels.
//! The JSON's `multi_query` object is gated at full scale: fan-out ≪ m
//! and per-event cost growing far slower than m.
//!
//! Flags: `--quick` (reduced scale), `--scenario <name>` (run one scenario
//! only, e.g. `--scenario reinit_storm`, `--scenario recovery`,
//! `--scenario chaos`, `--scenario chaos_recovery`, or
//! `--scenario multi_query`),
//! `--fault-smoke` (forced mid-checkpoint crash + recover + invariance
//! check), `--trace-out <path>` (rerun one
//! traced ZT-NRP configuration and write its span timeline as Chrome
//! trace-event JSON), `--assert-scatter-budget` (fail
//! unless broadcast-scatter coordinator time stays a sliver of ingest —
//! the CI regression gate for the serial scatter stage). When the host has
//! more than one CPU, a full-scale run additionally asserts that
//! *wall-clock* speedup tracks the modeled speedup (see `wall_gate` in
//! the JSON); `--quick` runs record the verdict without failing (their
//! small event counts make shared-runner wall clocks noise-dominated),
//! and single-CPU hosts record an explicit skip note instead.
//!
//! Every emitted field is documented in `crates/bench/README.md`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use asf_core::protocol::{FtRp, FtRpConfig, Protocol, Rtp, ZtNrp};
use asf_core::query::{RangeQuery, RankQuery};
use asf_core::tolerance::FractionTolerance;
use asf_core::workload::{UpdateEvent, Workload};
use asf_server::{
    CheckpointMode, CoordMode, DurabilityConfig, ExecMode, ScatterMode, ServerConfig,
    ShardedServer, TelemetryConfig, TraceDepth,
};
use bench_harness::Scale;
use simkit::fault::FaultMix;
use streamnet::{ChaosConfig, StreamId};
use workloads::{SyntheticConfig, SyntheticWorkload};

/// Counts every heap allocation so the bench can audit the coordinator's
/// window loop (pooled buffers must make steady-state rounds
/// allocation-free).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers to the system allocator; the counter is a relaxed atomic
// side effect with no aliasing or layout implications.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct RunStats {
    scenario: &'static str,
    shards: usize,
    mode: &'static str,
    coord: &'static str,
    scatter: &'static str,
    init_ns: u64,
    init_probe_ns: u64,
    init_index_ns: u64,
    init_deploy_ns: u64,
    ingest_wall_ns: u64,
    critical_path_ns: u64,
    serial_ns: u64,
    scatter_ns: u64,
    window_build_ns: u64,
    partition_scan_ns: u64,
    window_bytes_shared: u64,
    fleet_parallel_ns: u64,
    fleet_wall_ns: u64,
    index_parallel_ns: u64,
    overlap_saved_ns: u64,
    reports_per_group: f64,
    window_depth: u64,
    parallel_fraction: f64,
    occupancy_skew: f64,
    batch_p50_us: f64,
    batch_p99_us: f64,
    messages: u64,
    reports: u64,
    events: u64,
    rounds: u64,
    ingest_allocs: u64,
}

impl RunStats {
    /// The data-plane time a perfectly parallel deployment waits for:
    /// per-round max shard evaluation + per-op max shard fleet work +
    /// pure coordinator serial time − drain time hidden behind pipelined
    /// evaluation. See `crates/bench/README.md`.
    fn modeled_ns(&self) -> u64 {
        (self.critical_path_ns + self.fleet_parallel_ns + self.index_parallel_ns + self.serial_ns)
            .saturating_sub(self.overlap_saved_ns)
            .max(1)
    }

    fn wall_updates_per_sec(&self) -> f64 {
        self.events as f64 / (self.ingest_wall_ns as f64 / 1e9)
    }

    fn modeled_updates_per_sec(&self) -> f64 {
        self.events as f64 / (self.modeled_ns() as f64 / 1e9)
    }

    fn allocs_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.ingest_allocs as f64 / self.rounds as f64
        }
    }
}

fn run_one<P: Protocol>(
    scenario: &'static str,
    initial: &[f64],
    events: &[UpdateEvent],
    protocol: P,
    config: ServerConfig,
) -> RunStats {
    let mut server = ShardedServer::new(initial, protocol, config);
    let t0 = Instant::now();
    server.initialize();
    let init_ns = t0.elapsed().as_nanos() as u64;
    // Initialization is the only thing that has run: the cumulative ctx
    // stats are exactly its probe / index-build components.
    let init_probe_ns = server.ctx_stats().probe_ns;
    let init_index_ns = server.ctx_stats().index_build_ns;
    let init_deploy_ns = init_ns.saturating_sub(init_probe_ns + init_index_ns);
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let t1 = Instant::now();
    server.ingest_batch(events);
    let ingest_wall_ns = t1.elapsed().as_nanos() as u64;
    let ingest_allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let reports = server.reports_processed();
    let messages = server.ledger().total();
    let m = server.metrics().clone();
    server.shutdown();
    RunStats {
        scenario,
        shards: config.num_shards,
        mode: match config.mode {
            ExecMode::Inline => "inline",
            ExecMode::Threaded => "threaded",
        },
        coord: match config.coordinator {
            CoordMode::Serial => "serial",
            CoordMode::Pipelined => "pipelined",
        },
        scatter: match config.scatter {
            ScatterMode::Eager => "eager",
            ScatterMode::Broadcast => "broadcast",
        },
        init_ns,
        init_probe_ns,
        init_index_ns,
        init_deploy_ns,
        ingest_wall_ns,
        critical_path_ns: m.critical_path_ns,
        serial_ns: m.serial_ns,
        scatter_ns: m.scatter_ns,
        window_build_ns: m.window_build_ns,
        partition_scan_ns: m.shard_scan_ns.iter().sum(),
        window_bytes_shared: m.window_bytes_shared,
        fleet_parallel_ns: m.fleet.parallel_ns,
        fleet_wall_ns: m.fleet.wall_ns,
        index_parallel_ns: m.index_parallel_ns,
        overlap_saved_ns: m.overlap_saved_ns,
        reports_per_group: m.coalesced_reports_per_group().unwrap_or(0.0),
        window_depth: m.max_inflight_windows,
        parallel_fraction: m.parallel_fraction(),
        occupancy_skew: m.occupancy_skew().unwrap_or(f64::NAN),
        batch_p50_us: m.batch_latency_ns(50.0).unwrap_or(0.0) / 1_000.0,
        batch_p99_us: m.batch_latency_ns(99.0).unwrap_or(0.0) / 1_000.0,
        messages,
        reports,
        events: events.len() as u64,
        rounds: m.rounds,
        ingest_allocs,
    }
}

fn json_run(s: &RunStats) -> String {
    format!(
        "    {{\"scenario\": \"{}\", \"shards\": {}, \"mode\": \"{}\", \"coord\": \"{}\", \
         \"scatter\": \"{}\", \"events\": {}, \
         \"init_ns\": {}, \"init_probe_ns\": {}, \"init_index_ns\": {}, \"init_deploy_ns\": {}, \
         \"ingest_wall_ns\": {}, \"critical_path_ns\": {}, \"serial_ns\": {}, \
         \"scatter_ns\": {}, \"window_build_ns\": {}, \"partition_scan_ns\": {}, \
         \"window_bytes_shared\": {}, \"fleet_parallel_ns\": {}, \"fleet_wall_ns\": {}, \
         \"index_parallel_ns\": {}, \"overlap_saved_ns\": {}, \"modeled_ns\": {}, \
         \"wall_updates_per_sec\": {:.0}, \
         \"modeled_updates_per_sec\": {:.0}, \"reports_per_group\": {:.2}, \
         \"window_depth\": {}, \"parallel_fraction\": {:.4}, \
         \"occupancy_skew\": {:.4}, \"batch_p50_us\": {:.1}, \"batch_p99_us\": {:.1}, \
         \"allocs_per_round\": {:.2}, \"messages\": {}, \"reports\": {}}}",
        s.scenario,
        s.shards,
        s.mode,
        s.coord,
        s.scatter,
        s.events,
        s.init_ns,
        s.init_probe_ns,
        s.init_index_ns,
        s.init_deploy_ns,
        s.ingest_wall_ns,
        s.critical_path_ns,
        s.serial_ns,
        s.scatter_ns,
        s.window_build_ns,
        s.partition_scan_ns,
        s.window_bytes_shared,
        s.fleet_parallel_ns,
        s.fleet_wall_ns,
        s.index_parallel_ns,
        s.overlap_saved_ns,
        s.modeled_ns(),
        s.wall_updates_per_sec(),
        s.modeled_updates_per_sec(),
        s.reports_per_group,
        s.window_depth,
        s.parallel_fraction,
        s.occupancy_skew,
        s.batch_p50_us,
        s.batch_p99_us,
        s.allocs_per_round(),
        s.messages,
        s.reports,
    )
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn opt_arg(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Everything off: the perf matrix measures the runtime, not its probes.
fn telemetry_off() -> TelemetryConfig {
    TelemetryConfig { causes: false, trace: TraceDepth::Off, trace_capacity: 0 }
}

/// The full observability stack on, as a dashboarded deployment would run.
fn telemetry_full() -> TelemetryConfig {
    TelemetryConfig { causes: true, trace: TraceDepth::Fine, trace_capacity: 65_536 }
}

/// Broadcast-scatter coordinator budget: the per-round `Arc` fan-out must
/// stay below this fraction of ingest wall time (the CI gate that keeps
/// the serial scatter stage from silently regrowing).
const SCATTER_BUDGET: f64 = 0.05;

/// Wall gate (multi-core hosts only): wall-clock speedup of 8 threaded
/// shards over 1 must reach this fraction of the achievable speedup
/// `min(modeled, cpus)`. Deliberately loose — wall clocks on shared
/// runners are noisy — it exists to catch "modeled says 5x, wall says
/// nothing moved".
const WALL_GATE_TOLERANCE: f64 = 0.4;

fn main() {
    let scale = Scale::from_env();
    let only = opt_arg("--scenario");
    let trace_out = opt_arg("--trace-out");
    let assert_scatter_budget = flag("--assert-scatter-budget");
    let wants = |name: &str| only.as_deref().is_none_or(|s| s == name);
    let (num_streams, horizon) = if scale.is_quick() { (10_000, 20.0) } else { (100_000, 60.0) };
    let seed = 0xBE7C;
    let cfg = SyntheticConfig { num_streams, horizon, seed, ..Default::default() };
    let query = RangeQuery::new(400.0, 600.0).unwrap();

    eprintln!("generating workload ({num_streams} streams, horizon {horizon}) ...");
    let mut w = SyntheticWorkload::new(cfg);
    let initial = w.initial_values();
    let mut events: Vec<UpdateEvent> = Vec::new();
    while let Some(ev) = w.next_event() {
        events.push(ev);
    }
    eprintln!("{} events", events.len());

    // RTP rank scenario: k-NN around the domain centre with rank slack —
    // scenario diversity beyond the range workload (bound redeployments
    // cut speculation; the incremental rank index carries maintenance).
    let rank_query = RankQuery::knn(500.0, 16).unwrap();
    let rank_r = 16usize;

    // Reinit-storm scenario: FT-RP with zero tolerance degenerates its
    // answer-size window to [k, k], so *every* boundary crossing forces a
    // full re-initialization — probe_all, a delta index refresh, and a
    // fleet-wide install_many. Run over a truncated event stream (each
    // storm costs ~3n messages at n = 100k).
    let storm_tol = FractionTolerance::symmetric(0.0).unwrap();
    let storm_events = &events[..events.len() / 5];

    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut results: Vec<RunStats> = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        for mode in [ExecMode::Inline, ExecMode::Threaded] {
            for coord in [CoordMode::Serial, CoordMode::Pipelined] {
                // Broadcast scatter (the default) everywhere; the eager
                // baseline additionally runs on the inline/pipelined
                // modeling rows so the scatter_ns → partition_scan_ns
                // migration is visible at every shard count.
                let scatters: &[ScatterMode] =
                    if mode == ExecMode::Inline && coord == CoordMode::Pipelined {
                        &[ScatterMode::Broadcast, ScatterMode::Eager]
                    } else {
                        &[ScatterMode::Broadcast]
                    };
                for &scatter in scatters {
                    let config = ServerConfig {
                        num_shards: shards,
                        batch_size: 8192,
                        mode,
                        channel_capacity: 2,
                        coordinator: coord,
                        scatter,
                        telemetry: telemetry_off(),
                    };
                    let mut run = |stats: RunStats| {
                        eprintln!(
                            "  wall {:>10.0} upd/s   modeled {:>10.0} upd/s   scatter {:>7.2}ms   \
                             scan// {:>6.1}ms   serial {:>6.1}ms   overlap {:>6.1}ms",
                            stats.wall_updates_per_sec(),
                            stats.modeled_updates_per_sec(),
                            stats.scatter_ns as f64 / 1e6,
                            stats.partition_scan_ns as f64 / 1e6,
                            stats.serial_ns as f64 / 1e6,
                            stats.overlap_saved_ns as f64 / 1e6,
                        );
                        results.push(stats);
                    };
                    if wants("zt_nrp_range") {
                        eprintln!(
                            "running zt_nrp_range shards={shards} {mode:?} {coord:?} {scatter:?} \
                             ..."
                        );
                        run(run_one("zt_nrp_range", &initial, &events, ZtNrp::new(query), config));
                    }
                    if wants("rtp_knn") {
                        eprintln!(
                            "running rtp_knn shards={shards} {mode:?} {coord:?} {scatter:?} ..."
                        );
                        run(run_one(
                            "rtp_knn",
                            &initial,
                            &events,
                            Rtp::new(rank_query, rank_r).unwrap(),
                            config,
                        ));
                    }
                    if wants("reinit_storm") {
                        eprintln!(
                            "running reinit_storm shards={shards} {mode:?} {coord:?} {scatter:?} \
                             ..."
                        );
                        run(run_one(
                            "reinit_storm",
                            &initial,
                            storm_events,
                            FtRp::new(rank_query, storm_tol, FtRpConfig::default(), seed).unwrap(),
                            config,
                        ));
                    }
                }
            }
        }
    }

    // Silent-ingest steady-state allocation audit: an all-silent workload
    // (every update repeats the stream's initial value, so no filter ever
    // fires) runs on the default inline/pipelined/broadcast coordinator
    // twice. The first pass warms every pool — window buffers, shard
    // selection scratch, report buffers, commit scratch — and settles the
    // adaptive window; the structurally identical second pass must
    // allocate *nothing*.
    let steady_allocs_per_round = if only.is_none() {
        let silent_pass = |base_time: f64| -> Vec<UpdateEvent> {
            (0..events.len())
                .map(|i| {
                    let stream = (i % initial.len()) as u32;
                    UpdateEvent {
                        time: base_time + i as f64 * 1e-6,
                        stream: StreamId(stream),
                        value: initial[stream as usize],
                    }
                })
                .collect()
        };
        let config = ServerConfig {
            num_shards: 4,
            batch_size: 8192,
            mode: ExecMode::Inline,
            channel_capacity: 2,
            coordinator: CoordMode::Pipelined,
            scatter: ScatterMode::Broadcast,
            telemetry: telemetry_off(),
        };
        let mut server = ShardedServer::new(&initial, ZtNrp::new(query), config);
        server.initialize();
        let warm = silent_pass(1.0);
        let steady = silent_pass(2.0);
        server.ingest_batch(&warm);
        let rounds_before = server.metrics().rounds;
        let a0 = ALLOCATIONS.load(Ordering::Relaxed);
        server.ingest_batch(&steady);
        let allocs = ALLOCATIONS.load(Ordering::Relaxed) - a0;
        let rounds = server.metrics().rounds - rounds_before;
        server.shutdown();
        let per_round = allocs as f64 / rounds.max(1) as f64;
        eprintln!(
            "silent steady-state audit: {allocs} allocs over {rounds} warm rounds \
             ({per_round:.2}/round)"
        );
        assert_eq!(
            allocs, 0,
            "steady-state silent ingest must be allocation-free, saw {allocs} allocs \
             over {rounds} rounds"
        );
        Some(per_round)
    } else {
        None
    };

    // Telemetry overhead: min-of-3 ZT-NRP ingest walls with the full
    // observability stack (cause attribution + fine tracing) vs everything
    // off. Recorded always; gated at full scale only (quick walls on a
    // shared runner are noise-dominated).
    let telemetry_overhead = if only.is_none() {
        let wall = |telemetry: TelemetryConfig| -> u64 {
            (0..3)
                .map(|_| {
                    let config = ServerConfig {
                        num_shards: 4,
                        batch_size: 8192,
                        mode: ExecMode::Inline,
                        channel_capacity: 2,
                        coordinator: CoordMode::Pipelined,
                        scatter: ScatterMode::Broadcast,
                        telemetry,
                    };
                    let mut server = ShardedServer::new(&initial, ZtNrp::new(query), config);
                    server.initialize();
                    let t = Instant::now();
                    server.ingest_batch(&events);
                    let ns = t.elapsed().as_nanos() as u64;
                    server.shutdown();
                    ns
                })
                .min()
                .unwrap()
        };
        let off_ns = wall(telemetry_off());
        let on_ns = wall(telemetry_full());
        let ratio = on_ns as f64 / off_ns.max(1) as f64;
        eprintln!(
            "telemetry overhead: off {:.1}ms, on {:.1}ms, ratio {ratio:.3}",
            off_ns as f64 / 1e6,
            on_ns as f64 / 1e6
        );
        if !scale.is_quick() {
            assert!(
                ratio < 1.10,
                "telemetry overhead gate: full stack costs {ratio:.3}x over off (budget 1.10x)"
            );
        }
        Some((off_ns, on_ns, ratio))
    } else {
        None
    };

    // Recovery vs cold restart: the durability headline. A 500k-source
    // population (50k at --quick) is checkpointed mid-stream and "crashed"
    // (dropped without shutdown); recovery — latest checkpoint restore +
    // journal-suffix replay — races the checkpoint-free restart: the
    // product's own cold path (fleet-wide probe_all reinitialization
    // storm + full journal replay, measured by deleting the snapshots and
    // recovering again). Byte-identity of both recoveries is asserted
    // against the crashed server before the clocks are compared.
    let recovery = if only.is_none() || only.as_deref() == Some("recovery") {
        let n_rec = if scale.is_quick() { 50_000 } else { 500_000 };
        let horizon_rec = if scale.is_quick() { 6.0 } else { 48.0 };
        eprintln!("recovery scenario: generating workload ({n_rec} streams) ...");
        let rec_cfg = SyntheticConfig {
            num_streams: n_rec,
            horizon: horizon_rec,
            seed,
            ..Default::default()
        };
        let mut w = SyntheticWorkload::new(rec_cfg);
        let initial_rec = w.initial_values();
        let mut events_rec: Vec<UpdateEvent> = Vec::new();
        while let Some(ev) = w.next_event() {
            events_rec.push(ev);
        }
        let config = ServerConfig {
            num_shards: 4,
            batch_size: 8192,
            mode: ExecMode::Inline,
            channel_capacity: 2,
            coordinator: CoordMode::Pipelined,
            scatter: ScatterMode::Broadcast,
            telemetry: telemetry_off(),
        };
        let dir = std::env::temp_dir().join(format!("asf-bench-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Cadence such that the last checkpoint lands mid-stream and
        // recovery replays a real journal suffix (~1/8 of the events).
        // Sync mode makes the checkpoint positions — and therefore the
        // replayed suffix — deterministic; the ingest bill for that is not
        // part of any timed section. (In Background mode this in-process
        // ingest outruns the 26 MiB checkpoint writes, so the last landed
        // checkpoint — and the measured replay — would be a race.)
        let every = (events_rec.len() as u64 / 8).max(1);
        // Compaction off: the cold-restart alternative below replays the
        // *entire* journal history, which pruned segments would no longer
        // carry (pruning is exactly the optimization that makes the
        // journal non-self-sufficient once checkpoints supersede it).
        let durable = DurabilityConfig::new(&dir)
            .checkpoint_every(every)
            .mode(CheckpointMode::Sync)
            .rotate_journal_every(None);
        let mut server = ShardedServer::new(&initial_rec, ZtNrp::new(query), config);
        server.initialize();
        server.enable_durability(durable.clone()).expect("open durability dir");
        server.ingest_batch(&events_rec);
        let journal_bytes = server.metrics().journal_bytes;
        let checkpoints = server.metrics().checkpoints;
        let crashed_answer = server.answer();
        let crashed_messages = server.ledger().total();
        drop(server); // crash: no shutdown, no final checkpoint

        let t = Instant::now();
        let recovered =
            ShardedServer::recover(&initial_rec, ZtNrp::new(query), config, durable.clone())
                .expect("recover from durability dir");
        let recover_wall_ns = t.elapsed().as_nanos() as u64;
        let replay_ns = recovered.metrics().recovery_replay_ns;
        assert_eq!(recovered.events_processed(), events_rec.len() as u64);
        assert_eq!(recovered.answer(), crashed_answer, "recovered answers diverged");
        assert_eq!(recovered.ledger().total(), crashed_messages, "recovered ledger diverged");
        recovered.shutdown();

        // Cold restart without checkpoints: delete the snapshots and
        // recover from the journal alone — the product's own cold path,
        // which pays the fleet-wide probe_all reinitialization storm
        // (attributed to `Cause::Recovery`) and then replays the *entire*
        // stream history instead of a checkpoint suffix. This is the
        // cheapest state-equivalent restart a server without checkpoints
        // has; checkpoints exist precisely to collapse its full replay
        // into a suffix replay.
        for snap in ["snap-a.bin", "snap-b.bin"] {
            let _ = std::fs::remove_file(dir.join(snap));
        }
        let t = Instant::now();
        let cold = ShardedServer::recover(&initial_rec, ZtNrp::new(query), config, durable.clone())
            .expect("journal-only recovery");
        let cold_probe_all_recover_ns = t.elapsed().as_nanos() as u64;
        assert_eq!(cold.answer(), crashed_answer, "journal-only recovery diverged");
        assert_eq!(cold.ledger().total(), crashed_messages, "journal-only ledger diverged");
        cold.shutdown();

        // Bare probe_all reinitialization, for reference: fast in-process
        // (each "probe" is a function call here; two network messages per
        // source deployed), but it is NOT a restart option — it loses
        // every adapted filter window, view, and rank order, so it cannot
        // answer queries as the pre-crash server would.
        let t = Instant::now();
        let mut bare = ShardedServer::new(&initial_rec, ZtNrp::new(query), config);
        bare.initialize();
        let bare_probe_all_init_ns = t.elapsed().as_nanos() as u64;
        let cold_probe_all_messages = bare.ledger().total();
        bare.shutdown();
        let _ = std::fs::remove_dir_all(&dir);

        let speedup = cold_probe_all_recover_ns as f64 / recover_wall_ns.max(1) as f64;
        eprintln!(
            "recovery: restore+replay {:.1}ms (replay {:.1}ms) vs probe_all storm + full \
             journal replay {:.1}ms -> {speedup:.2}x (bare probe_all init alone: {:.1}ms and \
             {cold_probe_all_messages} storm messages; not state-equivalent)",
            recover_wall_ns as f64 / 1e6,
            replay_ns as f64 / 1e6,
            cold_probe_all_recover_ns as f64 / 1e6,
            bare_probe_all_init_ns as f64 / 1e6
        );
        if !scale.is_quick() {
            assert!(
                speedup > 1.0,
                "recovery gate: checkpoint restore + suffix replay ({recover_wall_ns}ns) must \
                 beat probe_all reinitialization + full journal replay \
                 ({cold_probe_all_recover_ns}ns)"
            );
        }
        Some(format!(
            "{{\"num_streams\": {n_rec}, \"events\": {}, \"checkpoint_every_events\": {every}, \
             \"checkpoints\": {checkpoints}, \"journal_bytes\": {journal_bytes}, \
             \"recover_wall_ns\": {recover_wall_ns}, \"recovery_replay_ns\": {replay_ns}, \
             \"cold_probe_all_recover_ns\": {cold_probe_all_recover_ns}, \
             \"cold_probe_all_messages\": {cold_probe_all_messages}, \
             \"bare_probe_all_init_ns\": {bare_probe_all_init_ns}, \
             \"recovery_speedup_vs_cold\": {speedup:.2}}}",
            events_rec.len()
        ))
    } else {
        None
    };

    // Chaos overhead sweep: the ZT-NRP workload re-ingested over the
    // fault-injected source↔server channel at 1% / 5% / 20% frame loss.
    // The authoritative ledger still meters only logical protocol
    // messages; everything the unreliable network added —
    // retransmissions, duplicate ghosts, heartbeats — lands in
    // `overhead_frames`, and the per-level ratio of the two is the
    // headline. Faults stay active for the whole run (convergence after
    // quiescence is `tests/chaos_differential.rs`' job; this sweep prices
    // the steady-state fault tax).
    let chaos = if only.is_none() || only.as_deref() == Some("chaos") {
        let config = ServerConfig {
            num_shards: 4,
            batch_size: 1024,
            mode: ExecMode::Inline,
            channel_capacity: 2,
            coordinator: CoordMode::Pipelined,
            scatter: ScatterMode::Broadcast,
            telemetry: telemetry_off(),
        };
        let mut levels: Vec<String> = Vec::new();
        for &loss in &[0.01f64, 0.05, 0.20] {
            eprintln!("running chaos sweep at loss={loss} ...");
            let mut server = ShardedServer::new(&initial, ZtNrp::new(query), config);
            server.initialize();
            // Leases span four heartbeat rounds (one round per 1024-event
            // chunk, one tick per event): short enough that heavy loss
            // genuinely expires leases mid-run and exercises the
            // degradation + repair path, long enough that 1% loss mostly
            // keeps the fleet verified-live.
            server.enable_chaos(
                ChaosConfig::new(seed ^ (loss * 100.0) as u64, FaultMix::loss_only(loss), u64::MAX)
                    .lease_ticks(4 * 1024),
            );
            server.ingest_batch(&events);
            let stats = *server.chaos_stats().expect("chaos enabled");
            let total = server.ledger().total();
            let m = server.metrics().clone();
            server.shutdown();
            let overhead_ratio = stats.overhead_frames as f64 / total.max(1) as f64;
            assert!(
                stats.reports_lost + stats.heartbeats_lost > 0,
                "chaos sweep at loss={loss}: the mix never dropped a frame"
            );
            eprintln!(
                "chaos loss={loss:.2}: {total} logical messages, {} overhead frames \
                 ({overhead_ratio:.3}x), {} retries, {} timeouts, {} epoch rejects, {} dead at \
                 end, {} repair re-probes, repair {:.1}ms",
                stats.overhead_frames,
                stats.retries,
                stats.timeouts,
                stats.epoch_rejects,
                m.dead_sources,
                stats.repaired_sources,
                m.repair_ns as f64 / 1e6,
            );
            levels.push(format!(
                "{{\"loss\": {loss}, \"total_messages\": {total}, \"overhead_frames\": {}, \
                 \"overhead_ratio\": {overhead_ratio:.4}, \"retries\": {}, \"timeouts\": {}, \
                 \"epoch_rejects\": {}, \"reports_lost\": {}, \"heartbeats_sent\": {}, \
                 \"dead_sources\": {}, \"repaired_sources\": {}, \"repair_ns\": {}}}",
                stats.overhead_frames,
                stats.retries,
                stats.timeouts,
                stats.epoch_rejects,
                stats.reports_lost,
                stats.heartbeats_sent,
                m.dead_sources,
                stats.repaired_sources,
                m.repair_ns,
            ));
        }
        Some(format!(
            "{{\"num_streams\": {num_streams}, \"events\": {}, \"levels\": [{}]}}",
            events.len(),
            levels.join(", ")
        ))
    } else {
        None
    };

    // Durable-chaos scenario: prices the PR-10 machinery. Phase A reruns
    // the heaviest chaos-sweep level (20% loss) twice on the same seed —
    // once with the optimizations disabled (fixed leases, per-channel
    // repair charging) and once with the tuned defaults (adaptive leases,
    // batched chunk-end repair) — and gates the reductions at full scale.
    // Phase B composes chaos with durability, crashes mid-storm, and races
    // the warm recovery (checkpointed channel machine + journal-suffix
    // replay resuming the fault schedule's RNG mid-stream) against a cold
    // resync from scratch (snapshots deleted, entire journal replayed
    // while re-entering the fault stream from tick zero). Both paths must
    // reproduce the crashed server's answers and ledger exactly.
    let chaos_recovery = if only.is_none() || only.as_deref() == Some("chaos_recovery") {
        let loss = 0.20f64;
        let config = ServerConfig {
            num_shards: 4,
            batch_size: 1024,
            mode: ExecMode::Inline,
            channel_capacity: 2,
            coordinator: CoordMode::Pipelined,
            scatter: ScatterMode::Broadcast,
            telemetry: telemetry_off(),
        };
        // Same lease geometry as the chaos sweep (four heartbeat rounds at
        // one round per 1024-event chunk), so 20% loss genuinely expires
        // leases and the adaptive/batched machinery has work to do.
        let chaos_cfg = |tuned: bool| {
            let base = ChaosConfig::new(seed ^ 0xC44A, FaultMix::loss_only(loss), u64::MAX)
                .lease_ticks(4 * 1024);
            if tuned {
                base
            } else {
                base.adaptive_lease(false).batched_repair(false)
            }
        };

        // Phase A: optimization pricing on identical fault draws.
        let phase_a = |tuned: bool| {
            let mut server = ShardedServer::new(&initial, ZtNrp::new(query), config);
            server.initialize();
            server.enable_chaos(chaos_cfg(tuned));
            server.ingest_batch(&events);
            let stats = *server.chaos_stats().expect("chaos enabled");
            server.shutdown();
            stats
        };
        eprintln!("chaos_recovery phase A: baseline (fixed leases, per-channel repair) ...");
        let base_stats = phase_a(false);
        eprintln!("chaos_recovery phase A: tuned (adaptive leases, batched repair) ...");
        let tuned_stats = phase_a(true);
        let repair_reduction =
            base_stats.repair_frames as f64 / tuned_stats.repair_frames.max(1) as f64;
        let spurious_reduction =
            base_stats.spurious_expirations as f64 / tuned_stats.spurious_expirations.max(1) as f64;
        eprintln!(
            "chaos_recovery loss={loss:.2}: repair frames {} -> {} ({repair_reduction:.1}x, {} \
             batches), spurious expirations {} -> {} ({spurious_reduction:.1}x, {} renewals)",
            base_stats.repair_frames,
            tuned_stats.repair_frames,
            tuned_stats.repair_batches,
            base_stats.spurious_expirations,
            tuned_stats.spurious_expirations,
            tuned_stats.lease_renewals,
        );
        if !scale.is_quick() {
            assert!(
                repair_reduction >= 10.0,
                "batched-repair gate: {} baseline repair frames vs {} batched \
                 ({repair_reduction:.1}x, need >= 10x)",
                base_stats.repair_frames,
                tuned_stats.repair_frames
            );
            assert!(
                spurious_reduction >= 2.0,
                "adaptive-lease gate: {} baseline spurious expirations vs {} adaptive \
                 ({spurious_reduction:.1}x, need >= 2x)",
                base_stats.spurious_expirations,
                tuned_stats.spurious_expirations
            );
        }

        // Phase B: crash inside the fault storm, then recover both ways.
        let dir = std::env::temp_dir().join(format!("asf-bench-chaos-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Sync checkpoints at ~1/8-of-stream cadence: the crash point
        // (~60% through) lands past a checkpoint, so the warm path replays
        // a real journal suffix through the restored channel machine.
        let every = (events.len() as u64 / 8).max(1);
        let durable = DurabilityConfig::new(&dir)
            .checkpoint_every(every)
            .mode(CheckpointMode::Sync)
            .rotate_journal_every(None);
        let crash_at = events.len() * 6 / 10;
        let mut server = ShardedServer::new(&initial, ZtNrp::new(query), config);
        server.initialize();
        server.enable_durability(durable.clone()).expect("open durability dir");
        server.enable_chaos(chaos_cfg(true));
        server.ingest_batch(&events[..crash_at]);
        assert!(
            server.chaos().expect("chaos enabled").faults_active(),
            "the crash point must land inside the fault storm"
        );
        let chaos_state_bytes = server.metrics().chaos_state_bytes;
        let crashed_answer = server.answer();
        let crashed_messages = server.ledger().total();
        let crashed_stats = *server.chaos_stats().expect("chaos enabled");
        drop(server); // crash: no shutdown, no final checkpoint

        let t = Instant::now();
        let recovered =
            ShardedServer::recover(&initial, ZtNrp::new(query), config, durable.clone())
                .expect("warm chaotic recovery");
        let warm_recover_ns = t.elapsed().as_nanos() as u64;
        assert_eq!(recovered.events_processed(), crash_at as u64);
        assert_eq!(recovered.answer(), crashed_answer, "warm chaotic recovery diverged");
        assert_eq!(recovered.ledger().total(), crashed_messages, "warm recovery ledger diverged");
        assert_eq!(
            *recovered.chaos_stats().expect("chaos restored"),
            crashed_stats,
            "warm recovery fault counters diverged"
        );
        recovered.shutdown();

        // Cold resync: no checkpoint survives, so recovery rebuilds from a
        // fresh initialization and replays the whole journal with a fresh
        // channel machine consuming the fault stream from tick zero.
        for snap in ["snap-a.bin", "snap-b.bin"] {
            let _ = std::fs::remove_file(dir.join(snap));
        }
        let t = Instant::now();
        let cold = ShardedServer::recover_with_chaos(
            &initial,
            ZtNrp::new(query),
            config,
            durable.clone(),
            Some(chaos_cfg(true)),
        )
        .expect("cold chaotic resync");
        let cold_resync_ns = t.elapsed().as_nanos() as u64;
        assert_eq!(cold.answer(), crashed_answer, "cold chaotic resync diverged");
        assert_eq!(
            *cold.chaos_stats().expect("chaos rebuilt"),
            crashed_stats,
            "cold resync fault counters diverged"
        );
        cold.shutdown();
        let _ = std::fs::remove_dir_all(&dir);

        let warm_speedup = cold_resync_ns as f64 / warm_recover_ns.max(1) as f64;
        eprintln!(
            "chaos_recovery phase B: warm restore+replay {:.1}ms vs cold resync-from-scratch \
             {:.1}ms -> {warm_speedup:.2}x ({chaos_state_bytes} checkpointed channel-state bytes)",
            warm_recover_ns as f64 / 1e6,
            cold_resync_ns as f64 / 1e6,
        );
        if !scale.is_quick() {
            assert!(
                warm_speedup > 1.0,
                "chaos_recovery gate: warm recovery ({warm_recover_ns}ns) must beat cold resync \
                 ({cold_resync_ns}ns)"
            );
        }
        Some(format!(
            "{{\"num_streams\": {num_streams}, \"events\": {}, \"loss\": {loss}, \
             \"baseline_repair_frames\": {}, \"batched_repair_frames\": {}, \
             \"repair_reduction\": {repair_reduction:.2}, \"repair_batches\": {}, \
             \"baseline_spurious_expirations\": {}, \"adaptive_spurious_expirations\": {}, \
             \"spurious_reduction\": {spurious_reduction:.2}, \"lease_renewals\": {}, \
             \"crash_at_events\": {crash_at}, \"chaos_state_bytes\": {chaos_state_bytes}, \
             \"warm_recover_ns\": {warm_recover_ns}, \"cold_resync_ns\": {cold_resync_ns}, \
             \"warm_speedup\": {warm_speedup:.2}}}",
            events.len(),
            base_stats.repair_frames,
            tuned_stats.repair_frames,
            tuned_stats.repair_batches,
            base_stats.spurious_expirations,
            tuned_stats.spurious_expirations,
            tuned_stats.lease_renewals,
        ))
    } else {
        None
    };

    // Multi-query fleet-scale sweep (full run or `--scenario multi_query`):
    // one shared-cell MULTI-ZT protocol serving m range queries over the
    // same population, m swept across three orders of magnitude at a fixed
    // stream count. Query widths shrink as domain/m so the expected total
    // membership stays ≈ n at every level — the sweep prices *routing*, not
    // answer churn. The interval-stabbing router should keep the mean
    // queries-touched-per-report ≪ m and per-event cost growing far slower
    // than m; a NaiveScan run (O(m) re-test per report) at the affordable m
    // levels anchors the comparison and must stay byte-identical.
    let multi_query = if only.is_none() || only.as_deref() == Some("multi_query") {
        use asf_core::multi_query::{CellMode, MultiRangeZt, RoutingMode};
        let mq_config = ServerConfig {
            num_shards: 4,
            batch_size: 8192,
            mode: ExecMode::Inline,
            channel_capacity: 2,
            coordinator: CoordMode::Pipelined,
            scatter: ScatterMode::Broadcast,
            telemetry: telemetry_off(),
        };
        let ms: &[usize] = if scale.is_quick() { &[10, 100, 1_000] } else { &[10, 1_000, 100_000] };
        let naive_cap = 1_000usize;
        let (domain_lo, domain_hi) = (0.0f64, 1000.0);
        let make_queries = |m: usize| -> Vec<RangeQuery> {
            let mut rng = simkit::SimRng::seed_from_u64(seed ^ (m as u64).rotate_left(17));
            (0..m)
                .map(|_| {
                    let width = (domain_hi - domain_lo) / m as f64 * (0.5 + rng.next_f64());
                    let lo = rng.range_f64(domain_lo, domain_hi - width);
                    RangeQuery::new(lo, lo + width).expect("generated query is valid")
                })
                .collect()
        };
        struct MqRun {
            wall_ns: u64,
            messages: u64,
            reports: u64,
            answer: asf_core::AnswerSet,
            routed_reports: u64,
            queries_touched: u64,
            routing_ns: u64,
            num_cells: usize,
        }
        let run_mode = |queries: &[RangeQuery], routing: RoutingMode| -> MqRun {
            let protocol =
                MultiRangeZt::with_config(queries.to_vec(), CellMode::ServerManaged, routing)
                    .expect("multi-query protocol");
            let num_cells = protocol.num_cells();
            let mut server = ShardedServer::new(&initial, protocol, mq_config);
            server.initialize();
            let t = Instant::now();
            server.ingest_batch(&events);
            let wall_ns = t.elapsed().as_nanos() as u64;
            let stats = *server.ctx_stats();
            let run = MqRun {
                wall_ns,
                messages: server.ledger().total(),
                reports: server.reports_processed(),
                answer: server.answer(),
                routed_reports: stats.routed_reports,
                queries_touched: stats.queries_touched,
                routing_ns: stats.routing_ns,
                num_cells,
            };
            server.shutdown();
            run
        };
        let mut levels: Vec<String> = Vec::new();
        let mut baseline_ns_per_event: Option<f64> = None;
        let mut final_ratio = 0.0f64;
        let mut final_touched_mean = 0.0f64;
        for &m in ms {
            let queries = make_queries(m);
            eprintln!("running multi_query m={m} ({num_streams} streams, routed) ...");
            let routed = run_mode(&queries, RoutingMode::Routed);
            let naive = if m <= naive_cap {
                eprintln!("running multi_query m={m} (naive O(m) scan baseline) ...");
                let naive = run_mode(&queries, RoutingMode::NaiveScan);
                assert_eq!(routed.answer, naive.answer, "m={m}: routed answer diverged");
                assert_eq!(routed.messages, naive.messages, "m={m}: routed message count diverged");
                Some(naive)
            } else {
                None
            };
            let ns_per_event = routed.wall_ns as f64 / events.len().max(1) as f64;
            let touched_mean = routed.queries_touched as f64 / routed.routed_reports.max(1) as f64;
            let cost_ratio = ns_per_event / baseline_ns_per_event.unwrap_or(ns_per_event);
            baseline_ns_per_event.get_or_insert(ns_per_event);
            final_ratio = cost_ratio;
            final_touched_mean = touched_mean;
            eprintln!(
                "multi_query m={m}: {:.0} ns/event ({cost_ratio:.2}x the m={} baseline), \
                 touched/report {touched_mean:.2}, {} cells, routing {:.1}ms",
                ns_per_event,
                ms[0],
                routed.num_cells,
                routed.routing_ns as f64 / 1e6,
            );
            levels.push(format!(
                "{{\"m\": {m}, \"events\": {}, \"ingest_wall_ns\": {}, \"ns_per_event\": \
                 {ns_per_event:.1}, \"cost_ratio_vs_first_level\": {cost_ratio:.3}, \
                 \"messages\": {}, \"reports\": {}, \"routed_reports\": {}, \
                 \"queries_touched_per_report\": {touched_mean:.3}, \"routing_ns\": {}, \
                 \"num_cells\": {}, \"naive_scan_wall_ns\": {}}}",
                events.len(),
                routed.wall_ns,
                routed.messages,
                routed.reports,
                routed.routed_reports,
                routed.routing_ns,
                routed.num_cells,
                naive.map(|n| n.wall_ns.to_string()).unwrap_or_else(|| "null".into()),
            ));
        }
        // Sub-linearity gates, full scale only (quick walls are noisy): at
        // the top level the router must touch a vanishing fraction of the m
        // queries per report, and the per-event cost must grow far slower
        // than the 10_000x growth in m.
        if !scale.is_quick() {
            let m_top = *ms.last().unwrap() as f64;
            assert!(
                final_touched_mean < m_top / 100.0,
                "multi_query gate: mean queries touched per report {final_touched_mean:.1} \
                 must be << m = {m_top}"
            );
            assert!(
                final_ratio < 1_000.0,
                "multi_query gate: per-event cost grew {final_ratio:.1}x from m={} to \
                 m={m_top} — routing is no longer sub-linear in the query count",
                ms[0]
            );
        }
        Some(format!(
            "{{\"num_streams\": {num_streams}, \"cell_mode\": \"server_managed\", \
             \"naive_scan_cap\": {naive_cap}, \"levels\": [{}]}}",
            levels.join(", ")
        ))
    } else {
        None
    };

    // `--fault-smoke`: one forced mid-checkpoint crash + recovery +
    // invariance check at small scale — the CI hook that proves the fault
    // path end-to-end outside the unit suites.
    if flag("--fault-smoke") {
        let smoke_cfg =
            SyntheticConfig { num_streams: 2_000, horizon: 20.0, seed, ..Default::default() };
        let mut w = SyntheticWorkload::new(smoke_cfg);
        let initial_s = w.initial_values();
        let mut events_s: Vec<UpdateEvent> = Vec::new();
        while let Some(ev) = w.next_event() {
            events_s.push(ev);
        }
        let config = ServerConfig {
            num_shards: 4,
            batch_size: 1024,
            mode: ExecMode::Inline,
            channel_capacity: 2,
            coordinator: CoordMode::Pipelined,
            scatter: ScatterMode::Broadcast,
            telemetry: telemetry_off(),
        };
        let dir = std::env::temp_dir().join(format!("asf-fault-smoke-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // The ~2k-event workload crosses this cadence at its first chunk
        // boundary, so the armed tear below fires deterministically.
        let durable = DurabilityConfig::new(&dir).checkpoint_every(512).mode(CheckpointMode::Sync);
        let mut server = ShardedServer::new(&initial_s, ZtNrp::new(query), config);
        server.initialize();
        server.enable_durability(durable.clone()).expect("open durability dir");
        // Tear partway into the first cadence checkpoint (the anchor has
        // already landed): the handle poisons and later chunks drop.
        server.durability_mut().expect("durability on").arm_checkpoint_crash(512);
        server.ingest_batch(&events_s);
        assert!(
            server.durability_mut().expect("durability on").is_poisoned(),
            "fault smoke: the armed checkpoint crash never fired"
        );
        let durable_events = server.events_processed() as usize;
        drop(server); // crash
        let mut recovered = ShardedServer::recover(&initial_s, ZtNrp::new(query), config, durable)
            .expect("recover after mid-checkpoint crash");
        let mut reference = ShardedServer::new(&initial_s, ZtNrp::new(query), config);
        reference.initialize();
        reference.ingest_batch(&events_s[..durable_events]);
        assert_eq!(recovered.events_processed(), durable_events as u64);
        assert_eq!(recovered.answer(), reference.answer(), "fault smoke: answers diverged");
        assert_eq!(recovered.ledger(), reference.ledger(), "fault smoke: ledgers diverged");
        assert_eq!(
            recovered.truth_values(),
            reference.truth_values(),
            "fault smoke: ground truth diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
        eprintln!(
            "fault smoke ok: mid-checkpoint crash at {durable_events}/{} events recovered \
             byte-identical to the durable prefix",
            events_s.len()
        );
    }

    // Headline speedups come from the pipelined coordinator + broadcast
    // scatter (the defaults) in inline mode — the per-shard work model on
    // this container.
    let find = |scenario: &str, shards: usize, mode: &str, coord: &str, scatter: &str| {
        results.iter().find(move |s| {
            s.scenario == scenario
                && s.shards == shards
                && s.mode == mode
                && s.coord == coord
                && s.scatter == scatter
        })
    };
    let modeled_of = |scenario: &str, shards: usize| {
        find(scenario, shards, "inline", "pipelined", "broadcast")
            .map(|s| s.modeled_updates_per_sec())
            .unwrap_or(f64::NAN)
    };
    let speedup_8x = modeled_of("zt_nrp_range", 8) / modeled_of("zt_nrp_range", 1);
    let rtp_speedup_8x = modeled_of("rtp_knn", 8) / modeled_of("rtp_knn", 1);
    let storm_speedup_8x = modeled_of("reinit_storm", 8) / modeled_of("reinit_storm", 1);

    // Scatter collapse: eager partition-loop time over broadcast Arc-clone
    // time, on the 8-shard inline/pipelined rows (the acceptance metric of
    // the broadcast-scatter rewire).
    let scatter_reduction = |scenario: &str| {
        let eager = find(scenario, 8, "inline", "pipelined", "eager").map(|s| s.scatter_ns);
        let bcast = find(scenario, 8, "inline", "pipelined", "broadcast").map(|s| s.scatter_ns);
        match (eager, bcast) {
            (Some(e), Some(b)) => e as f64 / b.max(1) as f64,
            _ => f64::NAN,
        }
    };
    let zt_scatter_red = scatter_reduction("zt_nrp_range");
    let rtp_scatter_red = scatter_reduction("rtp_knn");

    // Multi-core wall-clock gate: when real cores exist, the threaded
    // 8-vs-1 wall speedup must track the modeled speedup within
    // WALL_GATE_TOLERANCE. On a 1-CPU host wall cannot scale at all, so
    // the gate records an explicit skip instead.
    let mut wall_gate_failures: Vec<String> = Vec::new();
    let wall_gate = if cpus > 1 {
        let mut entries = Vec::new();
        for scenario in ["zt_nrp_range", "rtp_knn", "reinit_storm"] {
            let one = find(scenario, 1, "threaded", "pipelined", "broadcast");
            let eight = find(scenario, 8, "threaded", "pipelined", "broadcast");
            let (Some(one), Some(eight)) = (one, eight) else { continue };
            let wall = eight.wall_updates_per_sec() / one.wall_updates_per_sec();
            let modeled = eight.modeled_updates_per_sec() / one.modeled_updates_per_sec();
            let achievable = modeled.min(cpus as f64).max(1.0);
            let pass = wall >= WALL_GATE_TOLERANCE * achievable;
            if !pass {
                wall_gate_failures.push(format!(
                    "{scenario}: wall 8v1 {wall:.2}x < {WALL_GATE_TOLERANCE} * min(modeled \
                     {modeled:.2}x, {cpus} cpus)"
                ));
            }
            entries.push(format!(
                "{{\"scenario\": \"{scenario}\", \"wall_speedup_8v1\": {wall:.2}, \
                 \"modeled_speedup_8v1\": {modeled:.2}, \"pass\": {pass}}}"
            ));
        }
        format!(
            "{{\"checked\": true, \"cpus\": {cpus}, \"tolerance\": {WALL_GATE_TOLERANCE}, \
             \"entries\": [{}]}}",
            entries.join(", ")
        )
    } else {
        format!(
            "{{\"checked\": false, \"cpus\": {cpus}, \"note\": \"single-CPU host: wall-clock \
             cannot exceed one core, so wall-vs-modeled tracking is skipped; rerun on a \
             multi-core machine to exercise the gate\"}}"
        )
    };

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"server_throughput\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"num_streams\": {num_streams}, \"events\": {}, \"horizon\": \
         {horizon}, \"sigma\": 20.0, \"seed\": {seed}}},",
        events.len()
    );
    let _ = writeln!(
        json,
        "  \"scenarios\": {{\"zt_nrp_range\": \"ZT-NRP [400, 600]\", \"rtp_knn\": \"RTP \
         knn(500, k=16, r=16)\", \"reinit_storm\": \"FT-RP knn(500, k=16) eps=0 — every \
         crossing reinitializes (probe_all + delta index refresh + fleet-wide install_many); \
         events/5\"}},"
    );
    let _ = writeln!(json, "  \"hardware\": {{\"cpus\": {cpus}}},");
    let _ = writeln!(
        json,
        "  \"note\": \"modeled_ns = critical_path_ns + fleet_parallel_ns + \
         index_parallel_ns + serial_ns - overlap_saved_ns; wall numbers on a {cpus}-CPU container cannot exceed one core. \
         Every field is documented in crates/bench/README.md.\","
    );
    let _ = writeln!(json, "  \"modeled_speedup_8_shards_vs_1\": {speedup_8x:.2},");
    let _ = writeln!(json, "  \"rtp_modeled_speedup_8_shards_vs_1\": {rtp_speedup_8x:.2},");
    let _ =
        writeln!(json, "  \"reinit_storm_modeled_speedup_8_shards_vs_1\": {storm_speedup_8x:.2},");
    let _ = writeln!(json, "  \"zt_nrp_scatter_reduction_8_shards\": {zt_scatter_red:.1},");
    let _ = writeln!(json, "  \"rtp_scatter_reduction_8_shards\": {rtp_scatter_red:.1},");
    let _ = writeln!(json, "  \"wall_gate\": {wall_gate},");
    let _ = writeln!(
        json,
        "  \"steady_state_allocs_per_round\": {},",
        steady_allocs_per_round.map(|v| format!("{v:.2}")).unwrap_or_else(|| "null".into())
    );
    let _ = writeln!(
        json,
        "  \"telemetry_overhead\": {},",
        telemetry_overhead
            .map(|(off_ns, on_ns, ratio)| format!(
                "{{\"off_ns\": {off_ns}, \"on_ns\": {on_ns}, \"ratio\": {ratio:.3}}}"
            ))
            .unwrap_or_else(|| "null".into())
    );
    let _ = writeln!(json, "  \"recovery\": {},", recovery.as_deref().unwrap_or("null"));
    let _ = writeln!(json, "  \"chaos\": {},", chaos.as_deref().unwrap_or("null"));
    let _ =
        writeln!(json, "  \"chaos_recovery\": {},", chaos_recovery.as_deref().unwrap_or("null"));
    let _ = writeln!(json, "  \"multi_query\": {},", multi_query.as_deref().unwrap_or("null"));
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        json.push_str(&json_run(s));
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if only.is_none() {
        std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
        eprintln!("wrote BENCH_server.json");
    } else {
        eprintln!("(--scenario filter active: BENCH_server.json not overwritten)");
    }

    // `--trace-out`: rerun one fully-traced ZT-NRP configuration (threaded,
    // so the timeline shows real shard tracks) and dump the span timeline
    // as Chrome trace-event JSON.
    if let Some(path) = &trace_out {
        let config = ServerConfig {
            num_shards: 4,
            batch_size: 8192,
            mode: ExecMode::Threaded,
            channel_capacity: 2,
            coordinator: CoordMode::Pipelined,
            scatter: ScatterMode::Broadcast,
            telemetry: telemetry_full(),
        };
        let mut server = ShardedServer::new(&initial, ZtNrp::new(query), config);
        server.initialize();
        server.ingest_batch(&events);
        let trace_json = server.export_chrome_trace();
        let n = asf_telemetry::validate_chrome_trace(&trace_json)
            .expect("exported trace must be valid Chrome trace JSON");
        std::fs::write(path, &trace_json).expect("write trace file");
        eprintln!("wrote {n} trace events to {path}");
        server.shutdown();
    }
    println!("{json}");
    eprintln!(
        "modeled speedup 8 shards vs 1 (pipelined/inline/broadcast): zt_nrp {speedup_8x:.2}x, \
         rtp {rtp_speedup_8x:.2}x, reinit_storm {storm_speedup_8x:.2}x"
    );
    eprintln!(
        "scatter_ns reduction 8 shards (eager / broadcast): zt_nrp {zt_scatter_red:.0}x, rtp \
         {rtp_scatter_red:.0}x"
    );

    // Allocation audit of the window loop (quick mode prints it so the CI
    // log shows the pooled steady state at a glance).
    if scale.is_quick() {
        for s in results.iter().filter(|s| s.scatter == "broadcast" && s.mode == "inline") {
            eprintln!(
                "alloc audit: {} shards={} {}: {:.1} allocs/round over {} rounds",
                s.scenario,
                s.shards,
                s.coord,
                s.allocs_per_round(),
                s.rounds
            );
        }
    }

    // Hard-assert the wall gate only at full scale: the --quick smoke's
    // event counts are small enough that scheduler noise on a shared
    // runner dominates the 8-thread wall clock, so quick runs record the
    // verdict in the JSON without failing the build.
    if !wall_gate_failures.is_empty() {
        if scale.is_quick() {
            eprintln!(
                "wall-clock gate verdict (advisory at --quick scale): {}",
                wall_gate_failures.join("; ")
            );
        } else {
            panic!("wall-clock gate failed: {}", wall_gate_failures.join("; "));
        }
    }
    if assert_scatter_budget {
        let mut checked = 0;
        for s in results.iter().filter(|s| s.scenario == "zt_nrp_range" && s.scatter == "broadcast")
        {
            let frac = s.scatter_ns as f64 / s.ingest_wall_ns.max(1) as f64;
            assert!(
                frac < SCATTER_BUDGET,
                "broadcast scatter budget exceeded: zt_nrp shards={} {} {}: scatter_ns {} is \
                 {:.1}% of ingest_wall_ns {} (budget {:.0}%)",
                s.shards,
                s.mode,
                s.coord,
                s.scatter_ns,
                frac * 100.0,
                s.ingest_wall_ns,
                SCATTER_BUDGET * 100.0
            );
            checked += 1;
        }
        assert!(checked > 0, "--assert-scatter-budget found no zt_nrp broadcast rows");
        eprintln!("scatter budget ok: {checked} broadcast rows under {SCATTER_BUDGET}");
    }
}
