//! Figure 14 — FT-NRP selection heuristics: random vs. boundary-nearest.
//!
//! Synthetic model, range `[400, 600]`, symmetric tolerance sweep. Expected
//! shape (paper): boundary-nearest beats random, and the gap widens as the
//! tolerance (and hence the number of special filters to place) grows —
//! streams near the boundary are the likeliest to cross it, so silencing
//! them saves the most updates.

use asf_core::protocol::{FtNrp, FtNrpConfig, SelectionHeuristic};
use asf_core::query::RangeQuery;
use asf_core::tolerance::FractionTolerance;
use bench_harness::{print_table, run_to_completion, Scale, Series};
use workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    let scale = Scale::from_env();
    let cfg = if scale.is_quick() {
        SyntheticConfig { num_streams: 500, horizon: 400.0, ..Default::default() }
    } else {
        SyntheticConfig { horizon: 4000.0, ..Default::default() }
    };
    let query = RangeQuery::new(400.0, 600.0).unwrap();
    let epsilons = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

    let mut series = Vec::new();
    for heuristic in [SelectionHeuristic::Random, SelectionHeuristic::BoundaryNearest] {
        let mut values = Vec::new();
        for &eps in &epsilons {
            let tol = FractionTolerance::symmetric(eps).unwrap();
            let config = FtNrpConfig { heuristic, reinit_on_exhaustion: false };
            let protocol = FtNrp::new(query, tol, config, 42).unwrap();
            let mut w = SyntheticWorkload::new(cfg);
            values.push(run_to_completion(protocol, &mut w).messages() as f64);
        }
        series.push(Series { label: heuristic.label().to_string(), values });
    }

    let xs: Vec<String> = epsilons.iter().map(|e| e.to_string()).collect();
    print_table(
        &format!(
            "Figure 14: FT-NRP selection heuristics (synthetic, {} streams, horizon {})",
            cfg.num_streams, cfg.horizon
        ),
        "eps+/-",
        &xs,
        &series,
    );
}
