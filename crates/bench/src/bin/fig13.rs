//! Figure 13 — FT-NRP vs. data fluctuation: messages as `σ` grows.
//!
//! Synthetic model with the Gaussian step deviation swept over
//! `σ ∈ {20, 40, 60, 80, 100}` and symmetric tolerance
//! `ε = ε⁺ = ε⁻ ∈ {0, 0.1, …, 0.5}`. Expected shape: more fluctuation ⇒
//! more filter-bound violations ⇒ more messages, at every tolerance level.

use asf_core::protocol::{FtNrp, FtNrpConfig, SelectionHeuristic};
use asf_core::query::RangeQuery;
use asf_core::tolerance::FractionTolerance;
use bench_harness::{print_table, run_to_completion, Scale, Series};
use workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    let scale = Scale::from_env();
    let base = if scale.is_quick() {
        SyntheticConfig { num_streams: 500, horizon: 400.0, ..Default::default() }
    } else {
        SyntheticConfig { horizon: 4000.0, ..Default::default() }
    };
    let query = RangeQuery::new(400.0, 600.0).unwrap();
    let epsilons = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let sigmas = [20.0, 40.0, 60.0, 80.0, 100.0];

    let mut series = Vec::new();
    for &sigma in &sigmas {
        let mut values = Vec::new();
        for &eps in &epsilons {
            let cfg = SyntheticConfig { sigma, ..base };
            let tol = FractionTolerance::symmetric(eps).unwrap();
            let config =
                FtNrpConfig { heuristic: SelectionHeuristic::Random, reinit_on_exhaustion: false };
            let protocol = FtNrp::new(query, tol, config, 42).unwrap();
            let mut w = SyntheticWorkload::new(cfg);
            values.push(run_to_completion(protocol, &mut w).messages() as f64);
        }
        series.push(Series { label: format!("sigma={sigma}"), values });
    }

    let xs: Vec<String> = epsilons.iter().map(|e| e.to_string()).collect();
    print_table(
        &format!(
            "Figure 13: FT-NRP vs data fluctuation (synthetic, {} streams, horizon {})",
            base.num_streams, base.horizon
        ),
        "eps+/-",
        &xs,
        &series,
    );
}
