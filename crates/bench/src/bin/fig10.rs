//! Figure 10 — FT-NRP on TCP-like data: messages over the `(ε⁺, ε⁻)` grid.
//!
//! A range query `[400, 600]` on the per-subnet byte value (§6.1,
//! "classify subnets with different ranges of traffic volume"), with both
//! fraction tolerances swept over `{0, 0.1, …, 0.5}`. The `(0, 0)` corner
//! is exactly ZT-NRP. Expected shape: messages decrease monotonically as
//! either tolerance grows.

use asf_core::protocol::{FtNrp, FtNrpConfig, SelectionHeuristic};
use asf_core::query::RangeQuery;
use asf_core::tolerance::FractionTolerance;
use bench_harness::{print_table, run_to_completion, Scale, Series};
use workloads::{TcpLikeConfig, TcpLikeWorkload};

fn main() {
    let scale = Scale::from_env();
    let cfg = if scale.is_quick() {
        TcpLikeConfig { subnets: 150, total_events: 6_000, ..Default::default() }
    } else {
        TcpLikeConfig::default()
    };
    let query = RangeQuery::new(400.0, 600.0).unwrap();
    let epsilons = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

    // One column per eps+, one row per eps-.
    let mut series = Vec::new();
    for &ep in &epsilons {
        let mut values = Vec::new();
        for &em in &epsilons {
            let tol = FractionTolerance::new(ep, em).unwrap();
            let config =
                FtNrpConfig { heuristic: SelectionHeuristic::Random, reinit_on_exhaustion: false };
            let protocol = FtNrp::new(query, tol, config, 42).unwrap();
            let mut w = TcpLikeWorkload::new(cfg);
            values.push(run_to_completion(protocol, &mut w).messages() as f64);
        }
        series.push(Series { label: format!("eps+={ep}"), values });
    }

    let xs: Vec<String> = epsilons.iter().map(|e| format!("eps-={e}")).collect();
    print_table(
        &format!(
            "Figure 10: FT-NRP on TCP-like data ({} subnets, {} events), range [400, 600]",
            cfg.subnets, cfg.total_events
        ),
        "",
        &xs,
        &series,
    );
}
