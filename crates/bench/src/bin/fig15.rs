//! Figure 15 — ZT-RP vs. FT-RP: messages (log scale) vs. tolerance.
//!
//! A continuous k-NN query (query point at the domain centre) over the
//! synthetic model, `k ∈ {20, 60, 100}`, symmetric tolerance swept over
//! `{0, 0.1, …, 0.5}`; the `ε = 0` point is ZT-RP (every crossing of `R`
//! forces a recompute-and-rebroadcast). Expected shape (paper): for
//! `k = 60, 100` messages drop by orders of magnitude with even a slight
//! tolerance; at `k = 20` the special-filter budgets round down to almost
//! nothing and FT-RP cannot overcome its recompute costs.

use asf_core::protocol::{FtRp, FtRpConfig, ZtRp};
use asf_core::query::RankQuery;
use asf_core::tolerance::FractionTolerance;
use bench_harness::{print_table, run_to_completion, Scale, Series};
use workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    let scale = Scale::from_env();
    let cfg = if scale.is_quick() {
        SyntheticConfig { num_streams: 500, horizon: 100.0, ..Default::default() }
    } else {
        SyntheticConfig { horizon: 400.0, ..Default::default() }
    };
    let q_point = 500.0;
    let ks: &[usize] = &[20, 60, 100];
    let epsilons = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

    let mut series = Vec::new();
    for &k in ks {
        let mut values = Vec::new();
        for &eps in &epsilons {
            let query = RankQuery::knn(q_point, k).unwrap();
            let mut w = SyntheticWorkload::new(cfg);
            let messages = if eps == 0.0 {
                run_to_completion(ZtRp::new(query).unwrap(), &mut w).messages()
            } else {
                let tol = FractionTolerance::symmetric(eps).unwrap();
                let protocol = FtRp::new(query, tol, FtRpConfig::default(), 42).unwrap();
                run_to_completion(protocol, &mut w).messages()
            };
            values.push(messages as f64);
        }
        series.push(Series { label: format!("k={k}"), values });
    }

    let xs: Vec<String> = epsilons.iter().map(|e| e.to_string()).collect();
    print_table(
        &format!(
            "Figure 15: ZT-RP (eps=0) / FT-RP k-NN at q={q_point} (synthetic, {} streams, horizon {}) — log-scale in the paper",
            cfg.num_streams, cfg.horizon
        ),
        "eps+/-",
        &xs,
        &series,
    );
}
