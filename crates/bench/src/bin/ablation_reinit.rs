//! Ablation — FT-NRP re-initialization on budget exhaustion.
//!
//! §5.1.1: once all special filters are consumed, FT-NRP degenerates to
//! ZT-NRP; the paper notes the Initialization phase "may be run again" to
//! re-harvest tolerance but does not evaluate it. This ablation compares
//! the two modes: re-running init costs `O(n)` per re-init but restores
//! silent filters.

use asf_core::protocol::{FtNrp, FtNrpConfig, SelectionHeuristic};
use asf_core::query::RangeQuery;
use asf_core::tolerance::FractionTolerance;
use bench_harness::{print_table, Scale, Series};
use workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    let scale = Scale::from_env();
    let cfg = if scale.is_quick() {
        SyntheticConfig { num_streams: 500, horizon: 400.0, ..Default::default() }
    } else {
        SyntheticConfig { num_streams: 2000, horizon: 4000.0, ..Default::default() }
    };
    let query = RangeQuery::new(400.0, 600.0).unwrap();
    let epsilons = [0.1, 0.2, 0.3, 0.4, 0.5];

    let mut series = Vec::new();
    for (reinit, label) in [(false, "no-reinit"), (true, "reinit")] {
        let mut msgs = Vec::new();
        let mut reinits = Vec::new();
        for &eps in &epsilons {
            let tol = FractionTolerance::symmetric(eps).unwrap();
            let config = FtNrpConfig {
                heuristic: SelectionHeuristic::BoundaryNearest,
                reinit_on_exhaustion: reinit,
            };
            let protocol = FtNrp::new(query, tol, config, 42).unwrap();
            let mut w = SyntheticWorkload::new(cfg);
            let initial = asf_core::workload::Workload::initial_values(&w);
            let mut engine = asf_core::engine::Engine::new(&initial, protocol);
            engine.run(&mut w);
            msgs.push(engine.ledger().total() as f64);
            reinits.push(engine.protocol().reinits() as f64);
        }
        series.push(Series { label: format!("{label} msgs"), values: msgs });
        series.push(Series { label: format!("{label} reinits"), values: reinits });
    }

    let xs: Vec<String> = epsilons.iter().map(|e| e.to_string()).collect();
    print_table(
        &format!(
            "Ablation: FT-NRP reinit-on-exhaustion ({} streams, horizon {})",
            cfg.num_streams, cfg.horizon
        ),
        "eps+/-",
        &xs,
        &series,
    );
}
