//! Figure 9 — RTP on TCP-like data: messages vs. rank tolerance `r`.
//!
//! The paper's setup (§6.1): a top-k query over the per-subnet traffic
//! value ("the subnets with the k-highest volume of data transferred"),
//! `k ∈ {15, 20, 25, 30}`, rank tolerance `r` swept from 0 to 20, compared
//! against the no-filter baseline. One line per `k`; the baseline is flat.
//!
//! Expected shape (paper): messages fall steeply as `r` grows; at `r = 0`
//! and large `k`, RTP is *worse* than no filter because the bound `R` is
//! recomputed (and re-broadcast to all 800 subnets) too frequently.

use asf_core::protocol::{NoFilter, Rtp};
use asf_core::query::RankQuery;
use bench_harness::{print_table, run_to_completion, Scale, Series};
use workloads::{TcpLikeConfig, TcpLikeWorkload};

fn main() {
    let scale = Scale::from_env();
    let cfg = if scale.is_quick() {
        TcpLikeConfig { subnets: 150, total_events: 6_000, ..Default::default() }
    } else {
        TcpLikeConfig::default()
    };
    let ks: &[usize] = &[15, 20, 25, 30];
    let rs: Vec<usize> = (0..=20).step_by(2).collect();
    // RTP's expensive events (bound redeployments, expansion searches) are
    // rare and bursty, so single runs are noisy; average a few trace seeds
    // as the paper's plotted curves evidently do.
    let seeds: &[u64] = if scale.is_quick() { &[1] } else { &[1, 2, 3] };

    let workload = |seed: u64| TcpLikeWorkload::new(TcpLikeConfig { seed, ..cfg });

    // Baseline: no filter, every connection event is one update message.
    let baseline = seeds
        .iter()
        .map(|&s| {
            let query = RankQuery::top_k(ks[0]).unwrap();
            run_to_completion(NoFilter::rank(query), &mut workload(s)).messages() as f64
        })
        .sum::<f64>()
        / seeds.len() as f64;

    let mut series =
        vec![Series { label: "no-filter".into(), values: vec![baseline.round(); rs.len()] }];
    for &k in ks {
        let mut values = Vec::with_capacity(rs.len());
        for &r in &rs {
            let mean = seeds
                .iter()
                .map(|&s| {
                    let query = RankQuery::top_k(k).unwrap();
                    let protocol = Rtp::new(query, r).unwrap();
                    run_to_completion(protocol, &mut workload(s)).messages() as f64
                })
                .sum::<f64>()
                / seeds.len() as f64;
            values.push(mean.round());
        }
        series.push(Series { label: format!("RTP k={k}"), values });
    }

    let xs: Vec<String> = rs.iter().map(|r| r.to_string()).collect();
    print_table(
        &format!(
            "Figure 9: RTP on TCP-like data ({} subnets, {} events) — messages vs r",
            cfg.subnets, cfg.total_events
        ),
        "r",
        &xs,
        &series,
    );
}
