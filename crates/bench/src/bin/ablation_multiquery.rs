//! Ablation — shared elementary-cell filters vs. independent per-query
//! protocols (the §7 "multiple queries" extension).
//!
//! `m` overlapping range queries run over one population either as `m`
//! independent ZT-NRP instances (each with its own filters and its own
//! message bill) or as one `MultiRangeZt` with a single shared
//! elementary-cell filter per source. Both are exact; the comparison is
//! pure communication cost.

use asf_core::engine::Engine;
use asf_core::multi_query::{CellMode, MultiRangeZt};
use asf_core::protocol::ZtNrp;
use asf_core::query::RangeQuery;
use asf_core::workload::Workload;
use bench_harness::{print_table, Scale, Series};
use workloads::{SyntheticConfig, SyntheticWorkload};

fn main() {
    let scale = Scale::from_env();
    let cfg = if scale.is_quick() {
        SyntheticConfig { num_streams: 300, horizon: 200.0, ..Default::default() }
    } else {
        SyntheticConfig { num_streams: 2000, horizon: 2000.0, ..Default::default() }
    };
    // Query batteries of growing size: overlapping bands over [0, 1000].
    let batteries: Vec<usize> = vec![1, 2, 4, 8, 16];
    let make_queries = |m: usize| -> Vec<RangeQuery> {
        (0..m)
            .map(|j| {
                let lo = 50.0 + (j as f64) * 900.0 / (m as f64 + 1.0);
                RangeQuery::new(lo, lo + 220.0).unwrap()
            })
            .collect()
    };

    let mut independent = Vec::new();
    let mut managed = Vec::new();
    let mut resident = Vec::new();
    for &m in &batteries {
        let queries = make_queries(m);

        // m independent ZT-NRP instances, each on its own copy of the
        // identical workload.
        let mut total = 0u64;
        for &q in &queries {
            let mut w = SyntheticWorkload::new(cfg);
            let mut engine = Engine::new(&w.initial_values(), ZtNrp::new(q));
            engine.run(&mut w);
            total += engine.ledger().total();
        }
        independent.push(total as f64);

        // One shared-filter group, server-managed cells (2 msgs/crossing).
        let mut w = SyntheticWorkload::new(cfg);
        let mut engine =
            Engine::new(&w.initial_values(), MultiRangeZt::new(queries.clone()).unwrap());
        engine.run(&mut w);
        managed.push(engine.ledger().total() as f64);

        // Source-resident cut tables (1 msg/crossing).
        let mut w = SyntheticWorkload::new(cfg);
        let p = MultiRangeZt::with_mode(queries, CellMode::SourceResident).unwrap();
        let mut engine = Engine::new(&w.initial_values(), p);
        engine.run(&mut w);
        resident.push(engine.ledger().total() as f64);
    }

    let xs: Vec<String> = batteries.iter().map(|m| m.to_string()).collect();
    print_table(
        &format!(
            "Ablation: multi-query sharing ({} streams, horizon {}) — total messages",
            cfg.num_streams, cfg.horizon
        ),
        "queries",
        &xs,
        &[
            Series { label: "independent ZT-NRP".into(), values: independent },
            Series { label: "shared (server cells)".into(), values: managed },
            Series { label: "shared (resident cells)".into(), values: resident },
        ],
    );
}
