//! Runs every figure reproduction in sequence (Figures 9–15), then the
//! ablations. `cargo run --release -p asf-bench --bin repro [--quick]`.
//!
//! The output of this binary (at paper scale) is what EXPERIMENTS.md
//! records.

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bins = [
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "motivation_fig01",
        "ablation_rho",
        "ablation_reinit",
        "ablation_costmodel",
        "ablation_multiquery",
    ];
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("exe dir");
    for bin in bins {
        let path = dir.join(bin);
        let mut cmd = Command::new(&path);
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed with {status}");
    }
}
