//! Maintenance-phase rank-operation throughput: the incremental
//! [`RankIndex`] vs. the seed's full-sort path, at n = 5k / 50k / 500k,
//! plus an RTP k-NN run through the sharded `asf-server` runtime. Results
//! go to `BENCH_rank.json`.
//!
//! One *maintenance op* is what a rank protocol pays per report that
//! reaches the server: re-key the reporting stream, re-position the bound
//! (midpoint between ranks ε and ε+1), and re-read the affected ranks.
//! The seed path re-sorts the whole view for that (`rank_values` +
//! `midpoint_threshold`); the index does it in O(log n).
//!
//! Run with: `cargo run --release -p bench_harness --bin rank_scaling`
//! (add `--quick` for the CI smoke scale).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use asf_core::protocol::Rtp;
use asf_core::query::{RankQuery, RankSpace};
use asf_core::rank::{midpoint_threshold, rank_values, RankIndex};
use asf_core::workload::{UpdateEvent, Workload};
use asf_server::{ServerConfig, ShardedServer};
use bench_harness::Scale;
use simkit::SimRng;
use streamnet::StreamId;
use workloads::{SyntheticConfig, SyntheticWorkload};

struct ScalePoint {
    n: usize,
    k: usize,
    /// Build via [`RankIndex::bulk_build`] (one sorted pass) — the path
    /// `probe_all` and every reinit use.
    index_build_ns: u64,
    /// Build via n incremental inserts — the pre-bulk behaviour, kept for
    /// the comparison.
    insert_build_ns: u64,
    index_ops: u64,
    index_ns: u64,
    sort_ops: u64,
    sort_ns: u64,
}

impl ScalePoint {
    fn index_ops_per_sec(&self) -> f64 {
        self.index_ops as f64 / (self.index_ns as f64 / 1e9)
    }

    fn sort_ops_per_sec(&self) -> f64 {
        self.sort_ops as f64 / (self.sort_ns as f64 / 1e9)
    }

    fn speedup(&self) -> f64 {
        self.index_ops_per_sec() / self.sort_ops_per_sec()
    }
}

fn bench_scale_point(n: usize, quick: bool) -> ScalePoint {
    let space = RankSpace::Knn { q: 500.0 };
    let k = 64.min(n / 4).max(1);
    let mut rng = SimRng::seed_from_u64(0x5CA1E ^ n as u64);
    let mut values: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 1000.0)).collect();

    // Indexed path: one bulk build (the probe_all / reinit path), then
    // O(log n) maintenance ops.
    let t0 = Instant::now();
    let mut index = RankIndex::new(space, n);
    index.bulk_build(values.iter().enumerate().map(|(i, &v)| (StreamId(i as u32), v)));
    let index_build_ns = t0.elapsed().as_nanos() as u64;

    // The pre-bulk build: n incremental inserts into a fresh index.
    let t0b = Instant::now();
    let mut insert_index = RankIndex::new(space, n);
    for (i, &v) in values.iter().enumerate() {
        insert_index.insert(StreamId(i as u32), v);
    }
    let insert_build_ns = t0b.elapsed().as_nanos() as u64;
    assert_eq!(insert_index.len(), index.len());
    black_box(&insert_index);
    drop(insert_index);

    let index_ops: u64 = if quick { 20_000 } else { 200_000 };
    let mut acc = 0.0f64;
    let t1 = Instant::now();
    for _ in 0..index_ops {
        let id = StreamId(rng.index(n) as u32);
        let v = rng.range_f64(0.0, 1000.0);
        index.update(id, v);
        let d = index.midpoint(k);
        acc += d + index.count_in_ball(d) as f64 + index.rank_of(id).unwrap() as f64;
    }
    let index_ns = t1.elapsed().as_nanos() as u64;
    black_box(acc);

    // Seed path: every op performs the same four operations against a
    // fresh snapshot — full re-sorts for the order and the bound
    // (ZT-RP's recompute), linear scans for the ball count and the rank.
    let sort_ops: u64 = ((4_000_000 / n as u64).clamp(4, 400)).min(index_ops);
    let mut acc = 0.0f64;
    let t2 = Instant::now();
    for _ in 0..sort_ops {
        let i = rng.index(n);
        values[i] = rng.range_f64(0.0, 1000.0);
        let pairs = || values.iter().enumerate().map(|(j, &v)| (StreamId(j as u32), v));
        // Same four logical operations as the index loop: the re-key is
        // the values[i] write, then order, bound, ball count, and the
        // updated stream's rank — each off a fresh snapshot, as the seed's
        // protocols did.
        let order = rank_values(space, pairs());
        let d = midpoint_threshold(space, pairs(), k);
        let in_ball = values.iter().filter(|&&v| space.key(v) <= d).count();
        let rank = order.iter().position(|&id| id.index() == i).unwrap() + 1;
        acc += d + in_ball as f64 + rank as f64;
    }
    let sort_ns = t2.elapsed().as_nanos() as u64;
    black_box(acc);

    ScalePoint { n, k, index_build_ns, insert_build_ns, index_ops, index_ns, sort_ops, sort_ns }
}

struct RtpRun {
    n: usize,
    events: u64,
    init_ns: u64,
    ingest_ns: u64,
    messages: u64,
    reports: u64,
    expansions: u64,
}

fn bench_rtp_server(quick: bool) -> RtpRun {
    let n = if quick { 2_000 } else { 50_000 };
    let horizon = if quick { 20.0 } else { 60.0 };
    let mut w = SyntheticWorkload::new(SyntheticConfig {
        num_streams: n,
        horizon,
        seed: 0xBE7C ^ 0x14,
        ..Default::default()
    });
    let initial = w.initial_values();
    let mut events: Vec<UpdateEvent> = Vec::new();
    while let Some(ev) = w.next_event() {
        events.push(ev);
    }

    let query = RankQuery::knn(500.0, 32).unwrap();
    let protocol = Rtp::new(query, 32).unwrap();
    let config = ServerConfig::with_shards(4).batch_size(4096);
    let mut server = ShardedServer::new(&initial, protocol, config);
    let t0 = Instant::now();
    server.initialize();
    let init_ns = t0.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    server.ingest_batch(&events);
    let ingest_ns = t1.elapsed().as_nanos() as u64;
    let run = RtpRun {
        n,
        events: events.len() as u64,
        init_ns,
        ingest_ns,
        messages: server.ledger().total(),
        reports: server.reports_processed(),
        expansions: server.protocol().expansions(),
    };
    server.shutdown();
    run
}

fn main() {
    let scale = Scale::from_env();
    let quick = scale.is_quick();
    let ns: &[usize] = if quick { &[2_000] } else { &[5_000, 50_000, 500_000] };

    let mut points = Vec::new();
    for &n in ns {
        eprintln!("rank maintenance ops at n = {n} ...");
        let p = bench_scale_point(n, quick);
        eprintln!(
            "  index {:>12.0} ops/s   sort {:>10.1} ops/s   speedup {:.0}x   build bulk \
             {:.1}ms vs inserts {:.1}ms ({:.1}x)",
            p.index_ops_per_sec(),
            p.sort_ops_per_sec(),
            p.speedup(),
            p.index_build_ns as f64 / 1e6,
            p.insert_build_ns as f64 / 1e6,
            p.insert_build_ns as f64 / p.index_build_ns.max(1) as f64,
        );
        points.push(p);
    }

    eprintln!("RTP k-NN through asf-server ...");
    let rtp = bench_rtp_server(quick);
    let rtp_upd_per_sec = rtp.events as f64 / (rtp.ingest_ns as f64 / 1e9);
    eprintln!(
        "  {} events over {} streams: {:>10.0} upd/s ingest, {} messages",
        rtp.events, rtp.n, rtp_upd_per_sec, rtp.messages
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"rank_scaling\",");
    let _ = writeln!(
        json,
        "  \"note\": \"maintenance op = re-key one stream + midpoint(k) + count_in_ball + \
         rank_of, identical work on both paths. index path = incremental RankIndex (O(log n) \
         per op); sort path = the seed's behaviour per op (full re-sorts via rank_values + \
         midpoint_threshold, linear scans for ball count and rank). speedup = index ops/s \
         over sort ops/s at the same n. index_build_ns = RankIndex::bulk_build (one sorted \
         pass, the probe_all/reinit path); insert_build_ns = the pre-bulk n-incremental-insert \
         build; build_speedup = insert/bulk.\","
    );
    json.push_str("  \"maintenance\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"k\": {}, \"index_build_ns\": {}, \"insert_build_ns\": {}, \
             \"build_speedup\": {:.1}, \"index_ops\": {}, \
             \"index_ns\": {}, \"index_ops_per_sec\": {:.0}, \"sort_ops\": {}, \"sort_ns\": {}, \
             \"sort_ops_per_sec\": {:.1}, \"speedup\": {:.1}}}",
            p.n,
            p.k,
            p.index_build_ns,
            p.insert_build_ns,
            p.insert_build_ns as f64 / p.index_build_ns.max(1) as f64,
            p.index_ops,
            p.index_ns,
            p.index_ops_per_sec(),
            p.sort_ops,
            p.sort_ns,
            p.sort_ops_per_sec(),
            p.speedup()
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"rtp_server\": {{\"protocol\": \"RTP knn(500, k=32, r=32)\", \"shards\": 4, \
         \"num_streams\": {}, \"events\": {}, \"init_ns\": {}, \"ingest_ns\": {}, \
         \"updates_per_sec\": {:.0}, \"messages\": {}, \"reports\": {}, \"expansions\": {}}}",
        rtp.n,
        rtp.events,
        rtp.init_ns,
        rtp.ingest_ns,
        rtp_upd_per_sec,
        rtp.messages,
        rtp.reports,
        rtp.expansions
    );
    json.push_str("}\n");

    std::fs::write("BENCH_rank.json", &json).expect("write BENCH_rank.json");
    println!("{json}");
    let worst = points.iter().map(|p| p.speedup()).fold(f64::INFINITY, f64::min);
    eprintln!("worst maintenance speedup across scales: {worst:.0}x -> BENCH_rank.json");
}
