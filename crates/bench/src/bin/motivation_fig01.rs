//! Figure 1 / §1 motivation, quantified: value-based vs rank-based
//! tolerance for a continuous maximum query.
//!
//! The paper's introduction argues a numeric value tolerance `ε` is the
//! wrong knob for entity-based queries: choosing it needs knowledge of the
//! data spread, a large `ε` silently returns a deeply-ranked stream, and a
//! small `ε` saves nothing. This experiment runs the VT-MAX strawman over
//! a sweep of `ε` on the TCP-like workload and reports, for each setting,
//! the message bill and the *observed worst true rank* of the returned
//! answer — then the same workload under RTP, where the worst rank is a
//! declared guarantee and the message bill is comparable or better.

use asf_core::engine::Engine;
use asf_core::oracle;
use asf_core::protocol::{Protocol, Rtp, VtMax};
use asf_core::query::RankQuery;
use asf_core::workload::Workload;
use bench_harness::{print_table, Scale, Series};
use workloads::{TcpLikeConfig, TcpLikeWorkload};

fn main() {
    let scale = Scale::from_env();
    let cfg = if scale.is_quick() {
        TcpLikeConfig { subnets: 150, total_events: 6_000, ..Default::default() }
    } else {
        TcpLikeConfig { total_events: 20_000, ..Default::default() }
    };

    // --- Value-based tolerance sweep (the strawman). Byte values span
    // orders of magnitude, so "reasonable" epsilons are hard to name —
    // exactly the paper's point.
    let epsilons = [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0];
    let mut msgs = Vec::new();
    let mut worst_rank = Vec::new();
    for &eps in &epsilons {
        let mut w = TcpLikeWorkload::new(cfg);
        let mut engine = Engine::new(&w.initial_values(), VtMax::new(eps).unwrap());
        let mut worst = 0usize;
        engine.run_with_hook(&mut w, |fleet, protocol, _| {
            if let Some(answer) = protocol.answer().iter().next() {
                let ranking = oracle::true_ranking(asf_core::query::RankSpace::TopK, fleet);
                let rank = ranking.iter().position(|&s| s == answer).unwrap() + 1;
                worst = worst.max(rank);
            }
        });
        msgs.push(engine.ledger().total() as f64);
        worst_rank.push(worst as f64);
    }
    let xs: Vec<String> = epsilons.iter().map(|e| format!("{e}")).collect();
    print_table(
        &format!(
            "Motivation (Fig. 1a): VT-MAX value tolerance on TCP-like data ({} subnets, {} events)",
            cfg.subnets, cfg.total_events
        ),
        "eps (bytes)",
        &xs,
        &[
            Series { label: "messages".into(), values: msgs },
            Series { label: "worst observed rank".into(), values: worst_rank },
        ],
    );

    // --- Rank-based tolerance sweep (the paper's interface): the worst
    // rank is *guaranteed* to be 1 + r, no data knowledge needed.
    let rs = [0usize, 1, 2, 5, 10];
    let mut msgs = Vec::new();
    let mut worst_rank = Vec::new();
    let mut guaranteed = Vec::new();
    for &r in &rs {
        let mut w = TcpLikeWorkload::new(cfg);
        let query = RankQuery::top_k(1).unwrap();
        let mut engine = Engine::new(&w.initial_values(), Rtp::new(query, r).unwrap());
        let mut worst = 0usize;
        engine.run_with_hook(&mut w, |fleet, protocol, _| {
            if let Some(answer) = protocol.answer().iter().next() {
                let ranking = oracle::true_ranking(asf_core::query::RankSpace::TopK, fleet);
                let rank = ranking.iter().position(|&s| s == answer).unwrap() + 1;
                worst = worst.max(rank);
            }
        });
        msgs.push(engine.ledger().total() as f64);
        worst_rank.push(worst as f64);
        guaranteed.push((1 + r) as f64);
    }
    let xs: Vec<String> = rs.iter().map(|r| r.to_string()).collect();
    print_table(
        "Motivation (Fig. 1b): RTP rank tolerance on the same workload (k = 1)",
        "r",
        &xs,
        &[
            Series { label: "messages".into(), values: msgs },
            Series { label: "worst observed rank".into(), values: worst_rank },
            Series { label: "guaranteed rank".into(), values: guaranteed },
        ],
    );
}
