//! A mergeable log-bucketed histogram of `u64` samples.
//!
//! The bucket layout is the HdrHistogram family's: values below
//! `2 * SUBBUCKETS` are recorded exactly (bucket width 1); above that, each
//! power-of-two decade is split into [`SUBBUCKETS`] sub-buckets, so the
//! relative quantization error is bounded by `1 / SUBBUCKETS` (~3.1%)
//! at every magnitude up to `u64::MAX`. Memory is a fixed
//! [`NUM_BUCKETS`]`-entry` count array (~15 KiB) regardless of sample
//! count, and **merging is exact**: two histograms over disjoint sample
//! sets combine by element-wise count addition into precisely the
//! histogram of the union — the property that lets per-shard and
//! per-partition latency distributions roll up without resampling.

/// Sub-buckets per power-of-two decade (the precision knob).
pub const SUBBUCKETS: u64 = 32;
/// log2 of [`SUBBUCKETS`].
const SUB_BITS: u32 = 5;
/// Values below this are recorded exactly (unit-width buckets).
const EXACT_MAX: u64 = 2 * SUBBUCKETS;
/// Total bucket count: 64 exact buckets plus 32 per decade for the
/// remaining 58 decades of the `u64` range.
pub const NUM_BUCKETS: usize = (EXACT_MAX + (63 - SUB_BITS) as u64 * SUBBUCKETS) as usize;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < EXACT_MAX {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = (v >> shift) - SUBBUCKETS;
        (EXACT_MAX + (shift as u64 - 1) * SUBBUCKETS + sub) as usize
    }
}

/// Smallest value mapping to bucket `b`.
#[inline]
fn bucket_lo(b: usize) -> u64 {
    let b = b as u64;
    if b < EXACT_MAX {
        b
    } else {
        let decade = (b - EXACT_MAX) / SUBBUCKETS;
        let sub = (b - EXACT_MAX) % SUBBUCKETS;
        (SUBBUCKETS + sub) << (decade + 1)
    }
}

/// Largest value mapping to bucket `b`.
#[inline]
fn bucket_hi(b: usize) -> u64 {
    if b + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lo(b + 1) - 1
    }
}

/// A bounded-memory histogram of `u64` samples with exact merge.
#[derive(Clone)]
pub struct LogHistogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl LogHistogram {
    /// An empty histogram (allocates its fixed bucket array once).
    pub fn new() -> Self {
        Self { buckets: Box::new([0; NUM_BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample. No allocation, O(1).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of the recorded samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Exact smallest recorded sample; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Exact largest recorded sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`): the representative
    /// (bucket midpoint) of the bucket holding the `ceil(p/100 · count)`-th
    /// smallest sample. Exact for values below `2 * SUBBUCKETS`; within
    /// `1/SUBBUCKETS` relative error otherwise. `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                let lo = bucket_lo(b).max(self.min);
                let hi = bucket_hi(b).min(self.max);
                return Some((lo as f64 + hi as f64) / 2.0);
            }
        }
        unreachable!("cumulative count must reach self.count")
    }

    /// Adds `other`'s counts into `self` — exact: the result is precisely
    /// the histogram of the concatenated sample sets.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Inclusive value range `[lo, hi]` of the bucket that `v` falls in —
    /// the quantization interval a recorded sample is reported within.
    pub fn value_range(v: u64) -> (u64, u64) {
        let b = bucket_of(v);
        (bucket_lo(b), bucket_hi(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        let mut prev_hi = None;
        for b in 0..NUM_BUCKETS {
            let lo = bucket_lo(b);
            let hi = bucket_hi(b);
            assert!(lo <= hi, "bucket {b}: lo {lo} > hi {hi}");
            assert_eq!(bucket_of(lo), b, "lo of bucket {b} maps back");
            assert_eq!(bucket_of(hi), b, "hi of bucket {b} maps back");
            if let Some(p) = prev_hi {
                assert_eq!(lo, p + 1u64, "gap before bucket {b}");
            }
            prev_hi = Some(hi);
        }
        assert_eq!(prev_hi, Some(u64::MAX));
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..EXACT_MAX {
            h.record(v);
        }
        for v in 0..EXACT_MAX {
            let p = (v + 1) as f64 / EXACT_MAX as f64 * 100.0;
            assert_eq!(h.percentile(p), Some(v as f64), "p{p} of 0..{EXACT_MAX}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 1_000, 65_537, 1 << 33, u64::MAX / 3] {
            let (lo, hi) = LogHistogram::value_range(v);
            assert!(lo <= v && v <= hi);
            assert!(
                (hi - lo) as f64 / lo as f64 <= 1.0 / SUBBUCKETS as f64 + 1e-12,
                "bucket [{lo}, {hi}] too wide for {v}"
            );
        }
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for i in 0..1000u64 {
            let v = i * i * 37 + 5;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p{p} after merge");
        }
    }

    #[test]
    fn empty_is_none() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }
}
