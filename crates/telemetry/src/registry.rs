//! A typed, insertion-ordered metrics registry with JSON snapshots.
//!
//! Producers re-register their current values into a fresh [`Registry`]
//! whenever a snapshot is requested (registration is a handful of pushes —
//! there is no background sampling), so the registry is a *schema*, not a
//! store: every consumer of [`Registry::to_json`] reads the same dotted-key
//! layout regardless of which subsystem produced which field.

use crate::hist::LogHistogram;

/// One registered metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A monotonic count.
    Counter(u64),
    /// An instantaneous float reading (non-finite values serialize as
    /// `null`).
    Gauge(f64),
    /// A histogram summary: count, mean, min/max, and the standard
    /// percentile ladder.
    Histogram {
        /// Samples recorded.
        count: u64,
        /// Mean sample value.
        mean: Option<f64>,
        /// Exact minimum.
        min: Option<u64>,
        /// Exact maximum.
        max: Option<u64>,
        /// p50 / p90 / p99 (bucket representatives).
        p50: Option<f64>,
        /// 90th percentile.
        p90: Option<f64>,
        /// 99th percentile.
        p99: Option<f64>,
    },
}

/// An insertion-ordered set of named metric values.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    entries: Vec<(String, MetricValue)>,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => json_f64(v),
        None => "null".to_string(),
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter under `name` (dotted keys by convention, e.g.
    /// `server.batches`).
    pub fn counter(&mut self, name: &str, v: u64) {
        self.entries.push((name.to_string(), MetricValue::Counter(v)));
    }

    /// Registers a gauge under `name`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.entries.push((name.to_string(), MetricValue::Gauge(v)));
    }

    /// Registers a histogram summary under `name`.
    pub fn histogram(&mut self, name: &str, h: &LogHistogram) {
        self.entries.push((
            name.to_string(),
            MetricValue::Histogram {
                count: h.count(),
                mean: h.mean(),
                min: h.min(),
                max: h.max(),
                p50: h.percentile(50.0),
                p90: h.percentile(90.0),
                p99: h.percentile(99.0),
            },
        ));
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered entries, in insertion order.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// Serializes the registry as one flat JSON object in insertion order.
    /// Counters and gauges are plain numbers (non-finite gauges become
    /// `null`); histograms are nested objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": "));
            match v {
                MetricValue::Counter(c) => out.push_str(&format!("{c}")),
                MetricValue::Gauge(g) => out.push_str(&json_f64(*g)),
                MetricValue::Histogram { count, mean, min, max, p50, p90, p99 } => {
                    let fmt_u = |v: &Option<u64>| {
                        v.map(|v| format!("{v}")).unwrap_or_else(|| "null".to_string())
                    };
                    out.push_str(&format!(
                        "{{\"count\": {count}, \"mean\": {}, \"min\": {}, \"max\": {}, \
                         \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                        json_opt_f64(*mean),
                        fmt_u(min),
                        fmt_u(max),
                        json_opt_f64(*p50),
                        json_opt_f64(*p90),
                        json_opt_f64(*p99),
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn snapshot_roundtrips_through_the_parser() {
        let mut reg = Registry::new();
        reg.counter("server.batches", 42);
        reg.gauge("server.skew", 1.5);
        reg.gauge("server.undefined", f64::NAN);
        let mut h = LogHistogram::new();
        h.record(10);
        h.record(20);
        reg.histogram("server.batch_ns", &h);

        let parsed = json::parse(&reg.to_json()).expect("snapshot is valid JSON");
        assert_eq!(parsed.get("server.batches").and_then(|v| v.as_f64()), Some(42.0));
        assert_eq!(parsed.get("server.skew").and_then(|v| v.as_f64()), Some(1.5));
        assert!(parsed.get("server.undefined").expect("present").is_null());
        let hist = parsed.get("server.batch_ns").expect("histogram object");
        assert_eq!(hist.get("count").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(hist.get("min").and_then(|v| v.as_f64()), Some(10.0));
        assert_eq!(hist.get("p99").and_then(|v| v.as_f64()), Some(20.0));
    }
}
