//! # asf-telemetry — dependency-free observability primitives
//!
//! Everything in this crate is **observational**: nothing here may feed a
//! protocol decision, so wall-clock noise can never perturb the
//! byte-identical determinism the differential suites pin. The pieces:
//!
//! * [`LogHistogram`] — a log-bucketed histogram with bounded memory and
//!   **exact merge** (bucket counts add element-wise), so per-shard and
//!   per-partition distributions combine into one without resampling.
//! * [`Registry`] — a typed, insertion-ordered metrics registry (counters,
//!   gauges, histogram summaries) with a [`Registry::to_json`] snapshot so
//!   every consumer (benches, examples, future net/recovery layers) reads
//!   one schema.
//! * [`TraceRing`] — a bounded ring of span events ([`TraceEvent`]) with a
//!   compile-time-cheap [`TraceDepth`] gate, exportable as Chrome
//!   trace-event JSON ([`chrome_trace`], validated by
//!   [`validate_chrome_trace`]) for Perfetto / `chrome://tracing`.
//! * [`CauseLedger`] — per-cause message accounting: the same five
//!   message-kind counters the `streamnet` ledger keeps, broken down by the
//!   *protocol decision* that originated them ([`Cause`]).
//! * [`json`] — a minimal recursive-descent JSON parser used by the trace
//!   validator and the `bench_diff` schema-drift tool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causes;
pub mod hist;
pub mod json;
pub mod registry;
pub mod trace;

pub use causes::{Cause, CauseLedger, NUM_CAUSES, NUM_KIND_SLOTS};
pub use hist::LogHistogram;
pub use registry::{MetricValue, Registry};
pub use trace::{chrome_trace, validate_chrome_trace, TraceDepth, TraceEvent, TraceRing};
