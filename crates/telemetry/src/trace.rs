//! Bounded structured trace rings and Chrome trace-event export.
//!
//! Each traced component (the coordinator, the fleet-op router, every
//! shard) owns one [`TraceRing`] — a bounded vector of [`TraceEvent`]s
//! recording `B`egin/`E`nd span pairs and `i`nstant markers, each tagged
//! with the speculation-log sequence number the work carried. Rings share
//! one epoch [`Instant`], so their timestamps land on one timeline and
//! [`chrome_trace`] can merge them into Chrome trace-event JSON (open in
//! Perfetto or `chrome://tracing`).
//!
//! The [`TraceDepth`] gate makes disabled tracing near-free: every
//! recording call compares two enum discriminants and returns. When a ring
//! fills, new spans are suppressed **as balanced pairs** (a suppressed
//! `begin` suppresses its matching `end`), so a truncated ring still
//! exports a well-formed timeline; [`TraceRing::dropped`] reports the loss.
//!
//! Determinism contract: rings record wall-clock *observations* only. No
//! protocol decision may ever read a ring or a timestamp, so tracing at any
//! depth cannot perturb the byte-identical answers the differential suites
//! pin.

use std::time::Instant;

use crate::json;

/// How much of the timeline to record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceDepth {
    /// Record nothing (the default; recording calls are a branch).
    #[default]
    Off,
    /// Window-level spans: scatter, gather, report drains, cuts.
    Coarse,
    /// Everything: per-fleet-op scatter/gathers, forest refreshes,
    /// deferred flushes, per-shard evaluation internals.
    Fine,
}

/// The phase of one trace entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// Span begin (`ph: "B"`).
    Begin,
    /// Span end (`ph: "E"`).
    End,
    /// Instant marker (`ph: "i"`).
    Instant,
}

/// One recorded event.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Static span name (empty for `End`).
    pub name: &'static str,
    /// Begin / end / instant.
    pub phase: TracePhase,
    /// Nanoseconds since the shared epoch.
    pub ts_ns: u64,
    /// The speculation-log sequence number the work carried (0 when none).
    pub seq: u64,
}

/// A bounded ring of trace events with a depth gate.
#[derive(Clone, Debug)]
pub struct TraceRing {
    depth: TraceDepth,
    capacity: usize,
    epoch: Instant,
    events: Vec<TraceEvent>,
    /// Open spans whose `begin` was suppressed (ring full); their `end`s
    /// are suppressed too, keeping the ring balanced.
    suppressed_open: u32,
    dropped: u64,
}

impl TraceRing {
    /// A ring recording at `depth`, holding at most `capacity` events,
    /// with timestamps measured from `epoch`.
    pub fn new(depth: TraceDepth, capacity: usize, epoch: Instant) -> Self {
        let cap = if depth == TraceDepth::Off { 0 } else { capacity };
        Self {
            depth,
            capacity: cap,
            epoch,
            events: Vec::with_capacity(cap.min(1024)),
            suppressed_open: 0,
            dropped: 0,
        }
    }

    /// A disabled ring (records nothing, allocates nothing).
    pub fn disabled() -> Self {
        Self::new(TraceDepth::Off, 0, Instant::now())
    }

    /// The ring's recording depth.
    pub fn depth(&self) -> TraceDepth {
        self.depth
    }

    /// Whether events at `required` depth are being recorded.
    #[inline]
    pub fn enabled(&self, required: TraceDepth) -> bool {
        required != TraceDepth::Off && self.depth >= required
    }

    /// Events suppressed because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a span if the ring records at `required` depth. Must be paired
    /// with [`TraceRing::end`] at the same depth.
    #[inline]
    pub fn begin(&mut self, required: TraceDepth, name: &'static str, seq: u64) {
        if !self.enabled(required) {
            return;
        }
        if self.events.len() >= self.capacity {
            self.suppressed_open += 1;
            self.dropped += 1;
            return;
        }
        let ts_ns = self.now_ns();
        self.events.push(TraceEvent { name, phase: TracePhase::Begin, ts_ns, seq });
    }

    /// Closes the innermost open span recorded at `required` depth.
    #[inline]
    pub fn end(&mut self, required: TraceDepth) {
        if !self.enabled(required) {
            return;
        }
        if self.suppressed_open > 0 {
            self.suppressed_open -= 1;
            return;
        }
        let ts_ns = self.now_ns();
        self.events.push(TraceEvent { name: "", phase: TracePhase::End, ts_ns, seq: 0 });
    }

    /// Records an instant marker.
    #[inline]
    pub fn instant(&mut self, required: TraceDepth, name: &'static str, seq: u64) {
        if !self.enabled(required) {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let ts_ns = self.now_ns();
        self.events.push(TraceEvent { name, phase: TracePhase::Instant, ts_ns, seq });
    }

    /// Drains the recorded events (the ring keeps recording afterwards).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

fn push_ts(out: &mut String, ts_ns: u64) {
    // Chrome trace timestamps are microseconds; keep nanosecond precision
    // as a 3-decimal fraction.
    out.push_str(&format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000));
}

/// Serializes named tracks of trace events as Chrome trace-event JSON.
/// Each track becomes one `tid` under `pid` 1, labeled with a
/// `thread_name` metadata event; span events carry their speculation
/// sequence number in `args.seq`.
pub fn chrome_trace(tracks: &[(u32, &str, Vec<TraceEvent>)]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    for (tid, name, events) in tracks {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{name}\"}}}}"
        ));
        for ev in events {
            out.push_str(",\n");
            match ev.phase {
                TracePhase::Begin => {
                    out.push_str(&format!("{{\"name\": \"{}\", \"ph\": \"B\", \"ts\": ", ev.name));
                    push_ts(&mut out, ev.ts_ns);
                    out.push_str(&format!(
                        ", \"pid\": 1, \"tid\": {tid}, \"args\": {{\"seq\": {}}}}}",
                        ev.seq
                    ));
                }
                TracePhase::End => {
                    out.push_str("{\"ph\": \"E\", \"ts\": ");
                    push_ts(&mut out, ev.ts_ns);
                    out.push_str(&format!(", \"pid\": 1, \"tid\": {tid}}}"));
                }
                TracePhase::Instant => {
                    out.push_str(&format!("{{\"name\": \"{}\", \"ph\": \"i\", \"ts\": ", ev.name));
                    push_ts(&mut out, ev.ts_ns);
                    out.push_str(&format!(
                        ", \"pid\": 1, \"tid\": {tid}, \"s\": \"t\", \"args\": {{\"seq\": {}}}}}",
                        ev.seq
                    ));
                }
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Validates Chrome trace-event JSON: the document must parse, and per
/// `(pid, tid)` track the timestamps must be monotone non-decreasing with
/// balanced `B`/`E` events. Returns the number of non-metadata events.
pub fn validate_chrome_trace(src: &str) -> Result<usize, String> {
    let doc = json::parse(src)?;
    let events =
        doc.get("traceEvents").and_then(|v| v.as_array()).ok_or("missing traceEvents array")?;
    // (pid, tid) -> (last ts, open span count)
    let mut tracks: Vec<((u64, u64), (f64, i64))> = Vec::new();
    let mut checked = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(|v| v.as_str()).ok_or(format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let pid =
            ev.get("pid").and_then(|v| v.as_f64()).ok_or(format!("event {i}: missing pid"))? as u64;
        let tid =
            ev.get("tid").and_then(|v| v.as_f64()).ok_or(format!("event {i}: missing tid"))? as u64;
        let ts = ev.get("ts").and_then(|v| v.as_f64()).ok_or(format!("event {i}: missing ts"))?;
        let key = (pid, tid);
        let entry = match tracks.iter_mut().find(|(k, _)| *k == key) {
            Some((_, state)) => state,
            None => {
                tracks.push((key, (f64::NEG_INFINITY, 0)));
                &mut tracks.last_mut().expect("just pushed").1
            }
        };
        if ts < entry.0 {
            return Err(format!("event {i}: ts {ts} goes backwards on track {key:?}"));
        }
        entry.0 = ts;
        match ph {
            "B" => {
                if ev.get("name").and_then(|v| v.as_str()).is_none() {
                    return Err(format!("event {i}: B without a name"));
                }
                entry.1 += 1;
            }
            "E" => {
                entry.1 -= 1;
                if entry.1 < 0 {
                    return Err(format!("event {i}: E without a matching B on track {key:?}"));
                }
            }
            "i" | "I" => {}
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
        checked += 1;
    }
    for (key, (_, open)) in &tracks {
        if *open != 0 {
            return Err(format!("track {key:?}: {open} unclosed span(s)"));
        }
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let mut r = TraceRing::disabled();
        r.begin(TraceDepth::Coarse, "x", 1);
        r.end(TraceDepth::Coarse);
        r.instant(TraceDepth::Fine, "y", 2);
        assert!(r.events().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn depth_gates_fine_under_coarse() {
        let mut r = TraceRing::new(TraceDepth::Coarse, 64, Instant::now());
        r.begin(TraceDepth::Coarse, "window", 1);
        r.begin(TraceDepth::Fine, "op", 2); // gated out
        r.end(TraceDepth::Fine);
        r.end(TraceDepth::Coarse);
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events()[0].name, "window");
    }

    #[test]
    fn full_ring_suppresses_balanced_pairs() {
        let mut r = TraceRing::new(TraceDepth::Coarse, 2, Instant::now());
        r.begin(TraceDepth::Coarse, "a", 1);
        r.end(TraceDepth::Coarse);
        // Ring is now full: this pair is suppressed as a unit.
        r.begin(TraceDepth::Coarse, "b", 2);
        r.end(TraceDepth::Coarse);
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.dropped(), 1);
        let json = chrome_trace(&[(0, "t", r.take())]);
        validate_chrome_trace(&json).expect("truncated ring still balanced");
    }

    #[test]
    fn export_validates_and_timestamps_are_monotone() {
        let epoch = Instant::now();
        let mut a = TraceRing::new(TraceDepth::Fine, 1024, epoch);
        let mut b = TraceRing::new(TraceDepth::Fine, 1024, epoch);
        for i in 0..10u64 {
            a.begin(TraceDepth::Coarse, "window", i);
            b.begin(TraceDepth::Fine, "eval", i);
            b.instant(TraceDepth::Fine, "cut", i);
            b.end(TraceDepth::Fine);
            a.end(TraceDepth::Coarse);
        }
        let json = chrome_trace(&[(0, "coordinator", a.take()), (2, "shard-0", b.take())]);
        let n = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(n, 10 * 5);
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("coordinator"));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // Unbalanced B.
        let bad = r#"{"traceEvents": [
            {"name": "x", "ph": "B", "ts": 1.0, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("unclosed"));
        // Backwards time.
        let bad = r#"{"traceEvents": [
            {"name": "x", "ph": "B", "ts": 5.0, "pid": 1, "tid": 0},
            {"ph": "E", "ts": 4.0, "pid": 1, "tid": 0}
        ]}"#;
        assert!(validate_chrome_trace(bad).unwrap_err().contains("backwards"));
    }
}
