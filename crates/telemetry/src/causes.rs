//! Per-cause message accounting.
//!
//! The `streamnet` ledger answers "how many messages of each kind" — the
//! paper's headline metric. This module answers "**which protocol decision
//! sent them**": every message recorded while a handler runs is attributed
//! to the [`Cause`] the handler declared (overflow shrink, expansion ring,
//! reinit storm, deferred flush, ...), by diffing the ledger's kind
//! counters around each fleet operation. The attribution is derived — it
//! never touches the authoritative ledger, so ledger equality checks in the
//! differential suites are unaffected.

/// The protocol decision that originated a batch of messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cause {
    /// Query (re-)initialization: the startup probe_all + deployment.
    Init,
    /// Plain source report handling (including the report itself).
    SourceReport,
    /// RTP answer-set overflow: probe X, shrink the bound, broadcast.
    OverflowShrink,
    /// RTP expansion search: ring probe batches + survivor refresh +
    /// bound redeployment.
    ExpansionRing,
    /// Budget exhaustion / degenerate window: full probe_all + fleet-wide
    /// redeployment storm.
    ReinitStorm,
    /// FT error correction: targeted probe + filter reallocation.
    FixError,
    /// Zero-tolerance bound recompute after a boundary crossing.
    BoundRecompute,
    /// End-of-handler deferred filter installations flushed as one batch.
    DeferredFlush,
    /// Periodic/maintenance work not covered above.
    Maintenance,
    /// Crash recovery: messages sent while rebuilding state after a
    /// restart (the cold-start probe storm when no checkpoint survived).
    /// Stays zero when recovery restores from a checkpoint.
    Recovery,
    /// Fault repair: re-probes and re-installs issued at chunk-end
    /// quiescence to heal unreliable channels (lost reports, crash
    /// restarts, lease rejoins) plus post-fault resyncs. Stays zero on
    /// reliable channels.
    Repair,
}

/// Number of [`Cause`] variants.
pub const NUM_CAUSES: usize = 11;

/// Message-kind slots per cause (mirrors the streamnet ledger's five
/// kinds; labels are supplied by the caller so this crate stays
/// dependency-free).
pub const NUM_KIND_SLOTS: usize = 5;

impl Cause {
    /// All causes, in serialization order.
    pub const ALL: [Cause; NUM_CAUSES] = [
        Cause::Init,
        Cause::SourceReport,
        Cause::OverflowShrink,
        Cause::ExpansionRing,
        Cause::ReinitStorm,
        Cause::FixError,
        Cause::BoundRecompute,
        Cause::DeferredFlush,
        Cause::Maintenance,
        Cause::Recovery,
        Cause::Repair,
    ];

    fn slot(self) -> usize {
        match self {
            Cause::Init => 0,
            Cause::SourceReport => 1,
            Cause::OverflowShrink => 2,
            Cause::ExpansionRing => 3,
            Cause::ReinitStorm => 4,
            Cause::FixError => 5,
            Cause::BoundRecompute => 6,
            Cause::DeferredFlush => 7,
            Cause::Maintenance => 8,
            Cause::Recovery => 9,
            Cause::Repair => 10,
        }
    }

    /// Snake-case label for snapshots and breakdowns.
    pub fn label(self) -> &'static str {
        match self {
            Cause::Init => "init",
            Cause::SourceReport => "source_report",
            Cause::OverflowShrink => "overflow_shrink",
            Cause::ExpansionRing => "expansion_ring",
            Cause::ReinitStorm => "reinit_storm",
            Cause::FixError => "fix_error",
            Cause::BoundRecompute => "bound_recompute",
            Cause::DeferredFlush => "deferred_flush",
            Cause::Maintenance => "maintenance",
            Cause::Recovery => "recovery",
            Cause::Repair => "repair",
        }
    }
}

/// A `causes × message-kinds` matrix of message counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CauseLedger {
    rows: [[u64; NUM_KIND_SLOTS]; NUM_CAUSES],
}

impl CauseLedger {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` messages of kind-slot `kind` under `cause`.
    #[inline]
    pub fn add(&mut self, cause: Cause, kind: usize, n: u64) {
        self.rows[cause.slot()][kind] += n;
    }

    /// Attributes the delta between two ledger kind-count snapshots
    /// (`after - before`, element-wise) to `cause`.
    #[inline]
    pub fn attribute(
        &mut self,
        cause: Cause,
        before: &[u64; NUM_KIND_SLOTS],
        after: &[u64; NUM_KIND_SLOTS],
    ) {
        let row = &mut self.rows[cause.slot()];
        for k in 0..NUM_KIND_SLOTS {
            row[k] += after[k] - before[k];
        }
    }

    /// The per-kind counts attributed to `cause`.
    pub fn row(&self, cause: Cause) -> &[u64; NUM_KIND_SLOTS] {
        &self.rows[cause.slot()]
    }

    /// Total messages attributed to `cause`.
    pub fn total(&self, cause: Cause) -> u64 {
        self.rows[cause.slot()].iter().sum()
    }

    /// Total messages attributed across all causes (equals the ledger
    /// total when every recording site is covered by a tap).
    pub fn grand_total(&self) -> u64 {
        self.rows.iter().flatten().sum()
    }

    /// Adds another matrix's counts into this one.
    pub fn merge(&mut self, other: &CauseLedger) {
        for (a, b) in self.rows.iter_mut().zip(other.rows.iter()) {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += y;
            }
        }
    }

    /// Multi-line human breakdown; `kind_labels` names the kind slots
    /// (e.g. the streamnet ledger's labels). Causes with zero messages are
    /// omitted.
    pub fn breakdown(&self, kind_labels: &[&str; NUM_KIND_SLOTS]) -> String {
        let mut lines = Vec::new();
        for cause in Cause::ALL {
            let total = self.total(cause);
            if total == 0 {
                continue;
            }
            let mut parts = Vec::new();
            for (k, label) in kind_labels.iter().enumerate() {
                let n = self.rows[cause.slot()][k];
                if n > 0 {
                    parts.push(format!("{label}={n}"));
                }
            }
            lines.push(format!("{:<16} {:>8}  {}", cause.label(), total, parts.join(" ")));
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_diffs_snapshots() {
        let mut c = CauseLedger::new();
        let before = [1, 0, 0, 0, 0];
        let after = [1, 3, 3, 0, 64];
        c.attribute(Cause::ReinitStorm, &before, &after);
        assert_eq!(c.row(Cause::ReinitStorm), &[0, 3, 3, 0, 64]);
        assert_eq!(c.total(Cause::ReinitStorm), 70);
        assert_eq!(c.grand_total(), 70);
    }

    #[test]
    fn merge_and_breakdown() {
        let mut a = CauseLedger::new();
        a.add(Cause::SourceReport, 0, 5);
        let mut b = CauseLedger::new();
        b.add(Cause::SourceReport, 0, 2);
        b.add(Cause::DeferredFlush, 3, 7);
        a.merge(&b);
        assert_eq!(a.total(Cause::SourceReport), 7);
        let s = a.breakdown(&["update", "probe_req", "probe_rep", "install", "broadcast"]);
        assert!(s.contains("source_report"));
        assert!(s.contains("update=7"));
        assert!(s.contains("install=7"));
        assert!(!s.contains("reinit_storm"), "zero rows are omitted");
    }
}
