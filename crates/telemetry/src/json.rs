//! A minimal recursive-descent JSON parser.
//!
//! Just enough JSON for the crate's own consumers — the Chrome-trace
//! validator and the `bench_diff` schema-drift tool — with order-preserving
//! objects (schema comparison cares about the key *set*, but keeping
//! insertion order makes diffs readable). No serialization framework, no
//! dependencies, no `unsafe`.

/// A parsed JSON value. Objects preserve key order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup for objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|b| b as char), self.pos)),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a run of plain UTF-8 bytes in one go.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": 1, "b": [true, null, -2.5e3], "c": {"nested": "va\"lue"}, "d": ""}"#)
                .unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0], Value::Bool(true));
        assert!(b[1].is_null());
        assert_eq!(b[2].as_f64(), Some(-2500.0));
        assert_eq!(v.get("c").unwrap().get("nested").unwrap().as_str(), Some("va\"lue"));
        assert_eq!(v.get("d").unwrap().as_str(), Some(""));
    }

    #[test]
    fn preserves_object_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nul").is_err());
    }
}
