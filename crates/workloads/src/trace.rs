//! Persisting and replaying traces.
//!
//! A tiny line-oriented text format (no serde dependency, DESIGN.md §6):
//!
//! ```text
//! # asf-trace v1
//! initial <v0> <v1> ... <v{n-1}>
//! <time> <stream> <value>
//! ...
//! ```
//!
//! Floats are written with `{:?}` (shortest round-trip representation), so
//! a save/load round trip is bit-exact and replays are deterministic.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use asf_core::workload::{UpdateEvent, VecWorkload, Workload};
use streamnet::StreamId;

/// Magic first line of the format.
const HEADER: &str = "# asf-trace v1";

/// Drains a workload and writes it as a trace.
///
/// Consumes the workload's remaining events; returns the number written.
pub fn write_trace<W: Workload + ?Sized>(workload: &mut W, out: impl Write) -> io::Result<u64> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{HEADER}")?;
    write!(w, "initial")?;
    for v in workload.initial_values() {
        write!(w, " {v:?}")?;
    }
    writeln!(w)?;
    let mut count = 0;
    while let Some(ev) = workload.next_event() {
        writeln!(w, "{:?} {} {:?}", ev.time, ev.stream.0, ev.value)?;
        count += 1;
    }
    w.flush()?;
    Ok(count)
}

/// Reads a trace back into a replayable workload.
pub fn read_trace(input: impl Read) -> io::Result<VecWorkload> {
    let mut lines = BufReader::new(input).lines();
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());

    let header = lines.next().ok_or_else(|| bad("empty trace"))??;
    if header.trim() != HEADER {
        return Err(bad(&format!("bad header: {header:?}")));
    }
    let initial_line = lines.next().ok_or_else(|| bad("missing initial line"))??;
    let mut parts = initial_line.split_whitespace();
    if parts.next() != Some("initial") {
        return Err(bad("missing 'initial' keyword"));
    }
    let initial: Vec<f64> = parts
        .map(|t| t.parse::<f64>().map_err(|e| bad(&format!("bad initial value {t:?}: {e}"))))
        .collect::<Result<_, _>>()?;
    if initial.is_empty() {
        return Err(bad("trace has no streams"));
    }

    let mut events = Vec::new();
    for line in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut t = line.split_whitespace();
        let (time, stream, value) = (
            t.next().ok_or_else(|| bad("missing time"))?,
            t.next().ok_or_else(|| bad("missing stream"))?,
            t.next().ok_or_else(|| bad("missing value"))?,
        );
        if t.next().is_some() {
            return Err(bad(&format!("trailing tokens on line {line:?}")));
        }
        events.push(UpdateEvent {
            time: time.parse().map_err(|e| bad(&format!("bad time {time:?}: {e}")))?,
            stream: StreamId(
                stream.parse().map_err(|e| bad(&format!("bad stream {stream:?}: {e}")))?,
            ),
            value: value.parse().map_err(|e| bad(&format!("bad value {value:?}: {e}")))?,
        });
    }
    // VecWorkload validates ordering/ranges; map its panics to errors here.
    std::panic::catch_unwind(|| VecWorkload::new(initial, events)).map_err(|_| {
        bad("trace events are malformed (out of order, unknown stream, or non-finite)")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticConfig, SyntheticWorkload};

    #[test]
    fn round_trip_is_bit_exact() {
        let cfg =
            SyntheticConfig { num_streams: 20, horizon: 100.0, seed: 3, ..Default::default() };
        let mut original = SyntheticWorkload::new(cfg);
        let mut buf = Vec::new();
        let written = write_trace(&mut original, &mut buf).unwrap();
        assert!(written > 0);

        let mut replay = read_trace(&buf[..]).unwrap();
        let mut reference = SyntheticWorkload::new(cfg);
        assert_eq!(replay.initial_values(), reference.initial_values());
        loop {
            let a = replay.next_event();
            let b = reference.next_event();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_trace("nope\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad header"));
    }

    #[test]
    fn rejects_missing_initial() {
        let err = read_trace(format!("{HEADER}\n").as_bytes()).unwrap_err();
        assert!(err.to_string().contains("initial"));
    }

    #[test]
    fn rejects_malformed_event_line() {
        let text = format!("{HEADER}\ninitial 1.0 2.0\n1.0 0\n");
        assert!(read_trace(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_order_events() {
        let text = format!("{HEADER}\ninitial 1.0\n2.0 0 5.0\n1.0 0 6.0\n");
        assert!(read_trace(text.as_bytes()).is_err());
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = format!("{HEADER}\ninitial 1.0\n# comment\n\n1.0 0 5.0\n");
        let mut w = read_trace(text.as_bytes()).unwrap();
        assert!(w.next_event().is_some());
        assert!(w.next_event().is_none());
    }
}
