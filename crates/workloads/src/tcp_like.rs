//! A TCP-trace-like workload substituting the LBL Internet Traffic Archive
//! data of §6.1.
//!
//! The paper models 800 subnets (16-bit IP prefixes) from 30 days of
//! wide-area TCP traces; each stream's value is the "number of bytes sent"
//! of its latest traffic. We cannot ship that dataset, so this generator
//! reproduces its *filter-relevant* statistics (DESIGN.md §5):
//!
//! * **activity skew** — per-subnet event rates follow a Zipf law (a few
//!   subnets dominate wide-area traffic);
//! * **heavy-tailed values** — byte counts are log-normal in cross-section;
//! * **per-subnet persistence** — a subnet's traffic level is
//!   autocorrelated, so top-k membership is stable-but-churning. We model
//!   `log V` per subnet as an AR(1) process with per-subnet level
//!   `μ_i ~ N(ln 500, spread)`.
//!
//! The default `total_events` (43 000) matches the magnitude of the paper's
//! no-filter baseline in Figure 9 (≈43k messages — the paper evidently
//! evaluated on a subset of the 606 497 connections);
//! [`TcpLikeConfig::full`] generates the full-trace scale.

use asf_core::workload::{EventBatch, UpdateEvent, Workload};
use simkit::dist::Sample;
use simkit::{EventQueue, Exponential, Normal, SimRng, Zipf};
use streamnet::StreamId;

/// Parameters of the TCP-like trace generator.
#[derive(Clone, Copy, Debug)]
pub struct TcpLikeConfig {
    /// Number of subnets / streams (paper: 800).
    pub subnets: usize,
    /// Total connection events to generate across all subnets.
    pub total_events: u64,
    /// Trace duration in abstract days (paper: 30). Only sets the time
    /// scale of the emitted events.
    pub days: f64,
    /// Zipf exponent of the per-subnet activity distribution.
    pub zipf_exponent: f64,
    /// Log-space mean of subnet traffic levels (`exp` of this ≈ the median
    /// bytes value; default `ln 500` so a `[400, 600]` range query is
    /// well-populated, matching the paper's choice of range).
    pub log_level_mean: f64,
    /// Spread of per-subnet levels `μ_i` (log-space standard deviation).
    pub log_level_spread: f64,
    /// AR(1) autocorrelation of `log V` per subnet (0 = iid, → 1 = frozen).
    pub ar_phi: f64,
    /// Stationary log-space standard deviation of each subnet's process.
    pub log_sd: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TcpLikeConfig {
    fn default() -> Self {
        Self {
            subnets: 800,
            total_events: 43_000,
            days: 30.0,
            zipf_exponent: 1.0,
            log_level_mean: (500.0f64).ln(),
            log_level_spread: 0.8,
            ar_phi: 0.98,
            log_sd: 0.5,
            seed: 0x7C9,
        }
    }
}

impl TcpLikeConfig {
    /// The full-trace scale: 606 497 connections, as in the raw LBL data.
    pub fn full() -> Self {
        Self { total_events: 606_497, ..Self::default() }
    }

    /// Figure-11 style scaling: `n` subnets with the default per-subnet
    /// event rate (total events grow linearly with `n`).
    pub fn scaled_to(n: usize) -> Self {
        let base = Self::default();
        let per_subnet = base.total_events as f64 / base.subnets as f64;
        Self { subnets: n, total_events: (per_subnet * n as f64).round() as u64, ..base }
    }

    fn validate(&self) {
        assert!(self.subnets > 0, "subnets must be positive");
        assert!(self.days > 0.0, "days must be positive");
        assert!(self.zipf_exponent >= 0.0, "zipf exponent must be >= 0");
        assert!(self.log_level_spread >= 0.0 && self.log_sd >= 0.0, "spreads must be >= 0");
        assert!((0.0..1.0).contains(&self.ar_phi), "ar_phi must be in [0, 1)");
    }
}

/// Per-subnet AR(1) state.
struct Subnet {
    /// Long-run level `μ_i` of `log V`.
    mu: f64,
    /// Current `log V`.
    x: f64,
    rng: SimRng,
    interarrival: Exponential,
}

/// The TCP-like workload generator.
pub struct TcpLikeWorkload {
    config: TcpLikeConfig,
    subnets: Vec<Subnet>,
    initial: Vec<f64>,
    queue: EventQueue<StreamId>,
    innovation: Normal,
    emitted: u64,
}

impl TcpLikeWorkload {
    /// Builds the workload from a config; fully deterministic given
    /// `config.seed`.
    pub fn new(config: TcpLikeConfig) -> Self {
        config.validate();
        let mut master = SimRng::seed_from_u64(config.seed);
        let n = config.subnets;

        // Assign Zipf activity shares to subnets in a random order so that
        // subnet id does not correlate with traffic volume.
        let zipf = Zipf::new(n, config.zipf_exponent);
        let mut ranks: Vec<usize> = (1..=n).collect();
        master.shuffle(&mut ranks);

        let level = Normal::new(config.log_level_mean, config.log_level_spread);
        let start = Normal::new(0.0, config.log_sd);
        // AR(1) innovation sd keeping the stationary sd at log_sd:
        // sd_innov = log_sd * sqrt(1 - phi^2).
        let innov_sd = config.log_sd * (1.0 - config.ar_phi * config.ar_phi).sqrt();

        let mut subnets = Vec::with_capacity(n);
        let mut initial = Vec::with_capacity(n);
        let mut queue = EventQueue::with_capacity(n);
        for (i, &rank) in ranks.iter().enumerate() {
            let mut rng = master.derive(i as u64);
            let mu = level.sample(&mut rng);
            let x = mu + start.sample(&mut rng);
            initial.push(x.exp());
            // Expected events for this subnet over the whole trace.
            let share = zipf.pmf(rank);
            let expected = (config.total_events as f64 * share).max(1e-9);
            let mean_gap = config.days / expected;
            let interarrival = Exponential::with_mean(mean_gap);
            let first = interarrival.sample(&mut rng);
            queue.schedule(first, StreamId(i as u32));
            subnets.push(Subnet { mu, x, rng, interarrival });
        }
        Self { config, subnets, initial, queue, innovation: Normal::new(0.0, innov_sd), emitted: 0 }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TcpLikeConfig {
        &self.config
    }

    /// Events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.emitted
    }

    /// Advances one connection arrival: `(time, stream, value)`.
    fn step(&mut self) -> Option<(f64, StreamId, f64)> {
        if self.emitted >= self.config.total_events {
            return None;
        }
        let (time, stream) = self.queue.pop()?;
        let s = &mut self.subnets[stream.index()];
        let innov = self.innovation.sample(&mut s.rng);
        s.x = s.mu + self.config.ar_phi * (s.x - s.mu) + innov;
        let value = s.x.exp();
        let next = time + s.interarrival.sample(&mut s.rng);
        self.queue.schedule(next, stream);
        self.emitted += 1;
        Some((time, stream, value))
    }
}

impl Workload for TcpLikeWorkload {
    fn num_streams(&self) -> usize {
        self.config.subnets
    }

    fn initial_values(&self) -> Vec<f64> {
        self.initial.clone()
    }

    fn next_event(&mut self) -> Option<UpdateEvent> {
        let (time, stream, value) = self.step()?;
        Some(UpdateEvent { time, stream, value })
    }

    /// Native columnar generation: arrivals are written straight into the
    /// batch's three columns — no intermediate `UpdateEvent`s.
    fn next_batch(&mut self, max: usize, out: &mut EventBatch) -> usize {
        out.clear();
        while out.len() < max {
            match self.step() {
                Some((time, stream, value)) => out.push_parts(time, stream, value),
                None => break,
            }
        }
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TcpLikeConfig {
        TcpLikeConfig { subnets: 100, total_events: 5_000, seed: 9, ..Default::default() }
    }

    #[test]
    fn emits_exactly_total_events_in_order() {
        let mut w = TcpLikeWorkload::new(small());
        let mut last = 0.0;
        let mut count = 0u64;
        while let Some(ev) = w.next_event() {
            assert!(ev.time >= last);
            assert!(ev.value.is_finite() && ev.value > 0.0);
            last = ev.time;
            count += 1;
        }
        assert_eq!(count, 5_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = TcpLikeWorkload::new(small());
        let mut b = TcpLikeWorkload::new(small());
        assert_eq!(a.initial_values(), b.initial_values());
        for _ in 0..500 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn native_next_batch_equals_event_stream() {
        let mut by_event = TcpLikeWorkload::new(small());
        let mut by_batch = TcpLikeWorkload::new(small());
        let mut batch = EventBatch::new();
        loop {
            let n = by_batch.next_batch(97, &mut batch);
            let expected: Vec<UpdateEvent> =
                std::iter::from_fn(|| by_event.next_event()).take(97).collect();
            assert_eq!(batch.iter().collect::<Vec<_>>(), expected);
            assert_eq!(n, expected.len());
            if n == 0 {
                break;
            }
        }
        assert_eq!(by_batch.events_emitted(), by_event.events_emitted());
    }

    #[test]
    fn activity_is_skewed() {
        let mut w = TcpLikeWorkload::new(small());
        let mut counts = vec![0u64; 100];
        while let Some(ev) = w.next_event() {
            counts[ev.stream.index()] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = counts[..10].iter().sum();
        let total: u64 = counts.iter().sum();
        // Zipf(1.0) over 100 ranks: top 10 ranks carry ~56% of mass.
        let share = top10 as f64 / total as f64;
        assert!(share > 0.4, "top-10 share {share} not skewed enough");
    }

    #[test]
    fn values_are_heavy_tailed_around_500() {
        let w = TcpLikeWorkload::new(TcpLikeConfig { subnets: 2000, ..small() });
        let mut vals = w.initial_values();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        assert!((300.0..800.0).contains(&median), "median {median}");
        let max = *vals.last().unwrap();
        assert!(max > 5.0 * median, "no heavy tail: max {max}, median {median}");
        // A meaningful share sits in the paper's [400, 600] query range.
        let in_range = vals.iter().filter(|v| (400.0..=600.0).contains(*v)).count();
        let frac = in_range as f64 / vals.len() as f64;
        assert!((0.05..0.4).contains(&frac), "fraction in [400,600]: {frac}");
    }

    #[test]
    fn per_subnet_values_persist() {
        // Autocorrelation: consecutive values of one subnet stay closer (in
        // log space) than values of random other subnets.
        let mut w = TcpLikeWorkload::new(small());
        let mut last: Vec<Option<f64>> = vec![None; 100];
        let mut same_diff = simkit::RunningStats::new();
        let mut all_vals = Vec::new();
        while let Some(ev) = w.next_event() {
            let lv = ev.value.ln();
            if let Some(prev) = last[ev.stream.index()] {
                same_diff.push((lv - prev).abs());
            }
            last[ev.stream.index()] = Some(lv);
            all_vals.push(lv);
        }
        // Cross-sectional spread of log values.
        let mut cross = simkit::RunningStats::new();
        for v in &all_vals {
            cross.push(*v);
        }
        assert!(
            same_diff.mean() < cross.stddev(),
            "consecutive same-subnet moves ({}) should be smaller than the cross-section spread ({})",
            same_diff.mean(),
            cross.stddev()
        );
    }

    #[test]
    fn scaled_config_keeps_per_subnet_rate() {
        let a = TcpLikeConfig::scaled_to(400);
        let b = TcpLikeConfig::scaled_to(1600);
        let rate_a = a.total_events as f64 / a.subnets as f64;
        let rate_b = b.total_events as f64 / b.subnets as f64;
        assert!((rate_a - rate_b).abs() < 1.0);
    }

    #[test]
    fn full_preset_matches_lbl_scale() {
        assert_eq!(TcpLikeConfig::full().total_events, 606_497);
    }
}
