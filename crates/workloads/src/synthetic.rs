//! The synthetic data model of §6.2.
//!
//! > "We assume 5000 data streams, and data values are initially uniformly
//! > distributed in the range [0, 1000]. The time between each data item is
//! > generated follows an exponential distribution with a mean of 20 time
//! > units. When a new data value is generated, its difference from the
//! > previous value follows a normal distribution with a mean of 0 and
//! > standard deviation (σ) of 20."
//!
//! The paper does not state a boundary rule; we reflect the random walk at
//! the range edges, which preserves the uniform stationary distribution so
//! that arbitrarily long runs stay comparable (DESIGN.md §5).

use asf_core::workload::{EventBatch, UpdateEvent, Workload};
use simkit::dist::Sample;
use simkit::{reflect_into, EventQueue, Exponential, Normal, SimRng, Uniform};
use streamnet::StreamId;

/// Parameters of the synthetic model. Defaults are the paper's.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Number of streams (paper: 5000).
    pub num_streams: usize,
    /// Value domain, values reflect at the edges (paper: `[0, 1000]`).
    pub value_range: (f64, f64),
    /// Mean exponential inter-arrival time per stream (paper: 20).
    pub mean_interarrival: f64,
    /// Standard deviation of the Gaussian step (paper sweeps 20..100).
    pub sigma: f64,
    /// Simulation horizon in time units; events beyond it are not emitted.
    pub horizon: f64,
    /// RNG seed; everything is deterministic given this.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            num_streams: 5000,
            value_range: (0.0, 1000.0),
            mean_interarrival: 20.0,
            sigma: 20.0,
            horizon: 1000.0,
            seed: 0x5EED,
        }
    }
}

impl SyntheticConfig {
    fn validate(&self) {
        assert!(self.num_streams > 0, "num_streams must be positive");
        let (lo, hi) = self.value_range;
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid value range");
        assert!(self.mean_interarrival > 0.0, "mean inter-arrival must be positive");
        assert!(self.sigma >= 0.0, "sigma must be non-negative");
        assert!(self.horizon >= 0.0, "horizon must be non-negative");
    }
}

/// The §6.2 random-walk workload.
pub struct SyntheticWorkload {
    config: SyntheticConfig,
    values: Vec<f64>,
    initial: Vec<f64>,
    rngs: Vec<SimRng>,
    queue: EventQueue<StreamId>,
    interarrival: Exponential,
    step: Normal,
    events_emitted: u64,
}

impl SyntheticWorkload {
    /// Builds the workload; initial values and all future arrivals are
    /// derived from `config.seed`.
    pub fn new(config: SyntheticConfig) -> Self {
        config.validate();
        let mut master = SimRng::seed_from_u64(config.seed);
        let (lo, hi) = config.value_range;
        let uniform = Uniform::new(lo, hi);
        let interarrival = Exponential::with_mean(config.mean_interarrival);

        let mut values = Vec::with_capacity(config.num_streams);
        let mut rngs = Vec::with_capacity(config.num_streams);
        let mut queue = EventQueue::with_capacity(config.num_streams);
        for i in 0..config.num_streams {
            let mut rng = master.derive(i as u64);
            values.push(uniform.sample(&mut rng));
            let first = interarrival.sample(&mut rng);
            if first <= config.horizon {
                queue.schedule(first, StreamId(i as u32));
            }
            rngs.push(rng);
        }
        let initial = values.clone();
        Self {
            config,
            values,
            initial,
            rngs,
            queue,
            interarrival,
            step: Normal::new(0.0, config.sigma),
            events_emitted: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Advances the walk by one arrival: `(time, stream, value)`.
    fn step(&mut self) -> Option<(f64, StreamId, f64)> {
        let (time, stream) = self.queue.pop()?;
        let i = stream.index();
        let (lo, hi) = self.config.value_range;
        let delta = self.step.sample(&mut self.rngs[i]);
        let value = reflect_into(self.values[i] + delta, lo, hi);
        self.values[i] = value;
        let next = time + self.interarrival.sample(&mut self.rngs[i]);
        if next <= self.config.horizon {
            self.queue.schedule(next, stream);
        }
        self.events_emitted += 1;
        Some((time, stream, value))
    }
}

impl Workload for SyntheticWorkload {
    fn num_streams(&self) -> usize {
        self.config.num_streams
    }

    fn initial_values(&self) -> Vec<f64> {
        self.initial.clone()
    }

    fn next_event(&mut self) -> Option<UpdateEvent> {
        let (time, stream, value) = self.step()?;
        Some(UpdateEvent { time, stream, value })
    }

    /// Native columnar generation: each arrival is written straight into
    /// the batch's three columns — no intermediate `UpdateEvent`s.
    fn next_batch(&mut self, max: usize, out: &mut EventBatch) -> usize {
        out.clear();
        while out.len() < max {
            match self.step() {
                Some((time, stream, value)) => out.push_parts(time, stream, value),
                None => break,
            }
        }
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticConfig {
        SyntheticConfig { num_streams: 50, horizon: 500.0, seed: 42, ..Default::default() }
    }

    #[test]
    fn events_are_time_ordered_and_in_domain() {
        let mut w = SyntheticWorkload::new(small());
        let mut last = 0.0;
        let mut count = 0;
        while let Some(ev) = w.next_event() {
            assert!(ev.time >= last, "time went backwards");
            assert!((0.0..=1000.0).contains(&ev.value));
            assert!(ev.stream.index() < 50);
            assert!(ev.time <= 500.0);
            last = ev.time;
            count += 1;
        }
        // ~ 50 streams * 500/20 = 1250 expected events.
        assert!((1000..1500).contains(&count), "got {count} events");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SyntheticWorkload::new(small());
        let mut b = SyntheticWorkload::new(small());
        assert_eq!(a.initial_values(), b.initial_values());
        for _ in 0..200 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small();
        cfg.seed = 1;
        let a = SyntheticWorkload::new(cfg);
        cfg.seed = 2;
        let b = SyntheticWorkload::new(cfg);
        assert_ne!(a.initial_values(), b.initial_values());
    }

    #[test]
    fn initial_values_roughly_uniform() {
        let cfg = SyntheticConfig { num_streams: 5000, ..Default::default() };
        let w = SyntheticWorkload::new(cfg);
        let vals = w.initial_values();
        let in_range = vals.iter().filter(|v| (400.0..=600.0).contains(*v)).count();
        // Expect ~20% in [400, 600].
        let frac = in_range as f64 / vals.len() as f64;
        assert!((0.17..0.23).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn sigma_zero_keeps_values_fixed() {
        let cfg = SyntheticConfig { sigma: 0.0, ..small() };
        let mut w = SyntheticWorkload::new(cfg);
        let initial = w.initial_values();
        while let Some(ev) = w.next_event() {
            assert_eq!(ev.value, initial[ev.stream.index()]);
        }
    }

    #[test]
    fn larger_sigma_moves_further() {
        let drift = |sigma: f64| {
            let cfg = SyntheticConfig { sigma, ..small() };
            let mut w = SyntheticWorkload::new(cfg);
            let initial = w.initial_values();
            let mut total = 0.0;
            let mut events = 0;
            while let Some(ev) = w.next_event() {
                total += (ev.value - initial[ev.stream.index()]).abs();
                events += 1;
            }
            total / events as f64
        };
        assert!(drift(100.0) > drift(20.0));
    }

    #[test]
    fn native_next_batch_equals_event_stream() {
        let mut by_event = SyntheticWorkload::new(small());
        let mut by_batch = SyntheticWorkload::new(small());
        let mut batch = EventBatch::new();
        loop {
            let n = by_batch.next_batch(33, &mut batch);
            let expected: Vec<UpdateEvent> =
                std::iter::from_fn(|| by_event.next_event()).take(33).collect();
            assert_eq!(batch.iter().collect::<Vec<_>>(), expected);
            assert_eq!(n, expected.len());
            if n == 0 {
                break;
            }
        }
        assert_eq!(by_batch.events_emitted(), by_event.events_emitted());
    }

    #[test]
    fn zero_horizon_emits_nothing() {
        let cfg = SyntheticConfig { horizon: 0.0, ..small() };
        let mut w = SyntheticWorkload::new(cfg);
        assert!(w.next_event().is_none());
    }
}
