//! 2-D random-walk workload for the multi-dimensional extension
//! (`asf_core::multidim`): objects move in a bounded box with Gaussian
//! steps per axis, reflected at the edges — the 2-D analogue of the §6.2
//! synthetic model, standing in for the location-monitoring workloads the
//! paper's introduction motivates.

use asf_core::multidim::engine2d::{MoveEvent, Workload2d};
use asf_core::multidim::Point2;
use simkit::dist::Sample;
use simkit::{reflect_into, EventQueue, Exponential, Normal, SimRng, Uniform};
use streamnet::StreamId;

/// Parameters of the 2-D walk.
#[derive(Clone, Copy, Debug)]
pub struct Walk2dConfig {
    /// Number of moving objects.
    pub num_objects: usize,
    /// Box extents: positions live in `[0, width] x [0, height]`.
    pub width: f64,
    /// Box height.
    pub height: f64,
    /// Mean exponential inter-movement time per object.
    pub mean_interarrival: f64,
    /// Per-axis Gaussian step deviation.
    pub sigma: f64,
    /// Simulation horizon.
    pub horizon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Walk2dConfig {
    fn default() -> Self {
        Self {
            num_objects: 1000,
            width: 1000.0,
            height: 1000.0,
            mean_interarrival: 20.0,
            sigma: 20.0,
            horizon: 1000.0,
            seed: 0x2D,
        }
    }
}

impl Walk2dConfig {
    fn validate(&self) {
        assert!(self.num_objects > 0, "need at least one object");
        assert!(self.width > 0.0 && self.height > 0.0, "box must be non-degenerate");
        assert!(self.mean_interarrival > 0.0, "mean inter-arrival must be positive");
        assert!(self.sigma >= 0.0 && self.horizon >= 0.0, "sigma/horizon must be >= 0");
    }
}

/// The 2-D reflected random-walk workload.
pub struct Walk2dWorkload {
    config: Walk2dConfig,
    positions: Vec<Point2>,
    initial: Vec<Point2>,
    rngs: Vec<SimRng>,
    queue: EventQueue<StreamId>,
    interarrival: Exponential,
    step: Normal,
}

impl Walk2dWorkload {
    /// Builds the workload; deterministic given `config.seed`.
    pub fn new(config: Walk2dConfig) -> Self {
        config.validate();
        let mut master = SimRng::seed_from_u64(config.seed);
        let ux = Uniform::new(0.0, config.width);
        let uy = Uniform::new(0.0, config.height);
        let interarrival = Exponential::with_mean(config.mean_interarrival);

        let mut positions = Vec::with_capacity(config.num_objects);
        let mut rngs = Vec::with_capacity(config.num_objects);
        let mut queue = EventQueue::with_capacity(config.num_objects);
        for i in 0..config.num_objects {
            let mut rng = master.derive(i as u64);
            positions.push(Point2::new(ux.sample(&mut rng), uy.sample(&mut rng)));
            let first = interarrival.sample(&mut rng);
            if first <= config.horizon {
                queue.schedule(first, StreamId(i as u32));
            }
            rngs.push(rng);
        }
        let initial = positions.clone();
        Self {
            config,
            positions,
            initial,
            rngs,
            queue,
            interarrival,
            step: Normal::new(0.0, config.sigma),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &Walk2dConfig {
        &self.config
    }
}

impl Workload2d for Walk2dWorkload {
    fn num_streams(&self) -> usize {
        self.config.num_objects
    }

    fn initial_positions(&self) -> Vec<Point2> {
        self.initial.clone()
    }

    fn next_event(&mut self) -> Option<MoveEvent> {
        let (time, stream) = self.queue.pop()?;
        let i = stream.index();
        let rng = &mut self.rngs[i];
        let dx = self.step.sample(rng);
        let dy = self.step.sample(rng);
        let prev = self.positions[i];
        let to = Point2::new(
            reflect_into(prev.x + dx, 0.0, self.config.width),
            reflect_into(prev.y + dy, 0.0, self.config.height),
        );
        self.positions[i] = to;
        let next = time + self.interarrival.sample(rng);
        if next <= self.config.horizon {
            self.queue.schedule(next, stream);
        }
        Some(MoveEvent { time, stream, to })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Walk2dConfig {
        Walk2dConfig { num_objects: 30, horizon: 300.0, seed: 17, ..Default::default() }
    }

    #[test]
    fn events_ordered_and_in_box() {
        let mut w = Walk2dWorkload::new(small());
        let mut last = 0.0;
        let mut count = 0;
        while let Some(ev) = w.next_event() {
            assert!(ev.time >= last);
            assert!((0.0..=1000.0).contains(&ev.to.x) && (0.0..=1000.0).contains(&ev.to.y));
            last = ev.time;
            count += 1;
        }
        assert!(count > 200, "got only {count} events");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Walk2dWorkload::new(small());
        let mut b = Walk2dWorkload::new(small());
        assert_eq!(a.initial_positions(), b.initial_positions());
        for _ in 0..100 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn movement_scale_follows_sigma() {
        let avg_step = |sigma: f64| {
            let mut w = Walk2dWorkload::new(Walk2dConfig { sigma, ..small() });
            let mut prev = w.initial_positions();
            let mut total = 0.0;
            let mut n = 0;
            while let Some(ev) = w.next_event() {
                total += prev[ev.stream.index()].distance(ev.to);
                prev[ev.stream.index()] = ev.to;
                n += 1;
            }
            total / n as f64
        };
        assert!(avg_step(50.0) > avg_step(10.0));
    }
}
