//! # workloads — stream workload generators
//!
//! Implements the two data models of the paper's evaluation (§6):
//!
//! * [`synthetic::SyntheticWorkload`] — §6.2's synthetic model: values
//!   initially uniform in `[0, 1000]`, exponential inter-arrival times
//!   (mean 20 time units), and Gaussian `N(0, σ)` steps;
//! * [`tcp_like::TcpLikeWorkload`] — a from-scratch substitute for the LBL
//!   Internet Traffic Archive TCP traces used in §6.1 (which we cannot
//!   ship): 800 subnets with Zipf-distributed activity and log-AR(1) byte
//!   values. See DESIGN.md §5 for the substitution argument.
//!
//! Plus [`walk2d::Walk2dWorkload`] — a 2-D reflected random walk for the
//! multi-dimensional extension — and [`trace`], a tiny text format to
//! persist/replay generated traces deterministically.
//!
//! All generators implement [`asf_core::workload::Workload`] and are fully
//! deterministic given their seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod synthetic;
pub mod tcp_like;
pub mod trace;
pub mod walk2d;

pub use synthetic::{SyntheticConfig, SyntheticWorkload};
pub use tcp_like::{TcpLikeConfig, TcpLikeWorkload};
pub use walk2d::{Walk2dConfig, Walk2dWorkload};
