//! Durable filter state: a write-ahead journal of committed input chunks
//! plus periodic double-buffered checkpoints, built on `asf-persist`.
//!
//! ## Ordering contract
//!
//! The coordinator journals every ingestion chunk **before** applying it
//! (write-ahead), and syncs the append — so a chunk whose effects are in
//! memory is always replayable from disk. Checkpoints are taken at chunk
//! boundaries (SpecLog quiescence: every shard's speculation committed, no
//! pending reports), keyed by the coordinator's event sequence number.
//! Because the sharded runtime is byte-identical to the serial engine for
//! *any* chunking, replaying the journal suffix after loading a checkpoint
//! reproduces the pre-crash server exactly — answers, ledgers, views, and
//! rank order.
//!
//! ## Checkpoint modes
//!
//! * [`CheckpointMode::Background`] (default): serialization happens on the
//!   coordinator (that cost is the metered `checkpoint_ns`), but the
//!   `fsync`+rename runs on a dedicated writer thread behind a bounded
//!   channel of depth 1 — if the writer is still busy with the previous
//!   checkpoint, the new one is *coalesced* (skipped; retried at the next
//!   boundary), so ingest never blocks on checkpoint I/O.
//! * [`CheckpointMode::Sync`]: the save happens inline. Deterministic, and
//!   the mode under which checkpoint crash injection is supported.
//!
//! ## Poisoning
//!
//! The ingest path is not `Result`-typed, so a journal write failure
//! (including an injected [`CrashPoint`][asf_persist::CrashPoint] tear)
//! **poisons** the durability handle: the failing chunk and everything
//! after it are dropped, un-applied — exactly the state a process that
//! died mid-`write(2)` would leave behind. Tests then recover from the
//! directory and compare against a reference server fed only the durable
//! prefix.
//!
//! ## Compaction
//!
//! The journal is bounded by segment rotation: once the active file
//! crosses [`DurabilityConfig::rotate_journal_bytes`], it is sealed into
//! an immutable `journal-<k>.seg` segment and a fresh active file takes
//! over. Sealed segments older than the newest **durable** checkpoint —
//! tracked by a floor the checkpoint writer publishes only *after* a save
//! fully lands (so a queued-but-unwritten background checkpoint never
//! licenses a prune) — are deleted at the same quiescent boundaries.
//! Recovery replays segments in index order before the active file, so
//! compaction is invisible to the recovery differential.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use asf_persist::{Journal, PersistError, RotateStep, SnapshotStore};

/// Configuration of a server's durability layer.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding `snap-a.bin` / `snap-b.bin` / `journal.log`
    /// (created if missing).
    pub dir: PathBuf,
    /// Take a checkpoint once at least this many events have been ingested
    /// since the last one (checked at chunk boundaries; clamped to ≥ 1).
    pub checkpoint_every_events: u64,
    /// Inline or background checkpoint writes.
    pub mode: CheckpointMode,
    /// Rotate the active journal into a sealed segment once it crosses
    /// this many bytes (checked at chunk boundaries); segments wholly
    /// superseded by a durable checkpoint are then pruned. `None`
    /// disables rotation (the pre-compaction unbounded-growth behavior).
    pub rotate_journal_bytes: Option<u64>,
}

impl DurabilityConfig {
    /// Durability in `dir` with the default cadence (one checkpoint per
    /// 65 536 events), background checkpoint writes, and journal rotation
    /// at 8 MiB.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            checkpoint_every_events: 65_536,
            mode: CheckpointMode::Background,
            rotate_journal_bytes: Some(8 * 1024 * 1024),
        }
    }

    /// Sets the checkpoint cadence in events.
    pub fn checkpoint_every(mut self, events: u64) -> Self {
        self.checkpoint_every_events = events;
        self
    }

    /// Sets the checkpoint write mode.
    pub fn mode(mut self, mode: CheckpointMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the journal rotation threshold in bytes (`None` disables
    /// rotation and pruning).
    pub fn rotate_journal_every(mut self, bytes: Option<u64>) -> Self {
        self.rotate_journal_bytes = bytes;
        self
    }
}

/// How checkpoint images reach disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckpointMode {
    /// Hand the serialized image to a dedicated writer thread (bounded
    /// queue of 1; a busy writer coalesces the checkpoint). Ingest never
    /// blocks on checkpoint `fsync`. The default.
    #[default]
    Background,
    /// Write and `fsync` inline on the coordinator. Deterministic; the
    /// mode crash-injection tests use.
    Sync,
}

enum Writer {
    Sync(SnapshotStore),
    Background { tx: SyncSender<(u64, Vec<u8>)>, join: JoinHandle<()> },
}

impl std::fmt::Debug for Writer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Writer::Sync(_) => f.write_str("Writer::Sync"),
            Writer::Background { .. } => f.write_str("Writer::Background"),
        }
    }
}

/// The attached durability runtime of one [`crate::ShardedServer`]: the
/// open write-ahead journal, the checkpoint writer, and the poison latch.
#[derive(Debug)]
pub struct Durability {
    journal: Journal,
    writer: Writer,
    checkpoint_every_events: u64,
    last_checkpoint_seq: u64,
    rotate_journal_bytes: Option<u64>,
    /// Newest checkpoint sequence that has **fully landed on disk** —
    /// published by the writer only after a successful save (the
    /// background thread stores it post-`fsync`), so pruning against it
    /// never outruns durability.
    durable_floor: Arc<AtomicU64>,
    /// First write failure, if any — once set, every subsequent journal or
    /// checkpoint operation is refused (the on-disk state is frozen at the
    /// durable prefix, as a real crash would leave it).
    poisoned: Option<String>,
}

impl Durability {
    /// Opens the journal and snapshot store in `cfg.dir`, durably writes
    /// the **anchor checkpoint** `(anchor_seq, anchor_state)` inline — the
    /// baseline that makes the journal's first post-attach entry reachable
    /// from a checkpoint — then stands up the configured writer.
    ///
    /// Opening the journal truncates any torn tail a previous crash left.
    pub fn new(
        cfg: &DurabilityConfig,
        anchor_seq: u64,
        anchor_state: &[u8],
    ) -> asf_persist::Result<Self> {
        let journal = Journal::open(&cfg.dir)?;
        let mut store = SnapshotStore::open(&cfg.dir)?;
        store.save(anchor_seq, anchor_state)?;
        // The anchor save above ran inline, so it is already durable.
        let durable_floor = Arc::new(AtomicU64::new(anchor_seq));
        let writer = match cfg.mode {
            CheckpointMode::Sync => Writer::Sync(store),
            CheckpointMode::Background => Self::spawn_writer(store, Arc::clone(&durable_floor))?,
        };
        Ok(Self {
            journal,
            writer,
            checkpoint_every_events: cfg.checkpoint_every_events.max(1),
            last_checkpoint_seq: anchor_seq,
            rotate_journal_bytes: cfg.rotate_journal_bytes,
            durable_floor,
            poisoned: None,
        })
    }

    /// Re-attaches to an existing durability directory after recovery
    /// **without** writing a fresh checkpoint: the on-disk snapshot + the
    /// journal already cover the recovered state, so re-anchoring would
    /// only add an O(state) write to the recovery path. The caller hands
    /// over the [`SnapshotStore`] and [`Journal`] it already opened
    /// (recovery reads the checkpoint and replays through them), so
    /// neither file is re-scanned. `resume_seq` is the sequence of the
    /// checkpoint recovery loaded (0 on a cold recovery); the checkpoint
    /// cadence counts from there, so a server that replayed a long suffix
    /// re-checkpoints at its next chunk boundary.
    pub fn attach(
        cfg: &DurabilityConfig,
        store: SnapshotStore,
        journal: Journal,
        resume_seq: u64,
    ) -> asf_persist::Result<Self> {
        // The checkpoint recovery loaded (`resume_seq`) is durable by
        // definition — it was read back off the disk.
        let durable_floor = Arc::new(AtomicU64::new(resume_seq));
        let writer = match cfg.mode {
            CheckpointMode::Sync => Writer::Sync(store),
            CheckpointMode::Background => Self::spawn_writer(store, Arc::clone(&durable_floor))?,
        };
        Ok(Self {
            journal,
            writer,
            checkpoint_every_events: cfg.checkpoint_every_events.max(1),
            last_checkpoint_seq: resume_seq,
            rotate_journal_bytes: cfg.rotate_journal_bytes,
            durable_floor,
            poisoned: None,
        })
    }

    fn spawn_writer(
        mut store: SnapshotStore,
        floor: Arc<AtomicU64>,
    ) -> asf_persist::Result<Writer> {
        let (tx, rx) = mpsc::sync_channel::<(u64, Vec<u8>)>(1);
        let join = std::thread::Builder::new()
            .name("asf-checkpoint".into())
            .spawn(move || {
                while let Ok((seq, state)) = rx.recv() {
                    // A failed background save leaves the previous
                    // checkpoint selectable; the next boundary retries.
                    // The floor advances only after the save fully lands.
                    if store.save(seq, &state).is_ok() {
                        floor.store(seq, Ordering::Release);
                    }
                }
            })
            .map_err(PersistError::Io)?;
        Ok(Writer::Background { tx, join })
    }

    /// Appends one committed chunk (keyed by the event sequence it starts
    /// at) and syncs — the write-ahead barrier before the chunk applies.
    /// Any failure poisons the handle.
    pub fn journal_chunk(&mut self, seq: u64, payload: &[u8]) -> asf_persist::Result<()> {
        self.check_poison()?;
        match self.journal.append(seq, payload).and_then(|()| self.journal.sync()) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poisoned = Some(e.to_string());
                Err(e)
            }
        }
    }

    /// Whether the checkpoint cadence is due at event sequence `seq`.
    pub fn should_checkpoint(&self, seq: u64) -> bool {
        self.poisoned.is_none()
            && seq.saturating_sub(self.last_checkpoint_seq) >= self.checkpoint_every_events
    }

    /// Persists (or schedules) a checkpoint of `state` taken at `seq`.
    /// Returns `Ok(true)` if the checkpoint was written/queued, `Ok(false)`
    /// if a busy background writer coalesced it (retried at the next
    /// boundary).
    pub fn save_checkpoint(&mut self, seq: u64, state: Vec<u8>) -> asf_persist::Result<bool> {
        self.check_poison()?;
        match &mut self.writer {
            Writer::Sync(store) => match store.save(seq, &state) {
                Ok(()) => {
                    self.last_checkpoint_seq = seq;
                    self.durable_floor.store(seq, Ordering::Release);
                    Ok(true)
                }
                Err(e) => {
                    self.poisoned = Some(e.to_string());
                    Err(e)
                }
            },
            Writer::Background { tx, .. } => match tx.try_send((seq, state)) {
                Ok(()) => {
                    self.last_checkpoint_seq = seq;
                    Ok(true)
                }
                Err(TrySendError::Full(_)) => Ok(false),
                Err(TrySendError::Disconnected(_)) => {
                    self.poisoned = Some("checkpoint writer thread died".into());
                    Err(PersistError::corrupt("checkpoint writer thread died"))
                }
            },
        }
    }

    /// Total journal footprint in bytes (headers included): the active
    /// file plus every sealed segment not yet pruned.
    pub fn journal_bytes(&self) -> u64 {
        self.journal.total_bytes()
    }

    /// Compaction step, run at chunk-end quiescence: rotates the active
    /// journal into a sealed segment once it crosses the configured
    /// threshold, then prunes sealed segments wholly superseded by the
    /// durable-checkpoint floor. Any failure poisons the handle (a crash
    /// mid-rotation leaves disk state only a reopen can re-validate).
    /// A no-op when rotation is disabled or the handle is poisoned.
    pub fn maybe_compact(&mut self) -> asf_persist::Result<()> {
        self.check_poison()?;
        let Some(threshold) = self.rotate_journal_bytes else {
            return Ok(());
        };
        if self.journal.len_bytes() >= threshold {
            if let Err(e) = self.journal.rotate() {
                self.poisoned = Some(e.to_string());
                return Err(e);
            }
        }
        if self.journal.sealed_segments() > 0 {
            let floor = self.durable_floor.load(Ordering::Acquire);
            if let Err(e) = self.journal.prune_segments(floor) {
                self.poisoned = Some(e.to_string());
                return Err(e);
            }
        }
        Ok(())
    }

    /// How many journal rotations this directory has ever performed.
    pub fn journal_rotations(&self) -> u64 {
        self.journal.rotations()
    }

    /// How many sealed journal segments are currently on disk.
    pub fn journal_sealed_segments(&self) -> usize {
        self.journal.sealed_segments()
    }

    /// Newest checkpoint sequence known to have fully landed on disk.
    pub fn durable_floor(&self) -> u64 {
        self.durable_floor.load(Ordering::Acquire)
    }

    /// Whether an earlier write failure froze this handle.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// The first write failure, if any.
    pub fn poison_reason(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Arms the journal's byte-budget crash injector: the next `bytes`
    /// journal bytes land, everything after tears (see
    /// [`asf_persist::CrashPoint`]).
    pub fn arm_journal_crash(&mut self, bytes: u64) {
        self.journal.set_crash_after(bytes);
    }

    /// Arms a crash at `step` of the next journal rotation (see
    /// [`RotateStep`]).
    pub fn arm_rotate_crash(&mut self, step: RotateStep) {
        self.journal.set_rotate_crash(step);
    }

    /// Arms the checkpoint store's crash injector.
    ///
    /// # Panics
    ///
    /// Panics unless the handle runs [`CheckpointMode::Sync`] — the
    /// background writer owns its store and cannot be armed
    /// deterministically.
    pub fn arm_checkpoint_crash(&mut self, bytes: u64) {
        match &mut self.writer {
            Writer::Sync(store) => store.set_crash_after(bytes),
            Writer::Background { .. } => {
                panic!("checkpoint crash injection requires CheckpointMode::Sync")
            }
        }
    }

    /// Stops the background writer (if any), draining its queue first so
    /// every scheduled checkpoint lands.
    pub fn shutdown(self) {
        let Durability { journal, writer, .. } = self;
        drop(journal);
        if let Writer::Background { tx, join } = writer {
            drop(tx);
            let _ = join.join();
        }
    }

    fn check_poison(&self) -> asf_persist::Result<()> {
        if self.poisoned.is_some() {
            return Err(PersistError::corrupt("durability poisoned by an earlier write failure"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("asf-server-durability-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn anchor_checkpoint_lands_before_any_journaling() {
        let dir = test_dir("anchor");
        let cfg = DurabilityConfig::new(&dir).mode(CheckpointMode::Sync);
        let d = Durability::new(&cfg, 42, b"anchor-state").unwrap();
        drop(d);
        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.latest().unwrap(), Some((42, b"anchor-state".to_vec())));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_tear_poisons_and_freezes_the_handle() {
        let dir = test_dir("poison");
        let cfg = DurabilityConfig::new(&dir).mode(CheckpointMode::Sync);
        let mut d = Durability::new(&cfg, 0, b"s").unwrap();
        d.journal_chunk(0, b"durable").unwrap();
        d.arm_journal_crash(3);
        assert!(matches!(d.journal_chunk(1, b"torn"), Err(PersistError::InjectedCrash)));
        assert!(d.is_poisoned());
        // Everything after the tear is refused — the disk state is frozen.
        assert!(d.journal_chunk(2, b"late").is_err());
        assert!(d.save_checkpoint(2, b"late".to_vec()).is_err());
        assert!(!d.should_checkpoint(u64::MAX));
        drop(d);
        // Reopen truncates the torn tail; only the durable entry replays.
        let entries = Journal::read_all(&dir).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].payload, b"durable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_cadence_counts_from_the_last_landed_checkpoint() {
        let dir = test_dir("cadence");
        let cfg = DurabilityConfig::new(&dir).checkpoint_every(100).mode(CheckpointMode::Sync);
        let mut d = Durability::new(&cfg, 0, b"s").unwrap();
        assert!(!d.should_checkpoint(99));
        assert!(d.should_checkpoint(100));
        assert!(d.save_checkpoint(100, b"c1".to_vec()).unwrap());
        assert!(!d.should_checkpoint(150));
        assert!(d.should_checkpoint(200));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rotates_and_prunes_behind_the_durable_floor() {
        let dir = test_dir("compact");
        let cfg = DurabilityConfig::new(&dir)
            .mode(CheckpointMode::Sync)
            .checkpoint_every(10)
            .rotate_journal_every(Some(64));
        let mut d = Durability::new(&cfg, 0, b"anchor").unwrap();
        assert_eq!(d.durable_floor(), 0);

        // Fill past the threshold: the next compact rotates, but the
        // floor is still at the anchor so nothing may be pruned.
        for seq in 0..4u64 {
            d.journal_chunk(seq * 10, &[7u8; 32]).unwrap();
        }
        d.maybe_compact().unwrap();
        assert_eq!(d.journal_rotations(), 1);
        assert_eq!(d.journal_sealed_segments(), 1);

        // A durable checkpoint past the sealed entries licenses the prune.
        assert!(d.save_checkpoint(40, b"ckpt".to_vec()).unwrap());
        assert_eq!(d.durable_floor(), 40);
        d.maybe_compact().unwrap();
        assert_eq!(d.journal_sealed_segments(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_crash_poisons_the_handle() {
        let dir = test_dir("rot-poison");
        let cfg =
            DurabilityConfig::new(&dir).mode(CheckpointMode::Sync).rotate_journal_every(Some(16));
        let mut d = Durability::new(&cfg, 0, b"s").unwrap();
        d.journal_chunk(0, b"durable").unwrap();
        d.arm_rotate_crash(RotateStep::AfterRename);
        assert!(matches!(d.maybe_compact(), Err(PersistError::InjectedCrash)));
        assert!(d.is_poisoned());
        assert!(d.journal_chunk(1, b"late").is_err());
        drop(d);
        // The sealed entry is still replayable after the mid-rotation
        // crash (journal.log is gone; the segment holds it).
        let entries = Journal::read_all(&dir).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].payload, b"durable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_writer_drains_on_shutdown() {
        let dir = test_dir("bg");
        let cfg = DurabilityConfig::new(&dir).mode(CheckpointMode::Background);
        let mut d = Durability::new(&cfg, 0, b"anchor").unwrap();
        assert!(d.save_checkpoint(10, b"ten".to_vec()).unwrap());
        d.shutdown();
        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.latest().unwrap().unwrap().0, 10);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
