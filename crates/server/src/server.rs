//! The coordinator: batched ingestion with optimistic, touch-invalidated
//! commits.
//!
//! ## The commit protocol
//!
//! A window of time-ordered events — a range of the chunk's shared
//! columnar [`EventBatch`], sequence-stamped by position — reaches the
//! shards either by **broadcast** (one `Arc` clone per shard; each shard
//! selects the events it owns, the default) or by **eager scatter**
//! (coordinator-built per-shard slices, the baseline); see
//! [`ScatterMode`]. Each shard evaluates its
//! slice **optimistically** — silent updates apply, filter violations
//! tentatively become delivered reports — and returns its violations. The
//! coordinator merges the per-shard report streams in sequence order and
//! feeds them to the protocol core one by one, exactly as the serial
//! engine would.
//!
//! Sources are independent, so this speculation is *provably* serial-exact
//! for as long as report handling touches no source state: a handler that
//! only mutates protocol bookkeeping (the common case for quiet
//! maintenance — ZT/FT range protocols, RTP cases 1–2, multi-query cell
//! tracking) invalidates nothing, and a whole window commits in a single
//! scatter/gather round. The first handler action that *does* touch the
//! fleet — an install, probe, broadcast, or delivery — trips the
//! [`crate::router::GuardedRouter`]: every shard rolls its speculation
//! back to just past the report being handled, the action executes against
//! that exact serial state, the remaining speculative reports are
//! discarded, and evaluation resumes after the cut.
//!
//! The window size adapts to the observed cut density (deterministically —
//! it depends only on the event/report sequence, never on timing), so
//! redeploy-heavy protocols pay bounded re-evaluation while silent-heavy
//! workloads stream at full window width.
//!
//! Two coordinator schedules share the helpers in this module: the serial
//! window-at-a-time baseline below, and the **pipelined** double-buffered
//! coordinator of [`crate::pipeline`] (the default), which drains window
//! *t*'s reports while the shards already evaluate window *t+1*.

use std::sync::Arc;
use std::time::Instant;

use asf_core::engine::{ProtocolCore, RankMode};
use asf_core::protocol::{CtxStats, Protocol};
use asf_core::rank::RankForest;
use asf_core::workload::{EventBatch, UpdateEvent, Workload};
use asf_core::AnswerSet;
use asf_persist::{Journal, PersistError, SnapshotStore, StateReader, StateWriter};
use asf_telemetry::{chrome_trace, Cause, Registry, TraceDepth, TraceEvent, TraceRing};
use simkit::SimTime;
use streamnet::{
    ChaosConfig, ChaosFleet, ChaosState, ChaosStats, Ledger, MessageKind, ReportFate, ServerView,
    SourceFleet, StreamId,
};

use crate::durability::{Durability, DurabilityConfig};
use crate::handle::{ExecMode, ShardHandle};
use crate::metrics::ServerMetrics;
use crate::pipeline::CoordMode;
use crate::router::{GuardedRouter, InflightWindow, ShardRouter};
use crate::shard::{Partition, Shard, ShardCmd, ShardReply, SpecEvent};

/// Smallest adaptive evaluation window (events per round).
pub(crate) const MIN_WINDOW: usize = 32;

/// How evaluation windows reach the shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScatterMode {
    /// The coordinator partitions each window into per-shard `SpecEvent`
    /// vectors and sends every shard its slice — O(events) coordinator
    /// copies per window. Kept as the differential baseline (mirroring how
    /// `CoordMode::Serial` and `RankMode::Sorted` earned trust).
    Eager,
    /// The coordinator shares each window as one columnar
    /// [`EventBatch`] behind an `Arc` — O(shards) clones per window — and
    /// every shard selects its own events inside the parallel region
    /// (`stream % shards` ownership). Byte-identical to
    /// [`ScatterMode::Eager`]. The default.
    #[default]
    Broadcast,
}

/// Observability configuration of a [`ShardedServer`]. Everything here is
/// observational: any combination of settings leaves answers, ledgers, and
/// views byte-identical (the invariance suites sweep this).
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Per-cause message attribution (two 5-counter ledger snapshots per
    /// fleet operation when on; a single branch when off). On by default.
    pub causes: bool,
    /// Structured trace recording depth. `Off` (the default) records
    /// nothing and allocates nothing.
    pub trace: TraceDepth,
    /// Maximum events retained per trace ring (the coordinator, the
    /// fleet-op router, and every shard own one ring of this capacity;
    /// full rings suppress balanced span pairs and count the loss).
    pub trace_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self { causes: true, trace: TraceDepth::Off, trace_capacity: 4096 }
    }
}

/// Configuration of a [`ShardedServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Number of worker shards (`1..=n`).
    pub num_shards: usize,
    /// Maximum events per ingestion batch.
    pub batch_size: usize,
    /// Inline (deterministic single-thread) or threaded execution.
    pub mode: ExecMode,
    /// Bound of each MPSC command/reply channel in threaded mode.
    pub channel_capacity: usize,
    /// Serial or pipelined (double-buffered) coordinator; both are
    /// byte-identical, see [`CoordMode`].
    pub coordinator: CoordMode,
    /// Eager per-shard scatter or broadcast of shared columnar windows;
    /// both are byte-identical, see [`ScatterMode`].
    pub scatter: ScatterMode,
    /// Observability: per-cause accounting and trace recording. Purely
    /// observational at every setting, see [`TelemetryConfig`].
    pub telemetry: TelemetryConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            batch_size: 1024,
            mode: ExecMode::Inline,
            channel_capacity: 2,
            coordinator: CoordMode::Pipelined,
            scatter: ScatterMode::Broadcast,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl ServerConfig {
    /// Convenience: `num_shards` shards, defaults elsewhere.
    pub fn with_shards(num_shards: usize) -> Self {
        Self { num_shards, ..Default::default() }
    }

    /// Sets the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the batch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the coordinator mode (serial vs. pipelined windows).
    pub fn coordinator(mut self, coordinator: CoordMode) -> Self {
        self.coordinator = coordinator;
        self
    }

    /// Sets the scatter mode (eager per-shard copies vs. broadcast of
    /// shared columnar windows).
    pub fn scatter(mut self, scatter: ScatterMode) -> Self {
        self.scatter = scatter;
        self
    }

    /// Sets the observability configuration.
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// A sharded, batched, concurrent runtime for one filter protocol over one
/// stream population. Produces byte-identical answers, ledgers, and views
/// to [`asf_core::engine::Engine`] on the same event sequence, for any
/// shard count and either execution mode.
pub struct ShardedServer<P: Protocol> {
    pub(crate) partition: Partition,
    pub(crate) handles: Vec<ShardHandle>,
    pub(crate) core: ProtocolCore<P>,
    pub(crate) config: ServerConfig,
    pub(crate) n: usize,
    now: SimTime,
    events_processed: u64,
    /// Current adaptive evaluation window (events per round).
    pub(crate) window: usize,
    pub(crate) metrics: ServerMetrics,
    /// Pool of scatter buffers: shards hand their consumed (cleared) batch
    /// buffers back in every `Evaluated` reply, so steady-state rounds
    /// scatter without allocating.
    pub(crate) spare_batches: Vec<Vec<SpecEvent>>,
    /// Reused per-round merge buffer for the gathered report streams.
    pub(crate) merged: Vec<(SpecEvent, usize)>,
    /// The current ingestion chunk as a shared columnar window. Refilled
    /// per chunk (recycled once every shard has dropped its clone, i.e.
    /// at every chunk boundary); every evaluation window of the chunk —
    /// including rollback re-scatters — is an `Arc` clone of it under
    /// [`ScatterMode::Broadcast`].
    pub(crate) shared_chunk: Arc<EventBatch>,
    /// Eager scatter's persistent per-shard partition buffers (entries are
    /// `mem::take`n when sent and refilled from `spare_batches`).
    eager_slices: Vec<Vec<SpecEvent>>,
    /// Pool of participant-index vectors for the window loop.
    participant_pool: Vec<Vec<usize>>,
    /// Pooled per-shard `(kept, undone)` buffer for the quiescence commit.
    commit_scratch: Vec<(u32, u32)>,
    /// The fleet-op trace ring (the `fleet-ops` timeline track); threaded
    /// into the [`ShardRouter`] of every report drain.
    fleet_trace: TraceRing,
    /// Attached durability runtime (write-ahead journal + checkpoint
    /// writer), if [`ShardedServer::enable_durability`] ran.
    durability: Option<Durability>,
    /// Unreliable-channel simulation (fault injection, epochs, leases), if
    /// [`ShardedServer::enable_chaos`] ran. Composes with durability: the
    /// whole channel machine is serialized into every checkpoint, so a
    /// recovered server resumes mid-fault-storm bit-exact.
    chaos: Option<ChaosState>,
    /// Pooled buffer for delayed report frames surfacing at chunk end.
    chaos_scratch: Vec<(StreamId, f64)>,
}

impl<P: Protocol> ShardedServer<P> {
    /// Builds the server over sources with the given initial values.
    ///
    /// ```
    /// use asf_core::protocol::ZtNrp;
    /// use asf_core::query::RangeQuery;
    /// use asf_core::workload::UpdateEvent;
    /// use asf_server::{ServerConfig, ShardedServer};
    /// use streamnet::StreamId;
    ///
    /// let initial = vec![450.0, 700.0, 500.0, 100.0];
    /// let protocol = ZtNrp::new(RangeQuery::new(400.0, 600.0).unwrap());
    /// // 2 shards, pipelined double-buffered coordinator (the default).
    /// let mut server = ShardedServer::new(&initial, protocol, ServerConfig::with_shards(2));
    /// server.initialize();
    /// server.ingest_batch(&[UpdateEvent { time: 1.0, stream: StreamId(1), value: 550.0 }]);
    /// assert!(server.answer().contains(StreamId(1)));
    /// assert_eq!(server.events_processed(), 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `config.num_shards` is zero, exceeds the population, or
    /// `config.batch_size` is zero.
    pub fn new(initial_values: &[f64], protocol: P, config: ServerConfig) -> Self {
        assert!(config.num_shards >= 1, "need at least one shard");
        assert!(
            config.num_shards <= initial_values.len(),
            "more shards ({}) than streams ({})",
            config.num_shards,
            initial_values.len()
        );
        assert!(config.batch_size >= 1, "batch_size must be positive");
        let partition = Partition::new(config.num_shards);
        let mut handles: Vec<ShardHandle> = partition
            .split_values(initial_values)
            .iter()
            .enumerate()
            .map(|(s, values)| {
                ShardHandle::spawn(
                    Shard::with_partition(values, partition, s),
                    config.mode,
                    config.channel_capacity,
                )
            })
            .collect();
        let window_ceiling = match config.coordinator {
            CoordMode::Serial => config.batch_size,
            CoordMode::Pipelined => (config.batch_size / 2).max(1),
        };
        // All trace rings share one epoch so coordinator, fleet-op, and
        // shard tracks land on a single exportable timeline.
        let tcfg = config.telemetry;
        let epoch = Instant::now();
        let mut core = ProtocolCore::with_rank_mode_and_parts(
            initial_values.len(),
            protocol,
            RankMode::Indexed,
            config.num_shards,
        );
        core.telemetry_mut().set_causes_enabled(tcfg.causes);
        core.telemetry_mut().trace = TraceRing::new(tcfg.trace, tcfg.trace_capacity, epoch);
        if tcfg.trace != TraceDepth::Off {
            for handle in handles.iter_mut() {
                let ring = TraceRing::new(tcfg.trace, tcfg.trace_capacity, epoch);
                match handle.request(ShardCmd::SetTrace { ring }) {
                    ShardReply::Ack => {}
                    other => unreachable!("SetTrace got {other:?}"),
                }
            }
        }
        Self {
            partition,
            handles,
            core,
            config,
            n: initial_values.len(),
            now: 0.0,
            events_processed: 0,
            window: config
                .batch_size
                .min(256)
                .clamp(MIN_WINDOW.min(window_ceiling), window_ceiling),
            metrics: ServerMetrics::new(config.num_shards),
            spare_batches: Vec::new(),
            merged: Vec::new(),
            shared_chunk: Arc::new(EventBatch::new()),
            eager_slices: (0..config.num_shards).map(|_| Vec::new()).collect(),
            participant_pool: Vec::new(),
            commit_scratch: Vec::new(),
            fleet_trace: TraceRing::new(tcfg.trace, tcfg.trace_capacity, epoch),
            durability: None,
            chaos: None,
            chaos_scratch: Vec::new(),
        }
    }

    /// Runs the protocol's Initialization phase across the shards.
    pub fn initialize(&mut self) {
        self.initialize_with_cause(Cause::Init);
    }

    /// Initialization with an explicit cause label — cold crash recovery
    /// attributes its startup probe storm to [`Cause::Recovery`].
    fn initialize_with_cause(&mut self, cause: Cause) {
        self.core.telemetry_mut().trace.begin(TraceDepth::Coarse, "initialize", 0);
        let mut router = ShardRouter::with_telemetry(
            &mut self.handles,
            self.partition,
            self.n,
            None,
            Some(&mut self.fleet_trace),
        );
        self.core.initialize_with_cause(&mut router, cause);
        self.core.telemetry_mut().trace.end(TraceDepth::Coarse);
    }

    /// Ingests one batch of time-ordered events and drains all induced
    /// resolution work; the server is quiescent when this returns.
    ///
    /// Each `batch_size` chunk is materialized once into the pooled
    /// columnar chunk (metered as `window_build_ns`); feeders that already
    /// produce [`EventBatch`]es — [`ShardedServer::run`] via
    /// [`Workload::next_batch`], or [`ShardedServer::ingest_event_batch`]
    /// — skip or amortize that copy.
    ///
    /// # Panics
    ///
    /// Panics if the server is not initialized, or if event times regress.
    pub fn ingest_batch(&mut self, events: &[UpdateEvent]) {
        assert!(self.core.is_initialized(), "server must be initialized before events");
        for chunk in events.chunks(self.config.batch_size) {
            let build_start = Instant::now();
            let buf = self.unique_chunk();
            buf.clear();
            buf.extend_from_events(chunk);
            self.metrics.window_build_ns += build_start.elapsed().as_nanos() as u64;
            self.apply_shared_chunk();
        }
    }

    /// Ingests a columnar batch of time-ordered events (chunked to
    /// `batch_size`); the server is quiescent when this returns.
    ///
    /// # Panics
    ///
    /// Panics if the server is not initialized, or if event times regress.
    pub fn ingest_event_batch(&mut self, events: &EventBatch) {
        assert!(self.core.is_initialized(), "server must be initialized before events");
        let mut start = 0;
        while start < events.len() {
            let end = events.len().min(start + self.config.batch_size);
            let build_start = Instant::now();
            let buf = self.unique_chunk();
            buf.clear();
            buf.extend_from_batch(events, start, end);
            self.metrics.window_build_ns += build_start.elapsed().as_nanos() as u64;
            self.apply_shared_chunk();
            start = end;
        }
    }

    /// Exclusive access to the pooled chunk buffer for refilling. At chunk
    /// boundaries every shard has dropped its window clone (all `Evaluated`
    /// replies were gathered or absorbed), so the `Arc` is unique and the
    /// buffer — columns and all — is recycled; the fallback allocation only
    /// triggers if a caller kept a clone alive.
    fn unique_chunk(&mut self) -> &mut EventBatch {
        if Arc::get_mut(&mut self.shared_chunk).is_none() {
            self.shared_chunk = Arc::new(EventBatch::new());
        }
        Arc::get_mut(&mut self.shared_chunk).expect("fresh Arc is unique")
    }

    /// Applies the filled `shared_chunk` through the configured
    /// coordinator. With durability enabled, the chunk is journaled and
    /// synced **before** it applies (write-ahead); a poisoned durability
    /// handle drops the chunk un-applied, exactly as a crashed process
    /// would have.
    fn apply_shared_chunk(&mut self) {
        let batch_start = Instant::now();
        if self.durability.is_some() && !self.journal_shared_chunk() {
            return;
        }
        // Validate time ordering once — rounds below may re-scatter rolled
        // back events whose times are already at or before `now`.
        let chunk = Arc::clone(&self.shared_chunk);
        for &time in chunk.times() {
            assert!(time >= self.now, "events must be time-ordered ({time} < {})", self.now);
            self.now = time;
        }
        match self.config.coordinator {
            CoordMode::Serial => self.apply_chunk_serial(),
            CoordMode::Pipelined => self.apply_chunk_pipelined(),
        }
        self.events_processed += chunk.len() as u64;
        self.metrics.events += chunk.len() as u64;
        self.metrics.record_batch(batch_start.elapsed().as_nanos() as u64);
        // Chunk-end quiescence doubles as the repair round: deliver due
        // delayed frames, run heartbeats/leases, re-probe gapped channels.
        if self.chaos.is_some() {
            self.chaos_chunk_end(chunk.len() as u64);
        }
        // Chunk-end quiescence: every shard's speculation is committed, so
        // this is a checkpointable point.
        let due =
            self.durability.as_ref().is_some_and(|d| d.should_checkpoint(self.events_processed));
        if due {
            self.checkpoint_now();
        }
        // Journal compaction shares the quiescent boundary: rotate an
        // oversized active file, prune segments the durable-checkpoint
        // floor supersedes. A compaction failure poisons the handle, so
        // the next chunk is dropped un-applied like any write failure.
        if let Some(d) = self.durability.as_mut() {
            let _ = d.maybe_compact();
            self.metrics.journal_bytes = d.journal_bytes();
        }
    }

    /// Write-ahead barrier: appends the filled `shared_chunk` (keyed by the
    /// event sequence it starts at) to the journal and syncs. Returns
    /// whether the chunk may apply — `false` means the write failed (or the
    /// handle was already poisoned) and the chunk must be dropped.
    fn journal_shared_chunk(&mut self) -> bool {
        let d = self.durability.as_mut().expect("caller checked durability");
        if d.is_poisoned() {
            return false;
        }
        self.core.telemetry_mut().trace.begin(
            TraceDepth::Coarse,
            "journal_append",
            self.shared_chunk.len() as u64,
        );
        let mut w = StateWriter::new();
        self.shared_chunk.encode(&mut w);
        let ok = d.journal_chunk(self.events_processed, w.bytes()).is_ok();
        self.metrics.journal_bytes = d.journal_bytes();
        self.core.telemetry_mut().trace.end(TraceDepth::Coarse);
        ok
    }

    /// Serializes the full server state and hands it to the checkpoint
    /// writer. The serialization (and, in `CheckpointMode::Sync`, the save
    /// itself) is the metered `checkpoint_ns` critical-path cost.
    fn checkpoint_now(&mut self) {
        let start = Instant::now();
        self.core.telemetry_mut().trace.begin(
            TraceDepth::Coarse,
            "checkpoint",
            self.events_processed,
        );
        let seq = self.events_processed;
        let state = self.snapshot_state();
        let d = self.durability.as_mut().expect("caller checked durability");
        if matches!(d.save_checkpoint(seq, state), Ok(true)) {
            self.metrics.checkpoints += 1;
        }
        self.metrics.checkpoint_ns += start.elapsed().as_nanos() as u64;
        self.core.telemetry_mut().trace.end(TraceDepth::Coarse);
    }

    /// The chunk-end repair round of the unreliable-fleet simulation: the
    /// logical clock advances (one tick per ingested event), crash-restarts
    /// are drawn, delayed report frames whose delivery tick arrived are fed
    /// through the protocol (stale/duplicate frames were already rejected
    /// idempotently by epoch/sequence), every up source heartbeats, expired
    /// leases mark sources dead (degradation hook), and channels with
    /// sequence gaps, restarts, or rejoins are healed with repair
    /// re-probes — all attributed to [`Cause::Repair`] and metered as
    /// `repair_ns`.
    fn chaos_chunk_end(&mut self, ticks: u64) {
        let repair_start = Instant::now();
        self.core.telemetry_mut().trace.begin(TraceDepth::Coarse, "chaos_repair", ticks);
        let mut chaos = self.chaos.take().expect("caller checked chaos");
        chaos.advance(ticks);
        chaos.draw_crashes();
        // Delayed frames surfacing now re-enter the normal report path (at
        // quiescence, so no speculation guard is needed).
        let mut due = std::mem::take(&mut self.chaos_scratch);
        chaos.take_due_reports(&mut due);
        for &(id, value) in &due {
            let mut inner = ShardRouter::with_telemetry(
                &mut self.handles,
                self.partition,
                self.n,
                Some(&mut self.metrics.fleet),
                Some(&mut self.fleet_trace),
            );
            let mut faulty = ChaosFleet::new(&mut chaos, &mut inner);
            self.core.ingest_report(id, value, &mut faulty);
            self.metrics.reports_consumed += 1;
        }
        self.chaos_scratch = due;
        let plan = chaos.heartbeat_round();
        if !plan.newly_dead.is_empty() {
            let mut inner = ShardRouter::with_telemetry(
                &mut self.handles,
                self.partition,
                self.n,
                Some(&mut self.metrics.fleet),
                Some(&mut self.fleet_trace),
            );
            let mut faulty = ChaosFleet::new(&mut chaos, &mut inner);
            self.core.degrade(&mut faulty, &plan.newly_dead);
        }
        if !plan.reprobe.is_empty() {
            // The repair window lets the channel layer charge the whole
            // gap-list probe as one batched fan-out frame (when
            // `batched_repair` is on) instead of one frame per channel.
            chaos.set_repair_window(true);
            let mut inner = ShardRouter::with_telemetry(
                &mut self.handles,
                self.partition,
                self.n,
                Some(&mut self.metrics.fleet),
                Some(&mut self.fleet_trace),
            );
            let mut faulty = ChaosFleet::new(&mut chaos, &mut inner);
            self.core.repair_sources(&mut faulty, &plan.reprobe);
            chaos.set_repair_window(false);
        }
        chaos.finish_round();
        let stats = *chaos.stats();
        self.metrics.retries = stats.retries;
        self.metrics.timeouts = stats.timeouts;
        self.metrics.epoch_rejects = stats.epoch_rejects;
        self.metrics.dead_sources = chaos.dead_count() as u64;
        self.metrics.lease_renewals = stats.lease_renewals;
        self.metrics.spurious_expirations = stats.spurious_expirations;
        self.metrics.repair_batches = stats.repair_batches;
        for ticks in chaos.drain_lease_samples() {
            self.metrics.record_lease_len(ticks);
        }
        self.chaos = Some(chaos);
        self.metrics.repair_ns += repair_start.elapsed().as_nanos() as u64;
        self.core.telemetry_mut().trace.end(TraceDepth::Coarse);
    }

    /// Scatters `shared_chunk[start..end]` to the shards as one speculative
    /// evaluation window. Under [`ScatterMode::Broadcast`] every shard gets
    /// one `Arc` clone of the shared window and selects its own events;
    /// under [`ScatterMode::Eager`] the coordinator partitions the range
    /// into pooled per-shard `SpecEvent` buffers (shards return them,
    /// cleared, with each `Evaluated` reply). Returns the participating
    /// shard indices — each owes exactly one `Evaluated` reply. Only
    /// coordinator-side partition/copy work is metered as `scatter_ns`;
    /// channel sends (which execute the evaluation inline in
    /// [`ExecMode::Inline`]) are not.
    pub(crate) fn scatter_window(&mut self, start: usize, end: usize) -> Vec<usize> {
        self.core.telemetry_mut().trace.begin(TraceDepth::Coarse, "scatter_window", start as u64);
        let mut participants = self.participant_pool.pop().unwrap_or_default();
        participants.clear();
        match self.config.scatter {
            ScatterMode::Broadcast => {
                let scatter_start = Instant::now();
                let window = Arc::clone(&self.shared_chunk);
                self.metrics.scatter_ns += scatter_start.elapsed().as_nanos() as u64;
                let window_bytes = ((end - start) * EventBatch::EVENT_BYTES) as u64;
                for s in 0..self.config.num_shards {
                    let reports = self.spare_batches.pop().unwrap_or_default();
                    self.handles[s].send(ShardCmd::EvalWindow {
                        window: Arc::clone(&window),
                        start,
                        end,
                        reports,
                    });
                    participants.push(s);
                    self.metrics.window_bytes_shared += window_bytes;
                }
            }
            ScatterMode::Eager => {
                let scatter_start = Instant::now();
                for s in 0..self.config.num_shards {
                    if self.eager_slices[s].capacity() == 0 {
                        if let Some(buf) = self.spare_batches.pop() {
                            self.eager_slices[s] = buf;
                        }
                    }
                }
                let chunk = Arc::clone(&self.shared_chunk);
                let streams = &chunk.streams()[start..end];
                let values = &chunk.values()[start..end];
                for (i, (&stream, &value)) in streams.iter().zip(values).enumerate() {
                    self.eager_slices[self.partition.shard_of(stream)].push(SpecEvent {
                        seq: (start + i) as u64,
                        local: self.partition.local_of(stream),
                        value,
                    });
                }
                self.metrics.scatter_ns += scatter_start.elapsed().as_nanos() as u64;
                for s in 0..self.config.num_shards {
                    if !self.eager_slices[s].is_empty() {
                        let events = std::mem::take(&mut self.eager_slices[s]);
                        let reports = self.spare_batches.pop().unwrap_or_default();
                        self.handles[s].send(ShardCmd::EvalBatch { events, reports });
                        participants.push(s);
                    }
                }
            }
        }
        self.metrics.rounds += 1;
        self.metrics.max_inflight_windows = self.metrics.max_inflight_windows.max(1);
        self.core.telemetry_mut().trace.end(TraceDepth::Coarse);
        participants
    }

    /// Returns a participant vector to the window-loop pool (zero-capacity
    /// vectors — the pipelined loop's untouched `Vec::new()` placeholders —
    /// are dropped so the pool stays bounded).
    pub(crate) fn recycle_participants(&mut self, mut participants: Vec<usize>) {
        if participants.capacity() > 0 {
            participants.clear();
            self.participant_pool.push(participants);
        }
    }

    /// Gathers one window's `Evaluated` replies into the pooled `merged`
    /// buffer, sorted by sequence number. (Each per-shard list is already
    /// sorted; an unstable sort of the concatenation is fine since seqs
    /// are unique.) Returns the round's maximum per-shard busy time — the
    /// window's evaluation critical path.
    pub(crate) fn gather_window(&mut self, participants: &[usize]) -> u64 {
        self.core.telemetry_mut().trace.begin(
            TraceDepth::Coarse,
            "gather_window",
            participants.len() as u64,
        );
        let mut merged = std::mem::take(&mut self.merged);
        merged.clear();
        let mut round_max_busy = 0u64;
        for &s in participants {
            match self.handles[s].recv() {
                ShardReply::Evaluated { mut reports, busy_ns, scan_ns, batch, .. } => {
                    self.metrics.shard_busy_ns[s] += busy_ns;
                    self.metrics.shard_scan_ns[s] += scan_ns;
                    round_max_busy = round_max_busy.max(busy_ns);
                    if batch.capacity() > 0 {
                        self.spare_batches.push(batch);
                    }
                    merged.extend(reports.drain(..).map(|ev| (ev, s)));
                    // The drained report buffer goes back into the pool, so
                    // steady-state rounds gather without allocating.
                    if reports.capacity() > 0 {
                        self.spare_batches.push(reports);
                    }
                }
                other => unreachable!("EvalBatch got {other:?}"),
            }
        }
        merged.sort_unstable_by_key(|(ev, _)| ev.seq);
        self.merged = merged;
        self.core.telemetry_mut().trace.end(TraceDepth::Coarse);
        round_max_busy
    }

    /// Consumes the gathered reports of the current window serially through
    /// the protocol until one of them touches the fleet. `next_window`, if
    /// non-empty, names shards still evaluating the scattered-ahead next
    /// window (pipelined mode): a fleet touch absorbs their replies before
    /// the cut so the rollback covers the in-flight work it invalidates.
    /// Returns the cut sequence, if any, and the drain's pure-serial time
    /// (fleet-op shard busy excluded — that is attributed to
    /// `metrics.fleet`).
    pub(crate) fn drain_reports(&mut self, next_window: &mut Vec<usize>) -> (Option<u64>, u64) {
        let serial_start = Instant::now();
        self.core.telemetry_mut().trace.begin(
            TraceDepth::Coarse,
            "drain_reports",
            self.merged.len() as u64,
        );
        let fleet_hidden_before = self.metrics.fleet.hidden_ns;
        let index_before = (
            self.core.ctx_stats().index_busy_sum_ns,
            self.core.ctx_stats().index_parallel_ns,
            self.core.ctx_stats().index_hidden_ns,
        );
        let mut cut_at: Option<u64> = None;
        let mut consumed = 0u64;
        let merged = std::mem::take(&mut self.merged);
        let mut chaos = self.chaos.take();
        for &(ev, shard) in &merged {
            let id = self.partition.global_of(shard, ev.local);
            // Unreliable channels: the source emitted the report (its
            // last-reported state advanced in the shard), but the frame may
            // never reach the protocol — that inconsistency is what the
            // chunk-end repair round detects and heals.
            if let Some(ch) = chaos.as_mut() {
                match ch.admit_report(id, ev.value) {
                    ReportFate::Deliver => {}
                    ReportFate::Lost | ReportFate::Parked => continue,
                }
            }
            let inner = ShardRouter::with_telemetry(
                &mut self.handles,
                self.partition,
                self.n,
                Some(&mut self.metrics.fleet),
                Some(&mut self.fleet_trace),
            );
            let inflight = (!next_window.is_empty()).then(|| InflightWindow {
                shards: &mut *next_window,
                pool: &mut self.spare_batches,
                shard_busy_ns: &mut self.metrics.shard_busy_ns,
                shard_scan_ns: &mut self.metrics.shard_scan_ns,
                discarded_busy_ns: &mut self.metrics.discarded_window_busy_ns,
                discarded_reports: &mut self.metrics.discarded_reports,
            });
            let mut router = GuardedRouter::with_inflight(inner, ev.seq + 1, inflight);
            match chaos.as_mut() {
                Some(ch) => {
                    let mut faulty = ChaosFleet::new(ch, &mut router);
                    self.core.ingest_report(id, ev.value, &mut faulty);
                }
                None => self.core.ingest_report(id, ev.value, &mut router),
            }
            let cut = router.into_cut();
            consumed += 1;
            self.metrics.reports_consumed += 1;
            if let Some(commits) = cut {
                let mut undone_total = 0u64;
                for (s, &(kept, undone)) in commits.iter().enumerate() {
                    self.metrics.shard_events[s] += kept as u64;
                    self.metrics.speculative_commits += kept as u64;
                    self.metrics.rolled_back += undone as u64;
                    undone_total += undone as u64;
                }
                // The speculation cut and its fleet-wide rollback extent,
                // on the coordinator timeline.
                let trace = &mut self.core.telemetry_mut().trace;
                trace.instant(TraceDepth::Coarse, "speculation_cut", ev.seq);
                trace.instant(TraceDepth::Coarse, "rollback", undone_total);
                cut_at = Some(ev.seq);
                break;
            }
        }
        self.chaos = chaos;
        self.merged = merged;
        self.core.telemetry_mut().trace.end(TraceDepth::Coarse);
        if consumed > 0 {
            self.metrics.report_groups += 1;
        }
        // Subtract the *hidden* portions — per-op/per-pass `min(busy sum,
        // wall)` — not the raw busy sums: with threaded shards (or scoped-
        // thread forest refreshes) the work overlapped the coordinator, so
        // an unbounded subtraction would erase unrelated serial time.
        let fleet_hidden_delta = self.metrics.fleet.hidden_ns - fleet_hidden_before;
        let stats = *self.core.ctx_stats();
        self.metrics.index_busy_sum_ns += stats.index_busy_sum_ns - index_before.0;
        self.metrics.index_parallel_ns += stats.index_parallel_ns - index_before.1;
        let index_hidden_delta = stats.index_hidden_ns - index_before.2;
        let drain_pure = (serial_start.elapsed().as_nanos() as u64)
            .saturating_sub(fleet_hidden_delta + index_hidden_delta);
        self.metrics.serial_ns += drain_pure;
        (cut_at, drain_pure)
    }

    /// Largest evaluation window the adaptive controller may reach: the
    /// whole batch on the serial coordinator; half of it when pipelining,
    /// so a chunk always splits into at least two windows and the pipe can
    /// actually fill (drain of one window overlapping evaluation of the
    /// next).
    pub(crate) fn max_window(&self) -> usize {
        match self.config.coordinator {
            CoordMode::Serial => self.config.batch_size,
            CoordMode::Pipelined => (self.config.batch_size / 2).max(1),
        }
    }

    /// Commits every shard's surviving speculation (chunk-end quiescence).
    pub(crate) fn commit_surviving(&mut self) {
        let mut commits = std::mem::take(&mut self.commit_scratch);
        let mut router = ShardRouter::new(&mut self.handles, self.partition, self.n);
        router.commit_all_into(u64::MAX, &mut commits);
        for (s, &(kept, undone)) in commits.iter().enumerate() {
            self.metrics.shard_events[s] += kept as u64;
            self.metrics.speculative_commits += kept as u64;
            debug_assert_eq!(undone, 0);
        }
        self.commit_scratch = commits;
    }

    /// Adapts the window after a cut at sequence `c` in a window starting
    /// at `start`: aim for ~double the observed cut span.
    pub(crate) fn adapt_window_to_cut(&mut self, start: usize, c: u64) {
        let span = (c as usize + 1 - start).max(1);
        // Careful with tiny configs: the floor must never exceed the
        // window ceiling (clamp would panic).
        let ceiling = self.max_window();
        let floor = MIN_WINDOW.min(ceiling);
        self.window = (span * 2).clamp(floor, ceiling);
        self.metrics.cuts += 1;
    }

    /// One window at a time: scatter, gather, drain, commit — the
    /// speculation baseline the pipelined coordinator is differentially
    /// tested against.
    fn apply_chunk_serial(&mut self) {
        let chunk_len = self.shared_chunk.len();
        let mut start = 0usize;
        let mut no_next: Vec<usize> = Vec::new();
        while start < chunk_len {
            let end = chunk_len.min(start + self.window);

            // Phase A: optimistic evaluation on every participating shard.
            let participants = self.scatter_window(start, end);
            let round_busy = self.gather_window(&participants);
            self.recycle_participants(participants);
            self.metrics.critical_path_ns += round_busy;

            // Phase B: consume reports serially through the protocol until
            // one of them touches the fleet (= invalidates speculation).
            let (cut_at, _) = self.drain_reports(&mut no_next);

            match cut_at {
                None => {
                    // Whole window stands: make it permanent.
                    self.commit_surviving();
                    start = end;
                    // Quiet window: widen (deterministic — depends only on
                    // the event/report sequence).
                    self.window = (self.window * 2).min(self.max_window());
                }
                Some(c) => {
                    // Speculation past `c` was rolled back inside the cut;
                    // resume right after the invalidating report. Under
                    // broadcast scatter the re-scatter below reuses the
                    // already-shared chunk window — no re-copy.
                    self.adapt_window_to_cut(start, c);
                    start = c as usize + 1;
                }
            }
        }
    }

    /// Initializes (if needed) and consumes the whole workload in batches
    /// of `config.batch_size` — the trace-replay / generator feeder. The
    /// workload writes each chunk straight into the pooled shared columnar
    /// window ([`Workload::next_batch`]), so feeding allocates and copies
    /// nothing per round.
    pub fn run<W: Workload + ?Sized>(&mut self, workload: &mut W) {
        if !self.core.is_initialized() {
            self.initialize();
        }
        let max = self.config.batch_size;
        loop {
            let buf = self.unique_chunk();
            if workload.next_batch(max, buf) == 0 {
                break;
            }
            self.apply_shared_chunk();
        }
    }

    /// The globally consistent answer `A(t)` — valid at quiescent points
    /// (between [`ShardedServer::ingest_batch`] calls).
    pub fn answer(&self) -> AnswerSet {
        self.core.answer()
    }

    /// The authoritative message ledger (serial-identical counts).
    pub fn ledger(&self) -> &Ledger {
        self.core.ledger()
    }

    /// The server's view of last-known values.
    pub fn view(&self) -> &ServerView {
        self.core.view()
    }

    /// The protocol state.
    pub fn protocol(&self) -> &P {
        self.core.protocol()
    }

    /// Runtime metrics.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Timing/counters of the core's fleet operations — the probe /
    /// index-build split of initialization and batch-op counts.
    pub fn ctx_stats(&self) -> &CtxStats {
        self.core.ctx_stats()
    }

    /// The per-cause message matrix: every ledger message attributed to the
    /// protocol decision that sent it (empty when
    /// [`TelemetryConfig::causes`] is off).
    pub fn causes(&self) -> &asf_telemetry::CauseLedger {
        self.core.telemetry().causes()
    }

    /// Multi-line per-cause message breakdown with the streamnet
    /// message-kind labels (empty when attribution is off or quiet).
    pub fn cause_breakdown(&self) -> String {
        self.core.telemetry().cause_breakdown()
    }

    /// One flat JSON object of every metric the server keeps — the
    /// [`ServerMetrics`] counters and latency histogram, the fleet-op and
    /// ctx splits, and the per-cause message matrix — re-registered through
    /// one [`Registry`] so all consumers read the same dotted-key schema.
    pub fn telemetry_snapshot(&self) -> String {
        let mut reg = Registry::new();
        self.metrics.register_into(&mut reg);
        let stats = self.core.ctx_stats();
        reg.counter("ctx.probe_ns", stats.probe_ns);
        reg.counter("ctx.index_build_ns", stats.index_build_ns);
        reg.counter("ctx.index_delta_refreshes", stats.index_delta_refreshes);
        reg.counter("ctx.index_delta_rekeys", stats.index_delta_rekeys);
        reg.counter("ctx.index_bulk_builds", stats.index_bulk_builds);
        reg.counter("ctx.batch_probe_ops", stats.batch_probe_ops);
        reg.counter("ctx.batch_probe_streams", stats.batch_probe_streams);
        reg.counter("ctx.batch_install_ops", stats.batch_install_ops);
        reg.counter("ctx.batch_install_streams", stats.batch_install_streams);
        reg.counter("ctx.deferred_installs", stats.deferred_installs);
        reg.counter("ctx.deferred_flushes", stats.deferred_flushes);
        reg.counter("ctx.routed_reports", stats.routed_reports);
        reg.counter("ctx.queries_touched", stats.queries_touched);
        reg.counter("ctx.routing_ns", stats.routing_ns);
        // Mean multi-query fan-out: how many of the m registered queries
        // each report actually reached (0 when no routing protocol ran).
        let fan_out = if stats.routed_reports == 0 {
            0.0
        } else {
            stats.queries_touched as f64 / stats.routed_reports as f64
        };
        reg.gauge("ctx.queries_touched_per_report", fan_out);
        let causes = self.core.telemetry().causes();
        // The full cause × kind matrix registers every slot (zeros
        // included) so the snapshot's key set never depends on which
        // protocol decisions happened to fire.
        for cause in Cause::ALL {
            let row = causes.row(cause);
            for (k, kind) in MessageKind::ALL.iter().enumerate() {
                reg.counter(&format!("causes.{}.{}", cause.label(), kind.label()), row[k]);
            }
        }
        reg.counter("causes.total", causes.grand_total());
        reg.to_json()
    }

    /// Drains every trace ring — the coordinator track, the fleet-op
    /// track, and one track per shard, all sharing one epoch — and returns
    /// the merged timeline as Chrome trace-event JSON (open in Perfetto or
    /// `chrome://tracing`; machine-checkable via
    /// [`asf_telemetry::validate_chrome_trace`]). Rings keep recording
    /// afterwards. With tracing off the export is a valid, empty timeline.
    pub fn export_chrome_trace(&mut self) -> String {
        let coordinator = self.core.telemetry_mut().trace.take();
        let fleet = self.fleet_trace.take();
        let mut shard_events: Vec<Vec<TraceEvent>> = Vec::new();
        if self.config.telemetry.trace != TraceDepth::Off {
            for handle in self.handles.iter_mut() {
                handle.send(ShardCmd::TakeTrace);
            }
            for handle in self.handles.iter_mut() {
                match handle.recv() {
                    ShardReply::Trace(events) => shard_events.push(events),
                    other => unreachable!("TakeTrace got {other:?}"),
                }
            }
        }
        let shard_names: Vec<String> =
            (0..shard_events.len()).map(|s| format!("shard-{s}")).collect();
        let mut tracks: Vec<(u32, &str, Vec<TraceEvent>)> =
            vec![(0, "coordinator", coordinator), (1, "fleet-ops", fleet)];
        for (s, events) in shard_events.into_iter().enumerate() {
            tracks.push(((2 + s) as u32, shard_names[s].as_str(), events));
        }
        chrome_trace(&tracks)
    }

    /// The maintained rank index, if the protocol is rank-based
    /// (differential-test hook).
    pub fn rank_index(&self) -> Option<&RankForest> {
        self.core.rank_index()
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.n
    }

    /// Current simulation time (last ingested event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Workload events ingested so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Reports (workload-triggered + induced syncs) the protocol handled.
    pub fn reports_processed(&self) -> u64 {
        self.core.reports_processed()
    }

    /// Ground-truth values of every stream, reassembled from the shards —
    /// for the oracle and tests (a real deployment has no such backdoor).
    pub fn truth_values(&mut self) -> Vec<f64> {
        let mut values = vec![0.0f64; self.n];
        for handle in self.handles.iter_mut() {
            handle.send(ShardCmd::TruthSnapshot);
        }
        for shard in 0..self.handles.len() {
            match self.handles[shard].recv() {
                ShardReply::Truth(local_values) => {
                    for (local, v) in local_values.into_iter().enumerate() {
                        values[self.partition.global_of(shard, local as u32).index()] = v;
                    }
                }
                other => unreachable!("TruthSnapshot got {other:?}"),
            }
        }
        values
    }

    /// Ground truth as a throwaway [`SourceFleet`] (values only) so the
    /// oracle helpers of `asf-core` can run against the sharded server.
    pub fn truth_fleet(&mut self) -> SourceFleet {
        SourceFleet::from_values(&self.truth_values())
    }

    /// Serializes the complete deterministic server state: simulation
    /// clock, event sequence, every shard's source fleet, and the protocol
    /// core (view, ledger, protocol state, rank order, cause matrix). Only
    /// valid at chunk-boundary quiescence — which is the only place it is
    /// called from.
    fn snapshot_state(&mut self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.put_f64(self.now);
        w.put_u64(self.events_processed);
        w.put_u64(self.config.num_shards as u64);
        for handle in self.handles.iter_mut() {
            match handle.request(ShardCmd::SaveState) {
                ShardReply::State(bytes) => w.put_bytes(&bytes),
                other => unreachable!("SaveState got {other:?}"),
            }
        }
        self.core.save_state(&mut w);
        // The channel layer travels with the checkpoint: chaos and
        // durability compose, and a recovered server resumes the exact
        // fault-decision stream. Checkpoints happen after the chunk-end
        // repair round, so the serialized machine is post-round state.
        match &self.chaos {
            None => w.put_bool(false),
            Some(chaos) => {
                w.put_bool(true);
                let mut cw = StateWriter::new();
                chaos.encode(&mut cw);
                let blob = cw.into_bytes();
                self.metrics.chaos_state_bytes = blob.len() as u64;
                w.put_bytes(&blob);
            }
        }
        w.into_bytes()
    }

    /// Restores a [`ShardedServer::snapshot_state`] image into a freshly
    /// built server of the same configuration. Every field is re-validated;
    /// corruption yields an error, never a panic or a half-restored server.
    fn restore_state(&mut self, bytes: &[u8]) -> asf_persist::Result<()> {
        let mut r = StateReader::new(bytes);
        let now = r.get_f64()?;
        if now.is_nan() {
            return Err(PersistError::corrupt("snapshot time is NaN"));
        }
        let events = r.get_u64()?;
        let shards = r.get_u64()? as usize;
        if shards != self.config.num_shards {
            return Err(PersistError::corrupt("snapshot shard count differs from configuration"));
        }
        let mut fleets = Vec::with_capacity(shards);
        for s in 0..shards {
            let blob = r.get_bytes()?;
            let mut sr = StateReader::new(blob);
            let fleet = SourceFleet::decode(&mut sr)?;
            sr.finish()?;
            // Strided partition: shard `s` owns globals `g` with
            // `g % shards == s`.
            let expect = self.n / shards + usize::from(s < self.n % shards);
            if fleet.len() != expect {
                return Err(PersistError::corrupt("snapshot shard population differs"));
            }
            fleets.push(fleet);
        }
        self.core.load_state(&mut r)?;
        let chaos = if r.get_bool()? {
            let blob = r.get_bytes()?;
            let mut cr = StateReader::new(blob);
            let state = ChaosState::decode(&mut cr)?;
            cr.finish()?;
            if state.len() != self.n {
                return Err(PersistError::corrupt("snapshot channel count differs"));
            }
            Some(state)
        } else {
            None
        };
        r.finish()?;
        // Rebuild each shard's local view replica by striding the restored
        // global view — cheaper and simpler than persisting the replicas.
        let view = self.core.view();
        let mut views = Vec::with_capacity(shards);
        for (s, fleet) in fleets.iter().enumerate() {
            let mut local_view = ServerView::new(fleet.len());
            for local in 0..fleet.len() as u32 {
                let g = self.partition.global_of(s, local);
                if view.is_known(g) {
                    local_view.set(StreamId(local), view.get(g));
                }
            }
            views.push(local_view);
        }
        for ((handle, fleet), view) in self.handles.iter_mut().zip(fleets).zip(views) {
            match handle.request(ShardCmd::RestoreState { fleet, view }) {
                ShardReply::Ack => {}
                other => unreachable!("RestoreState got {other:?}"),
            }
        }
        self.now = now;
        self.events_processed = events;
        self.chaos = chaos;
        Ok(())
    }

    /// Attaches the unreliable-fleet simulation: every subsequent
    /// source↔server frame crosses a seeded fault-injecting channel
    /// ([`streamnet::chaos`]) that can drop, delay, duplicate, and reorder
    /// it, and individual sources can crash-restart. Reports carry filter
    /// epochs and sequence numbers (stale/duplicate frames are rejected
    /// idempotently); dropped requests retry with capped exponential
    /// backoff on the simulated clock; heartbeat leases detect silently
    /// dead sources; and every chunk boundary runs a repair round.
    ///
    /// The authoritative ledger still meters only the logical protocol —
    /// retransmissions, ghosts, and heartbeats are counted separately in
    /// [`ChaosStats::overhead_frames`]. Once the schedule's fault horizon
    /// passes, the channel is byte-transparent, which is what the chaos
    /// differential suite's convergence proof rests on.
    ///
    /// Composes with durability in either order: every checkpoint includes
    /// the serialized channel machine, and enabling chaos on an
    /// already-durable server forces an immediate checkpoint so recovery
    /// never replays pre-chaos chunks under post-chaos rules.
    ///
    /// # Panics
    ///
    /// Panics if the server is not initialized (initialization probes the
    /// world over a reliable channel) or chaos is already enabled.
    pub fn enable_chaos(&mut self, cfg: ChaosConfig) {
        assert!(self.chaos.is_none(), "chaos already enabled");
        assert!(self.core.is_initialized(), "initialize the server before enabling chaos");
        self.chaos = Some(ChaosState::new(self.n, cfg));
        // A checkpoint written before this call knows nothing about the
        // channel layer; replaying journal chunks from it would run them
        // without chaos and diverge. Anchor the chaos-enabled state now —
        // into BOTH snapshot slots, because a pre-chaos checkpoint at the
        // same sequence (the durability anchor, or a cadence checkpoint
        // that fired this very chunk) would tie with a single write and
        // recovery's tie-break could resurrect the chaos-free image.
        if self.durability.is_some() {
            self.checkpoint_now();
            self.checkpoint_now();
        }
    }

    /// The unreliable-channel state, if chaos is enabled — the oracle and
    /// the differential suite read leases, epochs, and the verified-live
    /// population through this.
    pub fn chaos(&self) -> Option<&ChaosState> {
        self.chaos.as_ref()
    }

    /// Fault-layer counters, if chaos is enabled.
    pub fn chaos_stats(&self) -> Option<&ChaosStats> {
        self.chaos.as_ref().map(ChaosState::stats)
    }

    /// The server view with every dead source (expired lease) marked
    /// unknown — what the server can actually vouch for under faults.
    /// Identical to [`ShardedServer::view`] without chaos or when no
    /// source is dead.
    pub fn live_view(&self) -> ServerView {
        let mut view = self.core.view().clone();
        if let Some(chaos) = &self.chaos {
            for id in chaos.dead_ids() {
                view.mark_unknown(id);
            }
        }
        view
    }

    /// Rebuilds protocol state from fresh probes at the current quiescent
    /// point, swapping in `fresh` (a protocol configured identically to the
    /// running one): the repair path's answer to accumulated channel
    /// damage, and the convergence boundary of the chaos differential
    /// suite. The view, ledger, and cause matrix are kept (probes are
    /// attributed to [`Cause::Repair`]); in-flight chaos frames are
    /// discarded as superseded.
    ///
    /// # Panics
    ///
    /// Panics if the server is not initialized.
    pub fn resync(&mut self, fresh: P) {
        self.core.telemetry_mut().trace.begin(TraceDepth::Coarse, "resync", 0);
        let mut chaos = self.chaos.take();
        if let Some(ch) = chaos.as_mut() {
            ch.resync_boundary();
        }
        let mut inner = ShardRouter::with_telemetry(
            &mut self.handles,
            self.partition,
            self.n,
            Some(&mut self.metrics.fleet),
            Some(&mut self.fleet_trace),
        );
        match chaos.as_mut() {
            Some(ch) => {
                let mut faulty = ChaosFleet::new(ch, &mut inner);
                self.core.resync(&mut faulty, fresh);
            }
            None => self.core.resync(&mut inner, fresh),
        }
        self.chaos = chaos;
        self.core.telemetry_mut().trace.end(TraceDepth::Coarse);
    }

    /// Attaches a durability runtime: opens (or creates) the journal and
    /// snapshot store in `cfg.dir`, durably writes an anchor checkpoint of
    /// the current state, and journals + checkpoints all further ingestion.
    ///
    /// Composes with chaos in either order: the anchor checkpoint written
    /// here (like every later checkpoint) embeds the serialized channel
    /// machine when chaos is enabled.
    ///
    /// # Panics
    ///
    /// Panics if durability is already enabled or the server is not
    /// initialized (an uninitialized server has no state worth anchoring).
    pub fn enable_durability(&mut self, cfg: DurabilityConfig) -> asf_persist::Result<()> {
        assert!(self.durability.is_none(), "durability already enabled");
        assert!(self.core.is_initialized(), "initialize the server before enabling durability");
        let start = Instant::now();
        let state = self.snapshot_state();
        let d = Durability::new(&cfg, self.events_processed, &state)?;
        self.metrics.checkpoints += 1;
        self.metrics.checkpoint_ns += start.elapsed().as_nanos() as u64;
        self.metrics.journal_bytes = d.journal_bytes();
        self.durability = Some(d);
        Ok(())
    }

    /// Rebuilds a server from the durability directory: loads the latest
    /// valid checkpoint (if any survived) and replays the journal suffix
    /// through the deterministic engine. The recovered server is
    /// byte-identical — answers, ledgers, views, rank order, cause matrix —
    /// to one that processed the same durable prefix without crashing.
    ///
    /// If no checkpoint is readable, recovery cold-starts the protocol
    /// (attributing the startup probe storm to [`Cause::Recovery`]) and
    /// replays the whole journal. Torn or corrupt journal tails were
    /// already truncated by the open; a *gap* (an unreachable suffix) is
    /// corruption and fails recovery.
    ///
    /// `initial_values` and `config` must match the crashed server's; the
    /// replay cost is metered as `recovery_replay_ns`. Durability is
    /// re-attached before returning, anchor-free: the loaded checkpoint
    /// plus the journal already cover the recovered state, so recovery
    /// never pays an extra O(state) snapshot write.
    ///
    /// A server whose checkpoints embedded chaos state recovers it
    /// automatically (the record is self-describing); see
    /// [`ShardedServer::recover_with_chaos`] for the checkpoint-free cold
    /// path.
    pub fn recover(
        initial_values: &[f64],
        protocol: P,
        config: ServerConfig,
        durability: DurabilityConfig,
    ) -> asf_persist::Result<Self> {
        Self::recover_with_chaos(initial_values, protocol, config, durability, None)
    }

    /// [`ShardedServer::recover`], with a chaos config for the cold path.
    ///
    /// The warm path ignores `chaos_cfg`: a readable checkpoint carries the
    /// authoritative serialized channel machine (or its absence), and that
    /// record wins. Only a cold recovery — no readable checkpoint, whole
    /// journal replayed from a fresh initialization — needs the config, to
    /// re-attach the channel layer before replay. Cold chaotic recovery is
    /// byte-identical to the original run only when that run enabled chaos
    /// before its first ingested chunk, since replay re-enters the fault
    /// stream from tick zero.
    pub fn recover_with_chaos(
        initial_values: &[f64],
        protocol: P,
        config: ServerConfig,
        durability: DurabilityConfig,
        chaos_cfg: Option<ChaosConfig>,
    ) -> asf_persist::Result<Self> {
        // One pass per file: the store open loads the newest valid
        // checkpoint, the journal open (which physically truncates any
        // torn tail) yields the replayable entries from its single scan,
        // and both handles go to `attach` below, so nothing is re-read.
        let (store, snapshot) = SnapshotStore::open_and_latest(&durability.dir)?;
        let (journal, entries) = Journal::open_and_read(&durability.dir)?;
        let mut server = Self::new(initial_values, protocol, config);
        let replay_start = Instant::now();
        server.core.telemetry_mut().trace.begin(
            TraceDepth::Coarse,
            "recovery_replay",
            entries.len() as u64,
        );
        let checkpoint_seq = match &snapshot {
            Some(img) => {
                server.restore_state(img.state())?;
                if server.events_processed != img.seq() {
                    return Err(PersistError::corrupt("checkpoint sequence mismatch"));
                }
                img.seq()
            }
            None => {
                server.initialize_with_cause(Cause::Recovery);
                if let Some(cfg) = chaos_cfg {
                    server.chaos = Some(ChaosState::new(server.n, cfg));
                }
                0
            }
        };
        drop(snapshot);
        // Compaction guard: pruning destroys journal history below the
        // durable-checkpoint floor. If every checkpoint has since been
        // lost or corrupted, the surviving journal suffix alone does NOT
        // reconstruct the state — replaying it from a cold start (or from
        // a stale checkpoint below the floor) would silently produce a
        // partial history. Fail loudly; the operator must resync from the
        // live fleet instead.
        if let Some(floor) = asf_persist::pruned_floor(&durability.dir)? {
            if checkpoint_seq < floor {
                return Err(PersistError::corrupt(
                    "journal history pruned past every readable checkpoint; resync required",
                ));
            }
        }
        let mut next_seq = checkpoint_seq;
        for entry in entries {
            if entry.seq < next_seq {
                // Superseded by the checkpoint.
                continue;
            }
            if entry.seq != next_seq {
                return Err(PersistError::corrupt("journal gap after checkpoint"));
            }
            let mut r = StateReader::new(&entry.payload);
            let batch = EventBatch::decode(&mut r)?;
            r.finish()?;
            if batch.times().first().is_some_and(|&t| t < server.now) {
                return Err(PersistError::corrupt("journal chunk regresses time"));
            }
            let buf = server.unique_chunk();
            buf.clear();
            buf.extend_from_batch(&batch, 0, batch.len());
            // Durability is not attached yet, so replay does not re-journal.
            server.apply_shared_chunk();
            next_seq = server.events_processed;
        }
        server.core.telemetry_mut().trace.end(TraceDepth::Coarse);
        server.metrics.recovery_replay_ns = replay_start.elapsed().as_nanos() as u64;
        // Re-attach without writing a fresh anchor: the checkpoint we just
        // loaded plus the journal already cover this state, and an O(state)
        // synchronous save would dominate the recovery path. The cadence
        // counts from the loaded checkpoint, so a long replayed suffix
        // earns a new checkpoint at the next chunk boundary.
        let d = Durability::attach(&durability, store, journal, checkpoint_seq)?;
        server.metrics.journal_bytes = d.journal_bytes();
        server.durability = Some(d);
        Ok(server)
    }

    /// The attached durability runtime, if any — tests arm crash injection
    /// and inspect the poison latch through this.
    pub fn durability_mut(&mut self) -> Option<&mut Durability> {
        self.durability.as_mut()
    }

    /// Stops all workers and returns final metrics (threaded shards report
    /// their cumulative busy time on shutdown).
    pub fn shutdown(mut self) -> ServerMetrics {
        if let Some(d) = self.durability.take() {
            d.shutdown();
        }
        for (s, handle) in self.handles.iter_mut().enumerate() {
            let busy = handle.shutdown();
            // The worker's figure is cumulative (eval + control-plane
            // commands); the coordinator only accumulated eval time from
            // replies, so take whichever is larger.
            self.metrics.shard_busy_ns[s] = self.metrics.shard_busy_ns[s].max(busy);
        }
        self.metrics.clone()
    }
}
