//! Uniform access to a shard, inline or on its own worker thread.
//!
//! The coordinator talks to every shard through [`ShardHandle`] with a
//! send/recv pair, so scatter–gather code is written once:
//!
//! * **Inline** — the command executes immediately on the caller's thread
//!   and the reply is buffered. Deterministic, zero-overhead; the default
//!   for tests and for modeling per-shard work on constrained hardware.
//! * **Threaded** — the shard lives in a worker thread behind **bounded**
//!   MPSC channels ([`std::sync::mpsc::sync_channel`]); commands and
//!   replies block when the channel is full, providing backpressure.
//!
//! Both modes produce identical results by construction — scheduling can
//! only change *when* a shard runs, never the sequence-ordered outcome the
//! coordinator assembles.

use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use crate::shard::{Shard, ShardCmd, ShardReply};

/// How shard work is executed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Shards run inline on the coordinator thread.
    #[default]
    Inline,
    /// One worker thread per shard, bounded-channel message passing.
    Threaded,
}

/// A coordinator-side handle to one shard.
#[derive(Debug)]
pub enum ShardHandle {
    /// Shard executed on the caller's thread; replies are buffered.
    Inline {
        /// The shard itself.
        shard: Box<Shard>,
        /// Replies not yet collected by `recv`.
        replies: VecDeque<ShardReply>,
    },
    /// Shard on a worker thread behind bounded channels.
    Threaded {
        /// Command channel into the worker.
        tx: SyncSender<ShardCmd>,
        /// Reply channel out of the worker.
        rx: Receiver<ShardReply>,
        /// The worker thread, joined on drop.
        join: Option<JoinHandle<u64>>,
    },
}

impl ShardHandle {
    /// Wraps a shard according to `mode`. `channel_capacity` bounds both
    /// MPSC channels in threaded mode.
    pub fn spawn(shard: Shard, mode: ExecMode, channel_capacity: usize) -> Self {
        match mode {
            ExecMode::Inline => {
                ShardHandle::Inline { shard: Box::new(shard), replies: VecDeque::new() }
            }
            ExecMode::Threaded => {
                let (tx, cmd_rx) = sync_channel::<ShardCmd>(channel_capacity.max(1));
                let (reply_tx, rx) = sync_channel::<ShardReply>(channel_capacity.max(1));
                let join = std::thread::spawn(move || {
                    let mut shard = shard;
                    while let Ok(cmd) = cmd_rx.recv() {
                        if matches!(cmd, ShardCmd::Shutdown) {
                            break;
                        }
                        if reply_tx.send(shard.exec(cmd)).is_err() {
                            break;
                        }
                    }
                    shard.busy_ns()
                });
                ShardHandle::Threaded { tx, rx, join: Some(join) }
            }
        }
    }

    /// Sends one command (inline: executes it immediately).
    pub fn send(&mut self, cmd: ShardCmd) {
        match self {
            ShardHandle::Inline { shard, replies } => replies.push_back(shard.exec(cmd)),
            ShardHandle::Threaded { tx, .. } => {
                tx.send(cmd).expect("shard worker hung up");
            }
        }
    }

    /// Receives the next reply (blocking in threaded mode).
    pub fn recv(&mut self) -> ShardReply {
        match self {
            ShardHandle::Inline { replies, .. } => {
                replies.pop_front().expect("recv without a pending inline command")
            }
            ShardHandle::Threaded { rx, .. } => rx.recv().expect("shard worker hung up"),
        }
    }

    /// Sends one command and waits for its reply.
    pub fn request(&mut self, cmd: ShardCmd) -> ShardReply {
        self.send(cmd);
        self.recv()
    }

    /// The shard's cumulative busy time (ns). In threaded mode this is only
    /// known after shutdown; `None` while the worker is still running.
    pub fn busy_ns(&self) -> Option<u64> {
        match self {
            ShardHandle::Inline { shard, .. } => Some(shard.busy_ns()),
            ShardHandle::Threaded { .. } => None,
        }
    }

    /// Stops the worker (threaded mode) and returns its cumulative busy
    /// time in nanoseconds.
    pub fn shutdown(&mut self) -> u64 {
        match self {
            ShardHandle::Inline { shard, .. } => shard.busy_ns(),
            ShardHandle::Threaded { tx, join, .. } => {
                let _ = tx.send(ShardCmd::Shutdown);
                join.take().map(|j| j.join().unwrap_or(0)).unwrap_or(0)
            }
        }
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        if let ShardHandle::Threaded { tx, join, .. } = self {
            let _ = tx.send(ShardCmd::Shutdown);
            if let Some(j) = join.take() {
                let _ = j.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::Partition;

    #[test]
    fn inline_and_threaded_agree() {
        let p = Partition::new(1);
        let values = p.split_values(&[100.0, 500.0, 900.0]);
        for mode in [ExecMode::Inline, ExecMode::Threaded] {
            let mut h = ShardHandle::spawn(Shard::new(&values[0]), mode, 2);
            match h.request(ShardCmd::ProbeAll) {
                ShardReply::ProbedAll { values, .. } => {
                    assert_eq!(values, vec![100.0, 500.0, 900.0])
                }
                other => panic!("unexpected reply {other:?}"),
            }
            match h.request(ShardCmd::Deliver { local: 1, value: 550.0 }) {
                ShardReply::Delivered(r) => assert_eq!(r, Some(550.0)),
                other => panic!("unexpected reply {other:?}"),
            }
            assert!(h.shutdown() > 0 || matches!(mode, ExecMode::Threaded));
        }
    }
}
