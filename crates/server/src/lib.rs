//! # asf-server — a sharded, batched, concurrent filter-runtime
//!
//! Turns the paper-exact simulation of `asf-core` into a stream-server
//! architecture: the population is partitioned across worker **shards**
//! (each owning its sources' values, filters, and report decisions),
//! updates are ingested in **batches** through bounded MPSC channels, and a
//! coordinator runs the unmodified protocol state machines of the paper —
//! ZT/FT/RTP/VT, single- or multi-query — over a routing fleet that fans
//! control-plane operations out to the shards.
//!
//! ## Design
//!
//! * **Data plane / control plane split.** The overwhelming majority of
//!   updates are *silent* (that is the paper's entire premise): they touch
//!   only the owning shard, in parallel, and never reach the protocol.
//!   Only filter violations — rare by construction — serialize through the
//!   coordinator.
//! * **Broadcast-scatter ingest.** Evaluation windows are shared columnar
//!   [`asf_core::workload::EventBatch`]es behind an `Arc`: the coordinator
//!   pays O(shards) clones per window and each shard selects its own
//!   events (`stream % shards`) inside the parallel region, so the last
//!   O(events) coordinator stage is the protocol's report stream, not the
//!   event copy loop ([`ScatterMode`]; the eager per-shard-copy path
//!   remains as the differential baseline).
//! * **Conservative-prefix commits.** Shards evaluate each batch
//!   speculatively and the coordinator commits exactly the prefix that
//!   precedes the globally first report (see [`server`]); everything else
//!   rolls back and re-evaluates after the protocol reacts. The result is
//!   **byte-identical** to the single-threaded [`asf_core::engine::Engine`]
//!   — same answers, same message ledger, same view — for any shard count,
//!   verified per-protocol by `tests/server_shard_invariance.rs`.
//! * **Deterministic under a fixed seed.** Thread scheduling can change
//!   only *when* shards run, never the sequence-ordered outcome, so the
//!   tolerance oracle validates the concurrent runtime end-to-end exactly
//!   as it validates the simulation.
//! * **Plan sharing.** Many concurrent range queries run as one
//!   [`asf_core::multi_query::MultiRangeZt`] protocol over the server —
//!   one shared elementary-cell filter per source instead of `m` filters.
//!
//! ## Quickstart
//!
//! ```
//! use asf_core::multi_query::MultiRangeZt;
//! use asf_core::query::RangeQuery;
//! use asf_server::{ServerConfig, ShardedServer};
//! use asf_core::workload::{UpdateEvent, VecWorkload};
//! use streamnet::StreamId;
//!
//! let initial = vec![450.0, 700.0, 500.0, 100.0];
//! let queries = vec![
//!     RangeQuery::new(400.0, 600.0).unwrap(),
//!     RangeQuery::new(0.0, 200.0).unwrap(),
//! ];
//! let protocol = MultiRangeZt::new(queries).unwrap();
//! let mut server =
//!     ShardedServer::new(&initial, protocol, ServerConfig::with_shards(2));
//! server.initialize();
//! server.ingest_batch(&[UpdateEvent { time: 1.0, stream: StreamId(1), value: 150.0 }]);
//! assert!(server.answer().contains(StreamId(1)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durability;
pub mod handle;
pub mod metrics;
pub mod pipeline;
pub mod router;
pub mod server;
pub mod shard;

pub use asf_persist::RotateStep;
pub use asf_telemetry::TraceDepth;
pub use durability::{CheckpointMode, Durability, DurabilityConfig};
pub use handle::ExecMode;
pub use metrics::{FleetOpStats, ServerMetrics};
pub use pipeline::CoordMode;
pub use server::{ScatterMode, ServerConfig, ShardedServer, TelemetryConfig};
pub use shard::Partition;

#[cfg(test)]
mod tests {
    use super::*;
    use asf_core::engine::Engine;
    use asf_core::protocol::ZtNrp;
    use asf_core::query::RangeQuery;
    use asf_core::workload::{UpdateEvent, VecWorkload, Workload};
    use streamnet::StreamId;
    use workloads::{SyntheticConfig, SyntheticWorkload};

    fn collect_events(w: &mut dyn Workload) -> Vec<UpdateEvent> {
        let mut events = Vec::new();
        while let Some(ev) = w.next_event() {
            events.push(ev);
        }
        events
    }

    #[test]
    fn matches_serial_engine_on_synthetic_workload() {
        let mut w = SyntheticWorkload::new(SyntheticConfig {
            num_streams: 40,
            horizon: 120.0,
            seed: 9,
            ..Default::default()
        });
        let initial = w.initial_values();
        let events = collect_events(&mut w);
        let query = RangeQuery::new(400.0, 600.0).unwrap();

        let mut engine = Engine::new(&initial, ZtNrp::new(query));
        engine.initialize();
        let mut vw = VecWorkload::new(initial.clone(), events.clone());
        engine.run(&mut vw);

        for mode in [ExecMode::Inline, ExecMode::Threaded] {
            let config = ServerConfig { num_shards: 4, batch_size: 64, mode, ..Default::default() };
            let mut server = ShardedServer::new(&initial, ZtNrp::new(query), config);
            server.initialize();
            server.ingest_batch(&events);
            assert_eq!(server.answer(), engine.answer(), "{mode:?}");
            assert_eq!(server.ledger(), engine.ledger(), "{mode:?}");
            assert_eq!(server.reports_processed(), engine.reports_processed(), "{mode:?}");
            assert_eq!(server.truth_values(), {
                let mut v: Vec<f64> = Vec::new();
                for s in engine.fleet().iter() {
                    v.push(s.value());
                }
                v
            });
        }
    }

    #[test]
    fn run_feeder_equals_ingest_batches() {
        let cfg = SyntheticConfig { num_streams: 20, horizon: 80.0, seed: 4, ..Default::default() };
        let query = RangeQuery::new(300.0, 700.0).unwrap();

        let mut w = SyntheticWorkload::new(cfg);
        let initial = w.initial_values();
        let events = collect_events(&mut w);

        let mut a = ShardedServer::new(&initial, ZtNrp::new(query), ServerConfig::with_shards(3));
        a.initialize();
        a.ingest_batch(&events);

        let mut w = SyntheticWorkload::new(cfg);
        let mut b = ShardedServer::new(
            &initial,
            ZtNrp::new(query),
            ServerConfig::with_shards(3).batch_size(17),
        );
        b.run(&mut w);

        assert_eq!(a.answer(), b.answer());
        assert_eq!(a.ledger(), b.ledger());
        assert_eq!(a.events_processed(), b.events_processed());
    }

    #[test]
    fn metrics_account_for_every_event() {
        let mut w = SyntheticWorkload::new(SyntheticConfig {
            num_streams: 30,
            horizon: 100.0,
            seed: 2,
            ..Default::default()
        });
        let initial = w.initial_values();
        let events = collect_events(&mut w);
        let query = RangeQuery::new(400.0, 600.0).unwrap();
        let mut server = ShardedServer::new(
            &initial,
            ZtNrp::new(query),
            ServerConfig::with_shards(5).batch_size(32),
        );
        server.initialize();
        server.ingest_batch(&events);
        let m = server.metrics();
        assert_eq!(m.events, events.len() as u64);
        assert_eq!(m.speculative_commits, m.events, "every event commits exactly once");
        assert_eq!(m.shard_events.iter().sum::<u64>(), m.events);
        assert!(m.batches >= 1 && m.rounds >= m.batches);
        assert!(m.batch_latency_ns(50.0).is_some());
        // The filtered fast path must dominate on this workload.
        assert!(m.parallel_fraction() > 0.5, "parallel fraction {}", m.parallel_fraction());
        let final_metrics = server.shutdown();
        assert_eq!(final_metrics.events, events.len() as u64);
    }

    #[test]
    fn tiny_batch_size_survives_speculation_cuts() {
        // Regression: batch_size below the adaptive window floor used to
        // panic (`clamp` with min > max) on the first invalidation cut.
        // RTP's overflow/expansion handlers probe and broadcast, so they
        // cut reliably on a moving workload.
        use asf_core::protocol::Rtp;
        use asf_core::query::RankQuery;

        let mut w = SyntheticWorkload::new(SyntheticConfig {
            num_streams: 30,
            horizon: 120.0,
            seed: 11,
            ..Default::default()
        });
        let initial = w.initial_values();
        let events = collect_events(&mut w);
        let query = RankQuery::knn(500.0, 4).unwrap();

        let mut engine = Engine::new(&initial, Rtp::new(query, 2).unwrap());
        engine.initialize();
        let mut vw = VecWorkload::new(initial.clone(), events.clone());
        engine.run(&mut vw);

        let config = ServerConfig::with_shards(3).batch_size(16);
        let mut server = ShardedServer::new(&initial, Rtp::new(query, 2).unwrap(), config);
        server.initialize();
        server.ingest_batch(&events);
        assert!(server.metrics().cuts > 0, "workload should exercise the cut path");
        assert_eq!(server.answer(), engine.answer());
        assert_eq!(server.ledger(), engine.ledger());
    }

    #[test]
    #[should_panic(expected = "more shards")]
    fn rejects_more_shards_than_streams() {
        let query = RangeQuery::new(0.0, 1.0).unwrap();
        ShardedServer::new(&[1.0, 2.0], ZtNrp::new(query), ServerConfig::with_shards(3));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_backwards_time() {
        let query = RangeQuery::new(0.0, 1.0).unwrap();
        let mut server =
            ShardedServer::new(&[1.0, 2.0], ZtNrp::new(query), ServerConfig::with_shards(2));
        server.initialize();
        server.ingest_batch(&[
            UpdateEvent { time: 5.0, stream: StreamId(0), value: 1.5 },
            UpdateEvent { time: 4.0, stream: StreamId(0), value: 1.6 },
        ]);
    }
}
