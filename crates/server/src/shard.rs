//! A worker shard: owns one partition of the stream population and does the
//! data-plane work — speculative batch filter evaluation, committed
//! deliveries, and the shard-side half of probes / installs / broadcasts.
//!
//! Sources are assigned to shards by stride: global stream `g` lives on
//! shard `g % k` at local index `g / k` (see [`Partition`]). The shard's
//! [`SourceFleet`] uses *local* dense ids; all translation happens at the
//! boundary.
//!
//! ## Getting events onto the shard: broadcast vs. eager scatter
//!
//! Two commands start a speculative evaluation window:
//!
//! * [`ShardCmd::EvalWindow`] — the **broadcast scatter** path (the
//!   default): the coordinator shares one columnar
//!   [`asf_core::workload::EventBatch`] window behind an `Arc` and every
//!   shard *self-partitions*, scanning the shared stream column for the
//!   ids it owns (`stream % shards == shard_id`) and building its
//!   [`SpecEvent`]s locally. The coordinator pays O(shards) `Arc` clones
//!   per window; the ownership scan is metered per shard
//!   ([`ShardReply::Evaluated::scan_ns`]) and runs inside the parallel
//!   region.
//! * [`ShardCmd::EvalBatch`] — the **eager** path, kept as the
//!   differential baseline: the coordinator partitions the window into
//!   per-shard `SpecEvent` vectors itself and sends each shard its slice.
//!
//! Both paths journal and evaluate identically from there on.
//!
//! ## Optimistic evaluation and the undo log
//!
//! [`Shard::exec`] walks its slice of a batch
//! in sequence order **optimistically**: silent updates apply their value;
//! filter violations are tentatively treated as delivered reports (value
//! applied, last-reported refreshed) and returned to the coordinator in
//! order. Every application is journaled in a [`SpecLog`] with the
//! source's prior state.
//!
//! The coordinator consumes the merged, sequence-ordered report stream
//! through the protocol. As long as handling a report touches **no** other
//! source (no install / probe / broadcast), the speculation is exactly
//! what serial execution would have done — sources are independent — and
//! the whole slice commits in one round. The moment a handler touches the
//! fleet, the coordinator issues [`ShardCmd::Commit`] with `keep_below`
//! just past the report being handled: later applications roll back
//! (newest first) and re-evaluate after the protocol's actions, which is
//! what keeps the sharded runtime byte-identical to the serial engine.

use std::sync::Arc;
use std::time::Instant;

use asf_core::workload::EventBatch;
use asf_telemetry::{TraceDepth, TraceEvent, TraceRing};
use streamnet::{Filter, Ledger, ServerView, SourceFleet, SpecLog, StreamId};

/// Strided assignment of global stream ids to `k` shards.
#[derive(Clone, Copy, Debug)]
pub struct Partition {
    k: u32,
}

impl Partition {
    /// Creates the partition map for `k` shards.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one shard");
        assert!(u32::try_from(k).is_ok(), "too many shards");
        Self { k: k as u32 }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.k as usize
    }

    /// The shard owning a global stream id.
    #[inline]
    pub fn shard_of(&self, id: StreamId) -> usize {
        (id.0 % self.k) as usize
    }

    /// The owning shard's local index for a global stream id.
    #[inline]
    pub fn local_of(&self, id: StreamId) -> u32 {
        id.0 / self.k
    }

    /// The global id of `(shard, local)`.
    #[inline]
    pub fn global_of(&self, shard: usize, local: u32) -> StreamId {
        StreamId(local * self.k + shard as u32)
    }

    /// Splits the global initial values into per-shard local value vectors.
    pub fn split_values(&self, initial: &[f64]) -> Vec<Vec<f64>> {
        let mut per_shard: Vec<Vec<f64>> = vec![Vec::new(); self.shards()];
        for (g, &v) in initial.iter().enumerate() {
            per_shard[(g as u32 % self.k) as usize].push(v);
        }
        per_shard
    }
}

/// One event of a speculative batch, addressed by shard-local id and
/// stamped with its global batch sequence number.
#[derive(Clone, Copy, Debug)]
pub struct SpecEvent {
    /// Position of the event in the coordinator's batch (ascending).
    pub seq: u64,
    /// Shard-local source index.
    pub local: u32,
    /// The new value.
    pub value: f64,
}

/// A command routed to a shard.
#[derive(Debug)]
pub enum ShardCmd {
    /// Speculatively evaluate a slice of a batch (in `seq` order) that the
    /// coordinator partitioned eagerly (`ScatterMode::Eager`, the
    /// differential baseline).
    EvalBatch {
        /// The shard's slice, in ascending `seq` order.
        events: Vec<SpecEvent>,
        /// Pooled output buffer the shard fills with its tentative reports
        /// and hands back in the `Evaluated` reply — the coordinator
        /// recycles it, so steady-state rounds report without allocating.
        reports: Vec<SpecEvent>,
    },
    /// Speculatively evaluate `window[start..end]` of a **shared** columnar
    /// event window: the shard scans the stream column, selects the events
    /// it owns, and evaluates them in `seq` order (`seq` = position in the
    /// window). The broadcast-scatter path: the same `Arc` is sent to every
    /// shard, so the coordinator copies nothing per event.
    EvalWindow {
        /// The shared columnar window (one `Arc` clone per shard).
        window: Arc<EventBatch>,
        /// First window position of this evaluation round.
        start: usize,
        /// One past the last window position of this round.
        end: usize,
        /// Pooled tentative-report output buffer (see
        /// [`ShardCmd::EvalBatch::reports`]).
        reports: Vec<SpecEvent>,
    },
    /// Commit speculative applications with `seq < keep_below`, roll back
    /// the rest (use `u64::MAX` to commit everything).
    Commit {
        /// First sequence number to roll back.
        keep_below: u64,
    },
    /// Fully deliver one update (value applied; reports for real).
    Deliver {
        /// Shard-local source index.
        local: u32,
        /// The new value.
        value: f64,
    },
    /// Probe one source.
    Probe {
        /// Shard-local source index.
        local: u32,
    },
    /// Probe every source of the partition.
    ProbeAll,
    /// Probe a batch of sources (this shard's slice of a fleet-wide
    /// `probe_many`), in slice order.
    ProbeMany {
        /// Shard-local source indices.
        locals: Vec<u32>,
    },
    /// Install a filter at one source.
    Install {
        /// Shard-local source index.
        local: u32,
        /// The filter to install.
        filter: Filter,
    },
    /// Install a filter per source (this shard's slice of a fleet-wide
    /// `install_many`), in slice order.
    InstallMany {
        /// Shard-local `(source index, filter)` pairs.
        items: Vec<(u32, Filter)>,
    },
    /// Install a filter at every source of the partition (shard half of a
    /// global broadcast; the coordinator meters the operation).
    Broadcast {
        /// The filter to install everywhere.
        filter: Filter,
    },
    /// Ground-truth values of the partition (local order) — oracle/tests.
    TruthSnapshot,
    /// Serialize the shard's durable state (its local [`SourceFleet`]:
    /// values, filters, report baselines) for a checkpoint. Only valid at
    /// chunk-boundary quiescence — no in-flight speculation.
    SaveState,
    /// Replace the shard's state with a checkpoint's: the decoded local
    /// fleet and the local slice of the restored server view. The
    /// coordinator does all decoding and validation; the shard just
    /// installs.
    RestoreState {
        /// The restored local source fleet.
        fleet: SourceFleet,
        /// The restored local view replica (partition slice of the global
        /// view).
        view: ServerView,
    },
    /// Install the shard's trace ring (shares the server's trace epoch so
    /// all tracks land on one timeline).
    SetTrace {
        /// The ring the shard records its spans into.
        ring: TraceRing,
    },
    /// Drain the shard's recorded trace events for export.
    TakeTrace,
    /// Stop the worker loop (threaded mode only).
    Shutdown,
}

/// A shard's reply to one command.
#[derive(Debug)]
pub enum ShardReply {
    /// Outcome of [`ShardCmd::EvalBatch`] / [`ShardCmd::EvalWindow`].
    Evaluated {
        /// Tentative reports (filter violations), in ascending `seq` order.
        reports: Vec<SpecEvent>,
        /// Events speculatively applied (silent + tentative reports).
        evaluated: u32,
        /// Wall time the shard spent on the round (ownership scan included
        /// on the broadcast path), for metrics only.
        busy_ns: u64,
        /// Broadcast path only: the portion of `busy_ns` spent scanning the
        /// shared window for owned events — the work that used to be the
        /// coordinator's serial scatter loop. Zero on the eager path.
        scan_ns: u64,
        /// Eager path: the consumed input buffer, cleared — handed back so
        /// the coordinator can pool scatter buffers instead of allocating a
        /// fresh `Vec` per shard per round. Empty (no allocation) on the
        /// broadcast path, where the selection buffer stays shard-local.
        batch: Vec<SpecEvent>,
    },
    /// Outcome of [`ShardCmd::Commit`].
    Committed {
        /// Speculative applications made permanent.
        kept: u32,
        /// Speculative applications rolled back.
        undone: u32,
    },
    /// Outcome of [`ShardCmd::Deliver`]: the report value, if the filter
    /// was violated.
    Delivered(Option<f64>),
    /// Outcome of [`ShardCmd::Probe`].
    Probed(f64),
    /// Outcome of [`ShardCmd::ProbeAll`].
    ProbedAll {
        /// Values in local order.
        values: Vec<f64>,
        /// Wall time the shard spent on its slice — the coordinator
        /// attributes it to the parallel fleet-op component of the model.
        busy_ns: u64,
    },
    /// Outcome of [`ShardCmd::ProbeMany`].
    ProbedMany {
        /// Values aligned with the requested slice.
        values: Vec<f64>,
        /// Wall time the shard spent on its slice.
        busy_ns: u64,
    },
    /// Outcome of [`ShardCmd::Install`]: the sync-report value, if any.
    Installed(Option<f64>),
    /// Outcome of [`ShardCmd::InstallMany`].
    InstalledMany {
        /// Per-item sync-report values aligned with the requested slice.
        syncs: Vec<Option<f64>>,
        /// Wall time the shard spent on its slice.
        busy_ns: u64,
    },
    /// Outcome of [`ShardCmd::Broadcast`].
    Broadcasted {
        /// Sync reports `(local, value)` in ascending local order.
        syncs: Vec<(u32, f64)>,
        /// Wall time the shard spent on its partition.
        busy_ns: u64,
    },
    /// Outcome of [`ShardCmd::TruthSnapshot`]: values in local order.
    Truth(Vec<f64>),
    /// Outcome of [`ShardCmd::SaveState`]: the serialized local fleet.
    State(Vec<u8>),
    /// Acknowledges a control command with no payload
    /// ([`ShardCmd::SetTrace`], [`ShardCmd::RestoreState`]).
    Ack,
    /// Outcome of [`ShardCmd::TakeTrace`]: the recorded events, in order.
    Trace(Vec<TraceEvent>),
}

/// A worker shard owning one partition of sources.
#[derive(Debug)]
pub struct Shard {
    fleet: SourceFleet,
    /// The global partition map and this shard's index in it — what lets
    /// the shard *self-partition* a shared event window.
    partition: Partition,
    shard_id: u32,
    /// Shard-side scratch: per-shard message counts are informational; the
    /// coordinator's ledger is the authoritative, serial-identical one.
    scratch: Ledger,
    /// Local replica of the server view for this partition (what the
    /// sources have reported), kept by the fleet API.
    local_view: ServerView,
    /// Reused sync-report buffer for broadcasts (cleared per use).
    broadcast_scratch: Vec<(StreamId, f64)>,
    /// Reused selection buffer of the broadcast-scatter ownership scan
    /// (cleared per window; never crosses the channel).
    select_scratch: Vec<SpecEvent>,
    /// Undo journal of the in-flight speculative batch.
    spec: SpecLog,
    /// Cumulative busy time (ns), metrics only.
    busy_ns: u64,
    /// This shard's trace ring (disabled unless the server installs one
    /// via [`ShardCmd::SetTrace`]).
    trace: TraceRing,
}

impl Shard {
    /// Builds a single-shard (whole-population) shard over its initial
    /// values — the one-worker special case of [`Shard::with_partition`].
    ///
    /// # Panics
    ///
    /// Panics if the partition is empty — use at most as many shards as
    /// streams.
    pub fn new(local_initial: &[f64]) -> Self {
        Self::with_partition(local_initial, Partition::new(1), 0)
    }

    /// Builds shard `shard_id` of `partition` over its partition's initial
    /// values (local order).
    ///
    /// # Panics
    ///
    /// Panics if the partition slice is empty or `shard_id` is out of
    /// range.
    pub fn with_partition(local_initial: &[f64], partition: Partition, shard_id: usize) -> Self {
        assert!(shard_id < partition.shards(), "shard {shard_id} out of range");
        let n = local_initial.len();
        Self {
            fleet: SourceFleet::from_values(local_initial),
            partition,
            shard_id: shard_id as u32,
            scratch: Ledger::new(),
            local_view: ServerView::new(n),
            broadcast_scratch: Vec::new(),
            select_scratch: Vec::new(),
            spec: SpecLog::new(),
            busy_ns: 0,
            trace: TraceRing::disabled(),
        }
    }

    /// Number of sources in this partition.
    pub fn len(&self) -> usize {
        self.fleet.len()
    }

    /// Whether the partition is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.fleet.is_empty()
    }

    /// Cumulative busy time in nanoseconds (metrics only).
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Executes one command. Used directly in inline mode and by the worker
    /// thread loop in threaded mode; [`ShardCmd::Shutdown`] must be handled
    /// by the caller.
    pub fn exec(&mut self, cmd: ShardCmd) -> ShardReply {
        let start = Instant::now();
        let mut reply = match cmd {
            ShardCmd::EvalBatch { events, reports } => self.eval_batch(events, reports),
            ShardCmd::EvalWindow { window, start, end, reports } => {
                self.eval_window(&window, start, end, reports)
            }
            ShardCmd::Commit { keep_below } => self.commit(keep_below),
            ShardCmd::Deliver { local, value } => ShardReply::Delivered(self.fleet.deliver_update(
                StreamId(local),
                value,
                &mut self.scratch,
                &mut self.local_view,
            )),
            ShardCmd::Probe { local } => ShardReply::Probed(self.fleet.probe(
                StreamId(local),
                &mut self.scratch,
                &mut self.local_view,
            )),
            ShardCmd::ProbeAll => {
                let mut values = Vec::with_capacity(self.fleet.len());
                for local in 0..self.fleet.len() as u32 {
                    values.push(self.fleet.probe(
                        StreamId(local),
                        &mut self.scratch,
                        &mut self.local_view,
                    ));
                }
                ShardReply::ProbedAll { values, busy_ns: 0 }
            }
            ShardCmd::ProbeMany { locals } => {
                let mut values = Vec::with_capacity(locals.len());
                for local in locals {
                    values.push(self.fleet.probe(
                        StreamId(local),
                        &mut self.scratch,
                        &mut self.local_view,
                    ));
                }
                ShardReply::ProbedMany { values, busy_ns: 0 }
            }
            ShardCmd::Install { local, filter } => ShardReply::Installed(self.fleet.install(
                StreamId(local),
                filter,
                &mut self.scratch,
                &mut self.local_view,
            )),
            ShardCmd::InstallMany { items } => {
                let mut syncs = Vec::with_capacity(items.len());
                for (local, filter) in items {
                    syncs.push(self.fleet.install(
                        StreamId(local),
                        filter,
                        &mut self.scratch,
                        &mut self.local_view,
                    ));
                }
                ShardReply::InstalledMany { syncs, busy_ns: 0 }
            }
            ShardCmd::Broadcast { filter } => {
                // The sync buffer is shard-held scratch (reinit storms
                // broadcast every round); only the (local, value) reply
                // that crosses the channel is allocated.
                let mut syncs = std::mem::take(&mut self.broadcast_scratch);
                self.fleet.install_all_unmetered_into(filter, &mut self.local_view, &mut syncs);
                let reply = syncs.iter().map(|&(id, v)| (id.0, v)).collect();
                self.broadcast_scratch = syncs;
                ShardReply::Broadcasted { syncs: reply, busy_ns: 0 }
            }
            ShardCmd::TruthSnapshot => {
                ShardReply::Truth(self.fleet.iter().map(|s| s.value()).collect())
            }
            ShardCmd::SaveState => {
                debug_assert!(
                    self.spec.is_empty(),
                    "checkpoints are only taken at chunk-boundary quiescence"
                );
                let mut w = asf_persist::StateWriter::new();
                self.fleet.encode(&mut w);
                ShardReply::State(w.into_bytes())
            }
            ShardCmd::RestoreState { fleet, view } => {
                debug_assert_eq!(fleet.len(), self.fleet.len(), "coordinator validates sizes");
                self.fleet = fleet;
                self.local_view = view;
                self.spec = SpecLog::new();
                ShardReply::Ack
            }
            ShardCmd::SetTrace { ring } => {
                self.trace = ring;
                ShardReply::Ack
            }
            ShardCmd::TakeTrace => ShardReply::Trace(self.trace.take()),
            ShardCmd::Shutdown => unreachable!("Shutdown is handled by the worker loop"),
        };
        let elapsed = start.elapsed().as_nanos() as u64;
        self.busy_ns += elapsed;
        // Batch fleet-op replies carry their shard-side wall time so the
        // coordinator can attribute it to the parallel component of the
        // scaling model (shards work their slices concurrently).
        match &mut reply {
            ShardReply::ProbedAll { busy_ns, .. }
            | ShardReply::ProbedMany { busy_ns, .. }
            | ShardReply::InstalledMany { busy_ns, .. }
            | ShardReply::Broadcasted { busy_ns, .. } => *busy_ns = elapsed,
            _ => {}
        }
        reply
    }

    /// Speculatively applies `events` (already selected, in `seq` order)
    /// into the pooled `reports` buffer: the shared evaluation core of both
    /// scatter paths.
    fn eval_events(&mut self, events: &[SpecEvent], reports: &mut Vec<SpecEvent>) {
        // The pipelined coordinator scatters window t+1 while window t's
        // entries are still journaled, so the log may legitimately be
        // non-empty here; `SpecLog::apply` enforces that sequence numbers
        // keep increasing across the window boundary.
        reports.clear();
        for &ev in events {
            let id = StreamId(ev.local);
            if self.spec.apply(&mut self.fleet, ev.seq, id, ev.value).is_some() {
                reports.push(ev);
            }
        }
    }

    fn eval_batch(
        &mut self,
        mut events: Vec<SpecEvent>,
        mut reports: Vec<SpecEvent>,
    ) -> ShardReply {
        let start = Instant::now();
        let seq0 = events.first().map_or(0, |ev| ev.seq);
        self.trace.begin(TraceDepth::Coarse, "shard_eval", seq0);
        self.eval_events(&events, &mut reports);
        let evaluated = events.len() as u32;
        events.clear();
        self.trace.instant(TraceDepth::Fine, "spec_tip", self.spec.last_seq().unwrap_or(0));
        self.trace.end(TraceDepth::Coarse);
        ShardReply::Evaluated {
            reports,
            evaluated,
            busy_ns: start.elapsed().as_nanos() as u64,
            scan_ns: 0,
            batch: events,
        }
    }

    fn eval_window(
        &mut self,
        window: &EventBatch,
        start: usize,
        end: usize,
        mut reports: Vec<SpecEvent>,
    ) -> ShardReply {
        // Phase 1 — ownership scan: walk the shared stream column and
        // select this shard's events into the pooled local buffer. This is
        // exactly the partitioning work the coordinator's eager scatter
        // loop used to do serially for all shards; here every shard scans
        // its window concurrently, and the time is reported as `scan_ns`.
        let scan_start = Instant::now();
        self.trace.begin(TraceDepth::Coarse, "shard_eval", start as u64);
        self.trace.begin(TraceDepth::Fine, "ownership_scan", start as u64);
        let mut selected = std::mem::take(&mut self.select_scratch);
        selected.clear();
        let streams = &window.streams()[start..end];
        let values = &window.values()[start..end];
        for (i, (&stream, &value)) in streams.iter().zip(values).enumerate() {
            if self.partition.shard_of(stream) == self.shard_id as usize {
                selected.push(SpecEvent {
                    seq: (start + i) as u64,
                    local: self.partition.local_of(stream),
                    value,
                });
            }
        }
        self.trace.end(TraceDepth::Fine);
        let scan_ns = scan_start.elapsed().as_nanos() as u64;

        // Phase 2 — the same optimistic evaluation as the eager path.
        let eval_start = Instant::now();
        self.eval_events(&selected, &mut reports);
        let evaluated = selected.len() as u32;
        self.select_scratch = selected;
        self.trace.instant(TraceDepth::Fine, "spec_tip", self.spec.last_seq().unwrap_or(0));
        self.trace.end(TraceDepth::Coarse);
        ShardReply::Evaluated {
            reports,
            evaluated,
            busy_ns: scan_ns + eval_start.elapsed().as_nanos() as u64,
            scan_ns,
            batch: Vec::new(),
        }
    }

    fn commit(&mut self, keep_below: u64) -> ShardReply {
        let (kept, undone) = self.spec.commit_below(&mut self.fleet, keep_below);
        if undone > 0 {
            // The shard-side rollback extent of a speculation cut.
            self.trace.instant(TraceDepth::Coarse, "rollback", undone as u64);
        }
        ShardReply::Committed { kept, undone }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_roundtrip() {
        let p = Partition::new(3);
        for g in 0..100u32 {
            let id = StreamId(g);
            let s = p.shard_of(id);
            let l = p.local_of(id);
            assert_eq!(p.global_of(s, l), id);
        }
    }

    #[test]
    fn split_values_strides() {
        let p = Partition::new(2);
        let per = p.split_values(&[10.0, 11.0, 12.0, 13.0, 14.0]);
        assert_eq!(per[0], vec![10.0, 12.0, 14.0]);
        assert_eq!(per[1], vec![11.0, 13.0]);
    }

    #[test]
    fn eval_reports_violations_and_commit_rolls_back_suffix() {
        // Sources at 500 / 100 with active filters (probe marks reported).
        let mut shard = Shard::new(&[500.0, 100.0]);
        shard.exec(ShardCmd::ProbeAll);
        shard.exec(ShardCmd::Install { local: 0, filter: Filter::interval(400.0, 600.0) });
        shard.exec(ShardCmd::Install { local: 1, filter: Filter::interval(0.0, 200.0) });

        // seq 0: silent, seq 2: silent, seq 5: violation, seq 7: silent
        // (post-violation state: source 0 reported 700, outside -> outside).
        let reply = shard.exec(ShardCmd::EvalBatch {
            events: vec![
                SpecEvent { seq: 0, local: 0, value: 550.0 },
                SpecEvent { seq: 2, local: 1, value: 150.0 },
                SpecEvent { seq: 5, local: 0, value: 700.0 },
                SpecEvent { seq: 7, local: 0, value: 800.0 },
            ],
            reports: Vec::new(),
        });
        match reply {
            ShardReply::Evaluated { reports, evaluated, .. } => {
                assert_eq!(reports.len(), 1);
                assert_eq!((reports[0].seq, reports[0].local, reports[0].value), (5, 0, 700.0));
                assert_eq!(evaluated, 4, "optimistic eval continues past violations");
            }
            other => panic!("unexpected reply {other:?}"),
        }

        // Invalidation just past seq 5: seq 7's application must unwind to
        // the post-report state, seq 0/2/5 stand.
        match shard.exec(ShardCmd::Commit { keep_below: 6 }) {
            ShardReply::Committed { kept, undone } => {
                assert_eq!((kept, undone), (3, 1));
            }
            other => panic!("unexpected reply {other:?}"),
        }
        match shard.exec(ShardCmd::TruthSnapshot) {
            ShardReply::Truth(values) => assert_eq!(values, vec![700.0, 150.0]),
            other => panic!("unexpected reply {other:?}"),
        }
        // The tentative report refreshed last-reported: moving back inside
        // the band now violates again.
        match shard.exec(ShardCmd::Deliver { local: 0, value: 550.0 }) {
            ShardReply::Delivered(r) => assert_eq!(r, Some(550.0)),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    /// Replays `cmds` through a fresh shard pair and returns, per shard,
    /// the reports of each eval round plus the final truth snapshot.
    fn reports_of(reply: ShardReply) -> Vec<(u64, u32, f64)> {
        match reply {
            ShardReply::Evaluated { reports, .. } => {
                reports.into_iter().map(|ev| (ev.seq, ev.local, ev.value)).collect()
            }
            other => panic!("expected Evaluated, got {other:?}"),
        }
    }

    #[test]
    fn broadcast_self_partitioning_with_rollback_equals_eager_scatter() {
        // Shared columnar window over 2 shards; both scatter paths must
        // produce identical reports, identical rollback behaviour on a
        // mid-window cut, and identical source state after the re-scatter
        // of the surviving suffix.
        let initial = [500.0, 100.0, 450.0, 150.0]; // shard0: {0,2}→{500,450}, shard1: {1,3}
        let partition = Partition::new(2);
        let per_shard = partition.split_values(&initial);
        let make = || -> Vec<Shard> {
            (0..2)
                .map(|s| {
                    let mut shard = Shard::with_partition(&per_shard[s], partition, s);
                    shard.exec(ShardCmd::ProbeAll);
                    shard.exec(ShardCmd::Broadcast { filter: Filter::interval(400.0, 600.0) });
                    shard
                })
                .collect()
        };
        let mut eager = make();
        let mut broadcast = make();

        let mut window = EventBatch::new();
        for (t, (g, v)) in
            [(0u32, 550.0), (1, 650.0), (2, 700.0), (3, 500.0), (0, 800.0), (2, 420.0)]
                .into_iter()
                .enumerate()
        {
            window.push_parts(t as f64, StreamId(g), v);
        }
        let window = Arc::new(window);

        // Eager partitioning: what the coordinator's scatter loop builds.
        let eager_slices = |start: usize, end: usize| -> Vec<Vec<SpecEvent>> {
            let mut slices = vec![Vec::new(), Vec::new()];
            for i in start..end {
                let g = window.streams()[i];
                slices[partition.shard_of(g)].push(SpecEvent {
                    seq: i as u64,
                    local: partition.local_of(g),
                    value: window.values()[i],
                });
            }
            slices
        };

        for s in 0..2 {
            let e = reports_of(eager[s].exec(ShardCmd::EvalBatch {
                events: eager_slices(0, 6)[s].clone(),
                reports: Vec::new(),
            }));
            let b = reports_of(broadcast[s].exec(ShardCmd::EvalWindow {
                window: Arc::clone(&window),
                start: 0,
                end: 6,
                reports: Vec::new(),
            }));
            assert_eq!(e, b, "shard {s}: scatter paths diverged");
        }

        // A fleet touch at seq 2 cuts speculation: keep seqs 0..=2, roll
        // back the rest, then re-scatter the suffix — the broadcast path
        // reuses the *same* shared window, no re-copy.
        for s in 0..2 {
            let ShardReply::Committed { kept, undone } =
                eager[s].exec(ShardCmd::Commit { keep_below: 3 })
            else {
                panic!()
            };
            let ShardReply::Committed { kept: bk, undone: bu } =
                broadcast[s].exec(ShardCmd::Commit { keep_below: 3 })
            else {
                panic!()
            };
            assert_eq!((kept, undone), (bk, bu), "shard {s}: commit diverged");
        }
        for s in 0..2 {
            let e = reports_of(eager[s].exec(ShardCmd::EvalBatch {
                events: eager_slices(3, 6)[s].clone(),
                reports: Vec::new(),
            }));
            let b = reports_of(broadcast[s].exec(ShardCmd::EvalWindow {
                window: Arc::clone(&window),
                start: 3,
                end: 6,
                reports: Vec::new(),
            }));
            assert_eq!(e, b, "shard {s}: re-scatter diverged");
            eager[s].exec(ShardCmd::Commit { keep_below: u64::MAX });
            broadcast[s].exec(ShardCmd::Commit { keep_below: u64::MAX });
            let ShardReply::Truth(et) = eager[s].exec(ShardCmd::TruthSnapshot) else { panic!() };
            let ShardReply::Truth(bt) = broadcast[s].exec(ShardCmd::TruthSnapshot) else {
                panic!()
            };
            assert_eq!(et, bt, "shard {s}: final source state diverged");
        }
    }

    #[test]
    fn rollback_restores_report_state_exactly() {
        let mut shard = Shard::new(&[500.0]);
        shard.exec(ShardCmd::ProbeAll);
        shard.exec(ShardCmd::Install { local: 0, filter: Filter::interval(400.0, 600.0) });

        // seq 0 silent, seq 1 tentative report, seq 2 silent-after-report.
        shard.exec(ShardCmd::EvalBatch {
            events: vec![
                SpecEvent { seq: 0, local: 0, value: 510.0 },
                SpecEvent { seq: 1, local: 0, value: 700.0 },
                SpecEvent { seq: 2, local: 0, value: 900.0 },
            ],
            reports: Vec::new(),
        });
        // Roll everything back: value, last-reported, and traffic must be
        // exactly as before the batch.
        shard.exec(ShardCmd::Commit { keep_below: 0 });
        match shard.exec(ShardCmd::TruthSnapshot) {
            ShardReply::Truth(values) => assert_eq!(values, vec![500.0]),
            other => panic!("unexpected reply {other:?}"),
        }
        // 700 would violate again (last_reported back to 500).
        match shard.exec(ShardCmd::Deliver { local: 0, value: 450.0 }) {
            ShardReply::Delivered(r) => assert_eq!(r, None, "inside -> inside stays silent"),
            other => panic!("unexpected reply {other:?}"),
        }
    }
}
