//! The pipelined coordinator: double-buffered evaluation windows.
//!
//! The serial coordinator alternates two phases that never overlap: the
//! shards evaluate a window, then the coordinator drains the window's
//! report stream while every shard sits idle. On report-heavy workloads
//! (rank protocols with redeployments, reinit storms) the drain dominates,
//! and adding shards buys nothing — the ROADMAP's `serial_ns` wall.
//!
//! Pipelining overlaps the two: while the coordinator drains window *t*'s
//! seq-ordered reports, the shards already evaluate window *t+1*
//! speculatively. This is sound for exactly the same reason in-window
//! speculation is sound — a report handler that touches no source state
//! cannot change any evaluation, because sources are independent — and the
//! guarded cut generalizes across the window boundary:
//!
//! ```text
//!             ┌───────────── window t ─────────────┐┌─── window t+1 ───┐
//!   shards:   │ EvalBatch(t)      (idle)           ││ EvalBatch(t+1)   │ ...
//!   coord:    │ scatter t | gather t | scatter t+1 || drain reports(t) | gather t+1 ...
//! ```
//!
//! ## The window/rollback state machine
//!
//! ```text
//!                    scatter t ──► gather t
//!                                     │
//!                        ┌────────────▼─────────────┐
//!              ┌────────►│ scatter t+1 (speculative)│◄─────────┐
//!              │         └────────────┬─────────────┘          │
//!              │                      │ drain t's reports      │
//!              │                      ▼                        │
//!              │      ┌─ no handler touched the fleet ─┐       │
//!              │      │  window t stands; gather t+1   ├───────┘
//!              │      │  (its eval overlapped the      │   t := t+1
//!              │      │   drain: `overlap_saved_ns`)   │
//!              │      └────────────────────────────────┘
//!              │
//!              │      ┌─ handler touched the fleet at seq c ──────────┐
//!   refill the │      │ 1. absorb t+1's `Evaluated` replies (reports  │
//!   pipe at    │      │    discarded, buffers recycled)               │
//!   c+1        │      │ 2. commit_below(c+1): applications with       │
//!              │      │    seq ≤ c stand, everything later — rest of  │
//!              │      │    t *and* all of t+1 — rolls back, newest    │
//!              │      │    first                                      │
//!              │      │ 3. the touch executes against the exact       │
//!              │      │    serial state; remaining reports of t are   │
//!              │      │    dropped (they will re-evaluate)            │
//!              └──────┤ 4. re-scatter from c+1 (adapted window)       │
//!                     └───────────────────────────────────────────────┘
//! ```
//!
//! The cut's `commit_below(c + 1)` is the cross-window rollback: the
//! [`streamnet::SpecLog`] journals both windows' applications under one
//! strictly-increasing sequence, so one cut rolls back precisely the
//! in-flight work the touch invalidates — the suffix of *t* past the
//! report being handled plus all of *t+1* — and nothing before it.
//!
//! ## Determinism
//!
//! Reports are consumed in sequence order, windows commit in order, and a
//! touch rolls speculation back to the exact serial state before it
//! executes — so the pipelined coordinator is **byte-identical** to the
//! serial coordinator and to the single-threaded engine (answers, ledgers,
//! view bits, report counts), for any shard count and execution mode.
//! `tests/server_shard_invariance.rs` and `tests/batch_differential.rs`
//! pin this per protocol.
//!
//! Because no handler ran between window *t*'s evaluation and its drain,
//! a whole burst of independent reports — reports whose handlers only
//! mutate protocol bookkeeping — is consumed against one speculation
//! generation and committed at one quiescent point
//! ([`crate::ServerMetrics::coalesced_reports_per_group`]); the batch
//! fleet operations a handler *does* issue execute as one scatter/gather
//! each (see [`crate::router::ShardRouter`]), so a reinit storm costs one
//! probe storm plus one deployment storm, not `2n` round-trips.

use asf_core::protocol::Protocol;

/// How the coordinator schedules report handling against shard evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CoordMode {
    /// Evaluate a window, then drain its reports; no overlap. The
    /// speculation baseline the differential suites compare against.
    Serial,
    /// Double-buffered windows: shards evaluate window `t+1` while the
    /// coordinator drains window `t`'s reports; a fleet touch rolls back
    /// the in-flight work it invalidates. Byte-identical to
    /// [`CoordMode::Serial`]. The default.
    #[default]
    Pipelined,
}

use crate::server::ShardedServer;

impl<P: Protocol> ShardedServer<P> {
    /// Double-buffered chunk application (see the module docs for the
    /// state machine). Byte-identical to the serial path by construction.
    /// Windows — including the rollback re-scatters after a cut — are
    /// ranges of the one shared chunk, so under broadcast scatter each
    /// round costs O(shards) `Arc` clones, never an event copy.
    pub(crate) fn apply_chunk_pipelined(&mut self) {
        let chunk_len = self.shared_chunk.len();
        let mut start = 0usize;
        'refill: while start < chunk_len {
            // Fill the pipe: evaluate the first window with nothing to
            // overlap (there are no reports to drain yet).
            let end = chunk_len.min(start + self.window);
            let participants = self.scatter_window(start, end);
            self.metrics.critical_path_ns += self.gather_window(&participants);
            self.recycle_participants(participants);
            let mut cur_end = end;

            // Steady state: window t's reports drain while window t+1
            // evaluates.
            loop {
                let mut next_window: Vec<usize> = Vec::new();
                let mut next_end = cur_end;
                if cur_end < chunk_len {
                    next_end = chunk_len.min(cur_end + self.window);
                    next_window = self.scatter_window(cur_end, next_end);
                    self.metrics.max_inflight_windows = self.metrics.max_inflight_windows.max(2);
                }

                let (cut_at, drain_pure) = self.drain_reports(&mut next_window);

                match cut_at {
                    Some(c) => {
                        // The guarded cut absorbed the in-flight window
                        // (if any) and rolled everything past `c` back;
                        // refill the pipe right after the touch.
                        debug_assert!(next_window.is_empty(), "cut leaves no window in flight");
                        self.recycle_participants(next_window);
                        self.adapt_window_to_cut(start, c);
                        start = c as usize + 1;
                        continue 'refill;
                    }
                    None => {
                        // Window t stands (its applications commit at the
                        // next cut or the chunk-end quiescent point).
                        // Quiet window: widen (deterministic — depends
                        // only on the event/report sequence).
                        self.window = (self.window * 2).min(self.max_window());
                        start = cur_end;
                        if next_window.is_empty() {
                            self.recycle_participants(next_window);
                            break 'refill;
                        }
                        // Gather t+1: its evaluation ran while the drain
                        // above did — serial time hidden by the pipeline.
                        let cp_next = self.gather_window(&next_window);
                        self.recycle_participants(next_window);
                        self.metrics.critical_path_ns += cp_next;
                        let saved = drain_pure.min(cp_next);
                        self.metrics.overlap_saved_ns += saved;
                        if saved > 0 {
                            self.metrics.overlapped_windows += 1;
                        }
                        cur_end = next_end;
                    }
                }
            }
        }
        // Quiescent: make every surviving speculative application
        // permanent.
        self.commit_surviving();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::ExecMode;
    use crate::server::{ScatterMode, ServerConfig};
    use asf_core::engine::Engine;
    use asf_core::protocol::{Rtp, ZtNrp};
    use asf_core::query::{RangeQuery, RankQuery};
    use asf_core::workload::{UpdateEvent, VecWorkload, Workload};
    use streamnet::StreamId;
    use workloads::{SyntheticConfig, SyntheticWorkload};

    fn fixture(n: usize, horizon: f64, seed: u64) -> (Vec<f64>, Vec<UpdateEvent>) {
        let mut w = SyntheticWorkload::new(SyntheticConfig {
            num_streams: n,
            horizon,
            seed,
            ..Default::default()
        });
        let initial = w.initial_values();
        let mut events = Vec::new();
        while let Some(ev) = w.next_event() {
            events.push(ev);
        }
        (initial, events)
    }

    #[test]
    fn pipelined_overlaps_windows_and_matches_serial_engine() {
        let (initial, events) = fixture(32, 200.0, 5);
        let query = RangeQuery::new(400.0, 600.0).unwrap();

        let mut engine = Engine::new(&initial, ZtNrp::new(query));
        engine.initialize();
        let mut w = VecWorkload::new(initial.clone(), events.clone());
        engine.run(&mut w);

        for mode in [ExecMode::Inline, ExecMode::Threaded] {
            for scatter in [ScatterMode::Eager, ScatterMode::Broadcast] {
                let config = ServerConfig {
                    num_shards: 4,
                    batch_size: 64,
                    mode,
                    channel_capacity: 2,
                    coordinator: CoordMode::Pipelined,
                    scatter,
                    telemetry: Default::default(),
                };
                let mut server = super::ShardedServer::new(&initial, ZtNrp::new(query), config);
                server.initialize();
                server.ingest_batch(&events);
                assert_eq!(server.answer(), engine.answer(), "{mode:?} {scatter:?}");
                assert_eq!(server.ledger(), engine.ledger(), "{mode:?} {scatter:?}");
                let m = server.metrics();
                assert_eq!(
                    m.max_inflight_windows, 2,
                    "the pipe must actually fill ({mode:?} {scatter:?})"
                );
                assert_eq!(m.speculative_commits, m.events, "every event commits exactly once");
                assert_eq!(m.shard_events.iter().sum::<u64>(), m.events);
                if scatter == ScatterMode::Broadcast {
                    assert!(m.window_bytes_shared > 0, "broadcast rounds share window bytes");
                }
                server.shutdown();
            }
        }
    }

    #[test]
    fn cross_window_touch_rolls_back_inflight_window() {
        // RTP's overflow/expansion handlers probe and broadcast, so a
        // moving workload reliably touches the fleet mid-drain — with a
        // window in flight, the touch must absorb and roll it back, and
        // still match the serial engine byte for byte.
        let (initial, events) = fixture(30, 150.0, 11);
        let query = RankQuery::knn(500.0, 4).unwrap();

        let mut engine = Engine::new(&initial, Rtp::new(query, 2).unwrap());
        engine.initialize();
        let mut w = VecWorkload::new(initial.clone(), events.clone());
        engine.run(&mut w);

        let config = ServerConfig {
            num_shards: 3,
            batch_size: 32,
            mode: ExecMode::Inline,
            channel_capacity: 2,
            coordinator: CoordMode::Pipelined,
            scatter: Default::default(),
            telemetry: Default::default(),
        };
        let mut server = super::ShardedServer::new(&initial, Rtp::new(query, 2).unwrap(), config);
        server.initialize();
        server.ingest_batch(&events);

        let m = server.metrics().clone();
        assert!(m.cuts > 0, "workload should exercise the cut path");
        assert!(
            m.discarded_reports > 0 || m.discarded_window_busy_ns > 0,
            "at least one cut should land while a next window is in flight \
             (cuts={}, discarded_reports={})",
            m.cuts,
            m.discarded_reports
        );
        assert_eq!(server.answer(), engine.answer());
        assert_eq!(server.ledger(), engine.ledger());
        assert_eq!(server.reports_processed(), engine.reports_processed());
        for i in 0..initial.len() {
            let id = StreamId(i as u32);
            assert_eq!(server.view().get(id), engine.view().get(id), "view diverged for {id}");
        }
        let truth = server.truth_values();
        let serial_truth: Vec<f64> = engine.fleet().iter().map(|s| s.value()).collect();
        assert_eq!(truth, serial_truth, "rollback must restore exact source state");
    }

    #[test]
    fn serial_and_pipelined_coordinators_are_byte_identical() {
        let (initial, events) = fixture(40, 180.0, 23);
        let query = RankQuery::knn(500.0, 5).unwrap();
        let run = |coordinator: CoordMode| {
            let config = ServerConfig {
                num_shards: 4,
                batch_size: 128,
                mode: ExecMode::Inline,
                channel_capacity: 2,
                coordinator,
                scatter: Default::default(),
                telemetry: Default::default(),
            };
            let mut server =
                super::ShardedServer::new(&initial, Rtp::new(query, 2).unwrap(), config);
            server.initialize();
            server.ingest_batch(&events);
            let answers = server.answer();
            let ledger = server.ledger().clone();
            let reports = server.reports_processed();
            let truth = server.truth_values();
            (answers, ledger, reports, truth)
        };
        assert_eq!(run(CoordMode::Serial), run(CoordMode::Pipelined));
    }
}
