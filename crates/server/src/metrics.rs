//! Runtime metrics of the sharded server: batches, rounds, messages,
//! shard occupancy, and batch-apply latency percentiles.
//!
//! Everything here is observational — nothing feeds back into protocol
//! decisions, so wall-clock noise can never perturb determinism.
//!
//! Latency samples live in a bounded-memory [`LogHistogram`] rather than a
//! sample ring: **every** batch since startup contributes to the
//! percentiles (the old fixed ring silently forgot tail samples once it
//! wrapped), memory stays at one fixed bucket array regardless of uptime,
//! and histograms from different servers or shards merge exactly.

use asf_telemetry::{LogHistogram, Registry};

/// Where the time of **batch fleet operations** went — the `probe_many` /
/// `install_many` / `probe_all` / `broadcast` scatter/gathers issued by
/// protocol handlers against the shards.
///
/// The coordinator wall-clock of such an operation splits into shard-side
/// work (each shard runs its slice; concurrent in a multi-core deployment)
/// and coordinator-side fan-out/reassembly. `parallel_ns` sums, per
/// operation, the **maximum** shard busy time — what a perfectly parallel
/// execution waits for — while `busy_sum_ns` sums all shard busy time, so
/// `wall_ns − busy_sum_ns` is the genuinely serial coordinator overhead.
#[derive(Clone, Copy, Debug, Default)]
pub struct FleetOpStats {
    /// Coordinator wall time inside batch fleet operations, ns.
    pub wall_ns: u64,
    /// Σ over operations of the maximum per-shard busy time, ns — the
    /// modeled parallel component.
    pub parallel_ns: u64,
    /// Σ of all shard busy time inside batch operations, ns.
    pub busy_sum_ns: u64,
    /// Σ per operation of `min(busy_sum, wall)` — the portion of the
    /// coordinator's wall that was shard-side work. This is what the
    /// serial accounting subtracts: with inline shards the busy sum is
    /// fully contained in the wall; with threaded shards the work
    /// overlapped and only up to the op's own wall can have contributed,
    /// so the subtraction is bounded per operation and can never erase
    /// unrelated coordinator time.
    pub hidden_ns: u64,
    /// Batch fleet operations executed.
    pub batch_ops: u64,
}

impl FleetOpStats {
    /// Re-registers the batch fleet-op split under `<prefix>.*`.
    pub fn register_into(&self, prefix: &str, reg: &mut Registry) {
        reg.counter(&format!("{prefix}.wall_ns"), self.wall_ns);
        reg.counter(&format!("{prefix}.parallel_ns"), self.parallel_ns);
        reg.counter(&format!("{prefix}.busy_sum_ns"), self.busy_sum_ns);
        reg.counter(&format!("{prefix}.hidden_ns"), self.hidden_ns);
        reg.counter(&format!("{prefix}.batch_ops"), self.batch_ops);
    }
}

/// Counters and samples collected while the server ingests batches.
#[derive(Clone, Debug, Default)]
pub struct ServerMetrics {
    /// Batches ingested.
    pub batches: u64,
    /// Speculative scatter/gather rounds across all batches.
    pub rounds: u64,
    /// Workload events ingested.
    pub events: u64,
    /// Events whose speculative application was committed (every event
    /// commits exactly once, so this reaches `events` at quiescence).
    pub speculative_commits: u64,
    /// Speculative applications rolled back (work wasted on invalidations).
    pub rolled_back: u64,
    /// Reports consumed by the protocol core.
    pub reports_consumed: u64,
    /// Speculation invalidations (a report's handler touched the fleet).
    pub cuts: u64,
    /// Per-shard committed-event counts (occupancy).
    pub shard_events: Vec<u64>,
    /// Per-shard cumulative speculative-evaluation busy time (ns).
    pub shard_busy_ns: Vec<u64>,
    /// Sum over rounds of the *maximum* shard busy time in that round —
    /// the data-plane critical path of a perfectly parallel execution.
    pub critical_path_ns: u64,
    /// Coordinator-side scatter work per round (ns): the per-event
    /// partition/copy loop under `ScatterMode::Eager`, or just the
    /// O(shards) `Arc` clones of the shared window under
    /// `ScatterMode::Broadcast`. Channel sends and any inline shard
    /// execution are excluded — those are data-plane time, metered via
    /// shard busy.
    pub scatter_ns: u64,
    /// Per-shard time spent scanning shared windows for owned events
    /// (`ScatterMode::Broadcast` only) — where the eager scatter's
    /// partition work moved. Included in the corresponding shard busy /
    /// critical-path figures.
    pub shard_scan_ns: Vec<u64>,
    /// Bytes of columnar window payload shared with the shards by
    /// reference (Σ over rounds of window bytes × participating shards) —
    /// the traffic an eager scatter would have had to copy and partition.
    pub window_bytes_shared: u64,
    /// Coordinator time spent materializing ingested event slices into the
    /// pooled columnar chunk (ns). Zero when the feeder writes the chunk
    /// directly (`ShardedServer::run` via `Workload::next_batch`).
    pub window_build_ns: u64,
    /// Time the coordinator spent in serial report handling (ns),
    /// **excluding** the shard-side busy time of batch fleet operations
    /// issued inside handlers (attributed to [`ServerMetrics::fleet`]).
    pub serial_ns: u64,
    /// Batch fleet operations issued by report handlers during ingestion
    /// (handler probes, deployments, broadcasts).
    pub fleet: FleetOpStats,
    /// Σ over rank-forest maintenance passes (inside report handlers) of
    /// the maximum per-partition busy time — index maintenance
    /// parallelizes across the forest's strided partitions exactly like
    /// shard work, so this is its modeled parallel component.
    pub index_parallel_ns: u64,
    /// Σ of all per-partition busy time inside those maintenance passes
    /// (subtracted from `serial_ns`).
    pub index_busy_sum_ns: u64,
    /// Pipelined coordinator only: Σ over windows of
    /// `min(drain time of window t, evaluation critical path of window
    /// t+1)` — serial work hidden behind concurrent shard evaluation.
    pub overlap_saved_ns: u64,
    /// Windows whose evaluation genuinely overlapped a report drain.
    pub overlapped_windows: u64,
    /// Maximum evaluation windows in flight at once (1 serial,
    /// 2 pipelined once the pipe fills).
    pub max_inflight_windows: u64,
    /// Quiescent commit points that closed at least one consumed report —
    /// the denominator of the report-coalescing gauge.
    pub report_groups: u64,
    /// Speculative next-window evaluation discarded by cross-window cuts:
    /// shard busy time burned in the shadow of the drain that cut it.
    pub discarded_window_busy_ns: u64,
    /// Tentative reports discarded with those windows (re-evaluated after
    /// the cut).
    pub discarded_reports: u64,
    /// Checkpoints written (or scheduled on the background writer) since
    /// durability was enabled. Zero without durability.
    pub checkpoints: u64,
    /// Coordinator critical-path time spent producing checkpoints (ns):
    /// state serialization plus the writer handoff — and, under
    /// `CheckpointMode::Sync`, the inline `fsync` as well.
    pub checkpoint_ns: u64,
    /// Total write-ahead journal bytes on disk (headers included): the
    /// active file plus any sealed segments not yet pruned by compaction.
    pub journal_bytes: u64,
    /// Time spent replaying the journal suffix during
    /// `ShardedServer::recover` (ns). Zero for servers that never
    /// recovered.
    pub recovery_replay_ns: u64,
    /// Server→source request frames retransmitted after a channel timeout.
    /// Zero without chaos (reliable channels never retry).
    pub retries: u64,
    /// Channel timeouts observed (one per dropped request frame). Zero
    /// without chaos.
    pub timeouts: u64,
    /// Sources currently considered dead (heartbeat lease expired). Zero
    /// without chaos.
    pub dead_sources: u64,
    /// Frames rejected idempotently by filter epoch or sequence number.
    /// Zero without chaos.
    pub epoch_rejects: u64,
    /// Coordinator time spent in the chunk-end fault-repair round (ns):
    /// parked-frame delivery, heartbeat/lease bookkeeping, degradation
    /// hooks, and repair re-probes. Zero without chaos.
    pub repair_ns: u64,
    /// Delivered heartbeats that refreshed a channel's lease. Zero without
    /// chaos.
    pub lease_renewals: u64,
    /// Lease expirations of sources that were actually up — the false
    /// positives adaptive leases exist to cut. Zero without chaos.
    pub spurious_expirations: u64,
    /// Chunk-end repair fan-outs charged as a single batched frame. Zero
    /// without chaos (or with per-channel repair charging).
    pub repair_batches: u64,
    /// Bytes the serialized channel-state record contributed to the most
    /// recent checkpoint. Zero without chaos or without durability.
    pub chaos_state_bytes: u64,
    /// Wall-clock batch-apply durations (ns) as a mergeable log-bucketed
    /// histogram: bounded memory, no sample loss.
    batch_hist: LogHistogram,
    /// Adaptive per-channel lease lengths (ticks) at each change, as a
    /// mergeable log-bucketed histogram. Empty without chaos or with
    /// adaptive leases off.
    lease_hist: LogHistogram,
}

impl ServerMetrics {
    /// Creates empty metrics for `num_shards` shards.
    pub fn new(num_shards: usize) -> Self {
        Self {
            shard_events: vec![0; num_shards],
            shard_busy_ns: vec![0; num_shards],
            shard_scan_ns: vec![0; num_shards],
            ..Default::default()
        }
    }

    /// Records one completed batch apply into the latency histogram —
    /// O(1), allocation-free, bounded memory however long the server runs.
    pub fn record_batch(&mut self, wall_ns: u64) {
        self.batch_hist.record(wall_ns);
        self.batches += 1;
    }

    /// Batch-apply latency percentile in nanoseconds (p in `[0, 100]`),
    /// over **every** batch since startup (within the histogram's ~3%
    /// bucket quantization); `None` before the first batch.
    pub fn batch_latency_ns(&self, p: f64) -> Option<f64> {
        self.batch_hist.percentile(p)
    }

    /// The batch-apply latency histogram itself — mergeable across servers
    /// (`LogHistogram::merge` is exact).
    pub fn batch_latency_hist(&self) -> &LogHistogram {
        &self.batch_hist
    }

    /// Records one adaptive-lease change (the channel's new lease length in
    /// ticks) into the lease histogram.
    pub fn record_lease_len(&mut self, ticks: u64) {
        self.lease_hist.record(ticks);
    }

    /// The adaptive lease-length histogram — one sample per per-channel
    /// lease change, mergeable across servers.
    pub fn lease_len_hist(&self) -> &LogHistogram {
        &self.lease_hist
    }

    /// Fraction of ingested events that never reached the coordinator (the
    /// parallel fast path: silent under their filter).
    pub fn parallel_fraction(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            (self.events.saturating_sub(self.reports_consumed)) as f64 / self.events as f64
        }
    }

    /// Reports consumed per quiescent commit point — how many independent
    /// reports one quiescent point covers on average. 1.0 means every
    /// report forced its own commit (no coalescing); higher is better.
    /// `None` before the first group closes.
    pub fn coalesced_reports_per_group(&self) -> Option<f64> {
        if self.report_groups == 0 {
            None
        } else {
            Some(self.reports_consumed as f64 / self.report_groups as f64)
        }
    }

    /// Shard occupancy skew: max / mean committed events per shard (1.0 is
    /// perfectly balanced); `None` until events have been committed.
    pub fn occupancy_skew(&self) -> Option<f64> {
        let total: u64 = self.shard_events.iter().sum();
        if total == 0 || self.shard_events.is_empty() {
            return None;
        }
        let mean = total as f64 / self.shard_events.len() as f64;
        let max = *self.shard_events.iter().max().expect("non-empty") as f64;
        Some(max / mean)
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        // `-` for readings that have no defined value yet — never `NaN`.
        fn opt(v: Option<f64>, decimals: usize) -> String {
            match v {
                Some(v) => format!("{v:.decimals$}"),
                None => "-".to_string(),
            }
        }
        format!(
            "batches={} rounds={} cuts={} events={} reports={} rolled_back={} \
             parallel_fraction={:.3} occupancy_skew={} window_depth={} \
             coalesced_reports_per_group={} overlap_saved={:.1}us \
             batch_apply p50={}us p99={}us",
            self.batches,
            self.rounds,
            self.cuts,
            self.events,
            self.reports_consumed,
            self.rolled_back,
            self.parallel_fraction(),
            opt(self.occupancy_skew(), 3),
            self.max_inflight_windows,
            opt(self.coalesced_reports_per_group(), 2),
            self.overlap_saved_ns as f64 / 1_000.0,
            opt(self.batch_latency_ns(50.0).map(|ns| ns / 1_000.0), 1),
            opt(self.batch_latency_ns(99.0).map(|ns| ns / 1_000.0), 1),
        )
    }

    /// Re-registers every server metric into `reg` under `server.*` /
    /// `fleet.*` — the snapshot schema `bench_diff` and the bench README
    /// document. Per-shard vectors register as sums plus derived gauges so
    /// the key set is shard-count independent.
    pub fn register_into(&self, reg: &mut Registry) {
        reg.counter("server.batches", self.batches);
        reg.counter("server.rounds", self.rounds);
        reg.counter("server.events", self.events);
        reg.counter("server.speculative_commits", self.speculative_commits);
        reg.counter("server.rolled_back", self.rolled_back);
        reg.counter("server.reports_consumed", self.reports_consumed);
        reg.counter("server.cuts", self.cuts);
        reg.counter("server.report_groups", self.report_groups);
        reg.counter("server.max_inflight_windows", self.max_inflight_windows);
        reg.counter("server.shard_busy_ns", self.shard_busy_ns.iter().sum());
        reg.counter("server.shard_scan_ns", self.shard_scan_ns.iter().sum());
        reg.counter("server.critical_path_ns", self.critical_path_ns);
        reg.counter("server.scatter_ns", self.scatter_ns);
        reg.counter("server.window_build_ns", self.window_build_ns);
        reg.counter("server.window_bytes_shared", self.window_bytes_shared);
        reg.counter("server.serial_ns", self.serial_ns);
        reg.counter("server.index_parallel_ns", self.index_parallel_ns);
        reg.counter("server.index_busy_sum_ns", self.index_busy_sum_ns);
        reg.counter("server.overlap_saved_ns", self.overlap_saved_ns);
        reg.counter("server.overlapped_windows", self.overlapped_windows);
        reg.counter("server.discarded_window_busy_ns", self.discarded_window_busy_ns);
        reg.counter("server.discarded_reports", self.discarded_reports);
        reg.counter("server.checkpoints", self.checkpoints);
        reg.counter("server.checkpoint_ns", self.checkpoint_ns);
        reg.counter("server.journal_bytes", self.journal_bytes);
        reg.counter("server.recovery_replay_ns", self.recovery_replay_ns);
        reg.counter("server.retries", self.retries);
        reg.counter("server.timeouts", self.timeouts);
        reg.counter("server.dead_sources", self.dead_sources);
        reg.counter("server.epoch_rejects", self.epoch_rejects);
        reg.counter("server.repair_ns", self.repair_ns);
        reg.counter("server.lease_renewals", self.lease_renewals);
        reg.counter("server.spurious_expirations", self.spurious_expirations);
        reg.counter("server.repair_batches", self.repair_batches);
        reg.counter("server.chaos_state_bytes", self.chaos_state_bytes);
        reg.gauge("server.parallel_fraction", self.parallel_fraction());
        reg.gauge("server.occupancy_skew", self.occupancy_skew().unwrap_or(f64::NAN));
        reg.gauge(
            "server.coalesced_reports_per_group",
            self.coalesced_reports_per_group().unwrap_or(f64::NAN),
        );
        reg.histogram("server.batch_apply_ns", &self.batch_hist);
        reg.histogram("server.lease_len", &self.lease_hist);
        self.fleet.register_into("fleet", reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_skew() {
        let mut m = ServerMetrics::new(2);
        for ns in [100u64, 200, 300, 400] {
            m.record_batch(ns);
        }
        m.events = 10;
        m.reports_consumed = 2;
        m.shard_events = vec![6, 2];
        assert_eq!(m.batches, 4);
        let p50 = m.batch_latency_ns(50.0).unwrap();
        assert!((200.0..=300.0).contains(&p50), "p50 = {p50}");
        assert!((m.parallel_fraction() - 0.8).abs() < 1e-12);
        assert!((m.occupancy_skew().unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_quiet() {
        let m = ServerMetrics::new(4);
        assert!(m.batch_latency_ns(99.0).is_none());
        assert!(m.occupancy_skew().is_none());
        assert_eq!(m.parallel_fraction(), 0.0);
        let s = m.summary();
        assert!(!s.contains("NaN"), "undefined readings must print as '-': {s}");
        assert!(s.contains("occupancy_skew=-"), "summary was: {s}");
        assert!(s.contains("p50=-us"), "summary was: {s}");
    }

    #[test]
    fn latency_histogram_merges_and_registers() {
        let mut a = ServerMetrics::new(1);
        let mut b = ServerMetrics::new(1);
        for ns in [100u64, 300] {
            a.record_batch(ns);
        }
        for ns in [200u64, 400] {
            b.record_batch(ns);
        }
        let mut merged = a.batch_latency_hist().clone();
        merged.merge(b.batch_latency_hist());
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.min(), Some(100));
        assert_eq!(merged.max(), Some(400));

        let mut reg = Registry::new();
        a.register_into(&mut reg);
        let json = reg.to_json();
        let parsed = asf_telemetry::json::parse(&json).expect("snapshot is valid JSON");
        assert_eq!(parsed.get("server.batches").and_then(|v| v.as_f64()), Some(2.0));
        let hist = parsed.get("server.batch_apply_ns").expect("histogram present");
        assert_eq!(hist.get("count").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(parsed.get("fleet.batch_ops").and_then(|v| v.as_f64()), Some(0.0));
    }
}
