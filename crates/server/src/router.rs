//! The coordinator's [`FleetOps`] backend: routes every control-plane fleet
//! operation of the protocol (probe / install / broadcast / deliver) to the
//! shard owning the source, while recording messages in the coordinator's
//! authoritative ledger and refreshing the coordinator's view.
//!
//! The ledger contract of [`FleetOps`] is kept byte-identical to the serial
//! [`streamnet::SourceFleet`]: probes cost 2, installs 1 (+1 per sync),
//! broadcasts `n` as **one** operation (+1 per sync), delivered reports 1.
//! Broadcast sync reports are gathered from all shards and merged in
//! ascending global id order — the same order the serial fleet produces —
//! so the protocol's resolution cascade sees an identical report sequence.
//!
//! Batch operations (`probe_all`, `probe_many`, `install_many`,
//! `broadcast`) are the scaling path: one scatter hands every shard its
//! slice, the shards work concurrently, and one gather reassembles the
//! results in the caller's request order — the coordinator stops being a
//! per-stream round-trip bottleneck for initialization, fleet-wide filter
//! deployments, and reinit storms.

use std::time::Instant;

use asf_telemetry::{TraceDepth, TraceRing};
use streamnet::{Filter, FleetOps, Ledger, MessageKind, ServerView, StreamId};

use crate::handle::ShardHandle;
use crate::metrics::FleetOpStats;
use crate::shard::{Partition, ShardCmd, ShardReply, SpecEvent};

/// The coordinator-side view of an evaluation window still being computed
/// by the shards (the pipelined coordinator's window *t+1*). When a report
/// handler touches the fleet while such a window is in flight, the
/// [`GuardedRouter`] must absorb the outstanding `Evaluated` replies —
/// discarding their tentative reports and recycling their buffers — before
/// it can commit the speculation cut, because per-shard channels are FIFO.
pub(crate) struct InflightWindow<'a> {
    /// Shards with an outstanding eval reply; drained by the absorb.
    pub shards: &'a mut Vec<usize>,
    /// Buffer pool the absorbed batch/report vectors are recycled into.
    pub pool: &'a mut Vec<Vec<SpecEvent>>,
    /// Coordinator-side per-shard cumulative busy accounting.
    pub shard_busy_ns: &'a mut [u64],
    /// Coordinator-side per-shard ownership-scan accounting (broadcast
    /// scatter).
    pub shard_scan_ns: &'a mut [u64],
    /// Shard busy time burned on the discarded window (metrics).
    pub discarded_busy_ns: &'a mut u64,
    /// Tentative reports discarded with the window (metrics).
    pub discarded_reports: &'a mut u64,
}

/// A routing fleet over the shard handles (borrowed for one protocol call).
pub struct ShardRouter<'a> {
    handles: &'a mut [ShardHandle],
    partition: Partition,
    n: usize,
    /// Batch fleet-op attribution (wall / max-shard / Σ-shard busy); `None`
    /// outside the metered ingest paths (e.g. initialization).
    stats: Option<&'a mut FleetOpStats>,
    /// Fine-depth trace ring for fleet-op scatter/gather spans (the
    /// server's `fleet-ops` track); `None` when untraced.
    trace: Option<&'a mut TraceRing>,
}

impl<'a> ShardRouter<'a> {
    /// Borrows the shard handles as a fleet of `n` streams.
    pub fn new(handles: &'a mut [ShardHandle], partition: Partition, n: usize) -> Self {
        Self { handles, partition, n, stats: None, trace: None }
    }

    /// Like [`ShardRouter::new`], attributing batch fleet-op time to
    /// `stats` (the ingest path's scaling model).
    pub fn with_stats(
        handles: &'a mut [ShardHandle],
        partition: Partition,
        n: usize,
        stats: &'a mut FleetOpStats,
    ) -> Self {
        Self { handles, partition, n, stats: Some(stats), trace: None }
    }

    /// Like [`ShardRouter::new`], with optional batch fleet-op attribution
    /// and optional fleet-op trace spans.
    pub(crate) fn with_telemetry(
        handles: &'a mut [ShardHandle],
        partition: Partition,
        n: usize,
        stats: Option<&'a mut FleetOpStats>,
        trace: Option<&'a mut TraceRing>,
    ) -> Self {
        Self { handles, partition, n, stats, trace }
    }

    fn route(&mut self, id: StreamId) -> (&mut ShardHandle, u32) {
        let shard = self.partition.shard_of(id);
        let local = self.partition.local_of(id);
        (&mut self.handles[shard], local)
    }

    /// Opens a fleet-op scatter/gather span (Fine depth); `seq` carries the
    /// operation's fan-out (streams touched).
    #[inline]
    fn trace_begin(&mut self, name: &'static str, seq: u64) {
        if let Some(trace) = self.trace.as_mut() {
            trace.begin(TraceDepth::Fine, name, seq);
        }
    }

    /// Closes the innermost fleet-op span.
    #[inline]
    fn trace_end(&mut self) {
        if let Some(trace) = self.trace.as_mut() {
            trace.end(TraceDepth::Fine);
        }
    }

    /// Records one finished batch fleet operation: the coordinator wall
    /// time and the per-shard busy times gathered from the replies.
    fn record_batch_op(&mut self, started: Instant, busy: &[u64]) {
        if let Some(stats) = self.stats.as_mut() {
            let wall = started.elapsed().as_nanos() as u64;
            let sum = busy.iter().sum::<u64>();
            stats.wall_ns += wall;
            stats.parallel_ns += busy.iter().copied().max().unwrap_or(0);
            stats.busy_sum_ns += sum;
            stats.hidden_ns += sum.min(wall);
            stats.batch_ops += 1;
        }
    }

    /// The shared scatter/gather of `probe_all` / `probe_all_tracked`:
    /// probes run in parallel in threaded mode; ledger counts and the
    /// final view are order-free. When `changed` is given, the change test
    /// rides the reassembly loop that refreshes the view anyway (shards
    /// own strided slices, so the small changed list is sorted once at the
    /// end to meet the ascending-id contract).
    fn probe_all_impl(
        &mut self,
        ledger: &mut Ledger,
        view: &mut ServerView,
        mut changed: Option<&mut Vec<StreamId>>,
    ) {
        let started = Instant::now();
        self.trace_begin("fleet_probe_all", self.n as u64);
        let mut busy = vec![0u64; self.partition.shards()];
        for handle in self.handles.iter_mut() {
            handle.send(ShardCmd::ProbeAll);
        }
        for (shard, handle) in self.handles.iter_mut().enumerate() {
            match handle.recv() {
                ShardReply::ProbedAll { values, busy_ns } => {
                    busy[shard] = busy_ns;
                    ledger.record(MessageKind::ProbeRequest, values.len() as u64);
                    ledger.record(MessageKind::ProbeReply, values.len() as u64);
                    for (local, v) in values.into_iter().enumerate() {
                        let id = self.partition.global_of(shard, local as u32);
                        if let Some(changed) = changed.as_deref_mut() {
                            if !view.is_known(id) || view.get(id).to_bits() != v.to_bits() {
                                changed.push(id);
                            }
                        }
                        view.set(id, v);
                    }
                }
                other => unreachable!("ProbeAll got {other:?}"),
            }
        }
        if let Some(changed) = changed {
            changed.sort_unstable();
        }
        self.record_batch_op(started, &busy);
        self.trace_end();
    }

    /// Commits/rolls back every shard's speculative log around `keep_below`
    /// (scatter, then gather). Returns per-shard `(kept, undone)`.
    pub(crate) fn commit_all(&mut self, keep_below: u64) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.handles.len());
        self.commit_all_into(keep_below, &mut out);
        out
    }

    /// [`ShardRouter::commit_all`] into a caller-pooled buffer, so the
    /// per-chunk quiescence commit stays allocation-free in steady state.
    pub(crate) fn commit_all_into(&mut self, keep_below: u64, out: &mut Vec<(u32, u32)>) {
        out.clear();
        for handle in self.handles.iter_mut() {
            handle.send(ShardCmd::Commit { keep_below });
        }
        for handle in self.handles.iter_mut() {
            match handle.recv() {
                ShardReply::Committed { kept, undone } => out.push((kept, undone)),
                other => unreachable!("Commit got {other:?}"),
            }
        }
    }

    /// Receives and discards the outstanding `Evaluated` replies of an
    /// in-flight window: its tentative reports are dropped (the cut below
    /// will roll their applications back) and its buffers recycled.
    pub(crate) fn absorb_evals(&mut self, inflight: &mut InflightWindow<'_>) {
        for s in inflight.shards.drain(..) {
            match self.handles[s].recv() {
                ShardReply::Evaluated { reports, busy_ns, scan_ns, batch, .. } => {
                    inflight.shard_busy_ns[s] += busy_ns;
                    inflight.shard_scan_ns[s] += scan_ns;
                    *inflight.discarded_busy_ns += busy_ns;
                    *inflight.discarded_reports += reports.len() as u64;
                    let mut reports = reports;
                    reports.clear();
                    if reports.capacity() > 0 {
                        inflight.pool.push(reports);
                    }
                    if batch.capacity() > 0 {
                        inflight.pool.push(batch);
                    }
                }
                other => unreachable!("absorb of EvalBatch got {other:?}"),
            }
        }
    }
}

/// A [`ShardRouter`] that lazily *invalidates* the in-flight speculation
/// the first time the protocol touches the fleet.
///
/// The coordinator consumes speculative reports in sequence order; while a
/// handler only mutates protocol state, the shards' optimistic evaluation
/// of later events remains exactly serial (sources are independent). The
/// first install / probe / broadcast / delivery, however, can change
/// source state that later events depend on — so before forwarding that
/// operation, this router commits every shard's log at `keep_below` (just
/// past the report being handled), rolling the fleet back to the precise
/// serial state the operation must observe.
pub struct GuardedRouter<'a> {
    inner: ShardRouter<'a>,
    keep_below: u64,
    committed: Option<Vec<(u32, u32)>>,
    /// The pipelined coordinator's in-flight next window, absorbed (reports
    /// discarded, applications rolled back by the cut) before the first
    /// fleet touch executes. `None` on the serial coordinator or when no
    /// window is in flight.
    inflight: Option<InflightWindow<'a>>,
}

impl<'a> GuardedRouter<'a> {
    /// Wraps `inner`; a first fleet operation will cut speculation at
    /// `keep_below`.
    pub fn new(inner: ShardRouter<'a>, keep_below: u64) -> Self {
        Self { inner, keep_below, committed: None, inflight: None }
    }

    /// Like [`GuardedRouter::new`], additionally absorbing an in-flight
    /// speculative window before the cut — the cross-window rollback of
    /// the pipelined coordinator.
    pub(crate) fn with_inflight(
        inner: ShardRouter<'a>,
        keep_below: u64,
        inflight: Option<InflightWindow<'a>>,
    ) -> Self {
        Self { inner, keep_below, committed: None, inflight }
    }

    /// Whether the cut fired, and the per-shard `(kept, undone)` counts if
    /// it did.
    pub fn into_cut(self) -> Option<Vec<(u32, u32)>> {
        self.committed
    }

    fn ensure_cut(&mut self) {
        if self.committed.is_none() {
            if let Some(inflight) = self.inflight.as_mut() {
                self.inner.absorb_evals(inflight);
            }
            self.committed = Some(self.inner.commit_all(self.keep_below));
        }
    }
}

impl FleetOps for GuardedRouter<'_> {
    fn len(&self) -> usize {
        self.inner.n
    }

    fn deliver(
        &mut self,
        id: StreamId,
        value: f64,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        self.ensure_cut();
        self.inner.deliver(id, value, ledger, view)
    }

    fn probe(&mut self, id: StreamId, ledger: &mut Ledger, view: &mut ServerView) -> f64 {
        self.ensure_cut();
        self.inner.probe(id, ledger, view)
    }

    fn probe_all(&mut self, ledger: &mut Ledger, view: &mut ServerView) {
        self.ensure_cut();
        self.inner.probe_all(ledger, view)
    }

    fn probe_all_tracked(
        &mut self,
        ledger: &mut Ledger,
        view: &mut ServerView,
        changed: &mut Vec<StreamId>,
    ) {
        self.ensure_cut();
        self.inner.probe_all_tracked(ledger, view, changed)
    }

    fn probe_many(
        &mut self,
        ids: &[StreamId],
        ledger: &mut Ledger,
        view: &mut ServerView,
        out: &mut Vec<f64>,
    ) {
        // An empty batch sends no messages — it is not a fleet touch, so it
        // must not invalidate the in-flight speculation.
        if ids.is_empty() {
            out.clear();
            return;
        }
        self.ensure_cut();
        self.inner.probe_many(ids, ledger, view, out)
    }

    fn install_many(
        &mut self,
        installs: &[(StreamId, Filter)],
        ledger: &mut Ledger,
        view: &mut ServerView,
        syncs: &mut Vec<(StreamId, f64)>,
    ) {
        if installs.is_empty() {
            syncs.clear();
            return;
        }
        self.ensure_cut();
        self.inner.install_many(installs, ledger, view, syncs)
    }

    fn install(
        &mut self,
        id: StreamId,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        self.ensure_cut();
        self.inner.install(id, filter, ledger, view)
    }

    fn broadcast(
        &mut self,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Vec<(StreamId, f64)> {
        self.ensure_cut();
        self.inner.broadcast(filter, ledger, view)
    }
}

impl FleetOps for ShardRouter<'_> {
    fn len(&self) -> usize {
        self.n
    }

    fn deliver(
        &mut self,
        id: StreamId,
        value: f64,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        let (handle, local) = self.route(id);
        match handle.request(ShardCmd::Deliver { local, value }) {
            ShardReply::Delivered(report) => {
                if let Some(v) = report {
                    ledger.record(MessageKind::Update, 1);
                    view.set(id, v);
                    Some(v)
                } else {
                    None
                }
            }
            other => unreachable!("Deliver got {other:?}"),
        }
    }

    fn probe(&mut self, id: StreamId, ledger: &mut Ledger, view: &mut ServerView) -> f64 {
        let (handle, local) = self.route(id);
        match handle.request(ShardCmd::Probe { local }) {
            ShardReply::Probed(v) => {
                ledger.record(MessageKind::ProbeRequest, 1);
                ledger.record(MessageKind::ProbeReply, 1);
                view.set(id, v);
                v
            }
            other => unreachable!("Probe got {other:?}"),
        }
    }

    fn probe_all(&mut self, ledger: &mut Ledger, view: &mut ServerView) {
        self.probe_all_impl(ledger, view, None);
    }

    fn probe_all_tracked(
        &mut self,
        ledger: &mut Ledger,
        view: &mut ServerView,
        changed: &mut Vec<StreamId>,
    ) {
        changed.clear();
        self.probe_all_impl(ledger, view, Some(changed));
    }

    fn probe_many(
        &mut self,
        ids: &[StreamId],
        ledger: &mut Ledger,
        view: &mut ServerView,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if ids.is_empty() {
            return;
        }
        // Scatter each shard's slice (in request order) and let the shards
        // probe concurrently; probes are independent, so only the reassembly
        // order below is observable — and it is the request order.
        let started = Instant::now();
        self.trace_begin("fleet_probe_many", ids.len() as u64);
        let k = self.partition.shards();
        let mut busy = vec![0u64; k];
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); k];
        for &id in ids {
            per_shard[self.partition.shard_of(id)].push(self.partition.local_of(id));
        }
        let mut participants = Vec::new();
        for (s, locals) in per_shard.into_iter().enumerate() {
            if !locals.is_empty() {
                self.handles[s].send(ShardCmd::ProbeMany { locals });
                participants.push(s);
            }
        }
        let mut values: Vec<Vec<f64>> = vec![Vec::new(); k];
        for &s in &participants {
            match self.handles[s].recv() {
                ShardReply::ProbedMany { values: shard_values, busy_ns } => {
                    values[s] = shard_values;
                    busy[s] = busy_ns;
                }
                other => unreachable!("ProbeMany got {other:?}"),
            }
        }
        ledger.record(MessageKind::ProbeRequest, ids.len() as u64);
        ledger.record(MessageKind::ProbeReply, ids.len() as u64);
        out.reserve(ids.len());
        let mut cursor = vec![0usize; k];
        for &id in ids {
            let s = self.partition.shard_of(id);
            let v = values[s][cursor[s]];
            cursor[s] += 1;
            view.set(id, v);
            out.push(v);
        }
        self.record_batch_op(started, &busy);
        self.trace_end();
    }

    fn install_many(
        &mut self,
        installs: &[(StreamId, Filter)],
        ledger: &mut Ledger,
        view: &mut ServerView,
        syncs: &mut Vec<(StreamId, f64)>,
    ) {
        syncs.clear();
        if installs.is_empty() {
            return;
        }
        // Scatter each shard's slice (in installation order); installs touch
        // only their own source, so the shards can run concurrently. Sync
        // reports are reassembled in installation order — exactly the queue
        // the serial per-stream loop would build.
        let started = Instant::now();
        self.trace_begin("fleet_install_many", installs.len() as u64);
        let k = self.partition.shards();
        let mut busy = vec![0u64; k];
        let mut per_shard: Vec<Vec<(u32, Filter)>> = vec![Vec::new(); k];
        for (id, filter) in installs {
            per_shard[self.partition.shard_of(*id)]
                .push((self.partition.local_of(*id), filter.clone()));
        }
        let mut participants = Vec::new();
        for (s, items) in per_shard.into_iter().enumerate() {
            if !items.is_empty() {
                self.handles[s].send(ShardCmd::InstallMany { items });
                participants.push(s);
            }
        }
        let mut replies: Vec<Vec<Option<f64>>> = vec![Vec::new(); k];
        for &s in &participants {
            match self.handles[s].recv() {
                ShardReply::InstalledMany { syncs: shard_syncs, busy_ns } => {
                    replies[s] = shard_syncs;
                    busy[s] = busy_ns;
                }
                other => unreachable!("InstallMany got {other:?}"),
            }
        }
        ledger.record(MessageKind::FilterInstall, installs.len() as u64);
        let mut cursor = vec![0usize; k];
        for (id, _) in installs {
            let s = self.partition.shard_of(*id);
            let sync = replies[s][cursor[s]];
            cursor[s] += 1;
            if let Some(v) = sync {
                ledger.record(MessageKind::Update, 1);
                view.set(*id, v);
                syncs.push((*id, v));
            }
        }
        self.record_batch_op(started, &busy);
        self.trace_end();
    }

    fn install(
        &mut self,
        id: StreamId,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        let (handle, local) = self.route(id);
        match handle.request(ShardCmd::Install { local, filter }) {
            ShardReply::Installed(sync) => {
                ledger.record(MessageKind::FilterInstall, 1);
                if let Some(v) = sync {
                    ledger.record(MessageKind::Update, 1);
                    view.set(id, v);
                    Some(v)
                } else {
                    None
                }
            }
            other => unreachable!("Install got {other:?}"),
        }
    }

    fn broadcast(
        &mut self,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Vec<(StreamId, f64)> {
        // One logical broadcast operation costing n messages, however many
        // shards it fans out to.
        let started = Instant::now();
        self.trace_begin("fleet_broadcast", self.n as u64);
        let mut busy = vec![0u64; self.partition.shards()];
        ledger.record(MessageKind::FilterBroadcast, self.n as u64);
        for handle in self.handles.iter_mut() {
            handle.send(ShardCmd::Broadcast { filter: filter.clone() });
        }
        let mut syncs: Vec<(StreamId, f64)> = Vec::new();
        for (shard, handle) in self.handles.iter_mut().enumerate() {
            match handle.recv() {
                ShardReply::Broadcasted { syncs: local_syncs, busy_ns } => {
                    busy[shard] = busy_ns;
                    for (local, v) in local_syncs {
                        syncs.push((self.partition.global_of(shard, local), v));
                    }
                }
                other => unreachable!("Broadcast got {other:?}"),
            }
        }
        // Serial-identical order: ascending global id.
        syncs.sort_by_key(|&(id, _)| id);
        for &(id, v) in &syncs {
            ledger.record(MessageKind::Update, 1);
            view.set(id, v);
        }
        self.record_batch_op(started, &busy);
        self.trace_end();
        syncs
    }
}
