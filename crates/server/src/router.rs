//! The coordinator's [`FleetOps`] backend: routes every control-plane fleet
//! operation of the protocol (probe / install / broadcast / deliver) to the
//! shard owning the source, while recording messages in the coordinator's
//! authoritative ledger and refreshing the coordinator's view.
//!
//! The ledger contract of [`FleetOps`] is kept byte-identical to the serial
//! [`streamnet::SourceFleet`]: probes cost 2, installs 1 (+1 per sync),
//! broadcasts `n` as **one** operation (+1 per sync), delivered reports 1.
//! Broadcast sync reports are gathered from all shards and merged in
//! ascending global id order — the same order the serial fleet produces —
//! so the protocol's resolution cascade sees an identical report sequence.
//!
//! Batch operations (`probe_all`, `probe_many`, `install_many`,
//! `broadcast`) are the scaling path: one scatter hands every shard its
//! slice, the shards work concurrently, and one gather reassembles the
//! results in the caller's request order — the coordinator stops being a
//! per-stream round-trip bottleneck for initialization, fleet-wide filter
//! deployments, and reinit storms.

use streamnet::{Filter, FleetOps, Ledger, MessageKind, ServerView, StreamId};

use crate::handle::ShardHandle;
use crate::shard::{Partition, ShardCmd, ShardReply};

/// A routing fleet over the shard handles (borrowed for one protocol call).
pub struct ShardRouter<'a> {
    handles: &'a mut [ShardHandle],
    partition: Partition,
    n: usize,
}

impl<'a> ShardRouter<'a> {
    /// Borrows the shard handles as a fleet of `n` streams.
    pub fn new(handles: &'a mut [ShardHandle], partition: Partition, n: usize) -> Self {
        Self { handles, partition, n }
    }

    fn route(&mut self, id: StreamId) -> (&mut ShardHandle, u32) {
        let shard = self.partition.shard_of(id);
        let local = self.partition.local_of(id);
        (&mut self.handles[shard], local)
    }

    /// Commits/rolls back every shard's speculative log around `keep_below`
    /// (scatter, then gather). Returns per-shard `(kept, undone)`.
    pub(crate) fn commit_all(&mut self, keep_below: u64) -> Vec<(u32, u32)> {
        for handle in self.handles.iter_mut() {
            handle.send(ShardCmd::Commit { keep_below });
        }
        self.handles
            .iter_mut()
            .map(|handle| match handle.recv() {
                ShardReply::Committed { kept, undone } => (kept, undone),
                other => unreachable!("Commit got {other:?}"),
            })
            .collect()
    }
}

/// A [`ShardRouter`] that lazily *invalidates* the in-flight speculation
/// the first time the protocol touches the fleet.
///
/// The coordinator consumes speculative reports in sequence order; while a
/// handler only mutates protocol state, the shards' optimistic evaluation
/// of later events remains exactly serial (sources are independent). The
/// first install / probe / broadcast / delivery, however, can change
/// source state that later events depend on — so before forwarding that
/// operation, this router commits every shard's log at `keep_below` (just
/// past the report being handled), rolling the fleet back to the precise
/// serial state the operation must observe.
pub struct GuardedRouter<'a> {
    inner: ShardRouter<'a>,
    keep_below: u64,
    committed: Option<Vec<(u32, u32)>>,
}

impl<'a> GuardedRouter<'a> {
    /// Wraps `inner`; a first fleet operation will cut speculation at
    /// `keep_below`.
    pub fn new(inner: ShardRouter<'a>, keep_below: u64) -> Self {
        Self { inner, keep_below, committed: None }
    }

    /// Whether the cut fired, and the per-shard `(kept, undone)` counts if
    /// it did.
    pub fn into_cut(self) -> Option<Vec<(u32, u32)>> {
        self.committed
    }

    fn ensure_cut(&mut self) {
        if self.committed.is_none() {
            self.committed = Some(self.inner.commit_all(self.keep_below));
        }
    }
}

impl FleetOps for GuardedRouter<'_> {
    fn len(&self) -> usize {
        self.inner.n
    }

    fn deliver(
        &mut self,
        id: StreamId,
        value: f64,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        self.ensure_cut();
        self.inner.deliver(id, value, ledger, view)
    }

    fn probe(&mut self, id: StreamId, ledger: &mut Ledger, view: &mut ServerView) -> f64 {
        self.ensure_cut();
        self.inner.probe(id, ledger, view)
    }

    fn probe_all(&mut self, ledger: &mut Ledger, view: &mut ServerView) {
        self.ensure_cut();
        self.inner.probe_all(ledger, view)
    }

    fn probe_many(
        &mut self,
        ids: &[StreamId],
        ledger: &mut Ledger,
        view: &mut ServerView,
        out: &mut Vec<f64>,
    ) {
        // An empty batch sends no messages — it is not a fleet touch, so it
        // must not invalidate the in-flight speculation.
        if ids.is_empty() {
            out.clear();
            return;
        }
        self.ensure_cut();
        self.inner.probe_many(ids, ledger, view, out)
    }

    fn install_many(
        &mut self,
        installs: &[(StreamId, Filter)],
        ledger: &mut Ledger,
        view: &mut ServerView,
        syncs: &mut Vec<(StreamId, f64)>,
    ) {
        if installs.is_empty() {
            syncs.clear();
            return;
        }
        self.ensure_cut();
        self.inner.install_many(installs, ledger, view, syncs)
    }

    fn install(
        &mut self,
        id: StreamId,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        self.ensure_cut();
        self.inner.install(id, filter, ledger, view)
    }

    fn broadcast(
        &mut self,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Vec<(StreamId, f64)> {
        self.ensure_cut();
        self.inner.broadcast(filter, ledger, view)
    }
}

impl FleetOps for ShardRouter<'_> {
    fn len(&self) -> usize {
        self.n
    }

    fn deliver(
        &mut self,
        id: StreamId,
        value: f64,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        let (handle, local) = self.route(id);
        match handle.request(ShardCmd::Deliver { local, value }) {
            ShardReply::Delivered(report) => {
                if let Some(v) = report {
                    ledger.record(MessageKind::Update, 1);
                    view.set(id, v);
                    Some(v)
                } else {
                    None
                }
            }
            other => unreachable!("Deliver got {other:?}"),
        }
    }

    fn probe(&mut self, id: StreamId, ledger: &mut Ledger, view: &mut ServerView) -> f64 {
        let (handle, local) = self.route(id);
        match handle.request(ShardCmd::Probe { local }) {
            ShardReply::Probed(v) => {
                ledger.record(MessageKind::ProbeRequest, 1);
                ledger.record(MessageKind::ProbeReply, 1);
                view.set(id, v);
                v
            }
            other => unreachable!("Probe got {other:?}"),
        }
    }

    fn probe_all(&mut self, ledger: &mut Ledger, view: &mut ServerView) {
        // Scatter to all shards, then gather — probes run in parallel in
        // threaded mode; ledger counts and the final view are order-free.
        for handle in self.handles.iter_mut() {
            handle.send(ShardCmd::ProbeAll);
        }
        for (shard, handle) in self.handles.iter_mut().enumerate() {
            match handle.recv() {
                ShardReply::ProbedAll(values) => {
                    ledger.record(MessageKind::ProbeRequest, values.len() as u64);
                    ledger.record(MessageKind::ProbeReply, values.len() as u64);
                    for (local, v) in values.into_iter().enumerate() {
                        view.set(self.partition.global_of(shard, local as u32), v);
                    }
                }
                other => unreachable!("ProbeAll got {other:?}"),
            }
        }
    }

    fn probe_many(
        &mut self,
        ids: &[StreamId],
        ledger: &mut Ledger,
        view: &mut ServerView,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if ids.is_empty() {
            return;
        }
        // Scatter each shard's slice (in request order) and let the shards
        // probe concurrently; probes are independent, so only the reassembly
        // order below is observable — and it is the request order.
        let k = self.partition.shards();
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); k];
        for &id in ids {
            per_shard[self.partition.shard_of(id)].push(self.partition.local_of(id));
        }
        let mut participants = Vec::new();
        for (s, locals) in per_shard.into_iter().enumerate() {
            if !locals.is_empty() {
                self.handles[s].send(ShardCmd::ProbeMany { locals });
                participants.push(s);
            }
        }
        let mut values: Vec<Vec<f64>> = vec![Vec::new(); k];
        for &s in &participants {
            match self.handles[s].recv() {
                ShardReply::ProbedMany(shard_values) => values[s] = shard_values,
                other => unreachable!("ProbeMany got {other:?}"),
            }
        }
        ledger.record(MessageKind::ProbeRequest, ids.len() as u64);
        ledger.record(MessageKind::ProbeReply, ids.len() as u64);
        out.reserve(ids.len());
        let mut cursor = vec![0usize; k];
        for &id in ids {
            let s = self.partition.shard_of(id);
            let v = values[s][cursor[s]];
            cursor[s] += 1;
            view.set(id, v);
            out.push(v);
        }
    }

    fn install_many(
        &mut self,
        installs: &[(StreamId, Filter)],
        ledger: &mut Ledger,
        view: &mut ServerView,
        syncs: &mut Vec<(StreamId, f64)>,
    ) {
        syncs.clear();
        if installs.is_empty() {
            return;
        }
        // Scatter each shard's slice (in installation order); installs touch
        // only their own source, so the shards can run concurrently. Sync
        // reports are reassembled in installation order — exactly the queue
        // the serial per-stream loop would build.
        let k = self.partition.shards();
        let mut per_shard: Vec<Vec<(u32, Filter)>> = vec![Vec::new(); k];
        for (id, filter) in installs {
            per_shard[self.partition.shard_of(*id)]
                .push((self.partition.local_of(*id), filter.clone()));
        }
        let mut participants = Vec::new();
        for (s, items) in per_shard.into_iter().enumerate() {
            if !items.is_empty() {
                self.handles[s].send(ShardCmd::InstallMany { items });
                participants.push(s);
            }
        }
        let mut replies: Vec<Vec<Option<f64>>> = vec![Vec::new(); k];
        for &s in &participants {
            match self.handles[s].recv() {
                ShardReply::InstalledMany(shard_syncs) => replies[s] = shard_syncs,
                other => unreachable!("InstallMany got {other:?}"),
            }
        }
        ledger.record(MessageKind::FilterInstall, installs.len() as u64);
        let mut cursor = vec![0usize; k];
        for (id, _) in installs {
            let s = self.partition.shard_of(*id);
            let sync = replies[s][cursor[s]];
            cursor[s] += 1;
            if let Some(v) = sync {
                ledger.record(MessageKind::Update, 1);
                view.set(*id, v);
                syncs.push((*id, v));
            }
        }
    }

    fn install(
        &mut self,
        id: StreamId,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        let (handle, local) = self.route(id);
        match handle.request(ShardCmd::Install { local, filter }) {
            ShardReply::Installed(sync) => {
                ledger.record(MessageKind::FilterInstall, 1);
                if let Some(v) = sync {
                    ledger.record(MessageKind::Update, 1);
                    view.set(id, v);
                    Some(v)
                } else {
                    None
                }
            }
            other => unreachable!("Install got {other:?}"),
        }
    }

    fn broadcast(
        &mut self,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Vec<(StreamId, f64)> {
        // One logical broadcast operation costing n messages, however many
        // shards it fans out to.
        ledger.record(MessageKind::FilterBroadcast, self.n as u64);
        for handle in self.handles.iter_mut() {
            handle.send(ShardCmd::Broadcast { filter: filter.clone() });
        }
        let mut syncs: Vec<(StreamId, f64)> = Vec::new();
        for (shard, handle) in self.handles.iter_mut().enumerate() {
            match handle.recv() {
                ShardReply::Broadcasted(local_syncs) => {
                    for (local, v) in local_syncs {
                        syncs.push((self.partition.global_of(shard, local), v));
                    }
                }
                other => unreachable!("Broadcast got {other:?}"),
            }
        }
        // Serial-identical order: ascending global id.
        syncs.sort_by_key(|&(id, _)| id);
        for &(id, v) in &syncs {
            ledger.record(MessageKind::Update, 1);
            view.set(id, v);
        }
        syncs
    }
}
