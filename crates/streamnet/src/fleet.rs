//! The collection of all stream sources, with ledger-threaded operations.
//!
//! Every server↔source interaction goes through this type so that message
//! accounting can never be forgotten: delivering a workload update, probing,
//! installing filters, and broadcasting all take the [`Ledger`] and the
//! server's [`ServerView`] and keep both consistent.
//!
//! ## Batched fleet operations
//!
//! Fleet-wide phases — Initialization's probe-everything, a tolerance
//! protocol deploying a filter per stream, a `Reinit` repair — used to run
//! as one [`FleetOps`] call per stream, which serializes them through the
//! coordinator of a sharded backend. The batch contracts
//! ([`FleetOps::probe_many`], [`FleetOps::install_many`],
//! [`FleetOps::probe_all`]) move the loop *into* the backend: the
//! in-process [`SourceFleet`] walks its sources in one pass, and the
//! sharded fleet of `asf-server` scatters each batch so every shard works
//! its slice concurrently. Results and sync reports come back in the
//! caller's request order with the exact per-message ledger accounting of
//! the scalar path, so batched and per-stream execution are byte-identical
//! (`tests/batch_differential.rs` proves it per protocol and backend).
//! Batch outputs are written into caller-provided buffers so hot callers
//! can reuse one allocation across rounds.

use crate::filter::Filter;
use crate::message::{Ledger, MessageKind};
use crate::source::StreamSource;
use crate::view::ServerView;
use crate::StreamId;

/// The server-side operations a fleet of sources must support.
///
/// The protocols of `asf-core` talk to the sources exclusively through this
/// surface (via their `ServerCtx`), so the *same* protocol code drives both
/// the in-process [`SourceFleet`] of the single-threaded engine and the
/// sharded fleet of `asf-server`, where each call is routed to the worker
/// shard owning the source. Implementations must keep the contract exact —
/// byte-identical answers across backends depend on it:
///
/// * every method records its messages in the passed [`Ledger`] with the
///   same counts as [`SourceFleet`] (probe = 2, install = 1 + 1 per sync,
///   broadcast = `n` + 1 per sync, delivered report = 1);
/// * the [`ServerView`] is refreshed with every value that reaches the
///   server (reports, probe replies, sync reports);
/// * [`FleetOps::broadcast`] returns sync reports in ascending id order.
pub trait FleetOps {
    /// Number of sources `n`.
    fn len(&self) -> usize;

    /// Whether the fleet is empty (never true post-construction).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Delivers a workload update to a source; `Some(value)` iff the
    /// source's filter was violated and it reported (one `Update` message).
    fn deliver(
        &mut self,
        id: StreamId,
        value: f64,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64>;

    /// Probes one source (2 messages); refreshes the view, returns the
    /// value.
    fn probe(&mut self, id: StreamId, ledger: &mut Ledger, view: &mut ServerView) -> f64;

    /// Probes every source (`2n` messages).
    fn probe_all(&mut self, ledger: &mut Ledger, view: &mut ServerView);

    /// [`FleetOps::probe_all`] that additionally records which view
    /// entries actually **changed** — previously unknown, or bit-different
    /// from the stored value — into `changed` (cleared first), in
    /// ascending id order.
    ///
    /// Byte-identical to `probe_all` in messages, view, and per-source
    /// state; the change list is free for backends (they touch every view
    /// entry during reassembly anyway) and lets an incremental rank index
    /// re-key only the streams that drifted since the last refresh instead
    /// of re-scanning all `n`. The default decomposes into scalar probes —
    /// the serial baseline.
    fn probe_all_tracked(
        &mut self,
        ledger: &mut Ledger,
        view: &mut ServerView,
        changed: &mut Vec<StreamId>,
    ) {
        changed.clear();
        for i in 0..self.len() {
            let id = StreamId(i as u32);
            let known = view.is_known(id);
            let old = if known { view.get(id) } else { 0.0 };
            let v = self.probe(id, ledger, view);
            if !known || old.to_bits() != v.to_bits() {
                changed.push(id);
            }
        }
    }

    /// Probes a set of sources in one batch (2 messages each), writing the
    /// values into `out` aligned with `ids` (cleared first).
    ///
    /// Byte-identical to probing the ids one by one in order — the default
    /// does exactly that and doubles as the serial baseline; backends
    /// override it to execute the whole batch in one pass (shard-parallel
    /// in `asf-server`). Sources are independent, so per-source state,
    /// ledger counts, and the final view cannot depend on probe order.
    ///
    /// ```
    /// use streamnet::{FleetOps, Ledger, ServerView, SourceFleet, StreamId};
    ///
    /// let mut fleet = SourceFleet::from_values(&[100.0, 500.0, 900.0]);
    /// let (mut ledger, mut view) = (Ledger::new(), ServerView::new(3));
    /// let mut values = Vec::new();
    /// fleet.probe_many(&[StreamId(2), StreamId(0)], &mut ledger, &mut view, &mut values);
    /// assert_eq!(values, vec![900.0, 100.0]);
    /// assert_eq!(ledger.total(), 4, "2 messages per probe");
    /// assert_eq!(view.get(StreamId(2)), 900.0);
    /// ```
    fn probe_many(
        &mut self,
        ids: &[StreamId],
        ledger: &mut Ledger,
        view: &mut ServerView,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        for &id in ids {
            out.push(self.probe(id, ledger, view));
        }
    }

    /// Installs a filter per `(id, filter)` pair in one batch (1 message
    /// each), collecting sync reports into `syncs` (cleared first) in
    /// **installation order** — the order the serial path would queue them.
    ///
    /// Byte-identical to installing one by one: installs touch only their
    /// own source, so batching cannot change any source's sync decision.
    /// The default is the serial loop; backends override it to run each
    /// shard's slice concurrently.
    fn install_many(
        &mut self,
        installs: &[(StreamId, Filter)],
        ledger: &mut Ledger,
        view: &mut ServerView,
        syncs: &mut Vec<(StreamId, f64)>,
    ) {
        syncs.clear();
        for (id, filter) in installs {
            if let Some(v) = self.install(*id, filter.clone(), ledger, view) {
                syncs.push((*id, v));
            }
        }
    }

    /// Installs a filter at one source (1 message); `Some(value)` iff the
    /// source sync-reported (one more `Update` message).
    fn install(
        &mut self,
        id: StreamId,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64>;

    /// Broadcasts a filter to every source (`n` messages); returns sync
    /// reports in ascending id order (one `Update` message each).
    fn broadcast(
        &mut self,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Vec<(StreamId, f64)>;
}

/// All `n` stream sources of the simulated system.
#[derive(Clone, Debug)]
pub struct SourceFleet {
    sources: Vec<StreamSource>,
}

impl SourceFleet {
    /// Builds a fleet from initial values; ids are assigned `0..n` in order.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or contains non-finite values, or if
    /// there are more than `u32::MAX` streams.
    pub fn from_values(initial: &[f64]) -> Self {
        assert!(!initial.is_empty(), "a fleet needs at least one source");
        assert!(u32::try_from(initial.len()).is_ok(), "too many sources");
        let sources = initial
            .iter()
            .enumerate()
            .map(|(i, &v)| StreamSource::new(StreamId(i as u32), v))
            .collect();
        Self { sources }
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the fleet is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Read-only access to one source (ground truth — for oracles/tests).
    pub fn source(&self, id: StreamId) -> &StreamSource {
        &self.sources[id.index()]
    }

    /// Iterates over all sources (ground truth — for oracles/tests).
    pub fn iter(&self) -> impl Iterator<Item = &StreamSource> {
        self.sources.iter()
    }

    /// Ground-truth current value of a stream (oracle/test use only; the
    /// server must [`Self::probe`] to learn it).
    pub fn true_value(&self, id: StreamId) -> f64 {
        self.sources[id.index()].value()
    }

    /// Serializes every source's full state (positionally) into a durable
    /// checkpoint.
    pub fn encode(&self, w: &mut asf_persist::StateWriter) {
        w.put_u64(self.sources.len() as u64);
        for s in &self.sources {
            s.encode(w);
        }
    }

    /// Decodes a fleet written by [`SourceFleet::encode`]; ids are
    /// reassigned `0..n` positionally, matching `from_values`.
    pub fn decode(r: &mut asf_persist::StateReader<'_>) -> asf_persist::Result<Self> {
        let n = r.get_u64()? as usize;
        // Each encoded source is at least 18 bytes, so an absurd count is
        // corruption, not an allocation request.
        if n == 0 || n > r.remaining() / 18 + 1 {
            return Err(asf_persist::PersistError::corrupt("fleet length implausible"));
        }
        let mut sources = Vec::with_capacity(n);
        for i in 0..n {
            sources.push(StreamSource::decode(StreamId(i as u32), r)?);
        }
        Ok(Self { sources })
    }

    /// Delivers a workload update to a source. If the source's filter is
    /// violated it reports: one `Update` message is recorded, the server
    /// view refreshed, and `Some(value)` returned for the protocol to
    /// handle. Otherwise the update is silent and `None` is returned.
    pub fn deliver_update(
        &mut self,
        id: StreamId,
        value: f64,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        let src = &mut self.sources[id.index()];
        if src.apply_value(value) {
            src.mark_reported();
            src.add_traffic(1);
            ledger.record(MessageKind::Update, 1);
            view.set(id, value);
            Some(value)
        } else {
            None
        }
    }

    /// Server probes one source for its current value (one request + one
    /// reply = 2 messages). Refreshes the server view and the source's
    /// last-reported value, and returns the value.
    pub fn probe(&mut self, id: StreamId, ledger: &mut Ledger, view: &mut ServerView) -> f64 {
        let src = &mut self.sources[id.index()];
        ledger.record(MessageKind::ProbeRequest, 1);
        ledger.record(MessageKind::ProbeReply, 1);
        src.add_traffic(2);
        src.mark_reported();
        let v = src.value();
        view.set(id, v);
        v
    }

    /// Probes every source (the Initialization phases' "request all streams
    /// to send their values"): `2n` messages.
    pub fn probe_all(&mut self, ledger: &mut Ledger, view: &mut ServerView) {
        for i in 0..self.sources.len() {
            self.probe(StreamId(i as u32), ledger, view);
        }
    }

    /// Installs a filter at one source (1 message). If the new filter is
    /// inconsistent with the server's knowledge (see
    /// [`StreamSource::install`]) the source immediately syncs: one `Update`
    /// message, view refreshed, and `Some(value)` returned so the engine can
    /// route it to the protocol.
    pub fn install(
        &mut self,
        id: StreamId,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        ledger.record(MessageKind::FilterInstall, 1);
        let src = &mut self.sources[id.index()];
        src.add_traffic(1);
        if src.install(filter) {
            src.mark_reported();
            src.add_traffic(1);
            ledger.record(MessageKind::Update, 1);
            let v = src.value();
            view.set(id, v);
            Some(v)
        } else {
            None
        }
    }

    /// Broadcasts a filter to every source (`n` messages). Returns the sync
    /// reports `(id, value)` from sources whose state was inconsistent with
    /// the new filter (each also recorded as one `Update`).
    pub fn broadcast(
        &mut self,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Vec<(StreamId, f64)> {
        ledger.record(MessageKind::FilterBroadcast, self.sources.len() as u64);
        let syncs = self.install_all_unmetered(filter, view);
        for _ in &syncs {
            ledger.record(MessageKind::Update, 1);
        }
        syncs
    }

    /// Installs `filter` at every source *without* recording the broadcast
    /// cost — the caller meters the operation. Sync reports are returned in
    /// ascending id order and are **not** recorded either; per-source
    /// traffic and the view are kept consistent.
    ///
    /// This is the shard-side half of a distributed broadcast: `asf-server`
    /// fans one logical broadcast out to `k` shards, each applying its
    /// partition with this method, while the coordinator records the single
    /// `n`-message broadcast operation and the sync updates.
    pub fn install_all_unmetered(
        &mut self,
        filter: Filter,
        view: &mut ServerView,
    ) -> Vec<(StreamId, f64)> {
        let mut syncs = Vec::new();
        self.install_all_unmetered_into(filter, view, &mut syncs);
        syncs
    }

    /// [`Self::install_all_unmetered`] writing the sync reports into a
    /// caller-provided buffer (cleared first), so per-broadcast allocation
    /// can be amortized by callers that broadcast every round.
    pub fn install_all_unmetered_into(
        &mut self,
        filter: Filter,
        view: &mut ServerView,
        syncs: &mut Vec<(StreamId, f64)>,
    ) {
        syncs.clear();
        for src in &mut self.sources {
            src.add_traffic(1);
            if src.install(filter.clone()) {
                src.mark_reported();
                src.add_traffic(1);
                let v = src.value();
                view.set(src.id(), v);
                syncs.push((src.id(), v));
            }
        }
    }

    /// Probes a set of sources in one pass (2 messages each), writing the
    /// values into `out` aligned with `ids` (cleared first). Native batch
    /// implementation of [`FleetOps::probe_many`].
    pub fn probe_many(
        &mut self,
        ids: &[StreamId],
        ledger: &mut Ledger,
        view: &mut ServerView,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(ids.len());
        ledger.record(MessageKind::ProbeRequest, ids.len() as u64);
        ledger.record(MessageKind::ProbeReply, ids.len() as u64);
        for &id in ids {
            let src = &mut self.sources[id.index()];
            src.add_traffic(2);
            src.mark_reported();
            let v = src.value();
            view.set(id, v);
            out.push(v);
        }
    }

    /// Installs a filter per `(id, filter)` pair in one pass (1 message
    /// each), collecting sync reports in installation order into `syncs`
    /// (cleared first). Native batch implementation of
    /// [`FleetOps::install_many`].
    pub fn install_many(
        &mut self,
        installs: &[(StreamId, Filter)],
        ledger: &mut Ledger,
        view: &mut ServerView,
        syncs: &mut Vec<(StreamId, f64)>,
    ) {
        syncs.clear();
        ledger.record(MessageKind::FilterInstall, installs.len() as u64);
        for (id, filter) in installs {
            let src = &mut self.sources[id.index()];
            src.add_traffic(1);
            if src.install(filter.clone()) {
                src.mark_reported();
                src.add_traffic(1);
                ledger.record(MessageKind::Update, 1);
                let v = src.value();
                view.set(*id, v);
                syncs.push((*id, v));
            }
        }
    }

    /// Delivers a batch of updates back-to-back, collecting the reports in
    /// delivery order. Equivalent to calling [`Self::deliver_update`] per
    /// event; callers must route the returned reports to the protocol
    /// afterwards (so it is only equivalent to the serial engine when no
    /// filter redeployments would intervene between the events).
    pub fn deliver_batch(
        &mut self,
        updates: &[(StreamId, f64)],
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Vec<(StreamId, f64)> {
        let mut reports = Vec::new();
        for &(id, value) in updates {
            if let Some(v) = self.deliver_update(id, value, ledger, view) {
                reports.push((id, v));
            }
        }
        reports
    }
}

/// Undo log for speculative batch execution over a [`SourceFleet`].
///
/// `asf-server` shards evaluate whole batches optimistically — including
/// *through* filter violations, tentatively treating each violation as a
/// delivered report (value applied, last-reported refreshed, source traffic
/// charged, **nothing** recorded in any ledger or view: the coordinator
/// meters reports when it consumes them in sequence order). Every
/// application is journaled here with the source's prior state so that an
/// invalidation — the protocol touching the fleet while handling an
/// earlier report — can roll the fleet back to any sequence point exactly.
#[derive(Clone, Debug, Default)]
pub struct SpecLog {
    entries: Vec<SpecUndo>,
}

#[derive(Clone, Copy, Debug)]
struct SpecUndo {
    seq: u64,
    id: StreamId,
    prev_value: f64,
    prev_last_reported: Option<f64>,
    prev_traffic: u64,
}

impl SpecLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of journaled applications.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sequence number of the newest journaled application, if any —
    /// telemetry uses it to tag shard trace spans with the speculation
    /// point they ran under.
    pub fn last_seq(&self) -> Option<u64> {
        self.entries.last().map(|e| e.seq)
    }

    /// Speculatively applies one update. Returns `Some(value)` iff the
    /// source's filter was violated, i.e. the update is a tentative
    /// *report*: the value is applied, marked reported, and one message of
    /// source traffic charged — but not metered anywhere else. A silent
    /// update applies the value only. Either way the prior state is
    /// journaled under `seq`; sequence numbers must be strictly
    /// increasing within one log generation.
    pub fn apply(
        &mut self,
        fleet: &mut SourceFleet,
        seq: u64,
        id: StreamId,
        value: f64,
    ) -> Option<f64> {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.seq < seq),
            "speculative sequence numbers must increase"
        );
        let src = &mut fleet.sources[id.index()];
        self.entries.push(SpecUndo {
            seq,
            id,
            prev_value: src.value(),
            prev_last_reported: src.last_reported(),
            prev_traffic: src.traffic(),
        });
        if src.apply_value(value) {
            src.mark_reported();
            src.add_traffic(1);
            Some(value)
        } else {
            None
        }
    }

    /// Commits applications with `seq < keep_below`, rolls back the rest
    /// (newest first), and clears the log. Returns `(kept, undone)`.
    pub fn commit_below(&mut self, fleet: &mut SourceFleet, keep_below: u64) -> (u32, u32) {
        let mut undone = 0u32;
        while let Some(e) = self.entries.last().copied() {
            if e.seq < keep_below {
                break;
            }
            fleet.sources[e.id.index()].restore(e.prev_value, e.prev_last_reported, e.prev_traffic);
            self.entries.pop();
            undone += 1;
        }
        let kept = self.entries.len() as u32;
        self.entries.clear();
        (kept, undone)
    }
}

impl FleetOps for SourceFleet {
    fn len(&self) -> usize {
        self.len()
    }

    fn deliver(
        &mut self,
        id: StreamId,
        value: f64,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        self.deliver_update(id, value, ledger, view)
    }

    fn probe(&mut self, id: StreamId, ledger: &mut Ledger, view: &mut ServerView) -> f64 {
        SourceFleet::probe(self, id, ledger, view)
    }

    fn probe_all(&mut self, ledger: &mut Ledger, view: &mut ServerView) {
        SourceFleet::probe_all(self, ledger, view)
    }
    // probe_all_tracked deliberately NOT overridden: the scalar-probe
    // default IS the native path here (there is no batched shortcut for
    // the change test), so one copy of the change criterion exists.

    fn probe_many(
        &mut self,
        ids: &[StreamId],
        ledger: &mut Ledger,
        view: &mut ServerView,
        out: &mut Vec<f64>,
    ) {
        SourceFleet::probe_many(self, ids, ledger, view, out)
    }

    fn install_many(
        &mut self,
        installs: &[(StreamId, Filter)],
        ledger: &mut Ledger,
        view: &mut ServerView,
        syncs: &mut Vec<(StreamId, f64)>,
    ) {
        SourceFleet::install_many(self, installs, ledger, view, syncs)
    }

    fn install(
        &mut self,
        id: StreamId,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        SourceFleet::install(self, id, filter, ledger, view)
    }

    fn broadcast(
        &mut self,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Vec<(StreamId, f64)> {
        SourceFleet::broadcast(self, filter, ledger, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SourceFleet, Ledger, ServerView) {
        let fleet = SourceFleet::from_values(&[100.0, 500.0, 900.0]);
        let view = ServerView::new(3);
        (fleet, Ledger::new(), view)
    }

    #[test]
    fn probe_all_costs_2n_and_fills_view() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        assert_eq!(ledger.total(), 6);
        assert!(view.all_known());
        assert_eq!(view.get(StreamId(1)), 500.0);
    }

    #[test]
    fn unfiltered_update_reports() {
        let (mut fleet, mut ledger, mut view) = setup();
        let r = fleet.deliver_update(StreamId(0), 120.0, &mut ledger, &mut view);
        assert_eq!(r, Some(120.0));
        assert_eq!(ledger.count(MessageKind::Update), 1);
        assert_eq!(view.get(StreamId(0)), 120.0);
    }

    #[test]
    fn filtered_update_inside_is_silent_and_stale() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        fleet.install(StreamId(1), Filter::interval(400.0, 600.0), &mut ledger, &mut view);
        let before = ledger.total();
        let r = fleet.deliver_update(StreamId(1), 550.0, &mut ledger, &mut view);
        assert_eq!(r, None);
        assert_eq!(ledger.total(), before);
        // Server view is stale by design.
        assert_eq!(view.get(StreamId(1)), 500.0);
        // Ground truth moved.
        assert_eq!(fleet.true_value(StreamId(1)), 550.0);
    }

    #[test]
    fn crossing_update_reports_and_refreshes() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        fleet.install(StreamId(1), Filter::interval(400.0, 600.0), &mut ledger, &mut view);
        let r = fleet.deliver_update(StreamId(1), 700.0, &mut ledger, &mut view);
        assert_eq!(r, Some(700.0));
        assert_eq!(view.get(StreamId(1)), 700.0);
    }

    #[test]
    fn install_sync_when_inconsistent() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        // Silent drift within a broad filter.
        fleet.install(StreamId(1), Filter::interval(0.0, 1000.0), &mut ledger, &mut view);
        assert_eq!(fleet.deliver_update(StreamId(1), 800.0, &mut ledger, &mut view), None);
        let before_updates = ledger.count(MessageKind::Update);
        // New filter separates believed (500) from true (800): sync expected.
        let sync =
            fleet.install(StreamId(1), Filter::interval(750.0, 900.0), &mut ledger, &mut view);
        assert_eq!(sync, Some(800.0));
        assert_eq!(ledger.count(MessageKind::Update), before_updates + 1);
        assert_eq!(view.get(StreamId(1)), 800.0);
    }

    #[test]
    fn broadcast_costs_n_and_syncs_inconsistent_sources() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        ledger.reset();
        // All believed values: 100, 500, 900 — all consistent with ground
        // truth, so a broadcast of [0, 1000] yields no syncs.
        let syncs = fleet.broadcast(Filter::interval(0.0, 1000.0), &mut ledger, &mut view);
        assert!(syncs.is_empty());
        assert_eq!(ledger.count(MessageKind::FilterBroadcast), 3);
        assert_eq!(ledger.broadcast_ops(), 1);

        // Drift silently, then broadcast a filter that separates believed
        // from true for stream 0 only.
        fleet.deliver_update(StreamId(0), 450.0, &mut ledger, &mut view); // 100 -> 450 inside [0,1000]: silent
        let syncs = fleet.broadcast(Filter::interval(400.0, 600.0), &mut ledger, &mut view);
        assert_eq!(syncs, vec![(StreamId(0), 450.0)]);
    }

    #[test]
    fn traffic_accounting_per_source() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe(StreamId(0), &mut ledger, &mut view); // 2
        fleet.install(StreamId(0), Filter::wildcard(), &mut ledger, &mut view); // 1
        assert_eq!(fleet.source(StreamId(0)).traffic(), 3);
        assert_eq!(fleet.source(StreamId(1)).traffic(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_fleet_rejected() {
        SourceFleet::from_values(&[]);
    }

    #[test]
    fn deliver_batch_equals_per_event_delivery() {
        let updates = [
            (StreamId(0), 120.0),
            (StreamId(1), 550.0),
            (StreamId(1), 700.0),
            (StreamId(2), 950.0),
        ];

        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        fleet.install(StreamId(1), Filter::interval(400.0, 600.0), &mut ledger, &mut view);
        ledger.reset();
        let reports = fleet.deliver_batch(&updates, &mut ledger, &mut view);

        let (mut fleet2, mut ledger2, mut view2) = setup();
        fleet2.probe_all(&mut ledger2, &mut view2);
        fleet2.install(StreamId(1), Filter::interval(400.0, 600.0), &mut ledger2, &mut view2);
        ledger2.reset();
        let mut reports2 = Vec::new();
        for &(id, v) in &updates {
            if let Some(r) = fleet2.deliver_update(id, v, &mut ledger2, &mut view2) {
                reports2.push((id, r));
            }
        }

        assert_eq!(reports, reports2);
        assert_eq!(ledger, ledger2);
        // S1: 550 stays inside its filter (silent), 700 crosses (report).
        assert_eq!(reports, vec![(StreamId(0), 120.0), (StreamId(1), 700.0), (StreamId(2), 950.0)]);
    }

    #[test]
    fn probe_many_equals_scalar_probes() {
        let ids = [StreamId(2), StreamId(0), StreamId(2)];

        let (mut fleet, mut ledger, mut view) = setup();
        let mut out = vec![f64::NAN; 8]; // stale scratch: must be cleared
        fleet.probe_many(&ids, &mut ledger, &mut view, &mut out);

        let (mut fleet2, mut ledger2, mut view2) = setup();
        let scalar: Vec<f64> =
            ids.iter().map(|&id| fleet2.probe(id, &mut ledger2, &mut view2)).collect();

        assert_eq!(out, scalar);
        assert_eq!(out, vec![900.0, 100.0, 900.0]);
        assert_eq!(ledger, ledger2);
        assert_eq!(fleet.source(StreamId(2)).traffic(), fleet2.source(StreamId(2)).traffic());
        assert!(view.is_known(StreamId(0)) && view.is_known(StreamId(2)));
        assert!(!view.is_known(StreamId(1)));
    }

    #[test]
    fn install_many_equals_scalar_installs_and_orders_syncs() {
        // Install order (2, 0) must be the sync order, not id order.
        let plan = |f: Filter| vec![(StreamId(2), f.clone()), (StreamId(0), f)];

        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        // Silent drift for both within broad filters.
        fleet.install(StreamId(0), Filter::interval(0.0, 1000.0), &mut ledger, &mut view);
        fleet.install(StreamId(2), Filter::interval(0.0, 1000.0), &mut ledger, &mut view);
        fleet.deliver_update(StreamId(0), 450.0, &mut ledger, &mut view);
        fleet.deliver_update(StreamId(2), 460.0, &mut ledger, &mut view);
        let mut fleet2 = fleet.clone();
        let mut view2 = view.clone();
        ledger.reset();
        let mut ledger2 = Ledger::new();

        // New tight filter separates believed (100 / 900) from true values.
        let mut syncs = vec![(StreamId(9), 0.0)]; // stale scratch
        fleet.install_many(
            &plan(Filter::interval(400.0, 500.0)),
            &mut ledger,
            &mut view,
            &mut syncs,
        );

        let mut syncs2 = Vec::new();
        for (id, f) in plan(Filter::interval(400.0, 500.0)) {
            if let Some(v) = fleet2.install(id, f, &mut ledger2, &mut view2) {
                syncs2.push((id, v));
            }
        }

        assert_eq!(syncs, syncs2);
        assert_eq!(syncs, vec![(StreamId(2), 460.0), (StreamId(0), 450.0)]);
        assert_eq!(ledger, ledger2);
        assert_eq!(view.get(StreamId(0)), 450.0);
        assert_eq!(view.get(StreamId(2)), 460.0);
    }

    #[test]
    fn spec_log_rolls_back_exactly() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        fleet.install(StreamId(1), Filter::interval(400.0, 600.0), &mut ledger, &mut view);
        let traffic_before = fleet.source(StreamId(1)).traffic();

        let mut log = SpecLog::new();
        assert_eq!(log.apply(&mut fleet, 0, StreamId(1), 550.0), None, "silent");
        assert_eq!(log.apply(&mut fleet, 1, StreamId(1), 700.0), Some(700.0), "report");
        assert_eq!(log.len(), 2);
        // Tentative report charged one message of traffic and refreshed
        // last-reported.
        assert_eq!(fleet.source(StreamId(1)).traffic(), traffic_before + 1);
        assert_eq!(fleet.source(StreamId(1)).last_reported(), Some(700.0));

        // Keep the silent application, roll back the report.
        let (kept, undone) = log.commit_below(&mut fleet, 1);
        assert_eq!((kept, undone), (1, 1));
        assert!(log.is_empty());
        assert_eq!(fleet.true_value(StreamId(1)), 550.0);
        assert_eq!(fleet.source(StreamId(1)).traffic(), traffic_before);
        assert_eq!(fleet.source(StreamId(1)).last_reported(), Some(500.0));
    }
}
