//! The collection of all stream sources, with ledger-threaded operations.
//!
//! Every server↔source interaction goes through this type so that message
//! accounting can never be forgotten: delivering a workload update, probing,
//! installing filters, and broadcasting all take the [`Ledger`] and the
//! server's [`ServerView`] and keep both consistent.

use crate::filter::Filter;
use crate::message::{Ledger, MessageKind};
use crate::source::StreamSource;
use crate::view::ServerView;
use crate::StreamId;

/// All `n` stream sources of the simulated system.
#[derive(Clone, Debug)]
pub struct SourceFleet {
    sources: Vec<StreamSource>,
}

impl SourceFleet {
    /// Builds a fleet from initial values; ids are assigned `0..n` in order.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is empty or contains non-finite values, or if
    /// there are more than `u32::MAX` streams.
    pub fn from_values(initial: &[f64]) -> Self {
        assert!(!initial.is_empty(), "a fleet needs at least one source");
        assert!(u32::try_from(initial.len()).is_ok(), "too many sources");
        let sources = initial
            .iter()
            .enumerate()
            .map(|(i, &v)| StreamSource::new(StreamId(i as u32), v))
            .collect();
        Self { sources }
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the fleet is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Read-only access to one source (ground truth — for oracles/tests).
    pub fn source(&self, id: StreamId) -> &StreamSource {
        &self.sources[id.index()]
    }

    /// Iterates over all sources (ground truth — for oracles/tests).
    pub fn iter(&self) -> impl Iterator<Item = &StreamSource> {
        self.sources.iter()
    }

    /// Ground-truth current value of a stream (oracle/test use only; the
    /// server must [`Self::probe`] to learn it).
    pub fn true_value(&self, id: StreamId) -> f64 {
        self.sources[id.index()].value()
    }

    /// Delivers a workload update to a source. If the source's filter is
    /// violated it reports: one `Update` message is recorded, the server
    /// view refreshed, and `Some(value)` returned for the protocol to
    /// handle. Otherwise the update is silent and `None` is returned.
    pub fn deliver_update(
        &mut self,
        id: StreamId,
        value: f64,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        let src = &mut self.sources[id.index()];
        if src.apply_value(value) {
            src.mark_reported();
            src.add_traffic(1);
            ledger.record(MessageKind::Update, 1);
            view.set(id, value);
            Some(value)
        } else {
            None
        }
    }

    /// Server probes one source for its current value (one request + one
    /// reply = 2 messages). Refreshes the server view and the source's
    /// last-reported value, and returns the value.
    pub fn probe(&mut self, id: StreamId, ledger: &mut Ledger, view: &mut ServerView) -> f64 {
        let src = &mut self.sources[id.index()];
        ledger.record(MessageKind::ProbeRequest, 1);
        ledger.record(MessageKind::ProbeReply, 1);
        src.add_traffic(2);
        src.mark_reported();
        let v = src.value();
        view.set(id, v);
        v
    }

    /// Probes every source (the Initialization phases' "request all streams
    /// to send their values"): `2n` messages.
    pub fn probe_all(&mut self, ledger: &mut Ledger, view: &mut ServerView) {
        for i in 0..self.sources.len() {
            self.probe(StreamId(i as u32), ledger, view);
        }
    }

    /// Installs a filter at one source (1 message). If the new filter is
    /// inconsistent with the server's knowledge (see
    /// [`StreamSource::install`]) the source immediately syncs: one `Update`
    /// message, view refreshed, and `Some(value)` returned so the engine can
    /// route it to the protocol.
    pub fn install(
        &mut self,
        id: StreamId,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        ledger.record(MessageKind::FilterInstall, 1);
        let src = &mut self.sources[id.index()];
        src.add_traffic(1);
        if src.install(filter) {
            src.mark_reported();
            src.add_traffic(1);
            ledger.record(MessageKind::Update, 1);
            let v = src.value();
            view.set(id, v);
            Some(v)
        } else {
            None
        }
    }

    /// Broadcasts a filter to every source (`n` messages). Returns the sync
    /// reports `(id, value)` from sources whose state was inconsistent with
    /// the new filter (each also recorded as one `Update`).
    pub fn broadcast(
        &mut self,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Vec<(StreamId, f64)> {
        ledger.record(MessageKind::FilterBroadcast, self.sources.len() as u64);
        let mut syncs = Vec::new();
        for src in &mut self.sources {
            src.add_traffic(1);
            if src.install(filter.clone()) {
                src.mark_reported();
                src.add_traffic(1);
                ledger.record(MessageKind::Update, 1);
                let v = src.value();
                view.set(src.id(), v);
                syncs.push((src.id(), v));
            }
        }
        syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SourceFleet, Ledger, ServerView) {
        let fleet = SourceFleet::from_values(&[100.0, 500.0, 900.0]);
        let view = ServerView::new(3);
        (fleet, Ledger::new(), view)
    }

    #[test]
    fn probe_all_costs_2n_and_fills_view() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        assert_eq!(ledger.total(), 6);
        assert!(view.all_known());
        assert_eq!(view.get(StreamId(1)), 500.0);
    }

    #[test]
    fn unfiltered_update_reports() {
        let (mut fleet, mut ledger, mut view) = setup();
        let r = fleet.deliver_update(StreamId(0), 120.0, &mut ledger, &mut view);
        assert_eq!(r, Some(120.0));
        assert_eq!(ledger.count(MessageKind::Update), 1);
        assert_eq!(view.get(StreamId(0)), 120.0);
    }

    #[test]
    fn filtered_update_inside_is_silent_and_stale() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        fleet.install(StreamId(1), Filter::interval(400.0, 600.0), &mut ledger, &mut view);
        let before = ledger.total();
        let r = fleet.deliver_update(StreamId(1), 550.0, &mut ledger, &mut view);
        assert_eq!(r, None);
        assert_eq!(ledger.total(), before);
        // Server view is stale by design.
        assert_eq!(view.get(StreamId(1)), 500.0);
        // Ground truth moved.
        assert_eq!(fleet.true_value(StreamId(1)), 550.0);
    }

    #[test]
    fn crossing_update_reports_and_refreshes() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        fleet.install(StreamId(1), Filter::interval(400.0, 600.0), &mut ledger, &mut view);
        let r = fleet.deliver_update(StreamId(1), 700.0, &mut ledger, &mut view);
        assert_eq!(r, Some(700.0));
        assert_eq!(view.get(StreamId(1)), 700.0);
    }

    #[test]
    fn install_sync_when_inconsistent() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        // Silent drift within a broad filter.
        fleet.install(StreamId(1), Filter::interval(0.0, 1000.0), &mut ledger, &mut view);
        assert_eq!(fleet.deliver_update(StreamId(1), 800.0, &mut ledger, &mut view), None);
        let before_updates = ledger.count(MessageKind::Update);
        // New filter separates believed (500) from true (800): sync expected.
        let sync = fleet.install(StreamId(1), Filter::interval(750.0, 900.0), &mut ledger, &mut view);
        assert_eq!(sync, Some(800.0));
        assert_eq!(ledger.count(MessageKind::Update), before_updates + 1);
        assert_eq!(view.get(StreamId(1)), 800.0);
    }

    #[test]
    fn broadcast_costs_n_and_syncs_inconsistent_sources() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe_all(&mut ledger, &mut view);
        ledger.reset();
        // All believed values: 100, 500, 900 — all consistent with ground
        // truth, so a broadcast of [0, 1000] yields no syncs.
        let syncs = fleet.broadcast(Filter::interval(0.0, 1000.0), &mut ledger, &mut view);
        assert!(syncs.is_empty());
        assert_eq!(ledger.count(MessageKind::FilterBroadcast), 3);
        assert_eq!(ledger.broadcast_ops(), 1);

        // Drift silently, then broadcast a filter that separates believed
        // from true for stream 0 only.
        fleet.deliver_update(StreamId(0), 450.0, &mut ledger, &mut view); // 100 -> 450 inside [0,1000]: silent
        let syncs = fleet.broadcast(Filter::interval(400.0, 600.0), &mut ledger, &mut view);
        assert_eq!(syncs, vec![(StreamId(0), 450.0)]);
    }

    #[test]
    fn traffic_accounting_per_source() {
        let (mut fleet, mut ledger, mut view) = setup();
        fleet.probe(StreamId(0), &mut ledger, &mut view); // 2
        fleet.install(StreamId(0), Filter::wildcard(), &mut ledger, &mut view); // 1
        assert_eq!(fleet.source(StreamId(0)).traffic(), 3);
        assert_eq!(fleet.source(StreamId(1)).traffic(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_fleet_rejected() {
        SourceFleet::from_values(&[]);
    }
}
