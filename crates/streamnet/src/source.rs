//! A single stream source with its adaptive filter.

use asf_persist::{PersistError, StateReader, StateWriter};

use crate::filter::Filter;
use crate::StreamId;

/// A stream source (sensor / subnet agent) in the Figure-3 architecture.
///
/// Holds the ground-truth current value, the value last reported to the
/// server, and the installed filter. All message accounting is done by the
/// caller ([`crate::fleet::SourceFleet`]), keeping this type pure state.
#[derive(Clone, Debug)]
pub struct StreamSource {
    id: StreamId,
    value: f64,
    /// Last value the server has seen from this source (via report or
    /// probe). `None` until the first interaction: before the server knows
    /// anything, any update must be reported (there is no basis to filter).
    last_reported: Option<f64>,
    filter: Filter,
    /// Total messages this source has sent or received; used for the energy
    /// accounting extension (shut-down sensors send/receive nothing).
    traffic: u64,
}

impl StreamSource {
    /// Creates a source with an initial value and no filter installed.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is not finite.
    pub fn new(id: StreamId, initial: f64) -> Self {
        assert!(initial.is_finite(), "stream values must be finite, got {initial}");
        Self { id, value: initial, last_reported: None, filter: Filter::ReportAll, traffic: 0 }
    }

    /// The source id.
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Ground-truth current value (visible to tests and the oracle; the
    /// server must pay messages to learn it).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The value the server last learned from this source, if any.
    pub fn last_reported(&self) -> Option<f64> {
        self.last_reported
    }

    /// The currently installed filter.
    pub fn filter(&self) -> &Filter {
        &self.filter
    }

    /// Message traffic (sent + received) observed at this source.
    pub fn traffic(&self) -> u64 {
        self.traffic
    }

    pub(crate) fn add_traffic(&mut self, n: u64) {
        self.traffic += n;
    }

    /// Restores value / last-reported / traffic — speculative-execution
    /// rollback support for [`crate::fleet::SpecLog`].
    pub(crate) fn restore(&mut self, value: f64, last_reported: Option<f64>, traffic: u64) {
        self.value = value;
        self.last_reported = last_reported;
        self.traffic = traffic;
    }

    /// Serializes the full source state (value, last-reported, filter,
    /// traffic) into a durable checkpoint. The id is not written — it is
    /// positional in the fleet encoding.
    pub fn encode(&self, w: &mut StateWriter) {
        w.put_f64(self.value);
        w.put_opt_f64(self.last_reported);
        self.filter.encode(w);
        w.put_u64(self.traffic);
    }

    /// Decodes a source written by [`StreamSource::encode`], reattaching
    /// the positional `id`.
    pub fn decode(id: StreamId, r: &mut StateReader<'_>) -> asf_persist::Result<Self> {
        let value = r.get_f64()?;
        let last_reported = r.get_opt_f64()?;
        let filter = Filter::decode(r)?;
        let traffic = r.get_u64()?;
        if !value.is_finite() || last_reported.is_some_and(|v| !v.is_finite()) {
            return Err(PersistError::corrupt("non-finite stream value"));
        }
        Ok(Self { id, value, last_reported, filter, traffic })
    }

    /// Applies a new value from the workload and decides whether the filter
    /// constraint is violated (⇒ the source must report).
    ///
    /// Does **not** mark the value as reported — call [`Self::mark_reported`]
    /// when the report is actually sent, so callers control accounting.
    ///
    /// # Panics
    ///
    /// Panics if `new_value` is not finite.
    pub fn apply_value(&mut self, new_value: f64) -> bool {
        assert!(new_value.is_finite(), "stream values must be finite, got {new_value}");
        self.value = new_value;
        match self.last_reported {
            None => true,
            Some(prev) => self.filter.violated(prev, new_value),
        }
    }

    /// Marks the current value as known to the server (report or probe
    /// reply just carried it).
    pub fn mark_reported(&mut self) {
        self.last_reported = Some(self.value);
    }

    /// Installs a filter and reports whether the source must immediately
    /// sync (the server's knowledge is inconsistent with the new filter:
    /// membership of the last reported value differs from membership of the
    /// actual current value).
    ///
    /// The paper assumes values do not change during constraint resolution
    /// (Correctness Requirement 2); this sync mechanism is what keeps the
    /// server's view consistent when a *re*configuration arrives while the
    /// true value has silently drifted within the old filter (see DESIGN.md
    /// §3.2).
    pub fn install(&mut self, filter: Filter) -> bool {
        self.filter = filter;
        match (&self.filter, self.last_reported) {
            (Filter::ReportAll, _) => false,
            (_, None) => false, // nothing reported yet; first update will report
            (f, Some(prev)) => f.violated(prev, self.value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(v: f64) -> StreamSource {
        StreamSource::new(StreamId(0), v)
    }

    #[test]
    fn first_update_always_reports() {
        let mut s = src(10.0);
        assert_eq!(s.last_reported(), None);
        assert!(s.apply_value(11.0));
    }

    #[test]
    fn filtered_update_inside_is_silent() {
        let mut s = src(500.0);
        s.mark_reported();
        s.install(Filter::interval(400.0, 600.0));
        assert!(!s.apply_value(550.0));
        assert_eq!(
            s.last_reported(),
            Some(500.0),
            "silent update must not refresh the server view"
        );
    }

    #[test]
    fn crossing_reports_and_mark_refreshes() {
        let mut s = src(500.0);
        s.mark_reported();
        s.install(Filter::interval(400.0, 600.0));
        assert!(s.apply_value(700.0));
        s.mark_reported();
        assert_eq!(s.last_reported(), Some(700.0));
        // Now outside; moving outside->outside is silent.
        assert!(!s.apply_value(900.0));
        // outside -> inside violates again.
        assert!(s.apply_value(450.0));
    }

    #[test]
    fn report_all_reports_every_change() {
        let mut s = src(1.0);
        s.mark_reported();
        assert!(s.apply_value(1.5));
        s.mark_reported();
        assert!(s.apply_value(1.5)); // even a same-value update is an update message
    }

    #[test]
    fn wildcard_silences_source() {
        let mut s = src(500.0);
        s.mark_reported();
        assert!(!s.install(Filter::wildcard()));
        for v in [0.0, 1e6, -1e6] {
            assert!(!s.apply_value(v));
        }
    }

    #[test]
    fn install_detects_stale_view() {
        let mut s = src(500.0);
        s.mark_reported();
        s.install(Filter::interval(0.0, 1000.0));
        // Value drifts but stays inside: silent; server still believes 500.
        assert!(!s.apply_value(800.0));
        // New filter [700, 900]: server-believed 500 is outside, true 800 is
        // inside -> source must sync.
        assert!(s.install(Filter::interval(700.0, 900.0)));
        // Consistent reconfiguration needs no sync: both 500 (believed) and
        // 800 (true) are inside [0, 900].
        let mut s2 = src(500.0);
        s2.mark_reported();
        s2.install(Filter::interval(0.0, 1000.0));
        s2.apply_value(800.0); // silent drift within the broad filter
        assert!(!s2.install(Filter::interval(0.0, 900.0)));
    }

    #[test]
    fn install_before_any_report_never_syncs() {
        let mut s = src(500.0);
        assert!(!s.install(Filter::interval(0.0, 1.0)));
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut s = src(500.0);
        s.mark_reported();
        s.install(Filter::interval(400.0, 600.0));
        s.apply_value(550.0);
        s.add_traffic(7);
        let mut w = StateWriter::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let back = StreamSource::decode(StreamId(0), &mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.id(), s.id());
        assert_eq!(back.value(), s.value());
        assert_eq!(back.last_reported(), s.last_reported());
        assert_eq!(back.filter(), s.filter());
        assert_eq!(back.traffic(), s.traffic());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_non_finite_value() {
        let mut s = src(0.0);
        s.apply_value(f64::INFINITY);
    }
}
