//! # streamnet — the distributed stream network substrate
//!
//! Models the architecture of the paper's Figure 3: `n` stream sources, each
//! equipped with an **adaptive filter**, talking to a central stream server.
//!
//! * [`filter`] — the filter-constraint semantics of §3.1: a closed interval
//!   `[l, u]`; a source reports an update exactly when the new value's
//!   membership in the interval differs from the last reported value's
//!   membership. Includes the special constraints `[-∞, ∞]` (wildcard — the
//!   source never reports; the paper's "false positive filter") and `[∞, ∞]`
//!   (suppress — likewise silent; the "false negative filter").
//! * [`source`] — a stream source holding its current value, its
//!   last-reported value, and its installed filter.
//! * [`fleet`] — the collection of all sources with probe / install /
//!   broadcast operations, threading every interaction through the ledger.
//! * [`message`] — the message taxonomy and cost ledger (DESIGN.md §3.3).
//! * [`view`] — the server's (possibly stale) view of stream values.
//! * [`chaos`] — unreliable source↔server channels: seeded fault injection
//!   (drop / delay / duplicate / reorder / crash-restart), filter epochs,
//!   sequence numbers, and heartbeat leases.
//!
//! This crate knows nothing about queries or tolerances; those live in
//! `asf-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod filter;
pub mod fleet;
pub mod message;
pub mod source;
pub mod view;

pub use chaos::{ChaosConfig, ChaosFleet, ChaosState, ChaosStats, RepairPlan, ReportFate};
pub use filter::Filter;
pub use fleet::{FleetOps, SourceFleet, SpecLog};
pub use message::{Ledger, MessageKind};
pub use source::StreamSource;
pub use view::ServerView;

/// Identifier of a stream source (dense, `0..n`).
///
/// The paper indexes streams `S_1 … S_n`; we use 0-based dense ids so they
/// double as vector indices. Rank ties are broken by this id (ascending), so
/// the ordering of answers is total and deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_id_display_and_index() {
        let id = StreamId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "S7");
    }

    #[test]
    fn stream_id_orders_by_numeric_value() {
        assert!(StreamId(2) < StreamId(10));
    }
}
