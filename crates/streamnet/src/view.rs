//! The server's view of stream values.
//!
//! The server only knows what sources have told it (reports and probe
//! replies), so its view may be stale. Protocols rank and select streams
//! based on this view; the ground truth lives in the sources and is only
//! accessible to the oracle (tests) or by paying probe messages.

use asf_persist::{PersistError, StateReader, StateWriter};

use crate::StreamId;

/// Last-known values of all `n` streams, indexed by [`StreamId`].
#[derive(Clone, Debug, PartialEq)]
pub struct ServerView {
    values: Vec<f64>,
    known: Vec<bool>,
    /// Number of `true` entries in `known`, so [`ServerView::all_known`] is
    /// O(1) — batch fleet operations consult it per call, not per stream.
    known_count: usize,
}

impl ServerView {
    /// Creates a view over `n` streams with no knowledge yet.
    pub fn new(n: usize) -> Self {
        Self { values: vec![0.0; n], known: vec![false; n], known_count: 0 }
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the view is over zero streams.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Records a learned value.
    pub fn set(&mut self, id: StreamId, value: f64) {
        self.values[id.index()] = value;
        if !self.known[id.index()] {
            self.known[id.index()] = true;
            self.known_count += 1;
        }
    }

    /// The last-known value of a stream.
    ///
    /// # Panics
    ///
    /// Panics if the server has never learned this stream's value; protocols
    /// must initialize (probe all) before ranking, so hitting this indicates
    /// a protocol bug.
    pub fn get(&self, id: StreamId) -> f64 {
        assert!(self.known[id.index()], "server has no value for {id} yet");
        self.values[id.index()]
    }

    /// Forgets a stream's value, returning the view to "never heard from".
    ///
    /// Used by the fault-tolerance layer when a source's lease expires: the
    /// server can no longer vouch for the cached value, so degraded views
    /// (e.g. [`ServerView::unknown_ids`]-driven re-probes and live-population
    /// answer checks) must treat the stream as unknown. Subsequent
    /// [`ServerView::get`] calls panic until the stream is re-probed, which
    /// is deliberate: protocol code must not silently rank a dead source.
    pub fn mark_unknown(&mut self, id: StreamId) {
        if self.known[id.index()] {
            self.known[id.index()] = false;
            self.known_count -= 1;
            self.values[id.index()] = 0.0;
        }
    }

    /// Whether the server has ever learned this stream's value.
    pub fn is_known(&self, id: StreamId) -> bool {
        self.known[id.index()]
    }

    /// How many streams' values are known.
    pub fn known_count(&self) -> usize {
        self.known_count
    }

    /// Whether every stream's value is known — O(1) via the maintained
    /// counter.
    pub fn all_known(&self) -> bool {
        self.known_count == self.values.len()
    }

    /// Serializes the view into a durable checkpoint.
    pub fn encode(&self, w: &mut StateWriter) {
        w.put_u64(self.values.len() as u64);
        for (&v, &k) in self.values.iter().zip(self.known.iter()) {
            w.put_bool(k);
            w.put_f64(v);
        }
    }

    /// Decodes a view written by [`ServerView::encode`].
    pub fn decode(r: &mut StateReader<'_>) -> asf_persist::Result<Self> {
        let n = r.get_u64()? as usize;
        if n > r.remaining() / 9 {
            return Err(PersistError::corrupt("view longer than payload"));
        }
        let mut view = ServerView::new(n);
        for i in 0..n {
            let known = r.get_bool()?;
            let value = r.get_f64()?;
            if known {
                if !value.is_finite() {
                    return Err(PersistError::corrupt("non-finite view value"));
                }
                view.set(StreamId(i as u32), value);
            }
        }
        Ok(view)
    }

    /// Ids the server has never heard from, in ascending order — the probe
    /// list for partial-knowledge batch probes (probe only what is missing
    /// instead of re-probing the world).
    pub fn unknown_ids(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.known.iter().enumerate().filter(|&(_, &k)| !k).map(|(i, _)| StreamId(i as u32))
    }

    /// Iterates `(id, last_known_value)` over streams the server knows.
    pub fn iter_known(&self) -> impl Iterator<Item = (StreamId, f64)> + '_ {
        self.values
            .iter()
            .zip(self.known.iter())
            .enumerate()
            .filter(|(_, (_, &k))| k)
            .map(|(i, (&v, _))| (StreamId(i as u32), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unknown() {
        let v = ServerView::new(3);
        assert_eq!(v.len(), 3);
        assert!(!v.is_known(StreamId(0)));
        assert!(!v.all_known());
        assert_eq!(v.known_count(), 0);
        assert_eq!(v.iter_known().count(), 0);
        assert_eq!(
            v.unknown_ids().collect::<Vec<_>>(),
            vec![StreamId(0), StreamId(1), StreamId(2)]
        );
    }

    #[test]
    fn known_count_ignores_re_sets() {
        let mut v = ServerView::new(3);
        v.set(StreamId(1), 1.0);
        v.set(StreamId(1), 2.0);
        assert_eq!(v.known_count(), 1);
        assert_eq!(v.unknown_ids().collect::<Vec<_>>(), vec![StreamId(0), StreamId(2)]);
        v.set(StreamId(0), 3.0);
        v.set(StreamId(2), 4.0);
        assert!(v.all_known());
        assert_eq!(v.unknown_ids().count(), 0);
    }

    #[test]
    fn set_then_get() {
        let mut v = ServerView::new(3);
        v.set(StreamId(1), 42.0);
        assert!(v.is_known(StreamId(1)));
        assert_eq!(v.get(StreamId(1)), 42.0);
        assert_eq!(v.iter_known().collect::<Vec<_>>(), vec![(StreamId(1), 42.0)]);
    }

    #[test]
    fn all_known_after_full_fill() {
        let mut v = ServerView::new(2);
        v.set(StreamId(0), 1.0);
        v.set(StreamId(1), 2.0);
        assert!(v.all_known());
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut v = ServerView::new(4);
        v.set(StreamId(1), 42.5);
        v.set(StreamId(3), -7.0);
        let mut w = StateWriter::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let back = ServerView::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back.known_count(), 2);
        assert_eq!(back.get(StreamId(1)), 42.5);
        assert_eq!(back.get(StreamId(3)), -7.0);
        assert!(!back.is_known(StreamId(0)));
    }

    #[test]
    fn decode_rejects_oversized_length() {
        let mut w = StateWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(ServerView::decode(&mut StateReader::new(&bytes)).is_err());
    }

    #[test]
    #[should_panic(expected = "no value")]
    fn get_unknown_panics() {
        let v = ServerView::new(1);
        v.get(StreamId(0));
    }

    #[test]
    fn mark_unknown_forgets_and_is_idempotent() {
        let mut v = ServerView::new(2);
        v.set(StreamId(0), 1.0);
        v.set(StreamId(1), 2.0);
        v.mark_unknown(StreamId(0));
        v.mark_unknown(StreamId(0));
        assert!(!v.is_known(StreamId(0)));
        assert_eq!(v.known_count(), 1);
        assert_eq!(v.unknown_ids().collect::<Vec<_>>(), vec![StreamId(0)]);
        // Re-learning restores the invariant.
        v.set(StreamId(0), 3.0);
        assert!(v.all_known());
        assert_eq!(v.get(StreamId(0)), 3.0);
    }
}
