//! Unreliable source↔server channels: fault injection, filter epochs,
//! sequence numbers, leases, and the bookkeeping the repair path needs.
//!
//! The paper places filters at *remote* sources, so in a real deployment
//! every install, probe, and report crosses a lossy network. This module
//! models that network deterministically:
//!
//! * [`ChaosState`] holds one logical **channel** per source: the filter
//!   epoch installed at the source, send/receive sequence numbers for
//!   source→server frames, the lease (`last_heard`) used for liveness, and
//!   crash/outage status. All randomness comes from a seeded
//!   [`simkit::fault::FaultSchedule`]; all time from a
//!   [`simkit::time::TickClock`]. Wall-clock never appears.
//! * [`ChaosFleet`] decorates any [`FleetOps`] backend. Server→source
//!   operations (probes, installs, broadcasts) draw per-frame faults:
//!   dropped requests time out and are retried with capped exponential
//!   backoff ([`simkit::fault::Backoff`]), delayed requests advance the
//!   clock, duplicated requests are rejected idempotently at the source by
//!   epoch/sequence and metered as overhead. After the (simulated) channel
//!   finally delivers, the wrapped backend executes the operation **exactly
//!   once**, so retries never perturb authoritative state — they only cost
//!   simulated time and overhead frames.
//! * Source→server **reports** are admitted through
//!   [`ChaosState::admit_report`]: each is stamped with the channel's
//!   current `(epoch, seq)` and can be dropped, delayed (re-ordered), or
//!   duplicated. The server accepts a frame iff its epoch matches the
//!   source's current filter epoch and its sequence number advances the
//!   channel — stale and duplicate frames are rejected idempotently and
//!   leave a detectable sequence gap that the repair path closes with a
//!   re-probe.
//!
//! ## Epoch / lease state machine
//!
//! Every successful install bumps the source's epoch; reports carry the
//! epoch of the filter that produced them. A probe or an install-sync
//! supersedes all in-flight frames (`recv_seq = send_seq`), so anything
//! still parked in the network is rejected on arrival. At each quiescent
//! round (chunk end) every up source emits a heartbeat carrying its
//! `send_seq` and a restart flag; the server refreshes the lease, detects
//! gaps and restarts, and schedules re-probes. A source whose lease expires
//! (`now − last_heard > lease_ticks`) is **dead**: excluded from the
//! verified-live population until a heartbeat revives it, at which point it
//! is re-probed like any other repaired source.
//!
//! Faults cease at the schedule's horizon; after that every draw delivers
//! and the decorator is byte-transparent, which is what lets the chaos
//! differential suite demand exact convergence with a never-faulted run.

use simkit::fault::{Backoff, FaultDecision, FaultMix, FaultSchedule};
use simkit::time::TickClock;

use crate::filter::Filter;
use crate::fleet::FleetOps;
use crate::message::Ledger;
use crate::view::ServerView;
use crate::StreamId;

/// Configuration of one unreliable-fleet simulation.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the fault schedule's RNG stream.
    pub seed: u64,
    /// Per-frame fault probabilities and crash parameters.
    pub mix: FaultMix,
    /// Tick at which faults cease (the convergence boundary).
    pub fault_horizon_ticks: u64,
    /// Lease length: a source unheard-from for longer is declared dead.
    pub lease_ticks: u64,
    /// Simulated timeout charged per dropped request before a retry.
    pub timeout_ticks: u64,
    /// Retry backoff policy for server→source requests.
    pub backoff: Backoff,
    /// Retry cap: after this many timeouts the frame is force-delivered
    /// (keeps handler-time bounded under adversarial schedules).
    pub max_retries: u32,
}

impl ChaosConfig {
    /// Creates a config with conventional lease/backoff defaults.
    pub fn new(seed: u64, mix: FaultMix, fault_horizon_ticks: u64) -> Self {
        Self {
            seed,
            mix,
            fault_horizon_ticks,
            lease_ticks: 2_048,
            timeout_ticks: 8,
            backoff: Backoff::new(4, 256),
            max_retries: 16,
        }
    }

    /// Overrides the lease length.
    pub fn lease_ticks(mut self, ticks: u64) -> Self {
        self.lease_ticks = ticks;
        self
    }
}

/// Counters describing everything the fault layer did.
///
/// `overhead_frames` is the headline number: extra frames on the wire
/// (retransmissions, duplicate ghosts, heartbeats) that a reliable network
/// would not have carried. The authoritative [`Ledger`] never includes
/// them — it meters the logical protocol, the chaos layer meters the noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Server→source requests retransmitted after a timeout.
    pub retries: u64,
    /// Timeouts observed (one per dropped request frame).
    pub timeouts: u64,
    /// Frames rejected idempotently by epoch or sequence number.
    pub epoch_rejects: u64,
    /// Reports lost in the channel (or swallowed by a source outage).
    pub reports_lost: u64,
    /// Reports delayed for later, out-of-order delivery.
    pub reports_delayed: u64,
    /// Duplicate ghost frames injected.
    pub dup_frames: u64,
    /// Heartbeat frames emitted at quiescent rounds.
    pub heartbeats_sent: u64,
    /// Heartbeat frames lost in the channel.
    pub heartbeats_lost: u64,
    /// Source crash-restarts injected.
    pub crashes: u64,
    /// Sources re-probed by the repair path.
    pub repaired_sources: u64,
    /// Total extra frames beyond the logical protocol.
    pub overhead_frames: u64,
}

/// Fate of one source→server report at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFate {
    /// Delivered in order; the caller should ingest it now.
    Deliver,
    /// Lost; the caller must not ingest it (the source still believes it
    /// reported — exactly the inconsistency the repair path exists for).
    Lost,
    /// Delayed; [`ChaosState::take_due_reports`] will surface it later.
    Parked,
}

/// Re-probe / degradation work discovered at a quiescent round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairPlan {
    /// Live sources that need a repair re-probe (sequence gap, restart, or
    /// lease rejoin).
    pub reprobe: Vec<StreamId>,
    /// Sources whose lease expired this round (newly dead).
    pub newly_dead: Vec<StreamId>,
}

impl RepairPlan {
    /// Whether the plan contains no work.
    pub fn is_empty(&self) -> bool {
        self.reprobe.is_empty() && self.newly_dead.is_empty()
    }
}

/// Per-source channel state (epoch / sequence / lease machine).
#[derive(Debug, Clone, Default)]
struct ChannelState {
    /// Epoch of the filter currently installed at the source.
    epoch: u64,
    /// Frames the source has sent (stamped on each report).
    send_seq: u64,
    /// Highest source frame the server has accepted or superseded.
    recv_seq: u64,
    /// Tick at which the server last heard from the source.
    last_heard: u64,
    /// The source is down (crash outage) until this tick.
    down_until: u64,
    /// The source restarted (or rejoined) and needs a repair re-probe.
    needs_repair: bool,
    /// Heartbeat arrived in the current quiescent round.
    heard_this_round: bool,
    /// Channel fully caught up as of the last completed round.
    verified: bool,
}

/// A report frame sitting in the simulated network.
#[derive(Debug, Clone)]
struct ParkedReport {
    due: u64,
    seq: u64,
    epoch: u64,
    id: StreamId,
    value: f64,
}

/// All channel state of the unreliable fleet plus the fault source.
#[derive(Debug, Clone)]
pub struct ChaosState {
    cfg: ChaosConfig,
    schedule: FaultSchedule,
    clock: TickClock,
    channels: Vec<ChannelState>,
    parked: Vec<ParkedReport>,
    stats: ChaosStats,
    dead: Vec<bool>,
    dead_count: usize,
}

impl ChaosState {
    /// Creates channel state for `n` sources.
    ///
    /// Channels start fully caught up: the server is expected to have
    /// initialized (probed the world) over a reliable channel before chaos
    /// is attached.
    pub fn new(n: usize, cfg: ChaosConfig) -> Self {
        let schedule = FaultSchedule::new(cfg.seed, cfg.mix, cfg.fault_horizon_ticks);
        Self {
            cfg,
            schedule,
            clock: TickClock::new(),
            channels: vec![ChannelState { verified: true, ..Default::default() }; n],
            parked: Vec::new(),
            stats: ChaosStats::default(),
            dead: vec![false; n],
            dead_count: 0,
        }
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether there are zero channels.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Current logical tick.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Advances the logical clock (one tick per ingested event by
    /// convention).
    pub fn advance(&mut self, ticks: u64) {
        self.clock.advance(ticks);
    }

    /// Whether the fault schedule can still produce faults.
    pub fn faults_active(&self) -> bool {
        self.schedule.active(self.clock.now())
    }

    /// Fault-layer counters so far.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Filter epoch currently installed at a source.
    pub fn epoch_of(&self, id: StreamId) -> u64 {
        self.channels[id.index()].epoch
    }

    /// Highest frame sequence the source has sent.
    pub fn send_seq_of(&self, id: StreamId) -> u64 {
        self.channels[id.index()].send_seq
    }

    /// Highest frame sequence the server has accounted for.
    pub fn recv_seq_of(&self, id: StreamId) -> u64 {
        self.channels[id.index()].recv_seq
    }

    /// Number of report frames still parked in the simulated network.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Number of sources currently considered dead (lease expired).
    pub fn dead_count(&self) -> usize {
        self.dead_count
    }

    /// Whether a source's lease has expired.
    pub fn is_dead(&self, id: StreamId) -> bool {
        self.dead[id.index()]
    }

    /// Ids of all currently-dead sources, ascending.
    pub fn dead_ids(&self) -> Vec<StreamId> {
        (0..self.dead.len()).filter(|&i| self.dead[i]).map(|i| StreamId(i as u32)).collect()
    }

    /// Whether the source's channel was fully caught up (heartbeat
    /// delivered, no sequence gap, not down, lease valid) as of the last
    /// completed quiescent round.
    ///
    /// The in-fault oracle checks tolerance bounds over exactly this
    /// population: these are the sources whose view entries the server can
    /// currently vouch for.
    pub fn is_verified(&self, id: StreamId) -> bool {
        self.channels[id.index()].verified
    }

    /// Ids of all verified-live sources, ascending.
    pub fn verified_live_ids(&self) -> Vec<StreamId> {
        (0..self.channels.len())
            .filter(|&i| self.channels[i].verified)
            .map(|i| StreamId(i as u32))
            .collect()
    }

    /// Admits one source→server report, stamping it with the channel's
    /// current `(epoch, seq)` and drawing its fate.
    pub fn admit_report(&mut self, id: StreamId, value: f64) -> ReportFate {
        let now = self.clock.now();
        let ch = &mut self.channels[id.index()];
        if now < ch.down_until {
            // The reporting process is down; the frame is never sent. The
            // value evolution itself continues (sensor hardware keeps
            // running) — only the channel is dark.
            self.stats.reports_lost += 1;
            return ReportFate::Lost;
        }
        ch.send_seq += 1;
        let (seq, epoch) = (ch.send_seq, ch.epoch);
        match self.schedule.draw(now) {
            FaultDecision::Drop => {
                self.stats.reports_lost += 1;
                ReportFate::Lost
            }
            FaultDecision::Delay(ticks) => {
                self.stats.reports_delayed += 1;
                self.parked.push(ParkedReport { due: now + ticks, seq, epoch, id, value });
                ReportFate::Parked
            }
            FaultDecision::Duplicate => {
                self.stats.dup_frames += 1;
                self.stats.overhead_frames += 1;
                // Ghost copy arrives shortly after; the sequence rule will
                // reject it.
                self.parked.push(ParkedReport { due: now + 1, seq, epoch, id, value });
                let ch = &mut self.channels[id.index()];
                ch.recv_seq = seq;
                ch.last_heard = now;
                ReportFate::Deliver
            }
            FaultDecision::Deliver => {
                let ch = &mut self.channels[id.index()];
                ch.recv_seq = seq;
                ch.last_heard = now;
                ReportFate::Deliver
            }
        }
    }

    /// Surfaces parked reports whose delivery tick has arrived, applying
    /// the epoch/sequence acceptance rule. Accepted `(id, value)` pairs are
    /// appended to `out` in deterministic `(due, id, seq)` order; stale and
    /// duplicate frames are rejected idempotently (and leave any sequence
    /// gap in place for the repair path to close).
    pub fn take_due_reports(&mut self, out: &mut Vec<(StreamId, f64)>) {
        out.clear();
        let now = self.clock.now();
        let mut due: Vec<ParkedReport> = Vec::new();
        self.parked.retain(|f| {
            if f.due <= now {
                due.push(f.clone());
                false
            } else {
                true
            }
        });
        due.sort_by_key(|f| (f.due, f.id.0, f.seq));
        for f in due {
            let ch = &mut self.channels[f.id.index()];
            if f.epoch == ch.epoch && f.seq > ch.recv_seq {
                ch.recv_seq = f.seq;
                ch.last_heard = now;
                out.push((f.id, f.value));
            } else {
                self.stats.epoch_rejects += 1;
            }
        }
    }

    /// Draws crash-restarts for this round (no-op once faults ceased).
    ///
    /// A crashed source goes dark for a bounded outage: its reports are
    /// swallowed, its heartbeats stop (so its lease eventually expires),
    /// and it is flagged for a repair re-probe once it is heard from again.
    pub fn draw_crashes(&mut self) {
        let now = self.clock.now();
        for i in 0..self.channels.len() {
            if now < self.channels[i].down_until {
                continue; // already down
            }
            if let Some(outage) = self.schedule.draw_crash(now) {
                self.stats.crashes += 1;
                let ch = &mut self.channels[i];
                ch.down_until = now + outage;
                ch.needs_repair = true;
                ch.verified = false;
            }
        }
    }

    /// Runs the heartbeat + lease round: every up source emits a heartbeat
    /// frame (fault-droppable, metered as overhead, never in the ledger)
    /// carrying its `send_seq` and restart flag. Returns the repair work
    /// the server must execute before calling [`ChaosState::finish_round`].
    pub fn heartbeat_round(&mut self) -> RepairPlan {
        let now = self.clock.now();
        let mut plan = RepairPlan::default();
        for i in 0..self.channels.len() {
            self.channels[i].heard_this_round = false;
            if now < self.channels[i].down_until {
                continue; // down: silent
            }
            self.stats.heartbeats_sent += 1;
            self.stats.overhead_frames += 1;
            let decision = self.schedule.draw(now);
            match decision {
                FaultDecision::Drop => self.stats.heartbeats_lost += 1,
                FaultDecision::Duplicate => {
                    self.stats.overhead_frames += 1;
                    let ch = &mut self.channels[i];
                    ch.last_heard = now;
                    ch.heard_this_round = true;
                }
                // A delayed heartbeat still lands well before the next
                // round; treat it as delivered for lease purposes.
                FaultDecision::Delay(_) | FaultDecision::Deliver => {
                    let ch = &mut self.channels[i];
                    ch.last_heard = now;
                    ch.heard_this_round = true;
                }
            }
        }
        for i in 0..self.channels.len() {
            let id = StreamId(i as u32);
            let expired = now.saturating_sub(self.channels[i].last_heard) > self.cfg.lease_ticks;
            if expired && !self.dead[i] {
                self.dead[i] = true;
                self.dead_count += 1;
                self.channels[i].verified = false;
                plan.newly_dead.push(id);
            } else if !expired && self.dead[i] {
                // Heard again: the source rejoins and must be re-probed.
                self.dead[i] = false;
                self.dead_count -= 1;
                self.channels[i].needs_repair = true;
            }
            let ch = &self.channels[i];
            if ch.heard_this_round
                && !self.dead[i]
                && (ch.needs_repair || ch.recv_seq < ch.send_seq)
            {
                plan.reprobe.push(id);
            }
        }
        self.stats.repaired_sources += plan.reprobe.len() as u64;
        plan
    }

    /// Recomputes verified-live flags after the round's repair work ran.
    pub fn finish_round(&mut self) {
        let now = self.clock.now();
        for (i, ch) in self.channels.iter_mut().enumerate() {
            ch.verified = !self.dead[i]
                && ch.heard_this_round
                && !ch.needs_repair
                && ch.recv_seq == ch.send_seq
                && now >= ch.down_until;
        }
    }

    /// Declares a resync boundary: the server is about to rebuild protocol
    /// state from fresh probes, so everything still in flight is
    /// superseded. Parked frames are discarded (they would all be rejected
    /// as stale anyway — the resync probes advance every channel's
    /// `recv_seq` past them).
    pub fn resync_boundary(&mut self) {
        self.parked.clear();
    }

    /// Charges the channel cost of one server→source request frame:
    /// timeouts + retries while the schedule drops it, clock advances for
    /// delays, idempotent rejection for duplicates. Returns once the frame
    /// is (finally) delivered; the caller then executes the real operation
    /// exactly once.
    fn charge_request(&mut self, id: StreamId, idempotent_dup: bool) {
        let down_until = self.channels[id.index()].down_until;
        if self.clock.now() < down_until {
            // Synchronous resolution: the server retries until the source
            // restarts, paying the outage in simulated time.
            self.stats.timeouts += 1;
            self.stats.retries += 1;
            self.stats.overhead_frames += 1;
            self.clock.advance_to(down_until);
        }
        let mut attempt: u32 = 0;
        loop {
            match self.schedule.draw(self.clock.now()) {
                FaultDecision::Deliver => break,
                FaultDecision::Delay(ticks) => {
                    self.clock.advance(ticks);
                    break;
                }
                FaultDecision::Duplicate => {
                    // The request arrives twice; the source executes once
                    // and rejects the ghost by epoch/sequence.
                    self.stats.overhead_frames += 1;
                    if idempotent_dup {
                        self.stats.epoch_rejects += 1;
                    }
                    break;
                }
                FaultDecision::Drop => {
                    self.stats.timeouts += 1;
                    self.stats.retries += 1;
                    self.stats.overhead_frames += 1;
                    self.clock.advance(self.cfg.timeout_ticks + self.cfg.backoff.delay(attempt));
                    attempt += 1;
                    if attempt >= self.cfg.max_retries {
                        break; // force delivery; keeps handlers bounded
                    }
                }
            }
        }
    }

    /// Bookkeeping after a probe reply: the reply supersedes every frame
    /// still in flight from this source, refreshes the lease, clears any
    /// pending repair flag — and, being proof of life, revives a
    /// lease-expired source on the spot (no rejoin re-probe needed: this
    /// reply already carried fresh state).
    fn on_probed(&mut self, id: StreamId) {
        let now = self.clock.now();
        let i = id.index();
        if self.dead[i] {
            self.dead[i] = false;
            self.dead_count -= 1;
        }
        let ch = &mut self.channels[i];
        ch.recv_seq = ch.send_seq;
        ch.last_heard = now;
        ch.needs_repair = false;
    }

    /// Bookkeeping after an install ack: bumps the filter epoch (staling
    /// every in-flight report produced under the old filter) and refreshes
    /// the lease. A sync reply additionally supersedes in-flight frames.
    fn on_installed(&mut self, id: StreamId, synced: bool) {
        let now = self.clock.now();
        let ch = &mut self.channels[id.index()];
        ch.epoch += 1;
        ch.last_heard = now;
        if synced {
            ch.recv_seq = ch.send_seq;
        }
    }
}

/// Fault-injecting [`FleetOps`] decorator.
///
/// Wraps any backend (the real [`crate::fleet::SourceFleet`], or the
/// server's shard router) and charges every server→source operation through
/// the unreliable channel before executing it exactly once on the inner
/// backend. Reports are **not** intercepted here — report routing is owned
/// by the caller (the server's drain path), which admits them through
/// [`ChaosState::admit_report`]; `deliver` is therefore transparent.
pub struct ChaosFleet<'a> {
    state: &'a mut ChaosState,
    inner: &'a mut dyn FleetOps,
}

impl<'a> ChaosFleet<'a> {
    /// Wraps `inner` with the given channel state.
    ///
    /// # Panics
    ///
    /// Panics if the channel count does not match the fleet size.
    pub fn new(state: &'a mut ChaosState, inner: &'a mut dyn FleetOps) -> Self {
        assert_eq!(state.len(), inner.len(), "chaos channel count != fleet size");
        Self { state, inner }
    }
}

impl FleetOps for ChaosFleet<'_> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn deliver(
        &mut self,
        id: StreamId,
        value: f64,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        // Report faulting lives in `ChaosState::admit_report`, owned by the
        // component that routes reports; the decorator stays transparent so
        // it composes with any delivery path.
        self.inner.deliver(id, value, ledger, view)
    }

    fn probe(&mut self, id: StreamId, ledger: &mut Ledger, view: &mut ServerView) -> f64 {
        self.state.charge_request(id, false);
        let v = self.inner.probe(id, ledger, view);
        self.state.on_probed(id);
        v
    }

    fn probe_all(&mut self, ledger: &mut Ledger, view: &mut ServerView) {
        for i in 0..self.inner.len() {
            self.state.charge_request(StreamId(i as u32), false);
        }
        self.inner.probe_all(ledger, view);
        for i in 0..self.inner.len() {
            self.state.on_probed(StreamId(i as u32));
        }
    }

    fn probe_all_tracked(
        &mut self,
        ledger: &mut Ledger,
        view: &mut ServerView,
        changed: &mut Vec<StreamId>,
    ) {
        for i in 0..self.inner.len() {
            self.state.charge_request(StreamId(i as u32), false);
        }
        self.inner.probe_all_tracked(ledger, view, changed);
        for i in 0..self.inner.len() {
            self.state.on_probed(StreamId(i as u32));
        }
    }

    fn probe_many(
        &mut self,
        ids: &[StreamId],
        ledger: &mut Ledger,
        view: &mut ServerView,
        out: &mut Vec<f64>,
    ) {
        for &id in ids {
            self.state.charge_request(id, false);
        }
        self.inner.probe_many(ids, ledger, view, out);
        for &id in ids {
            self.state.on_probed(id);
        }
    }

    fn install(
        &mut self,
        id: StreamId,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        self.state.charge_request(id, true);
        let sync = self.inner.install(id, filter, ledger, view);
        self.state.on_installed(id, sync.is_some());
        sync
    }

    fn install_many(
        &mut self,
        installs: &[(StreamId, Filter)],
        ledger: &mut Ledger,
        view: &mut ServerView,
        syncs: &mut Vec<(StreamId, f64)>,
    ) {
        for (id, _) in installs {
            self.state.charge_request(*id, true);
        }
        self.inner.install_many(installs, ledger, view, syncs);
        let synced: Vec<StreamId> = syncs.iter().map(|(id, _)| *id).collect();
        for (id, _) in installs {
            self.state.on_installed(*id, synced.contains(id));
        }
    }

    fn broadcast(
        &mut self,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Vec<(StreamId, f64)> {
        // A broadcast is one fan-out frame at the channel layer: charge it
        // once rather than per source.
        if !self.state.is_empty() {
            self.state.charge_request(StreamId(0), true);
        }
        let syncs = self.inner.broadcast(filter, ledger, view);
        for i in 0..self.inner.len() {
            let id = StreamId(i as u32);
            let synced = syncs.iter().any(|(s, _)| *s == id);
            self.state.on_installed(id, synced);
        }
        syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::SourceFleet;

    fn fleet3() -> (SourceFleet, Ledger, ServerView) {
        let fleet = SourceFleet::from_values(&[1.0, 2.0, 3.0]);
        let ledger = Ledger::new();
        let view = ServerView::new(3);
        (fleet, ledger, view)
    }

    fn reliable_state(n: usize) -> ChaosState {
        ChaosState::new(n, ChaosConfig::new(1, FaultMix::none(), 0))
    }

    #[test]
    fn transparent_when_reliable() {
        let (mut fleet, mut ledger, mut view) = fleet3();
        let mut state = reliable_state(3);
        let mut chaos = ChaosFleet::new(&mut state, &mut fleet);
        chaos.probe_all(&mut ledger, &mut view);
        let v = chaos.probe(StreamId(1), &mut ledger, &mut view);
        assert_eq!(v, 2.0);
        assert_eq!(ledger.total(), 8); // 2n + 2 probe messages, nothing else
        assert_eq!(state.stats(), &ChaosStats::default());
    }

    #[test]
    fn install_bumps_epoch_monotonically() {
        let (mut fleet, mut ledger, mut view) = fleet3();
        let mut state = reliable_state(3);
        let mut chaos = ChaosFleet::new(&mut state, &mut fleet);
        chaos.probe_all(&mut ledger, &mut view);
        for k in 1..=5u64 {
            chaos.install(StreamId(0), Filter::wildcard(), &mut ledger, &mut view);
            assert_eq!(chaos.state.epoch_of(StreamId(0)), k);
        }
        assert_eq!(state.epoch_of(StreamId(1)), 0);
    }

    #[test]
    fn dropped_requests_retry_and_still_execute_once() {
        let (mut fleet, mut ledger, mut view) = fleet3();
        // 60% drop, faults active for a long horizon.
        let cfg = ChaosConfig::new(7, FaultMix::loss_only(0.6), u64::MAX);
        let mut state = ChaosState::new(3, cfg);
        let mut chaos = ChaosFleet::new(&mut state, &mut fleet);
        chaos.probe_all(&mut ledger, &mut view);
        // Ledger sees exactly the logical probes despite retries.
        assert_eq!(ledger.total(), 6);
        assert!(state.stats().retries > 0);
        assert_eq!(state.stats().retries, state.stats().timeouts);
        assert!(state.now() > 0, "timeouts must consume simulated time");
    }

    #[test]
    fn report_admission_stamps_and_rejects_stale_epochs() {
        let (mut fleet, mut ledger, mut view) = fleet3();
        // Delay every report so it parks.
        let mix = FaultMix { delay_p: 1.0, max_delay_ticks: 4, ..FaultMix::none() };
        let mut state = ChaosState::new(3, ChaosConfig::new(3, mix, u64::MAX));
        assert_eq!(state.admit_report(StreamId(0), 9.0), ReportFate::Parked);
        assert_eq!(state.parked_len(), 1);
        // An install under a new epoch stales the parked frame.
        {
            let mut chaos = ChaosFleet::new(&mut state, &mut fleet);
            chaos.install(StreamId(0), Filter::wildcard(), &mut ledger, &mut view);
        }
        state.advance(10);
        let mut out = Vec::new();
        state.take_due_reports(&mut out);
        assert!(out.is_empty(), "stale-epoch frame must be rejected");
        assert_eq!(state.stats().epoch_rejects, 1);
        // The sequence gap survives rejection so repair can detect it...
        assert!(state.recv_seq_of(StreamId(0)) < state.send_seq_of(StreamId(0)));
    }

    #[test]
    fn duplicates_deliver_once() {
        let mix = FaultMix { dup_p: 1.0, ..FaultMix::none() };
        let mut state = ChaosState::new(1, ChaosConfig::new(5, mix, u64::MAX));
        assert_eq!(state.admit_report(StreamId(0), 4.0), ReportFate::Deliver);
        state.advance(5);
        let mut out = Vec::new();
        state.take_due_reports(&mut out);
        assert!(out.is_empty(), "ghost duplicate must be rejected by sequence");
        assert_eq!(state.stats().epoch_rejects, 1);
        assert_eq!(state.recv_seq_of(StreamId(0)), state.send_seq_of(StreamId(0)));
    }

    #[test]
    fn delayed_reports_deliver_in_order_once_due() {
        let mix = FaultMix { delay_p: 1.0, max_delay_ticks: 8, ..FaultMix::none() };
        let mut state = ChaosState::new(2, ChaosConfig::new(11, mix, u64::MAX));
        assert_eq!(state.admit_report(StreamId(0), 1.0), ReportFate::Parked);
        assert_eq!(state.admit_report(StreamId(0), 2.0), ReportFate::Parked);
        assert_eq!(state.admit_report(StreamId(1), 3.0), ReportFate::Parked);
        state.advance(100);
        let mut out = Vec::new();
        state.take_due_reports(&mut out);
        // Frames surface deterministically; per source, sequence order wins
        // and every accepted frame advances recv_seq.
        assert_eq!(state.recv_seq_of(StreamId(0)), 2);
        assert_eq!(state.recv_seq_of(StreamId(1)), 1);
        assert!(!out.is_empty());
        assert_eq!(state.parked_len(), 0);
    }

    #[test]
    fn newer_frame_supersedes_older_parked_one() {
        // Frame 1 parks with a long delay; frame 2 delivers immediately.
        let mix = FaultMix { delay_p: 0.5, max_delay_ticks: 50, ..FaultMix::none() };
        let mut state = ChaosState::new(1, ChaosConfig::new(0, mix, u64::MAX));
        let mut fates = Vec::new();
        for k in 0..20 {
            fates.push(state.admit_report(StreamId(0), k as f64));
        }
        assert!(fates.contains(&ReportFate::Parked) && fates.contains(&ReportFate::Deliver));
        state.advance(1000);
        let mut out = Vec::new();
        state.take_due_reports(&mut out);
        // Every parked frame older than the last direct delivery is
        // rejected; recv_seq never regresses.
        assert_eq!(state.recv_seq_of(StreamId(0)), state.send_seq_of(StreamId(0)));
    }

    #[test]
    fn heartbeat_round_detects_gap_and_schedules_reprobe() {
        let mut state = ChaosState::new(2, ChaosConfig::new(2, FaultMix::loss_only(1.0), 100));
        // A lost report leaves a gap.
        assert_eq!(state.admit_report(StreamId(1), 5.0), ReportFate::Lost);
        // Past the horizon the heartbeat itself is reliable.
        state.advance(200);
        state.draw_crashes();
        let plan = state.heartbeat_round();
        assert_eq!(plan.reprobe, vec![StreamId(1)]);
        assert!(plan.newly_dead.is_empty());
        // Before the repair probe the channel is not verified.
        state.finish_round();
        assert!(!state.is_verified(StreamId(1)));
        assert!(state.is_verified(StreamId(0)));
        state.on_probed(StreamId(1));
        state.finish_round();
        assert!(state.is_verified(StreamId(1)));
    }

    #[test]
    fn lease_expiry_marks_dead_and_revives_on_heartbeat() {
        let cfg = ChaosConfig::new(4, FaultMix::loss_only(1.0), 10_000).lease_ticks(50);
        let mut state = ChaosState::new(1, cfg);
        // All heartbeats drop while faults are active; lease expires.
        state.advance(100);
        let plan = state.heartbeat_round();
        assert_eq!(plan.newly_dead, vec![StreamId(0)]);
        assert_eq!(state.dead_count(), 1);
        assert!(state.is_dead(StreamId(0)));
        state.finish_round();
        assert!(!state.is_verified(StreamId(0)));
        // Faults cease; the next heartbeat revives the source and schedules
        // a rejoin re-probe.
        state.advance(20_000);
        let plan = state.heartbeat_round();
        assert_eq!(state.dead_count(), 0);
        assert_eq!(plan.reprobe, vec![StreamId(0)]);
        assert!(plan.newly_dead.is_empty());
    }

    #[test]
    fn crash_goes_dark_then_needs_repair() {
        let mix = FaultMix { crash_p: 1.0, max_outage_ticks: 30, ..FaultMix::none() };
        let mut state = ChaosState::new(1, ChaosConfig::new(6, mix, 100).lease_ticks(10_000));
        state.draw_crashes();
        assert_eq!(state.stats().crashes, 1);
        // Reports during the outage are swallowed without a sequence bump.
        let seq_before = state.send_seq_of(StreamId(0));
        assert_eq!(state.admit_report(StreamId(0), 1.0), ReportFate::Lost);
        assert_eq!(state.send_seq_of(StreamId(0)), seq_before);
        // Down sources emit no heartbeat.
        let plan = state.heartbeat_round();
        assert!(plan.reprobe.is_empty());
        // After the outage (and past the fault horizon) the restart is
        // heard and repair is scheduled.
        state.advance(200);
        let plan = state.heartbeat_round();
        assert_eq!(plan.reprobe, vec![StreamId(0)]);
    }

    #[test]
    fn probing_down_source_blocks_until_restart() {
        let (mut fleet, mut ledger, mut view) = fleet3();
        let mix = FaultMix { crash_p: 1.0, max_outage_ticks: 40, ..FaultMix::none() };
        let mut state = ChaosState::new(3, ChaosConfig::new(9, mix, 100));
        state.draw_crashes();
        let before = state.now();
        let mut chaos = ChaosFleet::new(&mut state, &mut fleet);
        chaos.probe(StreamId(0), &mut ledger, &mut view);
        assert!(state.now() > before, "probe must wait out the outage");
        assert!(state.stats().timeouts >= 1);
    }

    #[test]
    fn resync_boundary_discards_in_flight_frames() {
        let mix = FaultMix { delay_p: 1.0, max_delay_ticks: 100, ..FaultMix::none() };
        let mut state = ChaosState::new(1, ChaosConfig::new(8, mix, u64::MAX));
        state.admit_report(StreamId(0), 1.0);
        assert_eq!(state.parked_len(), 1);
        state.resync_boundary();
        assert_eq!(state.parked_len(), 0);
    }
}
