//! Unreliable source↔server channels: fault injection, filter epochs,
//! sequence numbers, leases, and the bookkeeping the repair path needs.
//!
//! The paper places filters at *remote* sources, so in a real deployment
//! every install, probe, and report crosses a lossy network. This module
//! models that network deterministically:
//!
//! * [`ChaosState`] holds one logical **channel** per source: the filter
//!   epoch installed at the source, send/receive sequence numbers for
//!   source→server frames, the lease (`last_heard`) used for liveness, and
//!   crash/outage status. All randomness comes from a seeded
//!   [`simkit::fault::FaultSchedule`]; all time from a
//!   [`simkit::time::TickClock`]. Wall-clock never appears.
//! * [`ChaosFleet`] decorates any [`FleetOps`] backend. Server→source
//!   operations (probes, installs, broadcasts) draw per-frame faults:
//!   dropped requests time out and are retried with capped exponential
//!   backoff ([`simkit::fault::Backoff`]), delayed requests advance the
//!   clock, duplicated requests are rejected idempotently at the source by
//!   epoch/sequence and metered as overhead. After the (simulated) channel
//!   finally delivers, the wrapped backend executes the operation **exactly
//!   once**, so retries never perturb authoritative state — they only cost
//!   simulated time and overhead frames.
//! * Source→server **reports** are admitted through
//!   [`ChaosState::admit_report`]: each is stamped with the channel's
//!   current `(epoch, seq)` and can be dropped, delayed (re-ordered), or
//!   duplicated. The server accepts a frame iff its epoch matches the
//!   source's current filter epoch and its sequence number advances the
//!   channel — stale and duplicate frames are rejected idempotently and
//!   leave a detectable sequence gap that the repair path closes with a
//!   re-probe.
//!
//! ## Epoch / lease state machine
//!
//! Every successful install bumps the source's epoch; reports carry the
//! epoch of the filter that produced them. A probe or an install-sync
//! supersedes all in-flight frames (`recv_seq = send_seq`), so anything
//! still parked in the network is rejected on arrival. At each quiescent
//! round (chunk end) every up source emits a heartbeat carrying its
//! `send_seq` and a restart flag; the server refreshes the lease, detects
//! gaps and restarts, and schedules re-probes. A source whose lease expires
//! (`now − last_heard > lease_ticks`) is **dead**: excluded from the
//! verified-live population until a heartbeat revives it, at which point it
//! is re-probed like any other repaired source.
//!
//! Faults cease at the schedule's horizon; after that every draw delivers
//! and the decorator is byte-transparent, which is what lets the chaos
//! differential suite demand exact convergence with a never-faulted run.
//!
//! ## Durability
//!
//! The whole machine — config, fault-RNG words, logical clock, every
//! channel, the parked-frame pool, the dead set, and the counters — round-
//! trips through [`ChaosState::encode`] / [`ChaosState::decode`], so a
//! durable server checkpoints its channel layer alongside protocol state
//! and a crash+recover *inside* a fault window resumes the exact decision
//! stream (see `asf-server`'s chaos-recovery differential suite).

use asf_persist::{PersistError, StateReader, StateWriter};
use simkit::fault::{Backoff, FaultDecision, FaultMix, FaultSchedule};
use simkit::time::TickClock;

use crate::filter::Filter;
use crate::fleet::FleetOps;
use crate::message::Ledger;
use crate::view::ServerView;
use crate::StreamId;

/// Configuration of one unreliable-fleet simulation.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the fault schedule's RNG stream.
    pub seed: u64,
    /// Per-frame fault probabilities and crash parameters.
    pub mix: FaultMix,
    /// Tick at which faults cease (the convergence boundary).
    pub fault_horizon_ticks: u64,
    /// Lease length: a source unheard-from for longer is declared dead.
    pub lease_ticks: u64,
    /// Simulated timeout charged per dropped request before a retry.
    pub timeout_ticks: u64,
    /// Retry backoff policy for server→source requests.
    pub backoff: Backoff,
    /// Retry cap: after this many timeouts the frame is force-delivered
    /// (keeps handler-time bounded under adversarial schedules).
    pub max_retries: u32,
    /// Adapt each channel's lease to its observed heartbeat jitter
    /// (bounded multiplicative grow/shrink; `lease_ticks` stays the
    /// floor, `lease_ticks × `[`MAX_LEASE_FACTOR`]` ` the ceiling). On by
    /// default; off pins every lease at `lease_ticks` — the differential
    /// baseline.
    pub adaptive_lease: bool,
    /// Charge each chunk-end repair `probe_many` as **one** fan-out frame
    /// (like a broadcast) instead of one frame per gapped channel. On by
    /// default; off keeps the per-channel charging baseline.
    pub batched_repair: bool,
}

/// Ceiling of the adaptive lease, as a multiple of the configured
/// [`ChaosConfig::lease_ticks`] floor.
pub const MAX_LEASE_FACTOR: u64 = 16;

/// Version tag of the serialized chaos-state record
/// ([`ChaosState::encode`] / [`ChaosState::decode`]).
const CHAOS_STATE_VERSION: u8 = 1;

impl ChaosConfig {
    /// Creates a config with conventional lease/backoff defaults.
    pub fn new(seed: u64, mix: FaultMix, fault_horizon_ticks: u64) -> Self {
        Self {
            seed,
            mix,
            fault_horizon_ticks,
            lease_ticks: 2_048,
            timeout_ticks: 8,
            backoff: Backoff::new(4, 256),
            max_retries: 16,
            adaptive_lease: true,
            batched_repair: true,
        }
    }

    /// Overrides the lease length (the floor when leases are adaptive).
    pub fn lease_ticks(mut self, ticks: u64) -> Self {
        self.lease_ticks = ticks;
        self
    }

    /// Enables or disables jitter-adaptive per-channel leases.
    pub fn adaptive_lease(mut self, on: bool) -> Self {
        self.adaptive_lease = on;
        self
    }

    /// Enables or disables batched repair-frame charging.
    pub fn batched_repair(mut self, on: bool) -> Self {
        self.batched_repair = on;
        self
    }
}

/// Counters describing everything the fault layer did.
///
/// `overhead_frames` is the headline number: extra frames on the wire
/// (retransmissions, duplicate ghosts, heartbeats) that a reliable network
/// would not have carried. The authoritative [`Ledger`] never includes
/// them — it meters the logical protocol, the chaos layer meters the noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Server→source requests retransmitted after a timeout.
    pub retries: u64,
    /// Timeouts observed (one per dropped request frame).
    pub timeouts: u64,
    /// Frames rejected idempotently by epoch or sequence number.
    pub epoch_rejects: u64,
    /// Reports lost in the channel (or swallowed by a source outage).
    pub reports_lost: u64,
    /// Reports delayed for later, out-of-order delivery.
    pub reports_delayed: u64,
    /// Duplicate ghost frames injected.
    pub dup_frames: u64,
    /// Heartbeat frames emitted at quiescent rounds.
    pub heartbeats_sent: u64,
    /// Heartbeat frames lost in the channel.
    pub heartbeats_lost: u64,
    /// Source crash-restarts injected.
    pub crashes: u64,
    /// Sources re-probed by the repair path.
    pub repaired_sources: u64,
    /// Total extra frames beyond the logical protocol.
    pub overhead_frames: u64,
    /// Delivered heartbeats that refreshed a channel's lease.
    pub lease_renewals: u64,
    /// Leases that expired (sources newly declared dead).
    pub lease_expirations: u64,
    /// Lease expirations of sources that were actually up (their
    /// heartbeats were lost in the channel) — the false positives the
    /// adaptive lease exists to cut.
    pub spurious_expirations: u64,
    /// Chunk-end repair fan-outs charged as a single batched frame.
    pub repair_batches: u64,
    /// Request frames charged for chunk-end repair re-probes (one per
    /// gapped channel per round under per-channel charging; one per round
    /// under batched charging).
    pub repair_frames: u64,
}

/// Fate of one source→server report at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFate {
    /// Delivered in order; the caller should ingest it now.
    Deliver,
    /// Lost; the caller must not ingest it (the source still believes it
    /// reported — exactly the inconsistency the repair path exists for).
    Lost,
    /// Delayed; [`ChaosState::take_due_reports`] will surface it later.
    Parked,
}

/// Re-probe / degradation work discovered at a quiescent round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairPlan {
    /// Live sources that need a repair re-probe (sequence gap, restart, or
    /// lease rejoin).
    pub reprobe: Vec<StreamId>,
    /// Sources whose lease expired this round (newly dead).
    pub newly_dead: Vec<StreamId>,
}

impl RepairPlan {
    /// Whether the plan contains no work.
    pub fn is_empty(&self) -> bool {
        self.reprobe.is_empty() && self.newly_dead.is_empty()
    }
}

/// Per-source channel state (epoch / sequence / lease machine).
#[derive(Debug, Clone, Default)]
struct ChannelState {
    /// Epoch of the filter currently installed at the source.
    epoch: u64,
    /// Frames the source has sent (stamped on each report).
    send_seq: u64,
    /// Highest source frame the server has accepted or superseded.
    recv_seq: u64,
    /// Tick at which the server last heard from the source.
    last_heard: u64,
    /// The source is down (crash outage) until this tick.
    down_until: u64,
    /// This channel's current lease length. Pinned at the configured
    /// `lease_ticks` unless adaptive leases are on, in which case it grows
    /// and shrinks multiplicatively with observed heartbeat jitter, bounded
    /// by `[lease_ticks, lease_ticks × MAX_LEASE_FACTOR]`.
    lease_len: u64,
    /// The source restarted (or rejoined) and needs a repair re-probe.
    needs_repair: bool,
    /// Heartbeat arrived in the current quiescent round.
    heard_this_round: bool,
    /// Channel fully caught up as of the last completed round.
    verified: bool,
}

/// A report frame sitting in the simulated network.
#[derive(Debug, Clone)]
struct ParkedReport {
    due: u64,
    seq: u64,
    epoch: u64,
    id: StreamId,
    value: f64,
}

/// All channel state of the unreliable fleet plus the fault source.
#[derive(Debug, Clone)]
pub struct ChaosState {
    cfg: ChaosConfig,
    schedule: FaultSchedule,
    clock: TickClock,
    channels: Vec<ChannelState>,
    parked: Vec<ParkedReport>,
    stats: ChaosStats,
    dead: Vec<bool>,
    dead_count: usize,
    /// Lease lengths that changed this round (drained by the server into
    /// its `lease_len` histogram). Empty at every quiescent checkpoint.
    lease_samples: Vec<u64>,
    /// Set by the server around the chunk-end repair pass so the fleet
    /// decorator knows a `probe_many` is a repair fan-out. Transient —
    /// never set across a checkpoint.
    repair_window: bool,
}

impl ChaosState {
    /// Creates channel state for `n` sources.
    ///
    /// Channels start fully caught up: the server is expected to have
    /// initialized (probed the world) over a reliable channel before chaos
    /// is attached.
    pub fn new(n: usize, cfg: ChaosConfig) -> Self {
        let schedule = FaultSchedule::new(cfg.seed, cfg.mix, cfg.fault_horizon_ticks);
        let lease_len = cfg.lease_ticks;
        Self {
            cfg,
            schedule,
            clock: TickClock::new(),
            channels: vec![ChannelState { verified: true, lease_len, ..Default::default() }; n],
            parked: Vec::new(),
            stats: ChaosStats::default(),
            dead: vec![false; n],
            dead_count: 0,
            lease_samples: Vec::new(),
            repair_window: false,
        }
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether there are zero channels.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Current logical tick.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Advances the logical clock (one tick per ingested event by
    /// convention).
    pub fn advance(&mut self, ticks: u64) {
        self.clock.advance(ticks);
    }

    /// Whether the fault schedule can still produce faults.
    pub fn faults_active(&self) -> bool {
        self.schedule.active(self.clock.now())
    }

    /// Fault-layer counters so far.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Filter epoch currently installed at a source.
    pub fn epoch_of(&self, id: StreamId) -> u64 {
        self.channels[id.index()].epoch
    }

    /// Highest frame sequence the source has sent.
    pub fn send_seq_of(&self, id: StreamId) -> u64 {
        self.channels[id.index()].send_seq
    }

    /// Highest frame sequence the server has accounted for.
    pub fn recv_seq_of(&self, id: StreamId) -> u64 {
        self.channels[id.index()].recv_seq
    }

    /// Number of report frames still parked in the simulated network.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// A channel's current lease length in ticks (equals the configured
    /// `lease_ticks` unless adaptive leases have grown or shrunk it).
    pub fn lease_len_of(&self, id: StreamId) -> u64 {
        self.channels[id.index()].lease_len
    }

    /// Drains the lease lengths that changed since the last drain — the
    /// server feeds these into its `lease_len` histogram.
    pub fn drain_lease_samples(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.lease_samples)
    }

    /// Marks the start (`true`) / end (`false`) of a chunk-end repair
    /// pass: while set, and with [`ChaosConfig::batched_repair`] on, a
    /// `probe_many` through [`ChaosFleet`] is charged as one fan-out frame
    /// rather than one frame per channel.
    pub fn set_repair_window(&mut self, on: bool) {
        self.repair_window = on;
    }

    /// Number of sources currently considered dead (lease expired).
    pub fn dead_count(&self) -> usize {
        self.dead_count
    }

    /// Whether a source's lease has expired.
    pub fn is_dead(&self, id: StreamId) -> bool {
        self.dead[id.index()]
    }

    /// Ids of all currently-dead sources, ascending.
    pub fn dead_ids(&self) -> Vec<StreamId> {
        (0..self.dead.len()).filter(|&i| self.dead[i]).map(|i| StreamId(i as u32)).collect()
    }

    /// Whether the source's channel was fully caught up (heartbeat
    /// delivered, no sequence gap, not down, lease valid) as of the last
    /// completed quiescent round.
    ///
    /// The in-fault oracle checks tolerance bounds over exactly this
    /// population: these are the sources whose view entries the server can
    /// currently vouch for.
    pub fn is_verified(&self, id: StreamId) -> bool {
        self.channels[id.index()].verified
    }

    /// Ids of all verified-live sources, ascending.
    pub fn verified_live_ids(&self) -> Vec<StreamId> {
        (0..self.channels.len())
            .filter(|&i| self.channels[i].verified)
            .map(|i| StreamId(i as u32))
            .collect()
    }

    /// Admits one source→server report, stamping it with the channel's
    /// current `(epoch, seq)` and drawing its fate.
    pub fn admit_report(&mut self, id: StreamId, value: f64) -> ReportFate {
        let now = self.clock.now();
        let ch = &mut self.channels[id.index()];
        if now < ch.down_until {
            // The reporting process is down; the frame is never sent. The
            // value evolution itself continues (sensor hardware keeps
            // running) — only the channel is dark.
            self.stats.reports_lost += 1;
            return ReportFate::Lost;
        }
        ch.send_seq += 1;
        let (seq, epoch) = (ch.send_seq, ch.epoch);
        match self.schedule.draw(now) {
            FaultDecision::Drop => {
                self.stats.reports_lost += 1;
                ReportFate::Lost
            }
            FaultDecision::Delay(ticks) => {
                self.stats.reports_delayed += 1;
                self.parked.push(ParkedReport { due: now + ticks, seq, epoch, id, value });
                ReportFate::Parked
            }
            FaultDecision::Duplicate => {
                self.stats.dup_frames += 1;
                self.stats.overhead_frames += 1;
                // Ghost copy arrives shortly after; the sequence rule will
                // reject it.
                self.parked.push(ParkedReport { due: now + 1, seq, epoch, id, value });
                let ch = &mut self.channels[id.index()];
                ch.recv_seq = seq;
                ch.last_heard = now;
                ReportFate::Deliver
            }
            FaultDecision::Deliver => {
                let ch = &mut self.channels[id.index()];
                ch.recv_seq = seq;
                ch.last_heard = now;
                ReportFate::Deliver
            }
        }
    }

    /// Surfaces parked reports whose delivery tick has arrived, applying
    /// the epoch/sequence acceptance rule. Accepted `(id, value)` pairs are
    /// appended to `out` in deterministic `(due, id, seq)` order; stale and
    /// duplicate frames are rejected idempotently (and leave any sequence
    /// gap in place for the repair path to close).
    pub fn take_due_reports(&mut self, out: &mut Vec<(StreamId, f64)>) {
        out.clear();
        let now = self.clock.now();
        let mut due: Vec<ParkedReport> = Vec::new();
        self.parked.retain(|f| {
            if f.due <= now {
                due.push(f.clone());
                false
            } else {
                true
            }
        });
        due.sort_by_key(|f| (f.due, f.id.0, f.seq));
        for f in due {
            let ch = &mut self.channels[f.id.index()];
            if f.epoch == ch.epoch && f.seq > ch.recv_seq {
                ch.recv_seq = f.seq;
                ch.last_heard = now;
                out.push((f.id, f.value));
            } else {
                self.stats.epoch_rejects += 1;
            }
        }
    }

    /// Draws crash-restarts for this round (no-op once faults ceased).
    ///
    /// A crashed source goes dark for a bounded outage: its reports are
    /// swallowed, its heartbeats stop (so its lease eventually expires),
    /// and it is flagged for a repair re-probe once it is heard from again.
    pub fn draw_crashes(&mut self) {
        let now = self.clock.now();
        for i in 0..self.channels.len() {
            if now < self.channels[i].down_until {
                continue; // already down
            }
            if let Some(outage) = self.schedule.draw_crash(now) {
                self.stats.crashes += 1;
                let ch = &mut self.channels[i];
                ch.down_until = now + outage;
                ch.needs_repair = true;
                ch.verified = false;
            }
        }
    }

    /// Runs the heartbeat + lease round: every up source emits a heartbeat
    /// frame (fault-droppable, metered as overhead, never in the ledger)
    /// carrying its `send_seq` and restart flag. Returns the repair work
    /// the server must execute before calling [`ChaosState::finish_round`].
    pub fn heartbeat_round(&mut self) -> RepairPlan {
        let now = self.clock.now();
        let mut plan = RepairPlan::default();
        for i in 0..self.channels.len() {
            self.channels[i].heard_this_round = false;
            if now < self.channels[i].down_until {
                continue; // down: silent
            }
            self.stats.heartbeats_sent += 1;
            self.stats.overhead_frames += 1;
            let heard = match self.schedule.draw(now) {
                FaultDecision::Drop => {
                    self.stats.heartbeats_lost += 1;
                    false
                }
                FaultDecision::Duplicate => {
                    self.stats.overhead_frames += 1;
                    true
                }
                // A delayed heartbeat still lands well before the next
                // round; treat it as delivered for lease purposes.
                FaultDecision::Delay(_) | FaultDecision::Deliver => true,
            };
            if heard {
                let ch = &mut self.channels[i];
                if self.cfg.adaptive_lease {
                    // The gap since the last delivered frame is this
                    // channel's observed heartbeat jitter: a gap eating
                    // more than half the lease doubles it (up to the
                    // ceiling); a gap under an eighth halves it back
                    // toward the configured floor. Pure integer arithmetic
                    // on deterministic quantities — no clock, no RNG.
                    let gap = now.saturating_sub(ch.last_heard);
                    if gap.saturating_mul(2) > ch.lease_len {
                        let cap = self.cfg.lease_ticks.saturating_mul(MAX_LEASE_FACTOR);
                        let grown = ch.lease_len.saturating_mul(2).min(cap);
                        if grown != ch.lease_len {
                            ch.lease_len = grown;
                            self.lease_samples.push(grown);
                        }
                    } else if gap.saturating_mul(8) < ch.lease_len {
                        let shrunk = (ch.lease_len / 2).max(self.cfg.lease_ticks);
                        if shrunk != ch.lease_len {
                            ch.lease_len = shrunk;
                            self.lease_samples.push(shrunk);
                        }
                    }
                }
                self.stats.lease_renewals += 1;
                ch.last_heard = now;
                ch.heard_this_round = true;
            }
        }
        for i in 0..self.channels.len() {
            let id = StreamId(i as u32);
            let expired =
                now.saturating_sub(self.channels[i].last_heard) > self.channels[i].lease_len;
            if expired && !self.dead[i] {
                self.dead[i] = true;
                self.dead_count += 1;
                self.channels[i].verified = false;
                self.stats.lease_expirations += 1;
                if now >= self.channels[i].down_until {
                    // The source is up — only its heartbeats died in the
                    // channel. This expiration is a false positive.
                    self.stats.spurious_expirations += 1;
                }
                plan.newly_dead.push(id);
            } else if !expired && self.dead[i] {
                // Heard again: the source rejoins and must be re-probed.
                self.dead[i] = false;
                self.dead_count -= 1;
                self.channels[i].needs_repair = true;
            }
            let ch = &self.channels[i];
            if ch.heard_this_round
                && !self.dead[i]
                && (ch.needs_repair || ch.recv_seq < ch.send_seq)
            {
                plan.reprobe.push(id);
            }
        }
        self.stats.repaired_sources += plan.reprobe.len() as u64;
        plan
    }

    /// Recomputes verified-live flags after the round's repair work ran.
    pub fn finish_round(&mut self) {
        let now = self.clock.now();
        for (i, ch) in self.channels.iter_mut().enumerate() {
            ch.verified = !self.dead[i]
                && ch.heard_this_round
                && !ch.needs_repair
                && ch.recv_seq == ch.send_seq
                && now >= ch.down_until;
        }
    }

    /// Declares a resync boundary: the server is about to rebuild protocol
    /// state from fresh probes, so everything still in flight is
    /// superseded. Parked frames are discarded (they would all be rejected
    /// as stale anyway — the resync probes advance every channel's
    /// `recv_seq` past them).
    pub fn resync_boundary(&mut self) {
        self.parked.clear();
    }

    /// Charges the channel cost of one server→source request frame:
    /// timeouts + retries while the schedule drops it, clock advances for
    /// delays, idempotent rejection for duplicates. Returns once the frame
    /// is (finally) delivered; the caller then executes the real operation
    /// exactly once.
    fn charge_request(&mut self, id: StreamId, idempotent_dup: bool) {
        let down_until = self.channels[id.index()].down_until;
        if self.clock.now() < down_until {
            // Synchronous resolution: the server retries until the source
            // restarts, paying the outage in simulated time.
            self.stats.timeouts += 1;
            self.stats.retries += 1;
            self.stats.overhead_frames += 1;
            self.clock.advance_to(down_until);
        }
        let mut attempt: u32 = 0;
        loop {
            match self.schedule.draw(self.clock.now()) {
                FaultDecision::Deliver => break,
                FaultDecision::Delay(ticks) => {
                    self.clock.advance(ticks);
                    break;
                }
                FaultDecision::Duplicate => {
                    // The request arrives twice; the source executes once
                    // and rejects the ghost by epoch/sequence.
                    self.stats.overhead_frames += 1;
                    if idempotent_dup {
                        self.stats.epoch_rejects += 1;
                    }
                    break;
                }
                FaultDecision::Drop => {
                    self.stats.timeouts += 1;
                    self.stats.retries += 1;
                    self.stats.overhead_frames += 1;
                    self.clock.advance(self.cfg.timeout_ticks + self.cfg.backoff.delay(attempt));
                    attempt += 1;
                    if attempt >= self.cfg.max_retries {
                        break; // force delivery; keeps handlers bounded
                    }
                }
            }
        }
    }

    /// Bookkeeping after a probe reply: the reply supersedes every frame
    /// still in flight from this source, refreshes the lease, clears any
    /// pending repair flag — and, being proof of life, revives a
    /// lease-expired source on the spot (no rejoin re-probe needed: this
    /// reply already carried fresh state).
    fn on_probed(&mut self, id: StreamId) {
        let now = self.clock.now();
        let i = id.index();
        if self.dead[i] {
            self.dead[i] = false;
            self.dead_count -= 1;
        }
        let ch = &mut self.channels[i];
        ch.recv_seq = ch.send_seq;
        ch.last_heard = now;
        ch.needs_repair = false;
    }

    /// Bookkeeping after an install ack: bumps the filter epoch (staling
    /// every in-flight report produced under the old filter) and refreshes
    /// the lease. A sync reply additionally supersedes in-flight frames.
    fn on_installed(&mut self, id: StreamId, synced: bool) {
        let now = self.clock.now();
        let ch = &mut self.channels[id.index()];
        ch.epoch += 1;
        ch.last_heard = now;
        if synced {
            ch.recv_seq = ch.send_seq;
        }
    }

    /// Serializes the complete machine — config, fault-RNG words, logical
    /// clock, every channel, the parked-frame pool, the dead set, and all
    /// counters — into `w`. The record is self-describing (the config
    /// travels with the state), so [`ChaosState::decode`] needs no
    /// out-of-band [`ChaosConfig`].
    ///
    /// The transient `repair_window` flag is deliberately not recorded:
    /// checkpoints only ever happen at quiescent points, outside any repair
    /// pass.
    pub fn encode(&self, w: &mut StateWriter) {
        w.put_u8(CHAOS_STATE_VERSION);
        // Config.
        w.put_u64(self.cfg.seed);
        w.put_f64(self.cfg.mix.drop_p);
        w.put_f64(self.cfg.mix.delay_p);
        w.put_f64(self.cfg.mix.dup_p);
        w.put_f64(self.cfg.mix.crash_p);
        w.put_u64(self.cfg.mix.max_delay_ticks);
        w.put_u64(self.cfg.mix.max_outage_ticks);
        w.put_u64(self.cfg.fault_horizon_ticks);
        w.put_u64(self.cfg.lease_ticks);
        w.put_u64(self.cfg.timeout_ticks);
        w.put_u64(self.cfg.backoff.base());
        w.put_u64(self.cfg.backoff.cap());
        w.put_u32(self.cfg.max_retries);
        w.put_bool(self.cfg.adaptive_lease);
        w.put_bool(self.cfg.batched_repair);
        // Fault-RNG resume point and logical clock.
        for word in self.schedule.rng_state() {
            w.put_u64(word);
        }
        w.put_u64(self.clock.now());
        // Channels.
        w.put_u64(self.channels.len() as u64);
        for ch in &self.channels {
            w.put_u64(ch.epoch);
            w.put_u64(ch.send_seq);
            w.put_u64(ch.recv_seq);
            w.put_u64(ch.last_heard);
            w.put_u64(ch.down_until);
            w.put_u64(ch.lease_len);
            w.put_bool(ch.needs_repair);
            w.put_bool(ch.heard_this_round);
            w.put_bool(ch.verified);
        }
        // Parked frames (in pool order — order is state: `take_due_reports`
        // sorts due frames, but `retain` preserves pool order for the rest).
        w.put_u64(self.parked.len() as u64);
        for f in &self.parked {
            w.put_u64(f.due);
            w.put_u64(f.seq);
            w.put_u64(f.epoch);
            w.put_u32(f.id.0);
            w.put_f64(f.value);
        }
        // Dead bitmap (dead_count is recomputed on decode).
        for &d in &self.dead {
            w.put_bool(d);
        }
        // Counters.
        w.put_u64(self.stats.retries);
        w.put_u64(self.stats.timeouts);
        w.put_u64(self.stats.epoch_rejects);
        w.put_u64(self.stats.reports_lost);
        w.put_u64(self.stats.reports_delayed);
        w.put_u64(self.stats.dup_frames);
        w.put_u64(self.stats.heartbeats_sent);
        w.put_u64(self.stats.heartbeats_lost);
        w.put_u64(self.stats.crashes);
        w.put_u64(self.stats.repaired_sources);
        w.put_u64(self.stats.overhead_frames);
        w.put_u64(self.stats.lease_renewals);
        w.put_u64(self.stats.lease_expirations);
        w.put_u64(self.stats.spurious_expirations);
        w.put_u64(self.stats.repair_batches);
        w.put_u64(self.stats.repair_frames);
        // Undrained lease samples (empty at server checkpoints, which drain
        // every round, but the record is complete regardless).
        w.put_u64(self.lease_samples.len() as u64);
        for &s in &self.lease_samples {
            w.put_u64(s);
        }
    }

    /// Decodes a record written by [`ChaosState::encode`], rebuilding the
    /// fault schedule mid-stream from the persisted RNG words so the
    /// decision sequence continues byte-identically.
    ///
    /// Every field that a constructor would assert on (fault probabilities,
    /// backoff shape, lease bounds) is validated here first and surfaces as
    /// [`PersistError::Corrupt`] — bytes off a disk must never panic.
    pub fn decode(r: &mut StateReader<'_>) -> asf_persist::Result<Self> {
        if r.get_u8()? != CHAOS_STATE_VERSION {
            return Err(PersistError::corrupt("unknown chaos-state version"));
        }
        let seed = r.get_u64()?;
        let mix = FaultMix {
            drop_p: r.get_f64()?,
            delay_p: r.get_f64()?,
            dup_p: r.get_f64()?,
            crash_p: r.get_f64()?,
            max_delay_ticks: r.get_u64()?,
            max_outage_ticks: r.get_u64()?,
        };
        let prob_ok = |p: f64| (0.0..=1.0).contains(&p);
        if !(prob_ok(mix.drop_p)
            && prob_ok(mix.delay_p)
            && prob_ok(mix.dup_p)
            && prob_ok(mix.crash_p)
            && prob_ok(mix.drop_p + mix.delay_p + mix.dup_p))
        {
            return Err(PersistError::corrupt("chaos fault probabilities out of range"));
        }
        if (mix.delay_p > 0.0 && mix.max_delay_ticks == 0)
            || (mix.crash_p > 0.0 && mix.max_outage_ticks == 0)
        {
            return Err(PersistError::corrupt("chaos fault bounds inconsistent"));
        }
        let fault_horizon_ticks = r.get_u64()?;
        let lease_ticks = r.get_u64()?;
        let timeout_ticks = r.get_u64()?;
        let (backoff_base, backoff_cap) = (r.get_u64()?, r.get_u64()?);
        if backoff_base == 0 || backoff_cap < backoff_base {
            return Err(PersistError::corrupt("chaos backoff malformed"));
        }
        let cfg = ChaosConfig {
            seed,
            mix,
            fault_horizon_ticks,
            lease_ticks,
            timeout_ticks,
            backoff: Backoff::new(backoff_base, backoff_cap),
            max_retries: r.get_u32()?,
            adaptive_lease: r.get_bool()?,
            batched_repair: r.get_bool()?,
        };
        let rng_words = [r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?];
        let schedule = FaultSchedule::resume(rng_words, mix, fault_horizon_ticks);
        let now = r.get_u64()?;
        let mut clock = TickClock::new();
        clock.advance_to(now);
        let n = r.get_u64()? as usize;
        let lease_cap = lease_ticks.saturating_mul(MAX_LEASE_FACTOR);
        let mut channels = Vec::with_capacity(n);
        for _ in 0..n {
            let ch = ChannelState {
                epoch: r.get_u64()?,
                send_seq: r.get_u64()?,
                recv_seq: r.get_u64()?,
                last_heard: r.get_u64()?,
                down_until: r.get_u64()?,
                lease_len: r.get_u64()?,
                needs_repair: r.get_bool()?,
                heard_this_round: r.get_bool()?,
                verified: r.get_bool()?,
            };
            if ch.lease_len < lease_ticks || ch.lease_len > lease_cap {
                return Err(PersistError::corrupt("chaos lease length out of bounds"));
            }
            channels.push(ch);
        }
        let parked_len = r.get_u64()? as usize;
        let mut parked = Vec::with_capacity(parked_len);
        for _ in 0..parked_len {
            parked.push(ParkedReport {
                due: r.get_u64()?,
                seq: r.get_u64()?,
                epoch: r.get_u64()?,
                id: StreamId(r.get_u32()?),
                value: r.get_f64()?,
            });
        }
        let mut dead = Vec::with_capacity(n);
        for _ in 0..n {
            dead.push(r.get_bool()?);
        }
        let dead_count = dead.iter().filter(|&&d| d).count();
        let stats = ChaosStats {
            retries: r.get_u64()?,
            timeouts: r.get_u64()?,
            epoch_rejects: r.get_u64()?,
            reports_lost: r.get_u64()?,
            reports_delayed: r.get_u64()?,
            dup_frames: r.get_u64()?,
            heartbeats_sent: r.get_u64()?,
            heartbeats_lost: r.get_u64()?,
            crashes: r.get_u64()?,
            repaired_sources: r.get_u64()?,
            overhead_frames: r.get_u64()?,
            lease_renewals: r.get_u64()?,
            lease_expirations: r.get_u64()?,
            spurious_expirations: r.get_u64()?,
            repair_batches: r.get_u64()?,
            repair_frames: r.get_u64()?,
        };
        let samples_len = r.get_u64()? as usize;
        let mut lease_samples = Vec::with_capacity(samples_len);
        for _ in 0..samples_len {
            lease_samples.push(r.get_u64()?);
        }
        Ok(Self {
            cfg,
            schedule,
            clock,
            channels,
            parked,
            stats,
            dead,
            dead_count,
            lease_samples,
            repair_window: false,
        })
    }
}

/// Fault-injecting [`FleetOps`] decorator.
///
/// Wraps any backend (the real [`crate::fleet::SourceFleet`], or the
/// server's shard router) and charges every server→source operation through
/// the unreliable channel before executing it exactly once on the inner
/// backend. Reports are **not** intercepted here — report routing is owned
/// by the caller (the server's drain path), which admits them through
/// [`ChaosState::admit_report`]; `deliver` is therefore transparent.
pub struct ChaosFleet<'a> {
    state: &'a mut ChaosState,
    inner: &'a mut dyn FleetOps,
}

impl<'a> ChaosFleet<'a> {
    /// Wraps `inner` with the given channel state.
    ///
    /// # Panics
    ///
    /// Panics if the channel count does not match the fleet size.
    pub fn new(state: &'a mut ChaosState, inner: &'a mut dyn FleetOps) -> Self {
        assert_eq!(state.len(), inner.len(), "chaos channel count != fleet size");
        Self { state, inner }
    }
}

impl FleetOps for ChaosFleet<'_> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn deliver(
        &mut self,
        id: StreamId,
        value: f64,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        // Report faulting lives in `ChaosState::admit_report`, owned by the
        // component that routes reports; the decorator stays transparent so
        // it composes with any delivery path.
        self.inner.deliver(id, value, ledger, view)
    }

    fn probe(&mut self, id: StreamId, ledger: &mut Ledger, view: &mut ServerView) -> f64 {
        self.state.charge_request(id, false);
        let v = self.inner.probe(id, ledger, view);
        self.state.on_probed(id);
        v
    }

    fn probe_all(&mut self, ledger: &mut Ledger, view: &mut ServerView) {
        for i in 0..self.inner.len() {
            self.state.charge_request(StreamId(i as u32), false);
        }
        self.inner.probe_all(ledger, view);
        for i in 0..self.inner.len() {
            self.state.on_probed(StreamId(i as u32));
        }
    }

    fn probe_all_tracked(
        &mut self,
        ledger: &mut Ledger,
        view: &mut ServerView,
        changed: &mut Vec<StreamId>,
    ) {
        for i in 0..self.inner.len() {
            self.state.charge_request(StreamId(i as u32), false);
        }
        self.inner.probe_all_tracked(ledger, view, changed);
        for i in 0..self.inner.len() {
            self.state.on_probed(StreamId(i as u32));
        }
    }

    fn probe_many(
        &mut self,
        ids: &[StreamId],
        ledger: &mut Ledger,
        view: &mut ServerView,
        out: &mut Vec<f64>,
    ) {
        if self.state.repair_window && self.state.cfg.batched_repair && !ids.is_empty() {
            // Inside a chunk-end repair pass the whole gap list ships as
            // one fan-out frame (like a broadcast) instead of one request
            // per gapped channel.
            self.state.charge_request(ids[0], false);
            self.state.stats.repair_batches += 1;
            self.state.stats.repair_frames += 1;
        } else {
            for &id in ids {
                self.state.charge_request(id, false);
            }
            if self.state.repair_window {
                self.state.stats.repair_frames += ids.len() as u64;
            }
        }
        self.inner.probe_many(ids, ledger, view, out);
        for &id in ids {
            self.state.on_probed(id);
        }
    }

    fn install(
        &mut self,
        id: StreamId,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Option<f64> {
        self.state.charge_request(id, true);
        let sync = self.inner.install(id, filter, ledger, view);
        self.state.on_installed(id, sync.is_some());
        sync
    }

    fn install_many(
        &mut self,
        installs: &[(StreamId, Filter)],
        ledger: &mut Ledger,
        view: &mut ServerView,
        syncs: &mut Vec<(StreamId, f64)>,
    ) {
        for (id, _) in installs {
            self.state.charge_request(*id, true);
        }
        self.inner.install_many(installs, ledger, view, syncs);
        let synced: Vec<StreamId> = syncs.iter().map(|(id, _)| *id).collect();
        for (id, _) in installs {
            self.state.on_installed(*id, synced.contains(id));
        }
    }

    fn broadcast(
        &mut self,
        filter: Filter,
        ledger: &mut Ledger,
        view: &mut ServerView,
    ) -> Vec<(StreamId, f64)> {
        // A broadcast is one fan-out frame at the channel layer: charge it
        // once rather than per source.
        if !self.state.is_empty() {
            self.state.charge_request(StreamId(0), true);
        }
        let syncs = self.inner.broadcast(filter, ledger, view);
        for i in 0..self.inner.len() {
            let id = StreamId(i as u32);
            let synced = syncs.iter().any(|(s, _)| *s == id);
            self.state.on_installed(id, synced);
        }
        syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::SourceFleet;

    fn fleet3() -> (SourceFleet, Ledger, ServerView) {
        let fleet = SourceFleet::from_values(&[1.0, 2.0, 3.0]);
        let ledger = Ledger::new();
        let view = ServerView::new(3);
        (fleet, ledger, view)
    }

    fn reliable_state(n: usize) -> ChaosState {
        ChaosState::new(n, ChaosConfig::new(1, FaultMix::none(), 0))
    }

    #[test]
    fn transparent_when_reliable() {
        let (mut fleet, mut ledger, mut view) = fleet3();
        let mut state = reliable_state(3);
        let mut chaos = ChaosFleet::new(&mut state, &mut fleet);
        chaos.probe_all(&mut ledger, &mut view);
        let v = chaos.probe(StreamId(1), &mut ledger, &mut view);
        assert_eq!(v, 2.0);
        assert_eq!(ledger.total(), 8); // 2n + 2 probe messages, nothing else
        assert_eq!(state.stats(), &ChaosStats::default());
    }

    #[test]
    fn install_bumps_epoch_monotonically() {
        let (mut fleet, mut ledger, mut view) = fleet3();
        let mut state = reliable_state(3);
        let mut chaos = ChaosFleet::new(&mut state, &mut fleet);
        chaos.probe_all(&mut ledger, &mut view);
        for k in 1..=5u64 {
            chaos.install(StreamId(0), Filter::wildcard(), &mut ledger, &mut view);
            assert_eq!(chaos.state.epoch_of(StreamId(0)), k);
        }
        assert_eq!(state.epoch_of(StreamId(1)), 0);
    }

    #[test]
    fn dropped_requests_retry_and_still_execute_once() {
        let (mut fleet, mut ledger, mut view) = fleet3();
        // 60% drop, faults active for a long horizon.
        let cfg = ChaosConfig::new(7, FaultMix::loss_only(0.6), u64::MAX);
        let mut state = ChaosState::new(3, cfg);
        let mut chaos = ChaosFleet::new(&mut state, &mut fleet);
        chaos.probe_all(&mut ledger, &mut view);
        // Ledger sees exactly the logical probes despite retries.
        assert_eq!(ledger.total(), 6);
        assert!(state.stats().retries > 0);
        assert_eq!(state.stats().retries, state.stats().timeouts);
        assert!(state.now() > 0, "timeouts must consume simulated time");
    }

    #[test]
    fn report_admission_stamps_and_rejects_stale_epochs() {
        let (mut fleet, mut ledger, mut view) = fleet3();
        // Delay every report so it parks.
        let mix = FaultMix { delay_p: 1.0, max_delay_ticks: 4, ..FaultMix::none() };
        let mut state = ChaosState::new(3, ChaosConfig::new(3, mix, u64::MAX));
        assert_eq!(state.admit_report(StreamId(0), 9.0), ReportFate::Parked);
        assert_eq!(state.parked_len(), 1);
        // An install under a new epoch stales the parked frame.
        {
            let mut chaos = ChaosFleet::new(&mut state, &mut fleet);
            chaos.install(StreamId(0), Filter::wildcard(), &mut ledger, &mut view);
        }
        state.advance(10);
        let mut out = Vec::new();
        state.take_due_reports(&mut out);
        assert!(out.is_empty(), "stale-epoch frame must be rejected");
        assert_eq!(state.stats().epoch_rejects, 1);
        // The sequence gap survives rejection so repair can detect it...
        assert!(state.recv_seq_of(StreamId(0)) < state.send_seq_of(StreamId(0)));
    }

    #[test]
    fn duplicates_deliver_once() {
        let mix = FaultMix { dup_p: 1.0, ..FaultMix::none() };
        let mut state = ChaosState::new(1, ChaosConfig::new(5, mix, u64::MAX));
        assert_eq!(state.admit_report(StreamId(0), 4.0), ReportFate::Deliver);
        state.advance(5);
        let mut out = Vec::new();
        state.take_due_reports(&mut out);
        assert!(out.is_empty(), "ghost duplicate must be rejected by sequence");
        assert_eq!(state.stats().epoch_rejects, 1);
        assert_eq!(state.recv_seq_of(StreamId(0)), state.send_seq_of(StreamId(0)));
    }

    #[test]
    fn delayed_reports_deliver_in_order_once_due() {
        let mix = FaultMix { delay_p: 1.0, max_delay_ticks: 8, ..FaultMix::none() };
        let mut state = ChaosState::new(2, ChaosConfig::new(11, mix, u64::MAX));
        assert_eq!(state.admit_report(StreamId(0), 1.0), ReportFate::Parked);
        assert_eq!(state.admit_report(StreamId(0), 2.0), ReportFate::Parked);
        assert_eq!(state.admit_report(StreamId(1), 3.0), ReportFate::Parked);
        state.advance(100);
        let mut out = Vec::new();
        state.take_due_reports(&mut out);
        // Frames surface deterministically; per source, sequence order wins
        // and every accepted frame advances recv_seq.
        assert_eq!(state.recv_seq_of(StreamId(0)), 2);
        assert_eq!(state.recv_seq_of(StreamId(1)), 1);
        assert!(!out.is_empty());
        assert_eq!(state.parked_len(), 0);
    }

    #[test]
    fn newer_frame_supersedes_older_parked_one() {
        // Frame 1 parks with a long delay; frame 2 delivers immediately.
        let mix = FaultMix { delay_p: 0.5, max_delay_ticks: 50, ..FaultMix::none() };
        let mut state = ChaosState::new(1, ChaosConfig::new(0, mix, u64::MAX));
        let mut fates = Vec::new();
        for k in 0..20 {
            fates.push(state.admit_report(StreamId(0), k as f64));
        }
        assert!(fates.contains(&ReportFate::Parked) && fates.contains(&ReportFate::Deliver));
        state.advance(1000);
        let mut out = Vec::new();
        state.take_due_reports(&mut out);
        // Every parked frame older than the last direct delivery is
        // rejected; recv_seq never regresses.
        assert_eq!(state.recv_seq_of(StreamId(0)), state.send_seq_of(StreamId(0)));
    }

    #[test]
    fn heartbeat_round_detects_gap_and_schedules_reprobe() {
        let mut state = ChaosState::new(2, ChaosConfig::new(2, FaultMix::loss_only(1.0), 100));
        // A lost report leaves a gap.
        assert_eq!(state.admit_report(StreamId(1), 5.0), ReportFate::Lost);
        // Past the horizon the heartbeat itself is reliable.
        state.advance(200);
        state.draw_crashes();
        let plan = state.heartbeat_round();
        assert_eq!(plan.reprobe, vec![StreamId(1)]);
        assert!(plan.newly_dead.is_empty());
        // Before the repair probe the channel is not verified.
        state.finish_round();
        assert!(!state.is_verified(StreamId(1)));
        assert!(state.is_verified(StreamId(0)));
        state.on_probed(StreamId(1));
        state.finish_round();
        assert!(state.is_verified(StreamId(1)));
    }

    #[test]
    fn lease_expiry_marks_dead_and_revives_on_heartbeat() {
        let cfg = ChaosConfig::new(4, FaultMix::loss_only(1.0), 10_000).lease_ticks(50);
        let mut state = ChaosState::new(1, cfg);
        // All heartbeats drop while faults are active; lease expires.
        state.advance(100);
        let plan = state.heartbeat_round();
        assert_eq!(plan.newly_dead, vec![StreamId(0)]);
        assert_eq!(state.dead_count(), 1);
        assert!(state.is_dead(StreamId(0)));
        state.finish_round();
        assert!(!state.is_verified(StreamId(0)));
        // Faults cease; the next heartbeat revives the source and schedules
        // a rejoin re-probe.
        state.advance(20_000);
        let plan = state.heartbeat_round();
        assert_eq!(state.dead_count(), 0);
        assert_eq!(plan.reprobe, vec![StreamId(0)]);
        assert!(plan.newly_dead.is_empty());
    }

    #[test]
    fn crash_goes_dark_then_needs_repair() {
        let mix = FaultMix { crash_p: 1.0, max_outage_ticks: 30, ..FaultMix::none() };
        let mut state = ChaosState::new(1, ChaosConfig::new(6, mix, 100).lease_ticks(10_000));
        state.draw_crashes();
        assert_eq!(state.stats().crashes, 1);
        // Reports during the outage are swallowed without a sequence bump.
        let seq_before = state.send_seq_of(StreamId(0));
        assert_eq!(state.admit_report(StreamId(0), 1.0), ReportFate::Lost);
        assert_eq!(state.send_seq_of(StreamId(0)), seq_before);
        // Down sources emit no heartbeat.
        let plan = state.heartbeat_round();
        assert!(plan.reprobe.is_empty());
        // After the outage (and past the fault horizon) the restart is
        // heard and repair is scheduled.
        state.advance(200);
        let plan = state.heartbeat_round();
        assert_eq!(plan.reprobe, vec![StreamId(0)]);
    }

    #[test]
    fn probing_down_source_blocks_until_restart() {
        let (mut fleet, mut ledger, mut view) = fleet3();
        let mix = FaultMix { crash_p: 1.0, max_outage_ticks: 40, ..FaultMix::none() };
        let mut state = ChaosState::new(3, ChaosConfig::new(9, mix, 100));
        state.draw_crashes();
        let before = state.now();
        let mut chaos = ChaosFleet::new(&mut state, &mut fleet);
        chaos.probe(StreamId(0), &mut ledger, &mut view);
        assert!(state.now() > before, "probe must wait out the outage");
        assert!(state.stats().timeouts >= 1);
    }

    #[test]
    fn resync_boundary_discards_in_flight_frames() {
        let mix = FaultMix { delay_p: 1.0, max_delay_ticks: 100, ..FaultMix::none() };
        let mut state = ChaosState::new(1, ChaosConfig::new(8, mix, u64::MAX));
        state.admit_report(StreamId(0), 1.0);
        assert_eq!(state.parked_len(), 1);
        state.resync_boundary();
        assert_eq!(state.parked_len(), 0);
    }

    /// Runs a fixed chaotic op sequence and returns a digest of every
    /// observable outcome, so two states can be compared step-by-step.
    fn drive(state: &mut ChaosState, rounds: usize) -> Vec<(usize, usize, usize)> {
        let mut digest = Vec::new();
        let mut out = Vec::new();
        for r in 0..rounds {
            for i in 0..state.len() {
                let fate = state.admit_report(StreamId(i as u32), (r * 10 + i) as f64);
                digest.push((i, fate as usize, 0));
            }
            state.advance(7);
            state.draw_crashes();
            let plan = state.heartbeat_round();
            for &id in &plan.reprobe {
                state.on_probed(id);
            }
            state.finish_round();
            state.take_due_reports(&mut out);
            digest.push((plan.reprobe.len(), plan.newly_dead.len(), out.len()));
        }
        digest
    }

    #[test]
    fn codec_round_trip_resumes_exact_stream() {
        let mix = FaultMix {
            drop_p: 0.2,
            delay_p: 0.2,
            dup_p: 0.1,
            crash_p: 0.05,
            max_delay_ticks: 16,
            max_outage_ticks: 50,
        };
        let cfg = ChaosConfig::new(0xD0C0, mix, u64::MAX).lease_ticks(64);
        let mut original = ChaosState::new(4, cfg);
        drive(&mut original, 40);

        let mut w = StateWriter::new();
        original.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let mut restored = ChaosState::decode(&mut r).expect("decode");
        r.finish().expect("record fully consumed");

        assert_eq!(restored.now(), original.now());
        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.parked_len(), original.parked_len());
        assert_eq!(restored.dead_count(), original.dead_count());
        // The fault-decision stream continues identically on both copies.
        assert_eq!(drive(&mut original, 40), drive(&mut restored, 40));
        assert_eq!(restored.stats(), original.stats());
        for i in 0..original.len() {
            let id = StreamId(i as u32);
            assert_eq!(restored.epoch_of(id), original.epoch_of(id));
            assert_eq!(restored.send_seq_of(id), original.send_seq_of(id));
            assert_eq!(restored.recv_seq_of(id), original.recv_seq_of(id));
            assert_eq!(restored.lease_len_of(id), original.lease_len_of(id));
            assert_eq!(restored.is_dead(id), original.is_dead(id));
            assert_eq!(restored.is_verified(id), original.is_verified(id));
        }
    }

    #[test]
    fn decode_rejects_corrupt_records() {
        let mut state = ChaosState::new(2, ChaosConfig::new(1, FaultMix::loss_only(0.5), 100));
        drive(&mut state, 5);
        let mut w = StateWriter::new();
        state.encode(&mut w);
        let bytes = w.into_bytes();

        // Unknown version byte.
        let mut bad = bytes.clone();
        bad[0] = CHAOS_STATE_VERSION + 1;
        assert!(ChaosState::decode(&mut StateReader::new(&bad)).is_err());

        // Overfull drop probability (bytes 9..17 hold drop_p's raw bits)
        // must surface as corruption, not a constructor panic.
        let mut bad = bytes.clone();
        bad[9..17].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert!(ChaosState::decode(&mut StateReader::new(&bad)).is_err());

        // Truncation anywhere must error, never panic.
        for cut in [1, 40, bytes.len() / 2, bytes.len() - 1] {
            assert!(ChaosState::decode(&mut StateReader::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn adaptive_lease_grows_and_shrinks_within_bounds() {
        let cfg = ChaosConfig::new(12, FaultMix::none(), 0).lease_ticks(4);
        let mut state = ChaosState::new(1, cfg);
        let id = StreamId(0);
        assert_eq!(state.lease_len_of(id), 4);
        // Huge heartbeat gaps double the lease each round, pinned at the
        // ceiling.
        for _ in 0..10 {
            state.advance(1_000);
            state.heartbeat_round();
            state.finish_round();
        }
        assert_eq!(state.lease_len_of(id), 4 * MAX_LEASE_FACTOR);
        // Tight heartbeats shrink it back down. The shrink rule's
        // hysteresis (`gap × 8 < lease`) settles at one doubling above the
        // floor rather than oscillating on it.
        for _ in 0..10 {
            state.advance(1);
            state.heartbeat_round();
            state.finish_round();
        }
        assert_eq!(state.lease_len_of(id), 8);
        assert!(state.stats().lease_renewals >= 20);
        assert!(!state.drain_lease_samples().is_empty());
        assert!(state.drain_lease_samples().is_empty(), "drain must empty the buffer");
    }

    #[test]
    fn fixed_lease_baseline_never_adapts() {
        let cfg = ChaosConfig::new(12, FaultMix::none(), 0).lease_ticks(4).adaptive_lease(false);
        let mut state = ChaosState::new(1, cfg);
        for _ in 0..10 {
            state.advance(1_000);
            state.heartbeat_round();
        }
        assert_eq!(state.lease_len_of(StreamId(0)), 4);
        assert!(state.drain_lease_samples().is_empty());
    }

    #[test]
    fn lost_heartbeat_expiry_counts_as_spurious() {
        // The source is up the whole time — only its heartbeats drop — so
        // the expiration is a false positive.
        let cfg = ChaosConfig::new(4, FaultMix::loss_only(1.0), 10_000).lease_ticks(50);
        let mut state = ChaosState::new(1, cfg);
        state.advance(100);
        let plan = state.heartbeat_round();
        assert_eq!(plan.newly_dead, vec![StreamId(0)]);
        assert_eq!(state.stats().lease_expirations, 1);
        assert_eq!(state.stats().spurious_expirations, 1);
    }

    #[test]
    fn batched_repair_charges_one_frame_per_pass() {
        let ids: Vec<StreamId> = (0..3u32).map(StreamId).collect();
        for (batched, want_frames, want_batches) in [(true, 1, 1), (false, 3, 0)] {
            let (mut fleet, mut ledger, mut view) = fleet3();
            let cfg = ChaosConfig::new(1, FaultMix::none(), 0).batched_repair(batched);
            let mut state = ChaosState::new(3, cfg);
            let mut out = Vec::new();
            state.set_repair_window(true);
            {
                let mut chaos = ChaosFleet::new(&mut state, &mut fleet);
                chaos.probe_many(&ids, &mut ledger, &mut view, &mut out);
            }
            state.set_repair_window(false);
            assert_eq!(state.stats().repair_frames, want_frames, "batched={batched}");
            assert_eq!(state.stats().repair_batches, want_batches, "batched={batched}");
            // Outside the repair window a probe_many is an ordinary
            // per-channel fan-out and never touches the repair counters.
            {
                let mut chaos = ChaosFleet::new(&mut state, &mut fleet);
                chaos.probe_many(&ids, &mut ledger, &mut view, &mut out);
            }
            assert_eq!(state.stats().repair_frames, want_frames);
            assert_eq!(state.stats().repair_batches, want_batches);
            // Per-channel bookkeeping is identical in both modes.
            for &id in &ids {
                assert_eq!(state.recv_seq_of(id), state.send_seq_of(id));
            }
        }
    }
}
