//! Filter-constraint semantics (paper §3.1).
//!
//! A filter constraint is a closed interval `[l, u]`. With `V'` the last
//! reported value and `V` the current value, the constraint is **violated**
//! iff exactly one of `V'`, `V` lies in `[l, u]` — i.e. the value crossed the
//! boundary — and only then does the source send an update.

use std::sync::Arc;

use asf_persist::{PersistError, StateReader, StateWriter};

/// An adaptive filter installed at a stream source.
///
/// `ReportAll` models the no-filter case ("if no filter is installed at a
/// stream, all updates from the stream are reported"). `Interval` carries the
/// closed interval; the endpoints may be infinite:
///
/// * `Filter::wildcard()` = `[-∞, ∞]` contains every value, so it is never
///   violated — the source is effectively **shut down**. The paper calls
///   these *false positive filters* (FT-NRP Initialization, step 4(I)).
/// * `Filter::suppress()` = `[∞, ∞]` contains no finite value, so it is never
///   violated either — also silent. The paper's *false negative filters*
///   (step 5(I)). Keeping the two distinct matters only for bookkeeping; the
///   wire behaviour (silence) is identical, exactly as in the paper.
///
/// `Cells` is this library's multi-query extension (paper §7): the source
/// holds the whole sorted *cut table* of every standing query's membership
/// boundaries and reports exactly when its value crosses **any** cut —
/// equivalent to reinstalling the elementary-interval filter after every
/// report, but with zero reinstallation messages. The table is installed
/// once (one `FilterInstall` message; a real deployment would ship the
/// table as one payload).
#[derive(Clone, Debug, PartialEq)]
pub enum Filter {
    /// No filter: every update is reported.
    ReportAll,
    /// Closed interval constraint `[lo, hi]`.
    Interval {
        /// Lower bound (may be `-∞`).
        lo: f64,
        /// Upper bound (may be `+∞`).
        hi: f64,
    },
    /// Source-resident cut table: violated when the value crosses any cut.
    Cells(Arc<[f64]>),
}

impl Filter {
    /// Creates an interval filter `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if either bound is NaN or if `lo > hi` (except the special
    /// `[∞, ∞]` / `[-∞, -∞]` empty filters, which are equal-endpoint and thus
    /// allowed by `lo <= hi`).
    pub fn interval(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "filter bounds must not be NaN");
        assert!(lo <= hi, "filter requires lo <= hi, got [{lo}, {hi}]");
        Filter::Interval { lo, hi }
    }

    /// The paper's `[-∞, ∞]` false-positive filter: contains everything,
    /// never reports.
    pub fn wildcard() -> Self {
        Filter::Interval { lo: f64::NEG_INFINITY, hi: f64::INFINITY }
    }

    /// The paper's `[∞, ∞]` false-negative filter: contains no finite value,
    /// never reports.
    pub fn suppress() -> Self {
        Filter::Interval { lo: f64::INFINITY, hi: f64::INFINITY }
    }

    /// A source-resident cut table (multi-query extension). `cuts` must be
    /// sorted ascending and free of NaN.
    ///
    /// # Panics
    ///
    /// Panics if `cuts` is unsorted or contains NaN.
    pub fn cells(cuts: Arc<[f64]>) -> Self {
        assert!(
            cuts.windows(2).all(|w| w[0] <= w[1]) && cuts.iter().all(|c| !c.is_nan()),
            "cut table must be sorted and NaN-free"
        );
        Filter::Cells(cuts)
    }

    /// Index of the elementary cell containing `v` (for `Cells` filters):
    /// the number of cuts `<= v`.
    fn cell_index(cuts: &[f64], v: f64) -> usize {
        cuts.partition_point(|&c| c <= v)
    }

    /// Whether this is the `[-∞, ∞]` wildcard.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, Filter::Interval { lo, hi }
            if *lo == f64::NEG_INFINITY && *hi == f64::INFINITY)
    }

    /// Whether this is the `[∞, ∞]` suppressor.
    pub fn is_suppress(&self) -> bool {
        matches!(self, Filter::Interval { lo, hi } if *lo == f64::INFINITY && *hi == f64::INFINITY)
    }

    /// Whether a (finite) value satisfies the constraint, i.e. lies inside
    /// the closed interval. `ReportAll` contains everything by convention
    /// (it is never consulted for crossing checks).
    ///
    /// # Panics
    ///
    /// Panics for `Cells` filters, which have no single inside/outside —
    /// use [`Filter::violated`] for them.
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        debug_assert!(!v.is_nan(), "stream values must not be NaN");
        match *self {
            Filter::ReportAll => true,
            Filter::Interval { lo, hi } => lo <= v && v <= hi,
            Filter::Cells(_) => panic!("Cells filters have no membership; use violated()"),
        }
    }

    /// Serializes the filter into a durable checkpoint.
    pub fn encode(&self, w: &mut StateWriter) {
        match self {
            Filter::ReportAll => w.put_u8(0),
            Filter::Interval { lo, hi } => {
                w.put_u8(1);
                w.put_f64(*lo);
                w.put_f64(*hi);
            }
            Filter::Cells(cuts) => {
                w.put_u8(2);
                w.put_u32(u32::try_from(cuts.len()).expect("cut table too large"));
                for &c in cuts.iter() {
                    w.put_f64(c);
                }
            }
        }
    }

    /// Decodes a filter written by [`Filter::encode`].
    ///
    /// Re-validates the constructor invariants (no NaN, ordered bounds,
    /// sorted cut table) so corrupt bytes surface as an error, never as a
    /// filter that could not have been built.
    pub fn decode(r: &mut StateReader<'_>) -> asf_persist::Result<Self> {
        match r.get_u8()? {
            0 => Ok(Filter::ReportAll),
            1 => {
                let lo = r.get_f64()?;
                let hi = r.get_f64()?;
                if lo.is_nan() || hi.is_nan() || lo > hi {
                    return Err(PersistError::corrupt("invalid filter interval"));
                }
                Ok(Filter::Interval { lo, hi })
            }
            2 => {
                let len = r.get_u32()? as usize;
                if len > r.remaining() / 8 {
                    return Err(PersistError::corrupt("cut table longer than payload"));
                }
                let mut cuts = Vec::with_capacity(len);
                for _ in 0..len {
                    cuts.push(r.get_f64()?);
                }
                if cuts.iter().any(|c| c.is_nan()) || cuts.windows(2).any(|w| w[0] > w[1]) {
                    return Err(PersistError::corrupt("invalid cut table"));
                }
                Ok(Filter::Cells(Arc::from(cuts)))
            }
            _ => Err(PersistError::corrupt("unknown filter variant")),
        }
    }

    /// The §3.1 violation test: does moving from `last_reported` to
    /// `current` cross the filter boundary?
    ///
    /// For `ReportAll` every change is a violation (all updates reported);
    /// for `Cells` a violation is any cut crossing (cell index changed).
    #[inline]
    pub fn violated(&self, last_reported: f64, current: f64) -> bool {
        match self {
            Filter::ReportAll => true,
            Filter::Interval { .. } => self.contains(last_reported) != self.contains(current),
            Filter::Cells(cuts) => {
                Self::cell_index(cuts, last_reported) != Self::cell_index(cuts, current)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_closed_endpoints() {
        let f = Filter::interval(400.0, 600.0);
        assert!(f.contains(400.0));
        assert!(f.contains(600.0));
        assert!(f.contains(500.0));
        assert!(!f.contains(399.999));
        assert!(!f.contains(600.001));
    }

    #[test]
    fn violation_requires_crossing() {
        let f = Filter::interval(400.0, 600.0);
        // inside -> inside: no violation
        assert!(!f.violated(450.0, 550.0));
        // outside -> outside: no violation (even across the interval!)
        assert!(!f.violated(100.0, 900.0));
        // inside -> outside and outside -> inside: violations
        assert!(f.violated(450.0, 601.0));
        assert!(f.violated(399.0, 400.0));
    }

    #[test]
    fn wildcard_never_violated() {
        let f = Filter::wildcard();
        assert!(f.is_wildcard());
        assert!(!f.is_suppress());
        assert!(f.contains(-1e300) && f.contains(1e300) && f.contains(0.0));
        assert!(!f.violated(-1e300, 1e300));
    }

    #[test]
    fn suppress_never_violated() {
        let f = Filter::suppress();
        assert!(f.is_suppress());
        assert!(!f.is_wildcard());
        assert!(!f.contains(0.0) && !f.contains(1e308));
        assert!(!f.violated(-5.0, 5.0));
    }

    #[test]
    fn report_all_always_violated() {
        let f = Filter::ReportAll;
        assert!(f.violated(1.0, 1.0));
        assert!(f.violated(0.0, 100.0));
    }

    #[test]
    fn half_open_region_from_rank_space() {
        // top-k regions are [c, +inf): value >= c.
        let f = Filter::interval(250.0, f64::INFINITY);
        assert!(f.contains(250.0) && f.contains(1e12));
        assert!(!f.contains(249.9));
        assert!(f.violated(300.0, 200.0));
        assert!(!f.is_wildcard());
    }

    #[test]
    fn degenerate_point_interval() {
        let f = Filter::interval(5.0, 5.0);
        assert!(f.contains(5.0));
        assert!(!f.contains(5.0001));
    }

    #[test]
    fn cells_violated_on_any_cut_crossing() {
        let f = Filter::cells(Arc::from([100.0, 200.0, 500.0]));
        // Within one cell: silent.
        assert!(!f.violated(120.0, 180.0));
        assert!(!f.violated(0.0, 99.9));
        assert!(!f.violated(600.0, 1e9));
        // Across one cut: violated.
        assert!(f.violated(99.0, 100.0), "cut at 100 is inclusive-above");
        assert!(f.violated(150.0, 250.0));
        // Across several cuts at once: violated.
        assert!(f.violated(0.0, 1000.0));
    }

    #[test]
    fn cells_boundary_semantics_match_elementary_intervals() {
        // Cut at c separates v < c from v >= c.
        let f = Filter::cells(Arc::from([100.0]));
        assert!(!f.violated(100.0, 150.0), "both at or above the cut");
        assert!(f.violated(100.0f64.next_down(), 100.0));
    }

    #[test]
    #[should_panic(expected = "no membership")]
    fn cells_contains_is_undefined() {
        Filter::cells(Arc::from([1.0])).contains(0.5);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn cells_rejects_unsorted_cuts() {
        Filter::cells(Arc::from([5.0, 1.0]));
    }

    #[test]
    fn encode_decode_round_trip() {
        let filters = [
            Filter::ReportAll,
            Filter::interval(1.0, 2.0),
            Filter::interval(f64::NEG_INFINITY, 250.0),
            Filter::wildcard(),
            Filter::suppress(),
            Filter::cells(Arc::from([1.0, 5.0, 9.0])),
        ];
        for f in filters {
            let mut w = StateWriter::new();
            f.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = StateReader::new(&bytes);
            assert_eq!(Filter::decode(&mut r).unwrap(), f);
            r.finish().unwrap();
        }
    }

    #[test]
    fn decode_rejects_corrupt_filters() {
        // Unknown variant byte.
        assert!(Filter::decode(&mut StateReader::new(&[9])).is_err());
        // Inverted interval.
        let mut w = StateWriter::new();
        w.put_u8(1);
        w.put_f64(5.0);
        w.put_f64(1.0);
        let bytes = w.into_bytes();
        assert!(Filter::decode(&mut StateReader::new(&bytes)).is_err());
        // Cut-table length pointing past the payload must not allocate.
        let mut w = StateWriter::new();
        w.put_u8(2);
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        assert!(Filter::decode(&mut StateReader::new(&bytes)).is_err());
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn rejects_inverted_bounds() {
        Filter::interval(10.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_bounds() {
        Filter::interval(f64::NAN, 1.0);
    }
}
