//! Message taxonomy and the communication-cost ledger.
//!
//! The paper's performance metric is "the number of maintenance messages
//! required during the lifetime of the query" (§6). The ledger counts every
//! server↔source message, broken down by class, so benches can report both
//! the headline total and where it went (DESIGN.md §3.3).

use asf_persist::{StateReader, StateWriter};

/// Classes of messages exchanged between server and sources.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Unsolicited source → server value report (filter violation, or every
    /// update when no filter is installed).
    Update,
    /// Server → source request for the current value.
    ProbeRequest,
    /// Source → server reply to a probe.
    ProbeReply,
    /// Server → source targeted filter installation.
    FilterInstall,
    /// Server → all sources filter broadcast (counted as `n` messages).
    FilterBroadcast,
}

impl MessageKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [MessageKind; 5] = [
        MessageKind::Update,
        MessageKind::ProbeRequest,
        MessageKind::ProbeReply,
        MessageKind::FilterInstall,
        MessageKind::FilterBroadcast,
    ];

    fn slot(self) -> usize {
        match self {
            MessageKind::Update => 0,
            MessageKind::ProbeRequest => 1,
            MessageKind::ProbeReply => 2,
            MessageKind::FilterInstall => 3,
            MessageKind::FilterBroadcast => 4,
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            MessageKind::Update => "update",
            MessageKind::ProbeRequest => "probe_req",
            MessageKind::ProbeReply => "probe_rep",
            MessageKind::FilterInstall => "install",
            MessageKind::FilterBroadcast => "broadcast",
        }
    }
}

/// Per-class message counters for one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    counts: [u64; 5],
    /// Number of broadcast *operations* (each costing `n` messages).
    broadcast_ops: u64,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` messages of the given kind.
    pub fn record(&mut self, kind: MessageKind, n: u64) {
        self.counts[kind.slot()] += n;
        if kind == MessageKind::FilterBroadcast {
            self.broadcast_ops += 1;
        }
    }

    /// Messages of one kind.
    pub fn count(&self, kind: MessageKind) -> u64 {
        self.counts[kind.slot()]
    }

    /// Total messages across all kinds — the paper's headline metric.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of broadcast operations performed (each of which was counted
    /// as `n` individual messages in [`Self::total`]).
    pub fn broadcast_ops(&self) -> u64 {
        self.broadcast_ops
    }

    /// Snapshot of the per-kind counters in [`MessageKind::ALL`] order —
    /// the raw array telemetry taps diff around fleet operations to
    /// attribute messages to protocol causes without touching the
    /// authoritative counts.
    pub fn kind_counts(&self) -> [u64; 5] {
        self.counts
    }

    /// Adds another ledger's counts into this one.
    pub fn merge(&mut self, other: &Ledger) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.broadcast_ops += other.broadcast_ops;
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = Ledger::default();
    }

    /// Serializes the ledger into a durable checkpoint.
    pub fn encode(&self, w: &mut StateWriter) {
        for &c in &self.counts {
            w.put_u64(c);
        }
        w.put_u64(self.broadcast_ops);
    }

    /// Decodes a ledger written by [`Ledger::encode`].
    pub fn decode(r: &mut StateReader<'_>) -> asf_persist::Result<Self> {
        let mut counts = [0u64; 5];
        for c in &mut counts {
            *c = r.get_u64()?;
        }
        let broadcast_ops = r.get_u64()?;
        Ok(Self { counts, broadcast_ops })
    }

    /// One-line breakdown, e.g. for bench table footers.
    pub fn breakdown(&self) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(5);
        for kind in MessageKind::ALL {
            parts.push(format!("{}={}", kind.label(), self.count(kind)));
        }
        format!("{} (total={})", parts.join(" "), self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut l = Ledger::new();
        l.record(MessageKind::Update, 3);
        l.record(MessageKind::ProbeRequest, 1);
        l.record(MessageKind::ProbeReply, 1);
        assert_eq!(l.count(MessageKind::Update), 3);
        assert_eq!(l.total(), 5);
    }

    #[test]
    fn broadcast_counts_n_messages_one_op() {
        let mut l = Ledger::new();
        l.record(MessageKind::FilterBroadcast, 800);
        l.record(MessageKind::FilterBroadcast, 800);
        assert_eq!(l.count(MessageKind::FilterBroadcast), 1600);
        assert_eq!(l.broadcast_ops(), 2);
        assert_eq!(l.total(), 1600);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Ledger::new();
        a.record(MessageKind::Update, 2);
        let mut b = Ledger::new();
        b.record(MessageKind::Update, 5);
        b.record(MessageKind::FilterInstall, 1);
        a.merge(&b);
        assert_eq!(a.count(MessageKind::Update), 7);
        assert_eq!(a.count(MessageKind::FilterInstall), 1);
        assert_eq!(a.total(), 8);
    }

    #[test]
    fn reset_clears() {
        let mut l = Ledger::new();
        l.record(MessageKind::Update, 10);
        l.reset();
        assert_eq!(l.total(), 0);
        assert_eq!(l, Ledger::new());
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut l = Ledger::new();
        l.record(MessageKind::Update, 3);
        l.record(MessageKind::FilterBroadcast, 800);
        let mut w = StateWriter::new();
        l.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let back = Ledger::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, l);
        assert_eq!(back.broadcast_ops(), 1);
    }

    #[test]
    fn breakdown_mentions_every_kind() {
        let mut l = Ledger::new();
        l.record(MessageKind::Update, 1);
        let s = l.breakdown();
        for kind in MessageKind::ALL {
            assert!(s.contains(kind.label()), "missing {} in {s}", kind.label());
        }
        assert!(s.contains("total=1"));
    }
}
