//! Simulation time and small numeric helpers.

/// Simulation time in abstract time units.
///
/// The paper's synthetic model (§6.2) measures inter-arrival times in "time
/// units" with no physical scale; we follow suit and use a plain `f64`
/// wrapped for documentation purposes. Times must be finite and
/// non-decreasing within a run.
pub type SimTime = f64;

/// Deterministic logical clock measured in abstract integer ticks.
///
/// Timeout and lease machinery (retry backoff, heartbeat leases, crash
/// outages) must never read wall-clock time: every run has to be exactly
/// reproducible from its seed. `TickClock` is the only time source those
/// subsystems are allowed to use. Callers advance it explicitly — one tick
/// per ingested event plus explicit penalties for simulated timeouts — so
/// the same workload always observes the same clock readings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickClock {
    now: u64,
}

impl TickClock {
    /// Creates a clock at tick zero.
    pub fn new() -> Self {
        Self { now: 0 }
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock by `ticks`.
    pub fn advance(&mut self, ticks: u64) {
        self.now = self.now.saturating_add(ticks);
    }

    /// Advances the clock to `tick` if it is in the future; never rewinds.
    pub fn advance_to(&mut self, tick: u64) {
        self.now = self.now.max(tick);
    }
}

/// Reflects `value` into the closed interval `[lo, hi]`.
///
/// Used to confine random walks: the paper's synthetic workload draws values
/// initially uniform in `[0, 1000]` and perturbs them with `N(0, σ)` steps
/// but does not state a boundary rule. Reflection preserves the uniform
/// stationary distribution, so long simulations remain comparable to the
/// paper's (see DESIGN.md §5).
///
/// Reflection is applied repeatedly until the value lands inside, which
/// handles steps larger than the interval width.
///
/// # Panics
///
/// Panics if `lo >= hi` or any argument is non-finite.
pub fn reflect_into(mut value: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo < hi, "reflect_into requires lo < hi, got [{lo}, {hi}]");
    assert!(
        value.is_finite() && lo.is_finite() && hi.is_finite(),
        "reflect_into requires finite arguments"
    );
    let width = hi - lo;
    // Map into the period-2w sawtooth analytically to avoid looping on
    // pathologically distant values.
    let mut offset = (value - lo) % (2.0 * width);
    if offset < 0.0 {
        offset += 2.0 * width;
    }
    value = if offset <= width { lo + offset } else { lo + 2.0 * width - offset };
    // Guard against floating-point edge dust.
    value.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inside_is_unchanged() {
        assert_eq!(reflect_into(5.0, 0.0, 10.0), 5.0);
        assert_eq!(reflect_into(0.0, 0.0, 10.0), 0.0);
        assert_eq!(reflect_into(10.0, 0.0, 10.0), 10.0);
    }

    #[test]
    fn just_outside_reflects_back() {
        assert_eq!(reflect_into(-3.0, 0.0, 10.0), 3.0);
        assert_eq!(reflect_into(12.0, 0.0, 10.0), 8.0);
    }

    #[test]
    fn far_outside_reflects_periodically() {
        // -25 -> period 20 sawtooth: -25 mod 20 = ... reflect twice.
        let v = reflect_into(-25.0, 0.0, 10.0);
        assert!((0.0..=10.0).contains(&v));
        assert!((v - 5.0).abs() < 1e-12, "got {v}");
        let v = reflect_into(47.0, 0.0, 10.0);
        assert!((v - 7.0).abs() < 1e-12, "got {v}");
    }

    #[test]
    fn non_zero_lower_bound() {
        assert_eq!(reflect_into(390.0, 400.0, 600.0), 410.0);
        assert_eq!(reflect_into(610.0, 400.0, 600.0), 590.0);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn rejects_inverted_interval() {
        reflect_into(1.0, 5.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        reflect_into(f64::NAN, 0.0, 1.0);
    }
}
