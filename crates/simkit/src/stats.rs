//! Small statistics helpers for experiment harnesses.

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// Benches use this to summarise repeated simulation runs without storing
/// every observation.
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics on non-finite input.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "observation must be finite, got {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance, or 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Returns the `p`-th percentile (0–100, linear interpolation) of a slice.
///
/// Sorts a copy; intended for end-of-run summaries, not hot paths.
///
/// # Panics
///
/// Panics if `data` is empty, contains NaN, or `p` is outside `[0, 100]`.
pub fn percentile(data: &[f64], p: f64) -> f64 {
    assert!(!data.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100], got {p}");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population sd of this classic dataset is 2; sample sd is larger.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn stats_single_observation() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), 1.0);
        assert_eq!(percentile(&data, 100.0), 4.0);
        assert!((percentile(&data, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&data, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        let data = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&data, 50.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }
}
