//! # simkit — discrete-event simulation substrate
//!
//! The paper evaluates its protocols inside **CSIM 19**, a commercial
//! discrete-event simulator. This crate is the from-scratch replacement: a
//! deterministic event queue, a simulation clock, a seeded random-number
//! layer, the probability distributions the workloads need, and small
//! statistics helpers.
//!
//! Everything here is deterministic given a seed: the event queue breaks
//! timestamp ties by insertion sequence number, and all distributions are
//! implemented on top of a single seeded PRNG stream.
//!
//! ```
//! use simkit::queue::EventQueue;
//!
//! let mut q = EventQueue::new();
//! q.schedule(2.0, "later");
//! q.schedule(1.0, "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (1.0, "sooner"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod fault;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::{Exponential, LogNormal, Normal, Pareto, Uniform, Zipf};
pub use fault::{Backoff, FaultDecision, FaultMix, FaultSchedule};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use stats::{percentile, RunningStats};
pub use time::{reflect_into, SimTime, TickClock};
