//! Seeded random-number layer.
//!
//! All stochastic behaviour in the reproduction flows through [`SimRng`] so
//! that every experiment is reproducible from a single `u64` seed. The
//! distributions in [`crate::dist`] draw uniform variates from here and apply
//! their own transforms; we depend on no external RNG crate — the generator
//! is implemented here (xoshiro256++ seeded through SplitMix64), so results
//! are reproducible across toolchains and dependency upgrades.

/// SplitMix64 step — used to expand a 64-bit seed into generator state and
/// to mix labels in [`SimRng::derive`].
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic, seedable PRNG stream.
///
/// xoshiro256++ (Blackman & Vigna) with the API surface the simulation uses:
/// uniform `f64` in `[0, 1)`, integer ranges, and sub-stream derivation for
/// independent components.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s }
    }

    /// Uniform variate in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform variate in `[0, 1)` that is never exactly zero.
    ///
    /// Inverse-CDF transforms (exponential, Box–Muller) need `u > 0` to avoid
    /// `ln(0)`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform variate in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range [{lo}, {hi})");
        // Clamp guards against the affine transform rounding up to `hi`.
        (lo + self.next_f64() * (hi - lo)).min(hi.next_down())
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Rejection sampling: accept below the largest multiple of `n`.
        let n64 = n as u64;
        let zone = u64::MAX - (u64::MAX % n64);
        loop {
            let x = self.next_u64();
            if x < zone {
                return (x % n64) as usize;
            }
        }
    }

    /// Raw 64 random bits (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// The generator's raw internal state, for durable checkpointing.
    ///
    /// Recovery must resume the *exact* random stream (protocol decisions
    /// derive from it), so the state words are exposed rather than a seed.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from [`state`](Self::state) — continues the
    /// stream bit-for-bit where the saved generator left off.
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    /// Derives an independent sub-stream.
    ///
    /// Used to give each simulated stream source its own generator so that
    /// changing one source's consumption pattern does not perturb the others
    /// (a standard variance-reduction/reproducibility practice in
    /// discrete-event simulation).
    pub fn derive(&mut self, label: u64) -> SimRng {
        // Mix the label into fresh entropy from this stream via SplitMix64.
        let mut z = self.next_u64() ^ label.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (order unspecified but
    /// deterministic). Uses partial Fisher–Yates on an index vector.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_round_trip_resumes_exact_stream() {
        let mut a = SimRng::seed_from_u64(123);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SimRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = r.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.range_f64(400.0, 600.0);
            assert!((400.0..600.0).contains(&v));
        }
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let mut base1 = SimRng::seed_from_u64(5);
        let mut base2 = SimRng::seed_from_u64(5);
        let mut d1 = base1.derive(3);
        let mut d2 = base2.derive(3);
        assert_eq!(d1.next_u64(), d2.next_u64());

        let mut base = SimRng::seed_from_u64(5);
        let mut da = base.derive(1);
        let mut db = base.derive(1);
        // Two derivations from the same parent consume parent entropy and so
        // must differ even with the same label.
        assert_ne!(da.next_u64(), db.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice unchanged");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = SimRng::seed_from_u64(13);
        let s = r.sample_indices(100, 20);
        assert_eq!(s.len(), 20);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_all_indices() {
        let mut r = SimRng::seed_from_u64(14);
        let mut s = r.sample_indices(10, 10);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_more_than_n_panics() {
        let mut r = SimRng::seed_from_u64(15);
        r.sample_indices(3, 4);
    }
}
