//! Deterministic discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled at a timestamp, ordered for a min-heap.
struct Scheduled<E> {
    time: SimTime,
    /// Monotone insertion counter; ties in `time` pop in insertion order so
    /// runs are deterministic regardless of heap internals.
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event;
        // among equal times, the lowest sequence number (earliest insert).
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-ordered event queue with deterministic FIFO tie-breaking.
///
/// This is the core of the CSIM-replacement: workload generators schedule
/// stream-update events, the engine pops them in time order.
///
/// Timestamps must be finite (`NaN` panics on insertion). The queue does not
/// enforce that popped times are used monotonically — that is the engine's
/// job — but [`EventQueue::pop`] always yields events in non-decreasing time
/// order by construction.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(cap), next_seq: 0 }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Returns the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7.5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "e5");
        q.schedule(1.0, "e1");
        assert_eq!(q.pop(), Some((1.0, "e1")));
        q.schedule(3.0, "e3");
        assert_eq!(q.peek_time(), Some(3.0));
        assert_eq!(q.pop(), Some((3.0, "e3")));
        assert_eq!(q.pop(), Some((5.0, "e5")));
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_contents() {
        let mut q = EventQueue::with_capacity(4);
        assert_eq!(q.len(), 0);
        q.schedule(1.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn non_decreasing_pop_times_under_stress() {
        // Pseudo-random insertion pattern, fixed arithmetic generator to stay
        // deterministic without pulling rand into this unit test.
        let mut q = EventQueue::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = (x >> 11) as f64 / (1u64 << 53) as f64 * 1000.0;
            q.schedule(t, ());
        }
        let mut last = f64::NEG_INFINITY;
        while let Some((t, ())) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }
}
