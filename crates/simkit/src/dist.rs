//! Probability distributions, implemented from scratch over [`SimRng`].
//!
//! The paper's workloads need: exponential inter-arrival times (§6.2, mean 20
//! time units), normal value steps (§6.2, `N(0, σ)`), and — for the
//! TCP-trace substitute (DESIGN.md §5) — log-normal connection sizes, Zipf
//! subnet activity, and Pareto heavy tails. `rand_distr` is not among the
//! approved offline crates, so the transforms live here with their own tests.

use crate::rng::SimRng;

/// A distribution over `f64` that samples using a [`SimRng`].
pub trait Sample {
    /// Draws one variate.
    fn sample(&self, rng: &mut SimRng) -> f64;
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or bounds are non-finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid uniform bounds [{lo}, {hi})");
        Self { lo, hi }
    }
}

impl Sample for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// Exponential distribution with the given **mean** (not rate).
///
/// The paper specifies inter-arrival times by mean ("exponential distribution
/// with a mean of 20 time units"), so the constructor takes the mean; the
/// rate is `1/mean`. Sampling uses inverse transform `-mean · ln(u)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with mean `mean > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not a positive finite number.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "exponential mean must be positive, got {mean}");
        Self { mean }
    }

    /// The configured mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -self.mean * rng.next_f64_open().ln()
    }
}

/// Normal distribution `N(mean, sd²)` via the Box–Muller transform.
///
/// Each draw consumes two uniforms and discards the second variate; this is
/// marginally wasteful but keeps sampling stateless, which matters because
/// distributions are shared across simulated sources.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation `sd >= 0`.
    ///
    /// # Panics
    ///
    /// Panics on non-finite parameters or negative `sd`.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(mean.is_finite() && sd.is_finite() && sd >= 0.0, "invalid normal({mean}, {sd})");
        Self { mean, sd }
    }

    /// Standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }
}

impl Sample for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u1 = rng.next_f64_open();
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.sd * r * theta.cos()
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
///
/// Used by the TCP-like workload for connection byte counts, whose empirical
/// distributions are famously heavy-tailed and well approximated as
/// log-normal in the body.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    log_normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal with log-space mean `mu` and log-space standard
    /// deviation `sigma >= 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self { log_normal: Normal::new(mu, sigma) }
    }

    /// Median of the distribution (`exp(mu)`).
    pub fn median(&self) -> f64 {
        self.log_normal.mean.exp()
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.log_normal.sample(rng).exp()
    }
}

/// Pareto (type I) distribution with scale `x_min > 0` and shape `alpha > 0`.
///
/// Inverse transform: `x_min / u^{1/alpha}`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `x_min > 0` and `alpha > 0` (finite).
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(
            x_min.is_finite() && x_min > 0.0 && alpha.is_finite() && alpha > 0.0,
            "invalid pareto({x_min}, {alpha})"
        );
        Self { x_min, alpha }
    }
}

impl Sample for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.x_min / rng.next_f64_open().powf(1.0 / self.alpha)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s >= 0`:
/// `P(k) ∝ k^{-s}`.
///
/// Implemented with a precomputed cumulative table and binary search —
/// `O(n)` memory, `O(log n)` per sample — which is ideal here because `n` is
/// the number of stream sources (hundreds to a few thousand) and the table is
/// built once per workload.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0, got {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guarantee the last entry is exactly 1 so search never falls off.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample_rank(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        // partition_point returns the count of entries < u... we want the
        // first index with cdf[i] >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&k));
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }
}

impl Sample for Zipf {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0xD15EA5E)
    }

    fn mean_of(d: &impl Sample, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::with_mean(20.0);
        let m = mean_of(&d, 200_000);
        assert!((m - 20.0).abs() < 0.3, "sample mean {m}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let d = Exponential::with_mean(1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 0.0);
        }
    }

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(5.0, 20.0);
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 20.0).abs() < 0.2, "sd {}", var.sqrt());
    }

    #[test]
    fn normal_zero_sd_is_constant() {
        let d = Normal::new(3.0, 0.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 3.0);
        }
    }

    #[test]
    fn lognormal_median_matches() {
        let d = LogNormal::new(500f64.ln(), 0.8);
        let mut r = rng();
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median / 500.0 - 1.0).abs() < 0.05, "median {median}");
        assert!((d.median() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let d = Pareto::new(2.0, 1.5);
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x >= 2.0));
        // P(X > 4) = (2/4)^1.5 ≈ 0.3536
        let frac = samples.iter().filter(|&&x| x > 4.0).count() as f64 / n as f64;
        assert!((frac - 0.3536).abs() < 0.01, "tail fraction {frac}");
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(50, 1.1);
        let total: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let n = 100_000;
        let mut counts = vec![0usize; 101];
        for _ in 0..n {
            counts[z.sample_rank(&mut r)] += 1;
        }
        assert!(counts[1] > counts[2] && counts[2] > counts[5]);
        let expected1 = z.pmf(1);
        let got1 = counts[1] as f64 / n as f64;
        assert!((got1 - expected1).abs() < 0.01, "rank-1 freq {got1} vs pmf {expected1}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 1..=10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_ranks_in_bounds() {
        let z = Zipf::new(7, 2.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let k = z.sample_rank(&mut r);
            assert!((1..=7).contains(&k));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_mean() {
        Exponential::with_mean(0.0);
    }

    #[test]
    #[should_panic(expected = "invalid normal")]
    fn normal_rejects_negative_sd() {
        Normal::new(0.0, -1.0);
    }
}
