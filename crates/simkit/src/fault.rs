//! Seeded fault schedules for unreliable-channel simulation.
//!
//! The paper assumes filters live at *remote* stream sources, so every
//! install, probe, and report crosses a network that can drop, delay,
//! duplicate, or reorder frames — and sources themselves can crash and
//! restart. This module is the deterministic source of those faults: a
//! [`FaultSchedule`] draws one [`FaultDecision`] per frame from a seeded
//! [`SimRng`] stream, and a [`Backoff`] computes capped exponential retry
//! delays in logical ticks (see [`crate::time::TickClock`]).
//!
//! Determinism contract: given the same seed, mix, and the same sequence of
//! draw calls, a schedule produces the same decisions. Once the clock passes
//! the schedule's `horizon`, every frame delivers and no crashes are drawn —
//! this is the "faults cease" boundary the convergence proofs rely on.

use crate::rng::SimRng;

/// Per-frame fault probabilities plus crash/outage parameters.
///
/// Probabilities are evaluated in order drop → delay → duplicate on a single
/// uniform draw, so `drop_p + delay_p + dup_p` must be ≤ 1. `crash_p` is a
/// separate per-source, per-round probability drawn at quiescent points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// Probability a frame is silently dropped.
    pub drop_p: f64,
    /// Probability a frame is delayed (delivered out of order later).
    pub delay_p: f64,
    /// Probability a frame is duplicated (delivered now and again later).
    pub dup_p: f64,
    /// Per-source probability of a crash-restart, drawn once per round.
    pub crash_p: f64,
    /// Maximum delay, in ticks, for a delayed frame (uniform in `1..=max`).
    pub max_delay_ticks: u64,
    /// Outage length, in ticks, of a crash-restart (uniform in `1..=max`).
    pub max_outage_ticks: u64,
}

impl FaultMix {
    /// A fully reliable channel: every frame delivers, nothing crashes.
    pub fn none() -> Self {
        Self {
            drop_p: 0.0,
            delay_p: 0.0,
            dup_p: 0.0,
            crash_p: 0.0,
            max_delay_ticks: 0,
            max_outage_ticks: 0,
        }
    }

    /// Pure message loss at probability `p`; no delays, no crashes.
    pub fn loss_only(p: f64) -> Self {
        Self { drop_p: p, ..Self::none() }
    }

    /// Delay/duplicate-heavy mix: frames are delayed or duplicated at
    /// probability `p` each, producing reordering without loss.
    pub fn delay_reorder(p: f64) -> Self {
        Self { delay_p: p, dup_p: p, max_delay_ticks: 512, ..Self::none() }
    }

    /// Crash-restart mix: light loss plus per-round source crashes with
    /// outages long enough to expire typical leases.
    pub fn crash_restart(crash_p: f64) -> Self {
        Self { drop_p: 0.02, crash_p, max_outage_ticks: 4096, ..Self::none() }
    }

    fn validate(&self) {
        let sum = self.drop_p + self.delay_p + self.dup_p;
        assert!(
            (0.0..=1.0).contains(&sum)
                && self.drop_p >= 0.0
                && self.delay_p >= 0.0
                && self.dup_p >= 0.0,
            "fault probabilities must be non-negative and sum to <= 1, got {self:?}"
        );
        assert!(
            (0.0..=1.0).contains(&self.crash_p),
            "crash_p must be a probability, got {}",
            self.crash_p
        );
        if self.delay_p > 0.0 {
            assert!(self.max_delay_ticks > 0, "delay_p > 0 requires max_delay_ticks > 0");
        }
        if self.crash_p > 0.0 {
            assert!(self.max_outage_ticks > 0, "crash_p > 0 requires max_outage_ticks > 0");
        }
    }
}

/// The fate of one frame on an unreliable channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Frame arrives intact, in order.
    Deliver,
    /// Frame is silently lost.
    Drop,
    /// Frame arrives, but only after the given number of ticks.
    Delay(u64),
    /// Frame arrives now *and* a ghost copy arrives again later.
    Duplicate,
}

/// Deterministic per-frame fault source with a hard fault horizon.
///
/// All draws come from one seeded [`SimRng`] stream, so the decision
/// sequence is a pure function of `(seed, mix, call sequence)`. Draws at or
/// past `horizon` ticks return [`FaultDecision::Deliver`] without consuming
/// randomness, which keeps post-horizon execution byte-identical to a run
/// that never had a fault schedule attached.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    rng: SimRng,
    mix: FaultMix,
    horizon: u64,
}

impl FaultSchedule {
    /// Creates a schedule; faults are active while `clock < horizon` ticks.
    ///
    /// # Panics
    ///
    /// Panics if the mix's probabilities are malformed.
    pub fn new(seed: u64, mix: FaultMix, horizon: u64) -> Self {
        mix.validate();
        Self { rng: SimRng::seed_from_u64(seed), mix, horizon }
    }

    /// Whether faults can still occur at tick `now`.
    pub fn active(&self, now: u64) -> bool {
        now < self.horizon
    }

    /// The tick at which faults cease.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The configured fault mix.
    pub fn mix(&self) -> &FaultMix {
        &self.mix
    }

    /// The RNG's raw state words — the checkpointing hook: persisting these
    /// four words (plus the mix and horizon) is enough to resume the exact
    /// decision stream mid-schedule after a crash.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Rebuilds a schedule mid-stream: same mix and horizon, RNG resumed
    /// from a state captured by [`FaultSchedule::rng_state`]. The resumed
    /// schedule draws the byte-identical continuation of the original's
    /// decision sequence.
    ///
    /// # Panics
    ///
    /// Panics if the mix's probabilities are malformed.
    pub fn resume(state: [u64; 4], mix: FaultMix, horizon: u64) -> Self {
        mix.validate();
        Self { rng: SimRng::from_state(state), mix, horizon }
    }

    /// Draws the fate of one frame sent at tick `now`.
    pub fn draw(&mut self, now: u64) -> FaultDecision {
        if !self.active(now) {
            return FaultDecision::Deliver;
        }
        let u = self.rng.next_f64();
        if u < self.mix.drop_p {
            FaultDecision::Drop
        } else if u < self.mix.drop_p + self.mix.delay_p {
            let ticks = 1 + self.rng.index(self.mix.max_delay_ticks as usize) as u64;
            FaultDecision::Delay(ticks)
        } else if u < self.mix.drop_p + self.mix.delay_p + self.mix.dup_p {
            FaultDecision::Duplicate
        } else {
            FaultDecision::Deliver
        }
    }

    /// Draws whether a source crashes at tick `now`; on a crash, returns the
    /// outage length in ticks.
    pub fn draw_crash(&mut self, now: u64) -> Option<u64> {
        if !self.active(now) || self.mix.crash_p == 0.0 {
            return None;
        }
        if self.rng.next_f64() < self.mix.crash_p {
            Some(1 + self.rng.index(self.mix.max_outage_ticks as usize) as u64)
        } else {
            None
        }
    }
}

/// Capped exponential backoff in logical ticks.
///
/// Attempt `k` (zero-based) waits `min(base << k, cap)` ticks; the shift
/// saturates, so large attempt numbers simply pin at the cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base: u64,
    cap: u64,
}

impl Backoff {
    /// Creates a backoff policy.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero or `cap < base`.
    pub fn new(base: u64, cap: u64) -> Self {
        assert!(base > 0, "backoff base must be positive");
        assert!(cap >= base, "backoff cap must be >= base");
        Self { base, cap }
    }

    /// Delay, in ticks, before retry attempt `attempt` (zero-based).
    pub fn delay(&self, attempt: u32) -> u64 {
        self.base.checked_shl(attempt).unwrap_or(self.cap).min(self.cap)
    }

    /// The first-attempt delay (serialization hook).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The delay cap (serialization hook).
    pub fn cap(&self) -> u64 {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let mix = FaultMix { drop_p: 0.3, delay_p: 0.2, dup_p: 0.1, ..FaultMix::none() };
        let mix = FaultMix { max_delay_ticks: 16, ..mix };
        let mut a = FaultSchedule::new(7, mix, 1000);
        let mut b = FaultSchedule::new(7, mix, 1000);
        for t in 0..500 {
            assert_eq!(a.draw(t), b.draw(t));
        }
    }

    #[test]
    fn horizon_forces_delivery() {
        let mut s = FaultSchedule::new(1, FaultMix::loss_only(1.0), 10);
        assert_eq!(s.draw(9), FaultDecision::Drop);
        for t in 10..100 {
            assert_eq!(s.draw(t), FaultDecision::Deliver);
        }
        assert_eq!(s.draw_crash(10), None);
    }

    #[test]
    fn loss_only_drops_at_rate() {
        let mut s = FaultSchedule::new(42, FaultMix::loss_only(0.25), u64::MAX);
        let drops = (0..10_000).filter(|_| s.draw(0) == FaultDecision::Drop).count();
        assert!((2200..=2800).contains(&drops), "drop count {drops} far from 25%");
    }

    #[test]
    fn delay_mix_produces_delays_and_dups() {
        let mut s = FaultSchedule::new(9, FaultMix::delay_reorder(0.2), u64::MAX);
        let mut delays = 0;
        let mut dups = 0;
        for _ in 0..10_000 {
            match s.draw(0) {
                FaultDecision::Delay(t) => {
                    assert!((1..=512).contains(&t));
                    delays += 1;
                }
                FaultDecision::Duplicate => dups += 1,
                FaultDecision::Drop => panic!("delay mix must not drop"),
                FaultDecision::Deliver => {}
            }
        }
        assert!(delays > 1000 && dups > 1000, "delays={delays} dups={dups}");
    }

    #[test]
    fn crash_draws_bounded_outages() {
        let mut s = FaultSchedule::new(3, FaultMix::crash_restart(0.5), u64::MAX);
        let mut crashes = 0;
        for _ in 0..1000 {
            if let Some(outage) = s.draw_crash(0) {
                assert!((1..=4096).contains(&outage));
                crashes += 1;
            }
        }
        assert!((350..=650).contains(&crashes), "crash count {crashes} far from 50%");
    }

    #[test]
    fn resumed_schedule_continues_exact_stream() {
        let mix = FaultMix { drop_p: 0.3, delay_p: 0.2, dup_p: 0.1, ..FaultMix::none() };
        let mix = FaultMix { max_delay_ticks: 16, ..mix };
        let mut original = FaultSchedule::new(99, mix, 10_000);
        for t in 0..257 {
            original.draw(t);
            original.draw_crash(t);
        }
        let mut resumed = FaultSchedule::resume(original.rng_state(), mix, 10_000);
        for t in 257..1_000 {
            assert_eq!(original.draw(t), resumed.draw(t));
            assert_eq!(original.draw_crash(t), resumed.draw_crash(t));
        }
    }

    #[test]
    fn backoff_caps() {
        let b = Backoff::new(4, 64);
        assert_eq!(b.delay(0), 4);
        assert_eq!(b.delay(1), 8);
        assert_eq!(b.delay(4), 64);
        assert_eq!(b.delay(10), 64);
        assert_eq!(b.delay(200), 64);
    }

    #[test]
    #[should_panic(expected = "sum to <= 1")]
    fn rejects_overfull_mix() {
        FaultSchedule::new(0, FaultMix { drop_p: 0.9, delay_p: 0.9, ..FaultMix::none() }, 1);
    }
}
