//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the integrity
//! check framing every on-disk record.
//!
//! Implemented here so the stack stays dependency-free; the table is built
//! in a `const` context, so there is no runtime initialization to race.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables: `TABLES[0]` is the classic one-step-per-byte
/// table; `TABLES[k][i]` advances the CRC of byte `i` through `k` further
/// zero bytes, letting [`Crc32::update`] fold 8 input bytes per iteration.
/// Recovery CRC-scans whole checkpoint images, so this is a hot loop.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 of `bytes` (initial value `!0`, final complement — the standard
/// zlib/PNG parameterization).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Incremental CRC-32 over multiple slices — byte-identical to [`crc32`]
/// of the concatenation, so record framing can checksum header and payload
/// without copying them into one buffer.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feeds more bytes (slicing-by-8: one table fold per 8 input bytes,
    /// byte-at-a-time for the tail).
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][c[4] as usize]
                ^ TABLES[2][c[5] as usize]
                ^ TABLES[1][c[6] as usize]
                ^ TABLES[0][c[7] as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut inc = Crc32::new();
            inc.update(&data[..split]);
            inc.update(&data[split..]);
            assert_eq!(inc.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"checkpoint payload";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip byte {i} bit {bit} undetected");
                copy[i] ^= 1 << bit;
            }
        }
    }
}
