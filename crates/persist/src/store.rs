//! Durable storage: double-buffered snapshots, an append-only journal, and
//! crash-point fault injection.
//!
//! A persistence directory holds the snapshot slots, the active journal,
//! and any sealed journal segments compaction has not yet pruned:
//!
//! ```text
//! dir/
//!   snap-a.bin     alternating checkpoint slots — the newest valid one
//!   snap-b.bin     wins at recovery; the other is the overwrite target
//!   journal.log    append-only record of committed input chunks (active)
//!   journal-<k>.seg   sealed journal segments, replayed in index order
//! ```
//!
//! Snapshots are written tmp-file → `fsync` → atomic rename, alternating
//! between the two slots, so a crash at *any* byte of a checkpoint write
//! leaves the previous checkpoint untouched and selectable. The journal is
//! append-only; a crash mid-append leaves a torn tail that
//! [`Journal::open`] detects by CRC and physically truncates, so a record
//! that was never fully written is never replayed.
//!
//! [`Journal::rotate`] bounds journal growth: the synced active file is
//! atomically renamed into a sealed segment (`journal-<k>.seg`) and a
//! fresh active file takes its place. Sealed segments are immutable, so a
//! torn record inside one is *corruption* (only the active tail may
//! legitimately tear). [`Journal::prune_segments`] deletes sealed segments
//! wholly superseded by a durable checkpoint.
//!
//! Every write path is routed through a byte-budget [`CrashPoint`]: tests
//! arm it with `set_crash_after(bytes)` and the store dies (with
//! [`PersistError::InjectedCrash`]) after exactly that many more bytes
//! reach the file — landing tears at arbitrary offsets inside headers,
//! payloads, and checksums.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::record::{
    decode_header, encode_header, encode_record, scan_records, FileKind, HEADER_LEN,
};
use crate::{PersistError, Result};

/// Record tag for a checkpoint payload inside a snapshot file.
pub const TAG_SNAPSHOT: u32 = 0x534E_4150; // "SNAP"
/// Record tag for a committed input chunk inside the journal.
pub const TAG_JOURNAL_CHUNK: u32 = 0x4A43_484B; // "JCHK"

const SLOT_NAMES: [&str; 2] = ["snap-a.bin", "snap-b.bin"];
const JOURNAL_NAME: &str = "journal.log";
const SEGMENT_PREFIX: &str = "journal-";
const SEGMENT_SUFFIX: &str = ".seg";
const FLOOR_NAME: &str = "floor.bin";
const FLOOR_MAGIC: &[u8; 8] = b"ASFFLOOR";

fn segment_name(index: u64) -> String {
    format!("{SEGMENT_PREFIX}{index}{SEGMENT_SUFFIX}")
}

/// Parses `journal-<k>.seg` back into `k`; `None` for any other name.
fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?.strip_suffix(SEGMENT_SUFFIX)?.parse().ok()
}

/// Where inside [`Journal::rotate`] an armed crash fires — each step
/// leaves a distinct intermediate on-disk state a recovery must absorb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RotateStep {
    /// Die after syncing the active file but before the rename: the
    /// segment was never created, the active journal is intact.
    BeforeRename,
    /// Die after the rename lands but before the fresh active file
    /// exists: the directory has sealed segments and *no* `journal.log`.
    AfterRename,
    /// Die mid-write of the fresh active file's header: `journal.log`
    /// exists but holds a torn header.
    TornHeader,
}

/// Byte-budget write fault injector.
///
/// Unarmed, writes pass through. Armed with a budget of `b`, the next `b`
/// bytes are written normally and everything after them is dropped on the
/// floor; the write that crosses the boundary (and every write after it)
/// fails with [`PersistError::InjectedCrash`]. That models a process dying
/// mid-`write(2)`: a prefix of the data is on disk, the rest never was.
#[derive(Debug, Default)]
pub struct CrashPoint {
    budget: Option<u64>,
}

impl CrashPoint {
    /// Arms the injector: fail after `bytes` more bytes reach disk.
    pub fn arm(&mut self, bytes: u64) {
        self.budget = Some(bytes);
    }

    /// Disarms the injector; writes pass through again.
    pub fn disarm(&mut self) {
        self.budget = None;
    }

    /// Whether a crash is armed and not yet spent.
    pub fn is_armed(&self) -> bool {
        self.budget.is_some()
    }

    /// Writes `bytes` to `file` under the budget. On a budget crossing,
    /// writes the surviving prefix and returns `InjectedCrash`.
    fn write(&mut self, file: &mut File, bytes: &[u8]) -> Result<()> {
        match self.budget {
            None => {
                file.write_all(bytes)?;
                Ok(())
            }
            Some(ref mut budget) => {
                let n = (*budget).min(bytes.len() as u64) as usize;
                file.write_all(&bytes[..n])?;
                *budget -= n as u64;
                if n < bytes.len() {
                    // The torn prefix must be as durable as a real crash
                    // would leave it before the process dies.
                    let _ = file.sync_all();
                    Err(PersistError::InjectedCrash)
                } else {
                    Ok(())
                }
            }
        }
    }
}

fn fsync_dir(dir: &Path) -> Result<()> {
    // Directory fsync makes the rename itself durable; on platforms where
    // directories cannot be opened this is best-effort.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn read_file(path: &Path) -> Result<Option<Vec<u8>>> {
    match fs::read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Reads a snapshot image's *claimed* sequence number without validating
/// the CRC — only good for ordering which slot to fully validate first.
fn peek_snapshot_seq(bytes: &[u8]) -> Option<u64> {
    if decode_header(bytes).ok()? != FileKind::Snapshot {
        return None;
    }
    let seq = bytes.get(HEADER_LEN + 8..HEADER_LEN + 16)?;
    Some(u64::from_le_bytes(seq.try_into().ok()?))
}

/// Validates a snapshot file image and locates its parts: the checkpoint
/// sequence and the byte range of the state payload within the image.
/// `None` if invalid in any way (wrong header, torn, extra records, wrong
/// tag).
fn parse_snapshot_bounds(bytes: &[u8]) -> Option<(u64, std::ops::Range<usize>)> {
    if decode_header(bytes).ok()? != FileKind::Snapshot {
        return None;
    }
    let body = &bytes[HEADER_LEN..];
    let scan = scan_records(body);
    if scan.torn_tail || scan.records.len() != 1 {
        return None;
    }
    let rec = scan.records[0];
    if rec.tag != TAG_SNAPSHOT || rec.payload.len() < 8 {
        return None;
    }
    let seq = u64::from_le_bytes(rec.payload[..8].try_into().ok()?);
    // header | tag u32, len u32 | seq u64, state... | crc u32
    let start = HEADER_LEN + 8 + 8;
    Some((seq, start..start + rec.payload.len() - 8))
}

/// Parses a snapshot file image into `(seq, state)`; `None` if invalid in
/// any way.
fn parse_snapshot(bytes: &[u8]) -> Option<(u64, Vec<u8>)> {
    parse_snapshot_bounds(bytes).map(|(seq, range)| (seq, bytes[range].to_vec()))
}

/// A validated checkpoint, held as the raw slot-file image plus the bounds
/// of the state payload inside it — recovery borrows the (multi-megabyte)
/// state via [`state`](Self::state) instead of copying it out.
#[derive(Debug)]
pub struct SnapshotImage {
    image: Vec<u8>,
    state: std::ops::Range<usize>,
    seq: u64,
}

impl SnapshotImage {
    /// The event sequence the checkpoint was taken at.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The state payload, borrowed from the image.
    pub fn state(&self) -> &[u8] {
        &self.image[self.state.clone()]
    }
}

/// Double-buffered checkpoint storage.
///
/// [`save`](Self::save) alternates between two slot files, always
/// overwriting the *older* one via tmp-write + `fsync` + rename, so the
/// newest durable checkpoint survives a crash at any point of the next
/// write. [`latest`](Self::latest) returns the valid slot with the highest
/// sequence number.
///
/// The store is `Send`, so a server can hand it to a background writer
/// thread and keep ingesting while the checkpoint hits disk.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    next_slot: usize,
    crash: CrashPoint,
}

impl SnapshotStore {
    /// Opens (creating if needed) the snapshot store in `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        Ok(Self::open_and_latest(dir)?.0)
    }

    /// Opens the store and loads the newest valid checkpoint in one pass.
    ///
    /// Recovery's hot path: each slot file is read at most once, and the
    /// slot whose header *claims* the higher sequence is CRC-validated
    /// first — when it proves valid (the overwhelmingly common case) the
    /// other slot is never scanned at all. `open` + [`latest`](Self::latest)
    /// would read and checksum both slots twice.
    ///
    /// The store always writes next into the slot that does NOT hold the
    /// newest valid snapshot, so the newest survives a torn write.
    pub fn open_and_latest(dir: impl Into<PathBuf>) -> Result<(Self, Option<SnapshotImage>)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut images: Vec<Option<Vec<u8>>> =
            SLOT_NAMES.iter().map(|name| read_file(&dir.join(name))).collect::<Result<_>>()?;
        let peeked: Vec<Option<u64>> =
            images.iter().map(|img| img.as_deref().and_then(peek_snapshot_seq)).collect();
        // A corrupt slot may peek an arbitrary sequence; that only costs
        // one wasted validation before the other slot is tried.
        let order: [usize; 2] =
            if peeked[1].unwrap_or(0) > peeked[0].unwrap_or(0) { [1, 0] } else { [0, 1] };
        for slot in order {
            if let Some(bytes) = &images[slot] {
                if let Some((seq, state)) = parse_snapshot_bounds(bytes) {
                    let store = Self { dir, next_slot: slot ^ 1, crash: CrashPoint::default() };
                    let image = images[slot].take().expect("slot image present");
                    return Ok((store, Some(SnapshotImage { image, state, seq })));
                }
            }
        }
        Ok((Self { dir, next_slot: 0, crash: CrashPoint::default() }, None))
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arms the crash injector (see [`CrashPoint`]).
    pub fn set_crash_after(&mut self, bytes: u64) {
        self.crash.arm(bytes);
    }

    /// Disarms the crash injector.
    pub fn clear_crash(&mut self) {
        self.crash.disarm();
    }

    /// Durably writes a checkpoint of `state` taken at sequence `seq`.
    ///
    /// On success the checkpoint is fully fsynced and atomically renamed
    /// into place. On any error — including an injected crash — the
    /// previous checkpoint is still intact and selectable.
    pub fn save(&mut self, seq: u64, state: &[u8]) -> Result<()> {
        let slot = SLOT_NAMES[self.next_slot];
        let tmp = self.dir.join(format!("{slot}.tmp"));
        let dst = self.dir.join(slot);

        let mut image = Vec::with_capacity(HEADER_LEN + 12 + 8 + state.len());
        image.extend_from_slice(&encode_header(FileKind::Snapshot));
        let mut payload = Vec::with_capacity(8 + state.len());
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(state);
        encode_record(TAG_SNAPSHOT, &payload, &mut image);

        let mut file = File::create(&tmp)?;
        self.crash.write(&mut file, &image)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, &dst)?;
        fsync_dir(&self.dir)?;
        self.next_slot ^= 1;
        Ok(())
    }

    /// Loads the newest valid checkpoint, if any, as `(seq, state)`.
    ///
    /// A slot that is missing, torn, or corrupt is simply skipped — the
    /// other slot (or no checkpoint at all) is the answer.
    pub fn latest(&self) -> Result<Option<(u64, Vec<u8>)>> {
        let mut best: Option<(u64, Vec<u8>)> = None;
        for name in SLOT_NAMES {
            if let Some(bytes) = read_file(&self.dir.join(name))? {
                if let Some((seq, state)) = parse_snapshot(&bytes) {
                    if best.as_ref().is_none_or(|(s, _)| seq > *s) {
                        best = Some((seq, state));
                    }
                }
            }
        }
        Ok(best)
    }
}

/// One replayable journal entry: the sequence number the chunk starts at
/// and its encoded payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Global event sequence number of the first event in the chunk.
    pub seq: u64,
    /// Opaque chunk payload (the caller's encoding of the input batch).
    pub payload: Vec<u8>,
}

/// Lists the sealed segment indices present in `dir`, ascending.
fn list_segment_indices(dir: &Path) -> Result<Vec<u64>> {
    let mut indices = Vec::new();
    let listing = match fs::read_dir(dir) {
        Ok(listing) => listing,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(indices),
        Err(e) => return Err(e.into()),
    };
    for entry in listing {
        let entry = entry?;
        if let Some(index) = entry.file_name().to_str().and_then(parse_segment_name) {
            indices.push(index);
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

/// Strictly validates one sealed segment image and appends its entries to
/// `out`, returning the segment's highest entry sequence. Sealed segments
/// are immutable — a bad header, a torn tail, or a foreign record is
/// corruption, never something to truncate around.
fn read_sealed_segment(bytes: &[u8], out: &mut Vec<JournalEntry>) -> Result<u64> {
    if decode_header(bytes)? != FileKind::Journal {
        return Err(PersistError::corrupt("sealed segment has wrong kind"));
    }
    let scan = scan_records(&bytes[HEADER_LEN..]);
    if scan.torn_tail {
        return Err(PersistError::corrupt("torn record in sealed journal segment"));
    }
    let mut max_seq = 0u64;
    out.reserve(scan.records.len());
    for rec in scan.records {
        if rec.tag != TAG_JOURNAL_CHUNK || rec.payload.len() < 8 {
            return Err(PersistError::corrupt("unexpected record in sealed journal segment"));
        }
        let seq = u64::from_le_bytes(rec.payload[..8].try_into().expect("8 bytes"));
        max_seq = max_seq.max(seq);
        out.push(JournalEntry { seq, payload: rec.payload[8..].to_vec() });
    }
    Ok(max_seq)
}

/// One sealed (immutable) journal segment on disk.
#[derive(Clone, Debug)]
struct SealedSegment {
    index: u64,
    bytes: u64,
    /// Highest entry start-sequence in the segment. Chunks are journaled
    /// at chunk boundaries and checkpoints land at chunk boundaries, so a
    /// checkpoint at sequence `C > max_seq` supersedes every entry here.
    max_seq: u64,
}

/// Append-only write-ahead journal of committed input chunks.
///
/// [`open`](Self::open) validates the header, CRC-scans the body, and
/// **physically truncates** any torn tail before appends resume — a
/// half-written record is dropped exactly as if its append never happened.
/// Appends are buffered writes; call [`sync`](Self::sync) for an explicit
/// durability barrier (checkpointing syncs before declaring a checkpoint
/// that supersedes journal prefix).
///
/// [`rotate`](Self::rotate) seals the active file into an immutable
/// `journal-<k>.seg` segment; [`prune_segments`](Self::prune_segments)
/// deletes segments a durable checkpoint has wholly superseded. Reads
/// ([`open_and_read`](Self::open_and_read) / [`read_all`](Self::read_all))
/// replay sealed segments in index order, then the active file.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    path: PathBuf,
    file: File,
    bytes: u64,
    sealed: Vec<SealedSegment>,
    /// Index the next sealed segment will take (monotonic across reopens).
    next_segment: u64,
    /// Highest entry start-sequence appended or read so far.
    last_seq: Option<u64>,
    crash: CrashPoint,
    rotate_crash: Option<RotateStep>,
    scratch: Vec<u8>,
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, truncating any
    /// torn or corrupt tail left by a crash.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Ok(Self::open_and_read(dir)?.0)
    }

    /// Opens the journal *and* returns every fully-written entry from the
    /// single scan the open already performs — recovery's hot path, where
    /// `open` + [`read_all`](Self::read_all) would read and CRC-check the
    /// whole file twice. The torn-tail truncation of `open` applies.
    pub fn open_and_read(dir: impl AsRef<Path>) -> Result<(Self, Vec<JournalEntry>)> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let mut entries = Vec::new();
        let mut sealed = Vec::new();
        for index in list_segment_indices(dir)? {
            let path = dir.join(segment_name(index));
            let bytes =
                read_file(&path)?.ok_or_else(|| PersistError::corrupt("segment vanished"))?;
            let max_seq = read_sealed_segment(&bytes, &mut entries)?;
            sealed.push(SealedSegment { index, bytes: bytes.len() as u64, max_seq });
        }
        let next_segment = sealed.last().map_or(0, |s| s.index + 1);
        let path = dir.join(JOURNAL_NAME);
        let existing = read_file(&path)?;
        let valid_end = match existing {
            None => None,
            Some(ref bytes) => {
                if bytes.len() < HEADER_LEN || decode_header(bytes).is_err() {
                    // Header itself never fully landed: start the file over.
                    None
                } else if decode_header(bytes)? != FileKind::Journal {
                    return Err(PersistError::corrupt("journal file has wrong kind"));
                } else {
                    let scan = scan_records(&bytes[HEADER_LEN..]);
                    entries.reserve(scan.records.len());
                    for rec in scan.records {
                        if rec.tag != TAG_JOURNAL_CHUNK || rec.payload.len() < 8 {
                            return Err(PersistError::corrupt("unexpected record in journal"));
                        }
                        let seq = u64::from_le_bytes(rec.payload[..8].try_into().expect("8 bytes"));
                        entries.push(JournalEntry { seq, payload: rec.payload[8..].to_vec() });
                    }
                    Some((HEADER_LEN + scan.valid_len) as u64)
                }
            }
        };
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let bytes = match valid_end {
            Some(end) => {
                if file.metadata()?.len() != end {
                    file.set_len(end)?;
                    file.sync_all()?;
                }
                end
            }
            None => {
                file.set_len(0)?;
                file.write_all(&encode_header(FileKind::Journal))?;
                file.sync_all()?;
                HEADER_LEN as u64
            }
        };
        file.seek(SeekFrom::Start(bytes))?;
        let journal = Self {
            dir: dir.to_path_buf(),
            path,
            file,
            bytes,
            sealed,
            next_segment,
            last_seq: entries.last().map(|e| e.seq),
            crash: CrashPoint::default(),
            rotate_crash: None,
            scratch: Vec::new(),
        };
        Ok((journal, entries))
    }

    /// Arms the crash injector (see [`CrashPoint`]).
    pub fn set_crash_after(&mut self, bytes: u64) {
        self.crash.arm(bytes);
    }

    /// Disarms the crash injector.
    pub fn clear_crash(&mut self) {
        self.crash.disarm();
    }

    /// Total bytes in the journal file (header included).
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }

    /// Appends one committed chunk keyed by its starting event sequence.
    pub fn append(&mut self, seq: u64, payload: &[u8]) -> Result<()> {
        self.scratch.clear();
        self.scratch.extend_from_slice(&seq.to_le_bytes());
        self.scratch.extend_from_slice(payload);
        let mut framed = Vec::with_capacity(12 + self.scratch.len());
        encode_record(TAG_JOURNAL_CHUNK, &self.scratch, &mut framed);
        let res = self.crash.write(&mut self.file, &framed);
        match res {
            Ok(()) => {
                self.bytes += framed.len() as u64;
                self.last_seq = Some(self.last_seq.map_or(seq, |s| s.max(seq)));
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Fsyncs the journal file.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        Ok(())
    }

    /// Seals the active file into an immutable `journal-<k>.seg` segment
    /// and starts a fresh active file: sync → atomic rename → directory
    /// fsync → write + fsync the new header. A no-op on an empty journal.
    ///
    /// On any failure the caller must treat the handle as dead (poison):
    /// the in-memory file state may no longer match the directory. A
    /// reopen absorbs every intermediate state — see [`RotateStep`].
    pub fn rotate(&mut self) -> Result<()> {
        if self.bytes <= HEADER_LEN as u64 {
            return Ok(());
        }
        self.file.sync_all()?;
        if self.take_rotate_crash(RotateStep::BeforeRename) {
            return Err(PersistError::InjectedCrash);
        }
        let index = self.next_segment;
        let seg_path = self.dir.join(segment_name(index));
        fs::rename(&self.path, &seg_path)?;
        fsync_dir(&self.dir)?;
        if self.take_rotate_crash(RotateStep::AfterRename) {
            return Err(PersistError::InjectedCrash);
        }
        self.sealed.push(SealedSegment {
            index,
            bytes: self.bytes,
            // rotate() refuses empty journals, so an entry exists.
            max_seq: self.last_seq.expect("non-empty journal has a last sequence"),
        });
        self.next_segment = index + 1;
        let mut file = File::create(&self.path)?;
        let header = encode_header(FileKind::Journal);
        if self.take_rotate_crash(RotateStep::TornHeader) {
            let _ = file.write_all(&header[..HEADER_LEN / 2]);
            let _ = file.sync_all();
            return Err(PersistError::InjectedCrash);
        }
        self.crash.write(&mut file, &header)?;
        file.sync_all()?;
        fsync_dir(&self.dir)?;
        self.file = file;
        self.bytes = HEADER_LEN as u64;
        Ok(())
    }

    /// Deletes every sealed segment wholly superseded by a durable
    /// checkpoint at `durable_floor`: entries are keyed by chunk *start*
    /// sequence and checkpoints land on chunk boundaries, so a segment
    /// whose highest start sequence is below the floor holds only
    /// superseded chunks. Returns how many segments were deleted.
    pub fn prune_segments(&mut self, durable_floor: u64) -> Result<usize> {
        let mut dropped = 0usize;
        let mut err = None;
        self.sealed.retain(|seg| {
            if err.is_some() || seg.max_seq >= durable_floor {
                return true;
            }
            match fs::remove_file(self.dir.join(segment_name(seg.index))) {
                Ok(()) => {
                    dropped += 1;
                    false
                }
                Err(e) => {
                    err = Some(e);
                    true
                }
            }
        });
        if let Some(e) = err {
            return Err(e.into());
        }
        if dropped > 0 {
            // Record how far history has been destroyed *before* declaring
            // the prune done: if every checkpoint later turns out lost or
            // invalid, recovery consults this marker and fails loudly
            // instead of silently replaying the surviving suffix as if it
            // were the whole history.
            write_pruned_floor(&self.dir, durable_floor)?;
            fsync_dir(&self.dir)?;
        }
        Ok(dropped)
    }

    /// Number of sealed segments currently on disk.
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    /// Total rotations this directory has ever performed (the index the
    /// next sealed segment will take).
    pub fn rotations(&self) -> u64 {
        self.next_segment
    }

    /// Total journal footprint: the active file plus every sealed segment
    /// not yet pruned.
    pub fn total_bytes(&self) -> u64 {
        self.bytes + self.sealed.iter().map(|s| s.bytes).sum::<u64>()
    }

    /// Arms a crash at `step` of the next [`rotate`](Self::rotate).
    pub fn set_rotate_crash(&mut self, step: RotateStep) {
        self.rotate_crash = Some(step);
    }

    fn take_rotate_crash(&mut self, step: RotateStep) -> bool {
        if self.rotate_crash == Some(step) {
            self.rotate_crash = None;
            return true;
        }
        false
    }

    /// Reads every fully-written entry — sealed segments in index order,
    /// then the active file — in append order.
    ///
    /// Tolerates a torn tail *of the active file only* (it is ignored,
    /// matching what `open` would truncate); a torn sealed segment is
    /// corruption. Fails only if a header is unreadable in a sealed
    /// segment; an unreadable active header reads as empty.
    pub fn read_all(dir: impl AsRef<Path>) -> Result<Vec<JournalEntry>> {
        let dir = dir.as_ref();
        let mut out = Vec::new();
        for index in list_segment_indices(dir)? {
            let bytes = read_file(&dir.join(segment_name(index)))?
                .ok_or_else(|| PersistError::corrupt("segment vanished"))?;
            read_sealed_segment(&bytes, &mut out)?;
        }
        let path = dir.join(JOURNAL_NAME);
        let Some(bytes) = read_file(&path)? else {
            return Ok(out);
        };
        if bytes.len() < HEADER_LEN || decode_header(&bytes).is_err() {
            return Ok(out);
        }
        if decode_header(&bytes)? != FileKind::Journal {
            return Err(PersistError::corrupt("journal file has wrong kind"));
        }
        let scan = scan_records(&bytes[HEADER_LEN..]);
        out.reserve(scan.records.len());
        for rec in scan.records {
            if rec.tag != TAG_JOURNAL_CHUNK || rec.payload.len() < 8 {
                return Err(PersistError::corrupt("unexpected record in journal"));
            }
            let seq = u64::from_le_bytes(rec.payload[..8].try_into().expect("8 bytes"));
            out.push(JournalEntry { seq, payload: rec.payload[8..].to_vec() });
        }
        Ok(out)
    }

    /// The journal file path (tests corrupt it directly).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Durably records that journal history below `floor` has been destroyed:
/// `floor.bin` = magic + floor (LE) + CRC-32 of the floor bytes, written
/// via temp file + atomic rename so the marker is never torn.
fn write_pruned_floor(dir: &Path, floor: u64) -> Result<()> {
    let mut bytes = Vec::with_capacity(20);
    bytes.extend_from_slice(FLOOR_MAGIC);
    let floor_le = floor.to_le_bytes();
    bytes.extend_from_slice(&floor_le);
    bytes.extend_from_slice(&crate::crc32(&floor_le).to_le_bytes());
    let tmp = dir.join("floor.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    fs::rename(&tmp, dir.join(FLOOR_NAME))?;
    fsync_dir(dir)?;
    Ok(())
}

/// The highest chunk sequence whose journal history this directory has
/// destroyed by pruning, if any segment was ever pruned.
///
/// A recovery whose newest readable checkpoint sits *below* this floor must
/// not replay the surviving journal suffix — the chunks between the
/// checkpoint and the floor are gone, and the result would be a silently
/// partial state. A missing marker means nothing was ever pruned; a
/// malformed or CRC-failing marker is corruption.
pub fn pruned_floor(dir: impl AsRef<Path>) -> Result<Option<u64>> {
    let Some(bytes) = read_file(&dir.as_ref().join(FLOOR_NAME))? else {
        return Ok(None);
    };
    if bytes.len() != 20 || &bytes[..8] != FLOOR_MAGIC {
        return Err(PersistError::corrupt("pruned-floor marker malformed"));
    }
    let floor_le: [u8; 8] = bytes[8..16].try_into().expect("8 bytes");
    let crc: [u8; 4] = bytes[16..20].try_into().expect("4 bytes");
    if crate::crc32(&floor_le) != u32::from_le_bytes(crc) {
        return Err(PersistError::corrupt("pruned-floor marker failed CRC"));
    }
    Ok(Some(u64::from_le_bytes(floor_le)))
}

/// Reads the raw journal file bytes, for tests that corrupt specific
/// offsets.
pub fn read_journal_bytes(dir: impl AsRef<Path>) -> Result<Vec<u8>> {
    let mut f = File::open(dir.as_ref().join(JOURNAL_NAME))?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("asf-persist-test-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn snapshot_save_and_latest_round_trip() {
        let dir = test_dir("snap-rt");
        let mut store = SnapshotStore::open(&dir).unwrap();
        assert!(store.latest().unwrap().is_none());
        store.save(10, b"state-ten").unwrap();
        assert_eq!(store.latest().unwrap(), Some((10, b"state-ten".to_vec())));
        store.save(20, b"state-twenty").unwrap();
        assert_eq!(store.latest().unwrap(), Some((20, b"state-twenty".to_vec())));
        // Both slot files exist now; newest wins.
        store.save(30, b"state-thirty").unwrap();
        assert_eq!(store.latest().unwrap().unwrap().0, 30);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_store_does_not_clobber_newest_slot() {
        let dir = test_dir("snap-reopen");
        let mut store = SnapshotStore::open(&dir).unwrap();
        store.save(1, b"one").unwrap();
        store.save(2, b"two").unwrap();
        drop(store);
        let mut store = SnapshotStore::open(&dir).unwrap();
        // Next save must target the slot holding seq 1, not seq 2: a torn
        // write now must leave seq 2 recoverable.
        store.set_crash_after(5);
        assert!(matches!(store.save(3, b"three"), Err(PersistError::InjectedCrash)));
        store.clear_crash();
        assert_eq!(store.latest().unwrap(), Some((2, b"two".to_vec())));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_at_every_byte_of_a_snapshot_write_preserves_previous() {
        let dir = test_dir("snap-crash");
        let mut store = SnapshotStore::open(&dir).unwrap();
        store.save(5, b"good checkpoint state").unwrap();
        // A full image of the next write is header+record; sweep budgets
        // well past its size to also cover "crash exactly at end of write
        // but before rename" — the tmp file then exists fully but was
        // never renamed, so the old snapshot must still win.
        for budget in 0..96 {
            let mut s = SnapshotStore::open(&dir).unwrap();
            s.set_crash_after(budget);
            let _ = s.save(6, b"newer checkpoint state!");
            let latest = SnapshotStore::open(&dir).unwrap().latest().unwrap();
            let (seq, state) = latest.expect("a checkpoint must survive, budget {budget}");
            if seq == 5 {
                assert_eq!(state, b"good checkpoint state");
            } else {
                assert_eq!(seq, 6, "budget={budget}");
                assert_eq!(state, b"newer checkpoint state!");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_append_read_round_trip() {
        let dir = test_dir("jrnl-rt");
        let mut j = Journal::open(&dir).unwrap();
        j.append(0, b"chunk-zero").unwrap();
        j.append(4, b"chunk-four").unwrap();
        j.sync().unwrap();
        let entries = Journal::read_all(&dir).unwrap();
        assert_eq!(
            entries,
            vec![
                JournalEntry { seq: 0, payload: b"chunk-zero".to_vec() },
                JournalEntry { seq: 4, payload: b"chunk-four".to_vec() },
            ]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_survives_reopen_and_keeps_appending() {
        let dir = test_dir("jrnl-reopen");
        let mut j = Journal::open(&dir).unwrap();
        j.append(0, b"a").unwrap();
        drop(j);
        let mut j = Journal::open(&dir).unwrap();
        j.append(1, b"b").unwrap();
        drop(j);
        let entries = Journal::read_all(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].payload, b"b");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_journal_append_is_truncated_on_reopen() {
        let dir = test_dir("jrnl-torn");
        let mut j = Journal::open(&dir).unwrap();
        j.append(0, b"durable-entry").unwrap();
        let durable_len = j.len_bytes();
        // Tear the next append at every possible byte offset.
        let full = {
            let mut probe = Vec::new();
            let mut body = Vec::new();
            body.extend_from_slice(&7u64.to_le_bytes());
            body.extend_from_slice(b"torn-entry");
            encode_record(TAG_JOURNAL_CHUNK, &body, &mut probe);
            probe.len() as u64
        };
        for budget in 0..full {
            // Fresh copy of the durable state each round.
            let mut j = Journal::open(&dir).unwrap();
            assert_eq!(j.len_bytes(), durable_len, "budget={budget}");
            j.set_crash_after(budget);
            assert!(matches!(j.append(7, b"torn-entry"), Err(PersistError::InjectedCrash)));
            drop(j);
            let entries = Journal::read_all(&dir).unwrap();
            assert_eq!(entries.len(), 1, "budget={budget} leaked a torn entry");
            assert_eq!(entries[0].payload, b"durable-entry");
        }
        // Reopen once more and confirm appends continue cleanly.
        let mut j = Journal::open(&dir).unwrap();
        j.append(7, b"clean-entry").unwrap();
        drop(j);
        let entries = Journal::read_all(&dir).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].payload, b"clean-entry");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_journal_tail_is_dropped_not_replayed() {
        let dir = test_dir("jrnl-flip");
        let mut j = Journal::open(&dir).unwrap();
        j.append(0, b"keep").unwrap();
        let keep_end = j.len_bytes() as usize;
        j.append(1, b"flip-victim").unwrap();
        j.sync().unwrap();
        drop(j);
        let pristine = read_journal_bytes(&dir).unwrap();
        for i in keep_end..pristine.len() {
            let mut copy = pristine.clone();
            copy[i] ^= 0x40;
            fs::write(dir.join(JOURNAL_NAME), &copy).unwrap();
            let entries = Journal::read_all(&dir).unwrap();
            assert_eq!(entries.len(), 1, "flip at byte {i} leaked a corrupt entry");
            assert_eq!(entries[0].payload, b"keep");
            // Reopen truncates the corrupt tail physically.
            drop(Journal::open(&dir).unwrap());
            assert_eq!(read_journal_bytes(&dir).unwrap().len(), keep_end);
            fs::write(dir.join(JOURNAL_NAME), &pristine).unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_with_destroyed_header_restarts_empty() {
        let dir = test_dir("jrnl-hdr");
        let mut j = Journal::open(&dir).unwrap();
        j.append(0, b"entry").unwrap();
        drop(j);
        // Truncate into the header: nothing replayable remains.
        let bytes = read_journal_bytes(&dir).unwrap();
        fs::write(dir.join(JOURNAL_NAME), &bytes[..HEADER_LEN / 2]).unwrap();
        assert!(Journal::read_all(&dir).unwrap().is_empty());
        let mut j = Journal::open(&dir).unwrap();
        assert_eq!(j.len_bytes(), HEADER_LEN as u64);
        j.append(9, b"fresh").unwrap();
        drop(j);
        let entries = Journal::read_all(&dir).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].seq, 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_reads_as_empty() {
        let dir = test_dir("jrnl-none");
        assert!(Journal::read_all(&dir).unwrap().is_empty());
    }

    #[test]
    fn rotation_preserves_entries_across_segments_and_reopen() {
        let dir = test_dir("jrnl-rot");
        let mut j = Journal::open(&dir).unwrap();
        j.append(0, b"in-seg-0").unwrap();
        j.rotate().unwrap();
        j.append(1, b"in-seg-1").unwrap();
        j.append(2, b"also-seg-1").unwrap();
        j.rotate().unwrap();
        j.append(3, b"active").unwrap();
        j.sync().unwrap();
        assert_eq!(j.sealed_segments(), 2);
        assert_eq!(j.rotations(), 2);
        assert!(j.total_bytes() > j.len_bytes());
        drop(j);

        let seqs: Vec<u64> = Journal::read_all(&dir).unwrap().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);

        // Reopen resumes the segment index sequence and keeps appending.
        let (mut j, entries) = Journal::open_and_read(&dir).unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(j.sealed_segments(), 2);
        assert_eq!(j.rotations(), 2);
        j.append(4, b"post-reopen").unwrap();
        j.rotate().unwrap();
        assert_eq!(j.rotations(), 3);
        drop(j);
        assert_eq!(Journal::read_all(&dir).unwrap().len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotating_an_empty_journal_is_a_no_op() {
        let dir = test_dir("jrnl-rot-empty");
        let mut j = Journal::open(&dir).unwrap();
        j.rotate().unwrap();
        assert_eq!(j.sealed_segments(), 0);
        assert_eq!(j.rotations(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_drops_only_superseded_segments() {
        let dir = test_dir("jrnl-prune");
        let mut j = Journal::open(&dir).unwrap();
        j.append(0, b"a").unwrap();
        j.append(5, b"b").unwrap();
        j.rotate().unwrap(); // seg 0: max_seq 5
        j.append(10, b"c").unwrap();
        j.rotate().unwrap(); // seg 1: max_seq 10
        j.append(20, b"d").unwrap();

        // Floor at 10: seg 0 (max 5) is wholly superseded; seg 1's entry
        // at 10 starts exactly at the floor, so it must survive.
        assert_eq!(j.prune_segments(10).unwrap(), 1);
        assert_eq!(j.sealed_segments(), 1);
        let seqs: Vec<u64> = Journal::read_all(&dir).unwrap().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![10, 20]);

        assert_eq!(j.prune_segments(11).unwrap(), 1);
        assert_eq!(j.sealed_segments(), 0);
        assert_eq!(Journal::read_all(&dir).unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_records_a_durable_floor_marker() {
        let dir = test_dir("jrnl-floor");
        let mut j = Journal::open(&dir).unwrap();
        // Nothing pruned yet: no marker.
        assert_eq!(pruned_floor(&dir).unwrap(), None);
        j.append(0, b"a").unwrap();
        j.rotate().unwrap();
        j.append(10, b"b").unwrap();
        // A prune that drops nothing must not invent a marker.
        assert_eq!(j.prune_segments(0).unwrap(), 0);
        assert_eq!(pruned_floor(&dir).unwrap(), None);
        // A real prune records its floor; later prunes advance it.
        assert_eq!(j.prune_segments(7).unwrap(), 1);
        assert_eq!(pruned_floor(&dir).unwrap(), Some(7));
        j.rotate().unwrap();
        assert_eq!(j.prune_segments(11).unwrap(), 1);
        assert_eq!(pruned_floor(&dir).unwrap(), Some(11));
        // The marker survives reopen and detects corruption.
        drop(j);
        assert_eq!(pruned_floor(&dir).unwrap(), Some(11));
        let path = dir.join(FLOOR_NAME);
        let mut bytes = fs::read(&path).unwrap();
        bytes[12] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(pruned_floor(&dir), Err(PersistError::Corrupt(_))));
        fs::write(&path, b"short").unwrap();
        assert!(matches!(pruned_floor(&dir), Err(PersistError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_at_every_rotate_step_leaves_a_recoverable_directory() {
        for step in [RotateStep::BeforeRename, RotateStep::AfterRename, RotateStep::TornHeader] {
            let dir = test_dir("jrnl-rot-crash");
            let mut j = Journal::open(&dir).unwrap();
            j.append(0, b"durable-a").unwrap();
            j.append(1, b"durable-b").unwrap();
            j.sync().unwrap();
            j.set_rotate_crash(step);
            assert!(
                matches!(j.rotate(), Err(PersistError::InjectedCrash)),
                "{step:?}: crash must fire"
            );
            drop(j);

            // Whatever intermediate state the crash left, reopen absorbs
            // it and every durable entry survives.
            let (mut j, entries) = Journal::open_and_read(&dir).unwrap();
            let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
            assert_eq!(seqs, vec![0, 1], "{step:?}: durable entries lost");
            j.append(2, b"post-crash").unwrap();
            j.rotate().unwrap();
            j.append(3, b"fresh").unwrap();
            drop(j);
            let seqs: Vec<u64> = Journal::read_all(&dir).unwrap().iter().map(|e| e.seq).collect();
            assert_eq!(seqs, vec![0, 1, 2, 3], "{step:?}: post-crash appends lost");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn torn_sealed_segment_is_corruption_not_truncation() {
        let dir = test_dir("jrnl-seg-torn");
        let mut j = Journal::open(&dir).unwrap();
        j.append(0, b"sealed-entry").unwrap();
        j.rotate().unwrap();
        drop(j);
        let seg = dir.join(segment_name(0));
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 1]).unwrap();
        assert!(matches!(Journal::read_all(&dir), Err(PersistError::Corrupt(_))));
        assert!(matches!(Journal::open_and_read(&dir), Err(PersistError::Corrupt(_))));
        fs::remove_dir_all(&dir).unwrap();
    }
}
