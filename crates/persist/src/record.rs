//! The tagged on-disk record format.
//!
//! Both durable file kinds — snapshots and journals — are a versioned
//! header followed by a sequence of CRC-framed records, the tag/len record
//! idiom of the ubik VLDB5 `.DB0` layout:
//!
//! ```text
//! file   := header record*
//! header := magic[8] version:u32 kind:u32            (16 bytes)
//! record := tag:u32 len:u32 payload[len] crc:u32     (12 + len bytes)
//! ```
//!
//! The CRC covers `tag | len | payload`, so a torn write — a record whose
//! tail never reached the disk — is detected no matter where the tear
//! lands: inside the 8-byte record header, inside the payload, or inside
//! the checksum itself. [`scan_records`] walks a file image and stops at
//! the first frame that does not verify, reporting the byte offset of the
//! end of the last *valid* record so journals can cleanly truncate a torn
//! tail instead of replaying it.

use crate::crc::{crc32, Crc32};
use crate::{PersistError, Result};

/// File magic: identifies an asf persistence file.
pub const FILE_MAGIC: [u8; 8] = *b"ASFDUR01";

/// Current format version, written into every file header.
pub const FORMAT_VERSION: u32 = 1;

/// Bytes of the file header (`magic + version + kind`).
pub const HEADER_LEN: usize = 16;

/// Bytes of record framing around a payload (`tag + len` before, `crc`
/// after).
pub const RECORD_OVERHEAD: usize = 12;

/// Upper bound on a single record payload (1 GiB) — a length field larger
/// than this is treated as corruption rather than an allocation request.
pub const MAX_RECORD_LEN: u32 = 1 << 30;

/// What a persistence file holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// A point-in-time state snapshot (one checkpoint).
    Snapshot,
    /// An append-only journal of committed input chunks.
    Journal,
}

impl FileKind {
    fn code(self) -> u32 {
        match self {
            FileKind::Snapshot => 1,
            FileKind::Journal => 2,
        }
    }

    fn from_code(code: u32) -> Result<Self> {
        match code {
            1 => Ok(FileKind::Snapshot),
            2 => Ok(FileKind::Journal),
            _ => Err(PersistError::corrupt("unknown file kind")),
        }
    }
}

/// Encodes the 16-byte versioned file header for `kind`.
pub fn encode_header(kind: FileKind) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&FILE_MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&kind.code().to_le_bytes());
    h
}

/// Validates a file header, returning its kind.
///
/// Fails on short files, wrong magic, or a version this build does not
/// read — never panics on arbitrary bytes.
pub fn decode_header(bytes: &[u8]) -> Result<FileKind> {
    if bytes.len() < HEADER_LEN {
        return Err(PersistError::corrupt("file shorter than header"));
    }
    if bytes[..8] != FILE_MAGIC {
        return Err(PersistError::corrupt("bad file magic"));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != FORMAT_VERSION {
        return Err(PersistError::corrupt("unsupported format version"));
    }
    FileKind::from_code(u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]))
}

/// Appends one framed record (`tag | len | payload | crc`) to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_RECORD_LEN`].
pub fn encode_record(tag: u32, payload: &[u8], out: &mut Vec<u8>) {
    let len = u32::try_from(payload.len()).expect("record payload too long");
    assert!(len <= MAX_RECORD_LEN, "record payload too long");
    let mut crc = Crc32::new();
    crc.update(&tag.to_le_bytes());
    crc.update(&len.to_le_bytes());
    crc.update(payload);
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc.finish().to_le_bytes());
}

/// One record recovered from a file image.
#[derive(Clone, Copy, Debug)]
pub struct Record<'a> {
    /// The record's type tag.
    pub tag: u32,
    /// The payload bytes (CRC already verified).
    pub payload: &'a [u8],
}

/// The outcome of scanning a record region.
#[derive(Clone, Debug)]
pub struct Scan<'a> {
    /// Every fully-written, CRC-valid record, in file order.
    pub records: Vec<Record<'a>>,
    /// Byte offset (within the scanned region) one past the last valid
    /// record — where a journal should truncate to drop a torn tail.
    pub valid_len: usize,
    /// Whether bytes past `valid_len` existed but did not verify (torn or
    /// corrupt tail). `false` means the region ended exactly on a record
    /// boundary.
    pub torn_tail: bool,
}

/// Walks `bytes` (the region *after* the file header) as a record
/// sequence.
///
/// Stops at the first frame that is incomplete or fails its CRC; bytes
/// from there on are reported via [`Scan::torn_tail`], never surfaced as
/// records. Scanning never panics and never reads past the buffer,
/// whatever the bytes contain.
pub fn scan_records(bytes: &[u8]) -> Scan<'_> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return Scan { records, valid_len: pos, torn_tail: false };
        }
        if rest.len() < RECORD_OVERHEAD {
            return Scan { records, valid_len: pos, torn_tail: true };
        }
        let tag = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_RECORD_LEN || (len as usize) > rest.len() - RECORD_OVERHEAD {
            return Scan { records, valid_len: pos, torn_tail: true };
        }
        let payload = &rest[8..8 + len as usize];
        let stored = {
            let c = &rest[8 + len as usize..RECORD_OVERHEAD + len as usize];
            u32::from_le_bytes([c[0], c[1], c[2], c[3]])
        };
        let mut crc = Crc32::new();
        crc.update(&rest[..8]);
        crc.update(payload);
        if crc.finish() != stored {
            return Scan { records, valid_len: pos, torn_tail: true };
        }
        records.push(Record { tag, payload });
        pos += RECORD_OVERHEAD + len as usize;
    }
}

/// Convenience for single-record files (snapshots): scans and requires
/// exactly one valid record with `tag`, rejecting torn tails and trailing
/// bytes.
pub fn read_single_record(bytes: &[u8], tag: u32) -> Result<&[u8]> {
    let scan = scan_records(bytes);
    if scan.torn_tail {
        return Err(PersistError::corrupt("torn record"));
    }
    match scan.records.as_slice() {
        [r] if r.tag == tag => Ok(r.payload),
        [_] => Err(PersistError::corrupt("unexpected record tag")),
        _ => Err(PersistError::corrupt("expected exactly one record")),
    }
}

/// Checks `bytes` is a whole valid file of `kind` and returns the record
/// region (header stripped).
pub fn file_body(bytes: &[u8], kind: FileKind) -> Result<&[u8]> {
    let found = decode_header(bytes)?;
    if found != kind {
        return Err(PersistError::corrupt("wrong file kind"));
    }
    Ok(&bytes[HEADER_LEN..])
}

/// CRC-32 of an arbitrary byte string — re-exported at the record layer so
/// callers fingerprinting configs don't need the `crc` module directly.
pub fn checksum(bytes: &[u8]) -> u32 {
    crc32(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(records: &[(u32, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        for &(tag, payload) in records {
            encode_record(tag, payload, &mut out);
        }
        out
    }

    #[test]
    fn header_round_trip() {
        for kind in [FileKind::Snapshot, FileKind::Journal] {
            let h = encode_header(kind);
            assert_eq!(decode_header(&h).unwrap(), kind);
        }
        assert!(decode_header(b"short").is_err());
        let mut bad = encode_header(FileKind::Journal);
        bad[0] ^= 0xFF;
        assert!(decode_header(&bad).is_err());
        let mut future = encode_header(FileKind::Journal);
        future[8] = 99;
        assert!(decode_header(&future).is_err());
    }

    #[test]
    fn records_round_trip_in_order() {
        let bytes = body(&[(1, b"alpha"), (2, b""), (7, b"gamma-payload")]);
        let scan = scan_records(&bytes);
        assert!(!scan.torn_tail);
        assert_eq!(scan.valid_len, bytes.len());
        let got: Vec<(u32, &[u8])> = scan.records.iter().map(|r| (r.tag, r.payload)).collect();
        assert_eq!(got, vec![(1, b"alpha" as &[u8]), (2, b""), (7, b"gamma-payload")]);
    }

    #[test]
    fn truncation_at_every_offset_never_yields_the_torn_record() {
        let bytes = body(&[(1, b"first"), (2, b"second-record-payload")]);
        let first_len = RECORD_OVERHEAD + 5;
        for cut in 0..bytes.len() {
            let scan = scan_records(&bytes[..cut]);
            // Only fully-written records may surface.
            let expect = usize::from(cut >= first_len);
            assert_eq!(scan.records.len(), expect, "cut={cut}");
            assert_eq!(scan.valid_len, expect * first_len, "cut={cut}");
            assert!(scan.torn_tail || cut == bytes.len() || cut == first_len || cut == 0);
        }
    }

    #[test]
    fn corrupt_tail_is_detected_at_every_byte() {
        let bytes = body(&[(1, b"keep-me"), (2, b"tail")]);
        let first_len = RECORD_OVERHEAD + 7;
        let mut copy = bytes.clone();
        for i in first_len..bytes.len() {
            copy[i] ^= 0x01;
            let scan = scan_records(&copy);
            assert_eq!(scan.records.len(), 1, "flip at {i} leaked the tail record");
            assert_eq!(scan.records[0].payload, b"keep-me");
            assert_eq!(scan.valid_len, first_len);
            assert!(scan.torn_tail);
            copy[i] ^= 0x01;
        }
    }

    #[test]
    fn absurd_length_field_is_corruption_not_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let scan = scan_records(&bytes);
        assert!(scan.records.is_empty());
        assert!(scan.torn_tail);
    }

    #[test]
    fn single_record_helper_enforces_shape() {
        let one = body(&[(5, b"snap")]);
        assert_eq!(read_single_record(&one, 5).unwrap(), b"snap");
        assert!(read_single_record(&one, 6).is_err(), "wrong tag");
        let two = body(&[(5, b"snap"), (5, b"again")]);
        assert!(read_single_record(&two, 5).is_err(), "two records");
        let torn = &one[..one.len() - 1];
        assert!(read_single_record(torn, 5).is_err(), "torn");
    }
}
