//! # asf-persist — durability primitives for adaptive stream filters
//!
//! Dependency-free (std only) persistence layer giving the asf server
//! durable filter state and deterministic crash recovery:
//!
//! - [`crc`] — const-table CRC-32 (IEEE), the integrity check on every
//!   on-disk record.
//! - [`codec`] — [`StateWriter`]/[`StateReader`], the fixed-width
//!   little-endian encoding every persisted domain type goes through
//!   (`f64` as raw bits, so recovered state is bit-exact).
//! - [`record`] — the tagged `{tag, len, payload, crc}` record format with
//!   versioned file headers, plus torn-tail-aware scanning.
//! - [`store`] — [`SnapshotStore`] (double-buffered, tmp+fsync+rename
//!   checkpoints) and [`Journal`] (append-only write-ahead log with CRC
//!   truncation of torn tails), both with byte-budget [`CrashPoint`] fault
//!   injection.
//!
//! The contract the layers add up to: after a crash at **any** byte of any
//! write, recovery finds the latest fully-durable checkpoint and the
//! longest fully-written journal prefix — never a half-written record —
//! and replaying that prefix through the deterministic engine reproduces
//! the pre-crash state byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod record;
pub mod store;

pub use codec::{StateReader, StateWriter};
pub use crc::{crc32, Crc32};
pub use record::{
    decode_header, encode_header, encode_record, scan_records, FileKind, Record, Scan,
    FORMAT_VERSION, HEADER_LEN, MAX_RECORD_LEN, RECORD_OVERHEAD,
};
pub use store::{
    pruned_floor, CrashPoint, Journal, JournalEntry, RotateStep, SnapshotImage, SnapshotStore,
    TAG_JOURNAL_CHUNK, TAG_SNAPSHOT,
};

/// Errors from the persistence layer.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// On-disk bytes failed validation (bad magic, bad CRC, truncated
    /// payload, …). The message names the first check that failed.
    Corrupt(&'static str),
    /// A [`store::CrashPoint`] fired: the write died mid-flight with only
    /// a prefix durable. Test-harness only; never produced in production.
    InjectedCrash,
}

impl PersistError {
    /// Shorthand for a corruption error with a static description.
    pub fn corrupt(msg: &'static str) -> Self {
        PersistError::Corrupt(msg)
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist i/o error: {e}"),
            PersistError::Corrupt(msg) => write!(f, "persist corruption: {msg}"),
            PersistError::InjectedCrash => write!(f, "injected crash point fired"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PersistError>;
