//! Fixed-width little-endian state encoding.
//!
//! Every domain type that persists itself (filters, views, ledgers,
//! protocol state) serializes through [`StateWriter`] / [`StateReader`] so
//! the byte layout is defined in exactly one place. The encoding is
//! deliberately boring: fixed-width little-endian integers, `f64` as raw
//! IEEE-754 bits (`to_bits`/`from_bits`, so `-0.0`, infinities, and every
//! NaN payload round-trip bit-exactly — byte-identical recovery depends on
//! it), and length-prefixed byte strings. No varints, no implicit
//! alignment, no versioning at this layer — files carry a versioned header
//! and records carry tags; payloads are only ever decoded by the version
//! that wrote them.

use crate::{PersistError, Result};

/// An append-only state encoder over a growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer reusing `buf` (cleared first) so checkpoint serialization
    /// can recycle one allocation across rounds.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self { buf }
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes, borrowed.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (`0` / `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bits, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends an `Option<f64>` as a presence byte plus (if present) the
    /// raw bits.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
        }
    }

    /// Appends a length-prefixed (`u32`) byte string.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds `u32::MAX` — no state blob in this
    /// system comes within orders of magnitude of that.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        let len = u32::try_from(bytes.len()).expect("byte string too long");
        self.put_u32(len);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// A cursor decoding what a [`StateWriter`] encoded.
///
/// Every getter fails with [`PersistError::Corrupt`] instead of panicking
/// when the buffer is short — decoding always happens on bytes that came
/// off a disk, and a CRC collision, however unlikely, must surface as an
/// error, not a crash.
#[derive(Clone, Copy, Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed — decoders call this last so a
    /// payload with trailing garbage (wrong version, wrong type) is
    /// rejected rather than silently half-read.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::corrupt("trailing bytes after decoded state"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(PersistError::corrupt("state payload truncated"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool encoded as one byte; any value other than `0`/`1` is
    /// corruption.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::corrupt("invalid bool byte")),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f64` from raw IEEE-754 bits.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an `Option<f64>` (presence byte plus raw bits).
    pub fn get_opt_f64(&mut self) -> Result<Option<f64>> {
        if self.get_bool()? {
            Ok(Some(self.get_f64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed byte string, borrowed from the buffer.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.get_bytes()?)
            .map_err(|_| PersistError::corrupt("string is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::INFINITY);
        w.put_opt_f64(None);
        w.put_opt_f64(Some(42.5));
        w.put_bytes(b"blob");
        w.put_str("RTP");

        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap(), f64::INFINITY);
        assert_eq!(r.get_opt_f64().unwrap(), None);
        assert_eq!(r.get_opt_f64().unwrap(), Some(42.5));
        assert_eq!(r.get_bytes().unwrap(), b"blob");
        assert_eq!(r.get_str().unwrap(), "RTP");
        r.finish().unwrap();
    }

    #[test]
    fn nan_payloads_round_trip_bit_exactly() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = StateWriter::new();
        w.put_f64(weird);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn truncation_errors_do_not_panic() {
        let mut w = StateWriter::new();
        w.put_u64(1);
        w.put_bytes(b"payload");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = StateReader::new(&bytes[..cut]);
            // Either read may fail; neither may panic, and a fully-read
            // prefix must fail `finish`.
            let ok = r.get_u64().is_ok() && r.get_bytes().is_ok() && r.finish().is_ok();
            assert!(!ok, "truncated buffer decoded cleanly at {cut}");
        }
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut w = StateWriter::new();
        w.put_u32(5);
        w.put_u8(9);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u32().unwrap(), 5);
        assert!(r.finish().is_err());
    }

    #[test]
    fn invalid_bool_is_corruption() {
        let mut r = StateReader::new(&[2]);
        assert!(r.get_bool().is_err());
    }
}
