//! Multiple concurrent rank queries over one shared population index
//! (paper §7's multi-query direction, applied to §5's rank protocols).
//!
//! Running `m` independent ZT-RP instances maintains `m` rank structures
//! and broadcasts `m` ball filters per crossing. This protocol shares
//! **everything** instead:
//!
//! * **One rank index.** The protocol declares a single
//!   [`RankSpace`], so the engine maintains one [`crate::rank::RankForest`]
//!   over the population; every query's answer is a *prefix view* of the
//!   same best-first order (`top-k_j` = the first `k_j` entries), so a
//!   query costs O(1) state beyond its `k`.
//! * **One filter per source.** The distinct `k` values induce *rank
//!   cells*: key thresholds `d_k = (key(rank k) + key(rank k+1)) / 2`
//!   (the paper's `Deploy_bound` position, one per tracked `k`) partition
//!   the key space into bands. A source's filter is the value-preimage of
//!   its current band, so it reports **exactly** when it crosses a
//!   boundary some query's answer depends on — swaps confined to one band
//!   stay silent because no tracked top-k set can change without a key
//!   crossing a cut.
//!
//! Per report the protocol re-walks the top `K + 1` entries of the shared
//! index (`K` = max k), refreshes the shared answer prefix and the cuts,
//! and re-installs band filters only for sources in bands adjacent to a
//! cut that actually moved. The walk cost is O(K log n) — independent of
//! the *query count* `m`, which is the multi-query win: 100k top-k queries
//! cost the same maintenance as one.
//!
//! Like ZT-RP (which this degenerates to at `m = 1`, modulo its broadcast
//! being band-targeted here), exactness assumes no two streams tie at a
//! deployed cut: equal keys cannot be separated by any key filter. Ties
//! are measure-zero for continuous values; the paper ignores them.

use std::collections::HashMap;

use asf_telemetry::Cause;
use streamnet::{Filter, StreamId};

use crate::answer::AnswerSet;
use crate::error::ConfigError;
use crate::protocol::{Protocol, ServerCtx};
use crate::query::{RankQuery, RankSpace};

/// Zero-tolerance maintenance of several rank queries (same
/// [`RankSpace`], arbitrary `k`s) over one shared rank index and one
/// shared band filter per source.
pub struct MultiRankZt {
    queries: Vec<RankQuery>,
    space: RankSpace,
    /// All query `k`s, ascending (duplicates kept — used to count the
    /// queries a report's answer changes actually touch).
    sorted_ks: Vec<usize>,
    /// Distinct `k`s, ascending — one cut per entry.
    distinct_ks: Vec<usize>,
    /// `max(k)`: the shared answer prefix length.
    max_k: usize,
    /// Key-space cut `d_k` per entry of `distinct_ks` (NaN before
    /// initialization; NaN compares unequal, so the first recompute treats
    /// every cut as moved and deploys all bands).
    cuts: Vec<f64>,
    /// The shared answer prefix: ids of ranks `1..=max_k`, best first.
    /// Query `j`'s answer is `top_ids[..k_j]`.
    top_ids: Vec<StreamId>,
    recomputes: u64,
}

impl MultiRankZt {
    /// Creates the protocol over a non-empty set of rank queries sharing
    /// one [`RankSpace`]. Requires (checked at initialization) `n > max k`.
    pub fn new(queries: Vec<RankQuery>) -> Result<Self, ConfigError> {
        let Some(first) = queries.first() else {
            return Err(ConfigError::InvalidQuery("need at least one rank query".into()));
        };
        let space = first.space();
        if queries.iter().any(|q| q.space() != space) {
            return Err(ConfigError::InvalidQuery(
                "all multi-rank queries must share one rank space".into(),
            ));
        }
        let mut sorted_ks: Vec<usize> = queries.iter().map(|q| q.k()).collect();
        sorted_ks.sort_unstable();
        let mut distinct_ks = sorted_ks.clone();
        distinct_ks.dedup();
        let max_k = *distinct_ks.last().expect("non-empty");
        let cuts = vec![f64::NAN; distinct_ks.len()];
        Ok(Self {
            queries,
            space,
            sorted_ks,
            distinct_ks,
            max_k,
            cuts,
            top_ids: Vec::new(),
            recomputes: 0,
        })
    }

    /// The queries being maintained.
    pub fn queries(&self) -> &[RankQuery] {
        &self.queries
    }

    /// The shared rank space.
    pub fn space(&self) -> RankSpace {
        self.space
    }

    /// The number of key bands the population is divided into (distinct
    /// `k`s + 1).
    pub fn num_bands(&self) -> usize {
        self.distinct_ks.len() + 1
    }

    /// How many times the shared top walk ran.
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    /// The answer of query `j`, materialized as a dense set.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or before initialization.
    pub fn answer_of(&self, j: usize) -> AnswerSet {
        let k = self.queries[j].k();
        assert!(self.top_ids.len() >= k, "answer_of before initialization");
        self.top_ids[..k].iter().copied().collect()
    }

    /// The band index of key `κ`: bands are `[0th cut..]`-delimited
    /// half-open key intervals `(d_{i-1}, d_i]` (balls are closed above).
    fn band_of(&self, key: f64) -> usize {
        self.cuts.partition_point(|&c| c < key)
    }

    /// The value-space filter of band `i` for a source believed at `v`.
    ///
    /// The filter is a **subset** of the band's value-preimage (endpoints
    /// are nudged inward until their keys verifiably land in the band, so
    /// f64 rounding in `key()` can only cause extra reports, never false
    /// silence), and always contains `v` — falling back to the degenerate
    /// `[v, v]` (report any change) if rounding leaves no room.
    fn band_filter(&self, i: usize, v: f64) -> Filter {
        let a = if i == 0 { f64::NEG_INFINITY } else { self.cuts[i - 1] };
        let b = if i == self.cuts.len() { f64::INFINITY } else { self.cuts[i] };
        let (mut lo, mut hi) = match self.space {
            RankSpace::KMin => (
                if a.is_finite() { a.next_up() } else { f64::NEG_INFINITY },
                if b.is_finite() { b } else { f64::INFINITY },
            ),
            RankSpace::TopK => (
                if b.is_finite() { -b } else { f64::NEG_INFINITY },
                if a.is_finite() { (-a).next_down() } else { f64::INFINITY },
            ),
            RankSpace::Knn { q } => {
                if !a.is_finite() || a < 0.0 {
                    // Innermost band: the closed ball around q.
                    (
                        if b.is_finite() { q - b } else { f64::NEG_INFINITY },
                        if b.is_finite() { q + b } else { f64::INFINITY },
                    )
                } else if v >= q {
                    ((q + a).next_up(), if b.is_finite() { q + b } else { f64::INFINITY })
                } else {
                    (if b.is_finite() { q - b } else { f64::NEG_INFINITY }, (q - a).next_down())
                }
            }
        };
        let in_band = |key: f64| key > a && key <= b;
        for _ in 0..8 {
            if lo.is_finite() && !in_band(self.space.key(lo)) {
                lo = lo.next_up();
            } else {
                break;
            }
        }
        for _ in 0..8 {
            if hi.is_finite() && !in_band(self.space.key(hi)) {
                hi = hi.next_down();
            } else {
                break;
            }
        }
        let lo_ok = !lo.is_finite() || in_band(self.space.key(lo));
        let hi_ok = !hi.is_finite() || in_band(self.space.key(hi));
        if lo_ok && hi_ok && lo <= v && v <= hi {
            Filter::interval(lo, hi)
        } else {
            Filter::interval(v, v)
        }
    }

    /// How many queries' answer sets differ between the old and new shared
    /// prefix — exact: a query with parameter `k` is touched iff the id
    /// *sets* `old[..k]` and `new[..k]` differ (prefix *rotations* leave
    /// deeper queries untouched).
    fn touched_queries(&self, new_top: &[StreamId]) -> u64 {
        let old = &self.top_ids;
        if old.len() != new_top.len() {
            return self.queries.len() as u64; // initialization: all answers form
        }
        let mut lo = 0;
        while lo < new_top.len() && old[lo] == new_top[lo] {
            lo += 1;
        }
        if lo == new_top.len() {
            return 0;
        }
        // Walk the prefix lengths past the first difference, maintaining
        // the multiset delta between the two prefixes; a prefix length is
        // touched while the delta is non-empty.
        let mut delta: HashMap<u32, i32> = HashMap::new();
        let mut nonzero = 0usize;
        let mut touched = 0u64;
        for k in (lo + 1)..=new_top.len() {
            for (id, sgn) in [(old[k - 1].0, 1), (new_top[k - 1].0, -1)] {
                let e = delta.entry(id).or_insert(0);
                let was = *e;
                *e += sgn;
                if was == 0 && *e != 0 {
                    nonzero += 1;
                } else if was != 0 && *e == 0 {
                    nonzero -= 1;
                }
            }
            if nonzero > 0 {
                let s = self.sorted_ks.partition_point(|&x| x < k);
                let e = self.sorted_ks.partition_point(|&x| x <= k);
                touched += (e - s) as u64;
            }
        }
        touched
    }

    /// One shared maintenance pass: re-walk the top `K + 1` entries,
    /// refresh the answer prefix and cuts, and queue band re-installs for
    /// sources adjacent to cuts that moved. Returns the number of query
    /// answers the pass changed.
    fn recompute(&mut self, ctx: &mut ServerCtx<'_>) -> u64 {
        let kmax = self.max_k;
        assert!(ctx.n() > kmax, "MULTI-ZT-RANK requires n > max k, got n = {}", ctx.n());
        self.recomputes += 1;
        let walk = ctx.ranks(self.space).top_pairs(kmax + 1);
        let new_top: Vec<StreamId> = walk[..kmax].iter().map(|&(_, id)| id).collect();
        let touched = self.touched_queries(&new_top);
        let new_cuts: Vec<f64> =
            self.distinct_ks.iter().map(|&k| (walk[k - 1].0 + walk[k].0) / 2.0).collect();
        // Bands needing redeployment: both neighbours of every moved cut.
        // (NaN initial cuts compare unequal, so the first pass deploys all.)
        let num_bands = self.num_bands();
        let mut affected = vec![false; num_bands];
        for (i, (&new, &old)) in new_cuts.iter().zip(self.cuts.iter()).enumerate() {
            if new != old {
                affected[i] = true;
                affected[i + 1] = true;
            }
        }
        self.cuts = new_cuts;
        self.top_ids = new_top;
        // Inner affected bands: contiguous rank ranges of the walk. The
        // outermost band spans every remaining source (the ZT-RP broadcast
        // drawback, paid once for all m queries instead of m times).
        let mut in_top_affected = vec![false; kmax + 1];
        for (i, &hit) in affected.iter().enumerate().take(num_bands - 1) {
            if hit {
                let r_lo = if i == 0 { 0 } else { self.distinct_ks[i - 1] };
                let r_hi = self.distinct_ks[i];
                for flag in &mut in_top_affected[r_lo..r_hi] {
                    *flag = true;
                }
            }
        }
        // Rank kmax+1 belongs to the outermost band.
        if affected[num_bands - 1] {
            in_top_affected[kmax] = true;
        }
        for (r, &hit) in in_top_affected.iter().enumerate() {
            if hit {
                let (key, id) = walk[r];
                let v = ctx.view().get(id);
                debug_assert_eq!(self.space.key(v), key);
                ctx.install_later(id, self.band_filter(self.band_of(key), v));
            }
        }
        if affected[num_bands - 1] {
            // Everyone below rank kmax+1: all ids minus the walked prefix.
            let mut walked = vec![false; ctx.n()];
            for &(_, id) in &walk {
                walked[id.index()] = true;
            }
            for (idx, _) in walked.iter().enumerate().filter(|&(_, &w)| !w) {
                let id = StreamId(idx as u32);
                let v = ctx.view().get(id);
                ctx.install_later(id, self.band_filter(num_bands - 1, v));
            }
        }
        touched
    }
}

impl Protocol for MultiRankZt {
    fn name(&self) -> &'static str {
        "MULTI-ZT-RANK"
    }

    fn initialize(&mut self, ctx: &mut ServerCtx<'_>) {
        ctx.probe_all();
        self.recompute(ctx);
    }

    fn on_update(&mut self, _id: StreamId, _value: f64, ctx: &mut ServerCtx<'_>) {
        ctx.set_cause(Cause::BoundRecompute);
        let start = std::time::Instant::now();
        let touched = self.recompute(ctx);
        ctx.note_routing(touched, start.elapsed().as_nanos() as u64);
    }

    /// The union of all query answers — the largest prefix, i.e. the whole
    /// shared top list (per-query answers via [`MultiRankZt::answer_of`]).
    fn answer(&self) -> AnswerSet {
        self.top_ids.iter().copied().collect()
    }

    fn save_state(&self, w: &mut asf_persist::StateWriter) {
        w.put_u64(self.recomputes);
        w.put_u64(self.cuts.len() as u64);
        for &c in &self.cuts {
            w.put_f64(c);
        }
        crate::protocol::put_ids(w, &self.top_ids);
    }

    fn load_state(&mut self, r: &mut asf_persist::StateReader<'_>) -> asf_persist::Result<()> {
        self.recomputes = r.get_u64()?;
        let c = r.get_u64()? as usize;
        if c != self.distinct_ks.len() {
            return Err(asf_persist::PersistError::corrupt("cut count != distinct k count"));
        }
        self.cuts = (0..c).map(|_| r.get_f64()).collect::<Result<_, _>>()?;
        let top_ids = crate::protocol::get_ids(r)?;
        if top_ids.len() != self.max_k {
            return Err(asf_persist::PersistError::corrupt("top list length != max k"));
        }
        self.top_ids = top_ids;
        Ok(())
    }

    fn rank_space(&self) -> Option<RankSpace> {
        Some(self.space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::oracle::TruthRanks;
    use crate::protocol::ZtRp;
    use crate::workload::UpdateEvent;

    fn ev(t: f64, s: u32, v: f64) -> UpdateEvent {
        UpdateEvent { time: t, stream: StreamId(s), value: v }
    }

    #[test]
    fn rejects_empty_and_mixed_spaces() {
        assert!(MultiRankZt::new(vec![]).is_err());
        let mixed = vec![RankQuery::top_k(2).unwrap(), RankQuery::k_min(2).unwrap()];
        assert!(MultiRankZt::new(mixed).is_err());
    }

    #[test]
    fn shared_prefix_serves_every_k() {
        let initial = vec![10.0, 90.0, 50.0, 70.0, 30.0, 60.0];
        let queries: Vec<RankQuery> =
            [1, 2, 2, 4].iter().map(|&k| RankQuery::top_k(k).unwrap()).collect();
        let mut engine = Engine::new(&initial, MultiRankZt::new(queries).unwrap());
        engine.initialize();
        let p = engine.protocol();
        assert_eq!(p.num_bands(), 4); // distinct ks {1, 2, 4} -> 3 cuts
        assert_eq!(p.answer_of(0).iter().collect::<Vec<_>>(), vec![StreamId(1)]);
        assert_eq!(p.answer_of(1), p.answer_of(2), "duplicate ks share one view");
        assert_eq!(p.answer_of(3).len(), 4);
        assert!(p.answer_of(3).contains(StreamId(3)) && p.answer_of(3).contains(StreamId(5)));
    }

    /// Every answer equals ground truth top-k at every quiescent point, for
    /// every k simultaneously, across all three rank spaces.
    #[test]
    fn answers_track_truth_for_all_ks() {
        let initial = vec![105.0, 90.0, 120.0, 70.0, 145.0, 200.0, 45.0, 131.0];
        let events = vec![
            ev(1.0, 4, 101.0), // jumps to best (knn)
            ev(2.0, 0, 400.0), // best leaves entirely
            ev(3.0, 6, 99.0),
            ev(4.0, 2, 102.0),
            ev(5.0, 5, 98.5),
            ev(6.0, 3, 250.0),
            ev(7.0, 1, 101.5),
        ];
        for space in [RankSpace::Knn { q: 100.0 }, RankSpace::TopK, RankSpace::KMin] {
            let ks = [1usize, 3, 5];
            let queries: Vec<RankQuery> =
                ks.iter().map(|&k| RankQuery::new(space, k).unwrap()).collect();
            let mut engine = Engine::new(&initial, MultiRankZt::new(queries).unwrap());
            engine.initialize();
            let mut truth = TruthRanks::new(space, engine.fleet());
            let check = |engine: &Engine<MultiRankZt>, truth: &TruthRanks, when: &str| {
                for (j, &k) in ks.iter().enumerate() {
                    let want: AnswerSet = truth.true_answer(k);
                    assert_eq!(
                        engine.protocol().answer_of(j),
                        want,
                        "space {space:?} k {k} {when}"
                    );
                }
            };
            check(&engine, &truth, "after init");
            for e in &events {
                engine.apply_event(*e);
                truth.apply(e);
                check(&engine, &truth, &format!("after event t={}", e.time));
            }
        }
    }

    /// In-band swaps below every tracked boundary stay silent.
    #[test]
    fn moves_within_a_band_are_silent() {
        let initial = vec![100.0, 90.0, 80.0, 20.0, 10.0];
        let queries = vec![RankQuery::top_k(3).unwrap(), RankQuery::top_k(1).unwrap()];
        let mut engine = Engine::new(&initial, MultiRankZt::new(queries).unwrap());
        engine.initialize();
        let base = engine.ledger().total();
        // Ranks 2 and 3 swap (90 -> 85 stays above the k=3 cut, below k=1).
        engine.apply_event(ev(1.0, 1, 85.0));
        assert_eq!(engine.ledger().total(), base, "swap between tracked cuts is free");
        // Crossing the k=3 boundary reports.
        engine.apply_event(ev(2.0, 2, 12.0));
        assert!(engine.ledger().total() > base);
        let p = engine.protocol();
        assert!(!p.answer_of(0).contains(StreamId(2)));
        assert!(p.answer_of(0).contains(StreamId(3)));
    }

    /// m = 1 agrees with ZT-RP's answer at every quiescent point (the
    /// degenerate case; message patterns differ — bands beat broadcasts).
    #[test]
    fn single_query_matches_zt_rp_answers() {
        let initial = vec![105.0, 90.0, 120.0, 70.0, 145.0, 44.0];
        let events =
            vec![ev(1.0, 4, 101.0), ev(2.0, 0, 300.0), ev(3.0, 5, 99.0), ev(4.0, 1, 260.0)];
        let query = RankQuery::knn(100.0, 2).unwrap();
        let mut multi = Engine::new(&initial, MultiRankZt::new(vec![query]).unwrap());
        let mut solo = Engine::new(&initial, ZtRp::new(query).unwrap());
        multi.initialize();
        solo.initialize();
        assert_eq!(multi.protocol().answer_of(0), solo.answer());
        for e in &events {
            multi.apply_event(*e);
            solo.apply_event(*e);
            assert_eq!(multi.protocol().answer_of(0), solo.answer(), "at t={}", e.time);
        }
        // No message-count claim at m = 1: a single cut's two bands cover
        // the whole population, so maintenance degenerates to ZT-RP's
        // broadcast. The sharing win is one sweep vs *m* broadcasts.
    }

    #[test]
    fn touched_counts_are_prefix_set_exact() {
        let queries: Vec<RankQuery> =
            [1usize, 2, 3, 3, 5].iter().map(|&k| RankQuery::top_k(k).unwrap()).collect();
        let mut p = MultiRankZt::new(queries).unwrap();
        let ids = |v: &[u32]| v.iter().map(|&i| StreamId(i)).collect::<Vec<_>>();
        p.top_ids = ids(&[0, 1, 2, 3, 4]);
        // Swap of ranks 2 and 3: only k = 2 queries touched.
        assert_eq!(p.touched_queries(&ids(&[0, 2, 1, 3, 4])), 1);
        // Rotation 1->3: prefixes of length 1 and 2 change, k=3 absorbs it.
        assert_eq!(p.touched_queries(&ids(&[1, 2, 0, 3, 4])), 2);
        // New entrant at rank 5: every prefix from its insertion down
        // changes; here only k=5 (ranks 1..4 unchanged).
        assert_eq!(p.touched_queries(&ids(&[0, 1, 2, 3, 9])), 1);
        // Entrant at rank 1: all prefixes change -> all 5 queries.
        assert_eq!(p.touched_queries(&ids(&[9, 0, 1, 2, 3])), 5);
        // No change.
        assert_eq!(p.touched_queries(&ids(&[0, 1, 2, 3, 4])), 0);
    }

    #[test]
    fn band_filters_never_cover_a_cut() {
        // Regression guard for f64 rounding in key()-preimages: every
        // filter endpoint must land strictly inside its band.
        let initial = vec![105.0, 90.0, 120.0, 70.0, 145.0, 44.0, 131.0];
        for space in [RankSpace::Knn { q: 100.0 }, RankSpace::TopK, RankSpace::KMin] {
            let queries: Vec<RankQuery> =
                [1usize, 3, 5].iter().map(|&k| RankQuery::new(space, k).unwrap()).collect();
            let mut engine = Engine::new(&initial, MultiRankZt::new(queries).unwrap());
            engine.initialize();
            let p = engine.protocol();
            for &v in &initial {
                let band = p.band_of(space.key(v));
                if let Filter::Interval { lo, hi } = p.band_filter(band, v) {
                    for probe in [lo, hi] {
                        if probe.is_finite() {
                            assert_eq!(
                                p.band_of(space.key(probe)),
                                band,
                                "space {space:?} v {v} endpoint {probe} escapes its band"
                            );
                        }
                    }
                }
            }
        }
    }
}
