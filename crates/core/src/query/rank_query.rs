//! Rank-based queries: k-NN, top-k, k-min (paper §3.2(1)).

use crate::error::ConfigError;
use crate::query::space::RankSpace;

/// A continuous rank-based query: return the `k` best streams under a
/// [`RankSpace`] ordering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankQuery {
    space: RankSpace,
    k: usize,
}

impl RankQuery {
    /// Creates a rank-based query returning the best `k >= 1` streams.
    pub fn new(space: RankSpace, k: usize) -> Result<Self, ConfigError> {
        if k == 0 {
            return Err(ConfigError::InvalidQuery("rank requirement k must be >= 1".into()));
        }
        if let RankSpace::Knn { q } = space {
            if !q.is_finite() {
                return Err(ConfigError::InvalidQuery(format!(
                    "k-NN query point must be finite, got {q}; use TopK/KMin for the limits"
                )));
            }
        }
        Ok(Self { space, k })
    }

    /// Convenience: k-NN around point `q`.
    pub fn knn(q: f64, k: usize) -> Result<Self, ConfigError> {
        Self::new(RankSpace::Knn { q }, k)
    }

    /// Convenience: top-k by value.
    pub fn top_k(k: usize) -> Result<Self, ConfigError> {
        Self::new(RankSpace::TopK, k)
    }

    /// Convenience: bottom-k by value.
    pub fn k_min(k: usize) -> Result<Self, ConfigError> {
        Self::new(RankSpace::KMin, k)
    }

    /// The underlying rank space.
    pub fn space(&self) -> RankSpace {
        self.space
    }

    /// The rank requirement `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let q = RankQuery::knn(500.0, 3).unwrap();
        assert_eq!(q.k(), 3);
        assert_eq!(q.space(), RankSpace::Knn { q: 500.0 });
        assert_eq!(RankQuery::top_k(5).unwrap().space(), RankSpace::TopK);
        assert_eq!(RankQuery::k_min(5).unwrap().space(), RankSpace::KMin);
    }

    #[test]
    fn rejects_zero_k() {
        assert!(RankQuery::top_k(0).is_err());
    }

    #[test]
    fn rejects_infinite_query_point() {
        assert!(RankQuery::knn(f64::INFINITY, 1).is_err());
        assert!(RankQuery::knn(f64::NAN, 1).is_err());
    }
}
