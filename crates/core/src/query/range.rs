//! Range queries — the paper's example of a non-rank-based query.

use streamnet::Filter;

use crate::error::ConfigError;

/// A continuous range query `[l, u]`: streams whose values fall within the
/// closed interval belong to the answer (paper §3.2(2)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RangeQuery {
    lo: f64,
    hi: f64,
}

impl RangeQuery {
    /// Creates a range query over the closed interval `[lo, hi]`.
    ///
    /// Bounds must be finite (the query range is user-supplied data; the
    /// infinite intervals are reserved for the protocols' special filters)
    /// and `lo <= hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, ConfigError> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(ConfigError::InvalidQuery(format!(
                "range bounds must be finite, got [{lo}, {hi}]"
            )));
        }
        if lo > hi {
            return Err(ConfigError::InvalidQuery(format!(
                "range requires lo <= hi, got [{lo}, {hi}]"
            )));
        }
        Ok(Self { lo, hi })
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Whether `v` satisfies the query.
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// The filter constraint equivalent to this query — what ZT-NRP installs
    /// at every source, and FT-NRP at non-special sources.
    pub fn as_filter(&self) -> Filter {
        Filter::interval(self.lo, self.hi)
    }

    /// Distance from `v` to the nearer interval boundary; 0 on the boundary.
    ///
    /// Used by the boundary-nearest selection heuristic (§6.2, Fig. 14):
    /// streams close to the boundary are the likeliest to cross it.
    pub fn boundary_distance(&self, v: f64) -> f64 {
        if self.contains(v) {
            (v - self.lo).min(self.hi - v)
        } else if v < self.lo {
            self.lo - v
        } else {
            v - self.hi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_closed_interval() {
        let q = RangeQuery::new(400.0, 600.0).unwrap();
        assert!(q.contains(400.0) && q.contains(600.0) && q.contains(500.0));
        assert!(!q.contains(399.9) && !q.contains(600.1));
    }

    #[test]
    fn as_filter_matches_query() {
        let q = RangeQuery::new(400.0, 600.0).unwrap();
        let f = q.as_filter();
        for v in [399.0, 400.0, 500.0, 600.0, 601.0] {
            assert_eq!(q.contains(v), f.contains(v));
        }
    }

    #[test]
    fn boundary_distance_inside_and_outside() {
        let q = RangeQuery::new(400.0, 600.0).unwrap();
        assert_eq!(q.boundary_distance(450.0), 50.0); // nearer to lo
        assert_eq!(q.boundary_distance(590.0), 10.0); // nearer to hi
        assert_eq!(q.boundary_distance(390.0), 10.0); // below
        assert_eq!(q.boundary_distance(650.0), 50.0); // above
        assert_eq!(q.boundary_distance(400.0), 0.0);
    }

    #[test]
    fn degenerate_point_range_is_valid() {
        let q = RangeQuery::new(5.0, 5.0).unwrap();
        assert!(q.contains(5.0));
        assert!(!q.contains(5.1));
    }

    #[test]
    fn rejects_inverted_and_non_finite() {
        assert!(RangeQuery::new(10.0, 1.0).is_err());
        assert!(RangeQuery::new(f64::NEG_INFINITY, 0.0).is_err());
        assert!(RangeQuery::new(0.0, f64::NAN).is_err());
    }
}
