//! Rank spaces: one abstraction covering k-NN, top-k and k-min.
//!
//! A rank-based query orders streams by a **rank key** — smaller key means
//! better rank. The paper observes that "a k-NN query can be easily
//! transformed to a k-minimum or k-maximum query, by setting `q` to `−∞` or
//! `+∞`" (§3.2); since infinities do not mix with `|V_i − q|` arithmetic, we
//! encode the three limits directly:
//!
//! | Query | key(v)     | ball of radius `d` |
//! |-------|------------|--------------------|
//! | k-NN at `q` | `\|v − q\|` | `[q − d, q + d]` |
//! | top-k (k-max, `q → +∞`) | `−v` | `[−d, +∞)` |
//! | k-min (`q → −∞`) | `v`  | `(−∞, d]` |
//!
//! Regions `R` ("closed bounds" in the paper) are always key-balls
//! `{v : key(v) ≤ d}`, and double as the filter constraints the protocols
//! install.

use streamnet::Filter;

/// The ordering underlying a rank-based query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RankSpace {
    /// k-nearest-neighbour around a finite query point `q`.
    Knn {
        /// The query point.
        q: f64,
    },
    /// Top-k by value (the paper's k-maximum; `q = +∞`).
    TopK,
    /// Bottom-k by value (the paper's k-minimum; `q = −∞`).
    KMin,
}

impl RankSpace {
    /// The rank key of a value: smaller is better.
    #[inline]
    pub fn key(&self, v: f64) -> f64 {
        match *self {
            RankSpace::Knn { q } => (v - q).abs(),
            RankSpace::TopK => -v,
            RankSpace::KMin => v,
        }
    }

    /// The region `{v : key(v) <= d}` as a filter constraint.
    ///
    /// For k-NN, `d` must be non-negative (it is a distance). For
    /// top-k/k-min, `d` is a key threshold and may be any finite number.
    ///
    /// # Panics
    ///
    /// Panics on NaN `d` or a negative k-NN radius.
    pub fn ball(&self, d: f64) -> Filter {
        assert!(!d.is_nan(), "ball threshold must not be NaN");
        match *self {
            RankSpace::Knn { q } => {
                assert!(d >= 0.0, "k-NN ball radius must be non-negative, got {d}");
                Filter::interval(q - d, q + d)
            }
            RankSpace::TopK => Filter::interval(-d, f64::INFINITY),
            RankSpace::KMin => Filter::interval(f64::NEG_INFINITY, d),
        }
    }

    /// Whether `v` lies inside the ball of threshold `d`.
    #[inline]
    pub fn in_ball(&self, v: f64, d: f64) -> bool {
        self.key(v) <= d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_key_is_distance() {
        let s = RankSpace::Knn { q: 100.0 };
        assert_eq!(s.key(130.0), 30.0);
        assert_eq!(s.key(70.0), 30.0);
        assert_eq!(s.key(100.0), 0.0);
    }

    #[test]
    fn topk_prefers_large_values() {
        let s = RankSpace::TopK;
        assert!(s.key(900.0) < s.key(100.0));
    }

    #[test]
    fn kmin_prefers_small_values() {
        let s = RankSpace::KMin;
        assert!(s.key(100.0) < s.key(900.0));
    }

    #[test]
    fn knn_ball_is_symmetric_interval() {
        let s = RankSpace::Knn { q: 500.0 };
        let f = s.ball(25.0);
        assert!(f.contains(475.0) && f.contains(525.0) && f.contains(500.0));
        assert!(!f.contains(474.9) && !f.contains(525.1));
    }

    #[test]
    fn topk_ball_is_upper_halfline() {
        let s = RankSpace::TopK;
        // key(v) = -v <= d  <=>  v >= -d. With d = -250 the region is v >= 250.
        let f = s.ball(-250.0);
        assert!(f.contains(250.0) && f.contains(1e9));
        assert!(!f.contains(249.9));
    }

    #[test]
    fn kmin_ball_is_lower_halfline() {
        let s = RankSpace::KMin;
        let f = s.ball(42.0);
        assert!(f.contains(-1e9) && f.contains(42.0));
        assert!(!f.contains(42.1));
    }

    #[test]
    fn ball_agrees_with_in_ball() {
        for space in [RankSpace::Knn { q: 10.0 }, RankSpace::TopK, RankSpace::KMin] {
            let d = match space {
                RankSpace::Knn { .. } => 5.0,
                _ => 3.0,
            };
            let f = space.ball(d);
            for v in [-20.0, -3.0, 0.0, 3.0, 7.0, 10.0, 13.0, 15.0, 20.0] {
                assert_eq!(f.contains(v), space.in_ball(v, d), "space {space:?} v {v} d {d}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn knn_ball_rejects_negative_radius() {
        RankSpace::Knn { q: 0.0 }.ball(-1.0);
    }
}
