//! Entity-based query types (paper §3.2).
//!
//! Entity-based queries return *identifiers of objects*, not values. The
//! paper splits them into **non-rank-based** queries — here
//! [`RangeQuery`] — whose membership is decided per stream, and
//! **rank-based** queries — [`RankQuery`] — which concern a partial order of
//! the stream values (k-NN, top-k, k-min).

mod range;
mod rank_query;
mod space;

pub use range::RangeQuery;
pub use rank_query::RankQuery;
pub use space::RankSpace;
