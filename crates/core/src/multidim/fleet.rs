//! 2-D point sources and their fleet — the `streamnet` model lifted to the
//! plane, reusing the same message taxonomy and [`Ledger`].

use streamnet::{Ledger, MessageKind, StreamId};

use super::point::Point2;
use super::region::Region;

/// A 2-D stream source (e.g. a moving object reporting its position).
#[derive(Clone, Debug)]
pub struct PointSource {
    id: StreamId,
    position: Point2,
    last_reported: Option<Point2>,
    filter: Region,
    traffic: u64,
}

impl PointSource {
    fn new(id: StreamId, position: Point2) -> Self {
        Self { id, position, last_reported: None, filter: Region::ReportAll, traffic: 0 }
    }

    /// The source id.
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Ground-truth current position.
    pub fn position(&self) -> Point2 {
        self.position
    }

    /// The position the server last learned, if any.
    pub fn last_reported(&self) -> Option<Point2> {
        self.last_reported
    }

    /// The installed region filter.
    pub fn filter(&self) -> &Region {
        &self.filter
    }

    /// Message traffic at this source.
    pub fn traffic(&self) -> u64 {
        self.traffic
    }

    fn apply(&mut self, p: Point2) -> bool {
        self.position = p;
        match self.last_reported {
            None => true,
            Some(prev) => self.filter.violated(prev, p),
        }
    }

    fn install(&mut self, filter: Region) -> bool {
        self.filter = filter;
        match (&self.filter, self.last_reported) {
            (Region::ReportAll, _) | (_, None) => false,
            (f, Some(prev)) => f.contains(prev) != f.contains(self.position),
        }
    }
}

/// The server's view of last-known positions.
#[derive(Clone, Debug)]
pub struct PointView {
    positions: Vec<Point2>,
    known: Vec<bool>,
}

impl PointView {
    fn new(n: usize) -> Self {
        Self { positions: vec![Point2 { x: 0.0, y: 0.0 }; n], known: vec![false; n] }
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Last-known position of `id`.
    ///
    /// # Panics
    ///
    /// Panics if the server has never learned it.
    pub fn get(&self, id: StreamId) -> Point2 {
        assert!(self.known[id.index()], "server has no position for {id} yet");
        self.positions[id.index()]
    }

    /// Whether every stream's position is known.
    pub fn all_known(&self) -> bool {
        self.known.iter().all(|&k| k)
    }

    /// Iterates `(id, position)` over known streams.
    pub fn iter_known(&self) -> impl Iterator<Item = (StreamId, Point2)> + '_ {
        self.positions
            .iter()
            .zip(self.known.iter())
            .enumerate()
            .filter(|(_, (_, &k))| k)
            .map(|(i, (&p, _))| (StreamId(i as u32), p))
    }

    fn set(&mut self, id: StreamId, p: Point2) {
        self.positions[id.index()] = p;
        self.known[id.index()] = true;
    }
}

/// All 2-D sources, with metered operations mirroring
/// [`streamnet::SourceFleet`].
#[derive(Clone, Debug)]
pub struct PointFleet {
    sources: Vec<PointSource>,
    view: PointView,
}

impl PointFleet {
    /// Builds a fleet from initial positions.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn from_positions(initial: &[Point2]) -> Self {
        assert!(!initial.is_empty(), "a fleet needs at least one source");
        let sources = initial
            .iter()
            .enumerate()
            .map(|(i, &p)| PointSource::new(StreamId(i as u32), p))
            .collect();
        Self { sources, view: PointView::new(initial.len()) }
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the fleet is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Ground-truth access (oracle/tests).
    pub fn source(&self, id: StreamId) -> &PointSource {
        &self.sources[id.index()]
    }

    /// Iterates sources (ground truth).
    pub fn iter(&self) -> impl Iterator<Item = &PointSource> {
        self.sources.iter()
    }

    /// The server's view.
    pub fn view(&self) -> &PointView {
        &self.view
    }

    /// Delivers a movement; returns `Some(position)` when reported.
    pub fn deliver_update(
        &mut self,
        id: StreamId,
        p: Point2,
        ledger: &mut Ledger,
    ) -> Option<Point2> {
        let src = &mut self.sources[id.index()];
        if src.apply(p) {
            src.last_reported = Some(p);
            src.traffic += 1;
            ledger.record(MessageKind::Update, 1);
            self.view.set(id, p);
            Some(p)
        } else {
            None
        }
    }

    /// Probes one source (2 messages).
    pub fn probe(&mut self, id: StreamId, ledger: &mut Ledger) -> Point2 {
        let src = &mut self.sources[id.index()];
        ledger.record(MessageKind::ProbeRequest, 1);
        ledger.record(MessageKind::ProbeReply, 1);
        src.traffic += 2;
        src.last_reported = Some(src.position);
        let p = src.position;
        self.view.set(id, p);
        p
    }

    /// Probes all sources (`2n` messages).
    pub fn probe_all(&mut self, ledger: &mut Ledger) {
        for i in 0..self.sources.len() {
            self.probe(StreamId(i as u32), ledger);
        }
    }

    /// Installs a region at one source (1 message); any sync report is
    /// returned (and counted).
    pub fn install(&mut self, id: StreamId, region: Region, ledger: &mut Ledger) -> Option<Point2> {
        ledger.record(MessageKind::FilterInstall, 1);
        let src = &mut self.sources[id.index()];
        src.traffic += 1;
        if src.install(region) {
            src.last_reported = Some(src.position);
            src.traffic += 1;
            ledger.record(MessageKind::Update, 1);
            let p = src.position;
            self.view.set(id, p);
            Some(p)
        } else {
            None
        }
    }

    /// Broadcasts a region (`n` messages); sync reports are returned.
    pub fn broadcast(&mut self, region: Region, ledger: &mut Ledger) -> Vec<(StreamId, Point2)> {
        ledger.record(MessageKind::FilterBroadcast, self.sources.len() as u64);
        let mut syncs = Vec::new();
        for src in &mut self.sources {
            src.traffic += 1;
            if src.install(region) {
                src.last_reported = Some(src.position);
                src.traffic += 1;
                ledger.record(MessageKind::Update, 1);
                self.view.set(src.id, src.position);
                syncs.push((src.id, src.position));
            }
        }
        syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    fn setup() -> (PointFleet, Ledger) {
        (PointFleet::from_positions(&[p(0.0, 0.0), p(10.0, 0.0), p(0.0, 10.0)]), Ledger::new())
    }

    #[test]
    fn probe_all_fills_view() {
        let (mut fleet, mut ledger) = setup();
        fleet.probe_all(&mut ledger);
        assert!(fleet.view().all_known());
        assert_eq!(ledger.total(), 6);
        assert_eq!(fleet.view().get(StreamId(1)), p(10.0, 0.0));
    }

    #[test]
    fn disk_filter_suppresses_interior_movement() {
        let (mut fleet, mut ledger) = setup();
        fleet.probe_all(&mut ledger);
        fleet.install(StreamId(0), Region::disk(p(0.0, 0.0), 5.0), &mut ledger);
        let before = ledger.total();
        assert!(fleet.deliver_update(StreamId(0), p(1.0, 1.0), &mut ledger).is_none());
        assert_eq!(ledger.total(), before);
        // Crossing out reports.
        assert!(fleet.deliver_update(StreamId(0), p(6.0, 0.0), &mut ledger).is_some());
        assert_eq!(ledger.total(), before + 1);
    }

    #[test]
    fn broadcast_syncs_inconsistent_sources() {
        let (mut fleet, mut ledger) = setup();
        fleet.probe_all(&mut ledger);
        // Stream 0 drifts silently within ReportAll? No — ReportAll always
        // reports; install a broad disk first.
        fleet.broadcast(Region::disk(p(0.0, 0.0), 100.0), &mut ledger);
        fleet.deliver_update(StreamId(0), p(3.0, 0.0), &mut ledger); // inside: silent
                                                                     // New small disk separates believed (0,0) from true (3,0)? Both
                                                                     // inside radius 5 — no sync. Radius 2: believed inside, true outside.
        let syncs = fleet.broadcast(Region::disk(p(0.0, 0.0), 2.0), &mut ledger);
        assert_eq!(syncs.len(), 1);
        assert_eq!(syncs[0].0, StreamId(0));
    }

    #[test]
    fn traffic_is_conserved() {
        let (mut fleet, mut ledger) = setup();
        fleet.probe_all(&mut ledger);
        fleet.broadcast(Region::disk(p(0.0, 0.0), 5.0), &mut ledger);
        fleet.deliver_update(StreamId(1), p(1.0, 0.0), &mut ledger);
        let source_sum: u64 = fleet.iter().map(|s| s.traffic()).sum();
        assert_eq!(source_sum, ledger.total());
    }
}
