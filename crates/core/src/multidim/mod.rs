//! Multi-dimensional extension (paper §7: "The concepts of our protocols
//! can be extended to multiple dimensions. … Although the protocols and
//! examples presented in this paper are one-dimensional, our techniques can
//! be generalized to higher dimension cases.").
//!
//! This module is that generalization for 2-D point streams — the
//! location-monitoring scenario of the paper's introduction. The geometry
//! changes (regions are disks and rectangles instead of intervals, the
//! rank key is Euclidean distance) but the protocol logic carries over:
//!
//! * [`region::Region`] — 2-D filter constraints with the same crossing
//!   semantics as 1-D intervals (including the wildcard/suppress specials);
//! * [`fleet::PointFleet`] — 2-D sources with the same probe / install /
//!   broadcast message accounting (reusing [`streamnet::Ledger`]);
//! * [`rtp2d::Rtp2d`] — RTP for continuous 2-D k-NN with rank tolerance:
//!   the bound `R` becomes a disk positioned halfway (in radius) between
//!   the `(k+r)`-th and `(k+r+1)`-st nearest neighbours;
//! * [`ft_rect::FtRect2d`] — FT-NRP for 2-D rectangle (window) queries
//!   with fraction tolerance;
//! * [`oracle2d`] — ground-truth tolerance checking in 2-D.

pub mod engine2d;
pub mod fleet;
pub mod ft_rect;
pub mod oracle2d;
pub mod point;
pub mod region;
pub mod rtp2d;

pub use engine2d::Engine2d;
pub use fleet::PointFleet;
pub use ft_rect::FtRect2d;
pub use point::Point2;
pub use region::Region;
pub use rtp2d::Rtp2d;
