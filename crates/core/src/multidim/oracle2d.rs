//! Ground-truth tolerance checking in the plane.

use streamnet::StreamId;

use super::fleet::PointFleet;
use super::point::Point2;
use super::region::Region;
use crate::answer::AnswerSet;
use crate::rank::cmp_key;
use crate::tolerance::{FractionTolerance, RankTolerance};

/// The true distance ranking of all objects around `q` (best first).
pub fn true_ranking(q: Point2, fleet: &PointFleet) -> Vec<StreamId> {
    let mut keyed: Vec<(f64, StreamId)> =
        fleet.iter().map(|s| (q.distance(s.position()), s.id())).collect();
    keyed.sort_by(|&a, &b| cmp_key(a, b));
    keyed.into_iter().map(|(_, id)| id).collect()
}

/// Checks Definition 1 for a 2-D k-NN answer.
pub fn rank_violation_2d(
    q: Point2,
    tol: RankTolerance,
    answer: &AnswerSet,
    fleet: &PointFleet,
) -> Option<String> {
    if answer.len() != tol.k() {
        return Some(format!("|A| = {} but k = {}", answer.len(), tol.k()));
    }
    let ranking = true_ranking(q, fleet);
    for member in answer.iter() {
        let rank = ranking.iter().position(|&s| s == member).map(|p| p + 1)?;
        if rank > tol.epsilon() {
            return Some(format!(
                "{member} has true rank {rank} > epsilon {} (at {})",
                tol.epsilon(),
                fleet.source(member).position()
            ));
        }
    }
    None
}

/// Checks Definition 3 for a 2-D region (window) answer.
pub fn fraction_region_violation(
    region: &Region,
    tol: FractionTolerance,
    answer: &AnswerSet,
    fleet: &PointFleet,
) -> Option<String> {
    let m = answer.fraction_metrics(fleet.len(), |id| region.contains(fleet.source(id).position()));
    if m.within(&tol) {
        None
    } else {
        Some(format!(
            "F+ = {:.4} (eps+ = {}), F- = {:.4} (eps- = {})",
            m.f_plus(),
            tol.eps_plus(),
            m.f_minus(),
            tol.eps_minus()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn true_ranking_orders_by_distance() {
        let fleet = PointFleet::from_positions(&[p(3.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)]);
        assert_eq!(true_ranking(p(0.0, 0.0), &fleet), vec![StreamId(1), StreamId(2), StreamId(0)]);
    }

    #[test]
    fn rank_violation_detects_deep_member() {
        let fleet =
            PointFleet::from_positions(&[p(1.0, 0.0), p(2.0, 0.0), p(3.0, 0.0), p(4.0, 0.0)]);
        let tol = RankTolerance::new(2, 1).unwrap();
        let good: AnswerSet = [StreamId(0), StreamId(2)].into_iter().collect();
        assert!(rank_violation_2d(p(0.0, 0.0), tol, &good, &fleet).is_none());
        let bad: AnswerSet = [StreamId(0), StreamId(3)].into_iter().collect();
        assert!(rank_violation_2d(p(0.0, 0.0), tol, &bad, &fleet).is_some());
    }

    #[test]
    fn fraction_violation_detects_excess_errors() {
        let fleet = PointFleet::from_positions(&[p(1.0, 1.0), p(2.0, 2.0), p(50.0, 50.0)]);
        let region = Region::rect(p(0.0, 0.0), p(10.0, 10.0));
        // Answer {S0, S2}: E+ = 1 (S2), E- = 1 (S1) -> F+ = 0.5, F- = 0.5.
        let a: AnswerSet = [StreamId(0), StreamId(2)].into_iter().collect();
        let half = FractionTolerance::new(0.5, 0.5).unwrap();
        assert!(fraction_region_violation(&region, half, &a, &fleet).is_none());
        let tight = FractionTolerance::new(0.2, 0.5).unwrap();
        assert!(fraction_region_violation(&region, tight, &a, &fleet).is_some());
    }
}
