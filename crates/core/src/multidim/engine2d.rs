//! The 2-D simulation engine — [`crate::engine::Engine`] for point streams.

use std::collections::VecDeque;

use simkit::SimTime;
use streamnet::{Ledger, StreamId};

use super::fleet::{PointFleet, PointView};
use super::point::Point2;
use super::region::Region;
use crate::answer::AnswerSet;

/// A movement event produced by a 2-D workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoveEvent {
    /// Simulation time.
    pub time: SimTime,
    /// Which object moved.
    pub stream: StreamId,
    /// Its new position.
    pub to: Point2,
}

/// A time-ordered source of movement events.
pub trait Workload2d {
    /// Population size.
    fn num_streams(&self) -> usize;
    /// Initial positions (length = `num_streams`).
    fn initial_positions(&self) -> Vec<Point2>;
    /// Next event, or `None` when exhausted.
    fn next_event(&mut self) -> Option<MoveEvent>;
}

/// The server gateway for 2-D protocols (mirrors
/// [`crate::protocol::ServerCtx`]).
pub struct Ctx2d<'a> {
    fleet: &'a mut PointFleet,
    ledger: &'a mut Ledger,
    pending: &'a mut VecDeque<(StreamId, Point2)>,
}

impl<'a> Ctx2d<'a> {
    /// Number of streams.
    pub fn n(&self) -> usize {
        self.fleet.len()
    }

    /// The server's view of last-known positions.
    pub fn view(&self) -> &PointView {
        self.fleet.view()
    }

    /// Probes one source (2 messages).
    pub fn probe(&mut self, id: StreamId) -> Point2 {
        self.fleet.probe(id, self.ledger)
    }

    /// Probes every source (`2n` messages).
    pub fn probe_all(&mut self) {
        self.fleet.probe_all(self.ledger);
    }

    /// Installs a region at one source; syncs are deferred.
    pub fn install(&mut self, id: StreamId, region: Region) {
        if let Some(p) = self.fleet.install(id, region, self.ledger) {
            self.pending.push_back((id, p));
        }
    }

    /// Broadcasts a region; syncs are deferred.
    pub fn broadcast(&mut self, region: Region) {
        for sync in self.fleet.broadcast(region, self.ledger) {
            self.pending.push_back(sync);
        }
    }
}

/// A 2-D server-side protocol.
pub trait Protocol2d {
    /// Name for reports.
    fn name(&self) -> &'static str;
    /// Initialization phase.
    fn initialize(&mut self, ctx: &mut Ctx2d<'_>);
    /// Maintenance phase: one report reached the server.
    fn on_update(&mut self, id: StreamId, p: Point2, ctx: &mut Ctx2d<'_>);
    /// The current answer set.
    fn answer(&self) -> AnswerSet;
}

const CASCADE_CAP: usize = 1_000_000;

/// Drives a 2-D protocol from a 2-D workload.
pub struct Engine2d<P: Protocol2d> {
    fleet: PointFleet,
    ledger: Ledger,
    pending: VecDeque<(StreamId, Point2)>,
    protocol: P,
    now: SimTime,
    events: u64,
    initialized: bool,
}

impl<P: Protocol2d> Engine2d<P> {
    /// Creates the engine over initial positions.
    pub fn new(initial: &[Point2], protocol: P) -> Self {
        Self {
            fleet: PointFleet::from_positions(initial),
            ledger: Ledger::new(),
            pending: VecDeque::new(),
            protocol,
            now: 0.0,
            events: 0,
            initialized: false,
        }
    }

    /// Runs the Initialization phase.
    pub fn initialize(&mut self) {
        assert!(!self.initialized, "engine already initialized");
        self.initialized = true;
        let mut ctx =
            Ctx2d { fleet: &mut self.fleet, ledger: &mut self.ledger, pending: &mut self.pending };
        self.protocol.initialize(&mut ctx);
        self.drain();
    }

    /// Applies one movement event; drains induced resolution work.
    pub fn apply_event(&mut self, ev: MoveEvent) {
        assert!(self.initialized, "initialize first");
        assert!(ev.time >= self.now, "events must be time-ordered");
        self.now = ev.time;
        self.events += 1;
        if let Some(p) = self.fleet.deliver_update(ev.stream, ev.to, &mut self.ledger) {
            let mut ctx = Ctx2d {
                fleet: &mut self.fleet,
                ledger: &mut self.ledger,
                pending: &mut self.pending,
            };
            self.protocol.on_update(ev.stream, p, &mut ctx);
            self.drain();
        }
    }

    fn drain(&mut self) {
        let mut steps = 0;
        while let Some((id, p)) = self.pending.pop_front() {
            steps += 1;
            assert!(steps <= CASCADE_CAP, "2-D resolution cascade did not converge");
            let mut ctx = Ctx2d {
                fleet: &mut self.fleet,
                ledger: &mut self.ledger,
                pending: &mut self.pending,
            };
            self.protocol.on_update(id, p, &mut ctx);
        }
    }

    /// Initializes (if needed) and consumes the workload.
    pub fn run<W: Workload2d + ?Sized>(&mut self, workload: &mut W) {
        if !self.initialized {
            self.initialize();
        }
        while let Some(ev) = workload.next_event() {
            self.apply_event(ev);
        }
    }

    /// Like [`Engine2d::run`] with a quiescent-point hook for the oracle.
    pub fn run_with_hook<W: Workload2d + ?Sized>(
        &mut self,
        workload: &mut W,
        mut hook: impl FnMut(&PointFleet, &P, SimTime),
    ) {
        if !self.initialized {
            self.initialize();
        }
        hook(&self.fleet, &self.protocol, self.now);
        while let Some(ev) = workload.next_event() {
            self.apply_event(ev);
            hook(&self.fleet, &self.protocol, self.now);
        }
    }

    /// The message ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Ground truth for oracles/tests.
    pub fn fleet(&self) -> &PointFleet {
        &self.fleet
    }

    /// The protocol state.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Current answer.
    pub fn answer(&self) -> AnswerSet {
        self.protocol.answer()
    }

    /// Events applied.
    pub fn events_processed(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;
    impl Protocol2d for Null {
        fn name(&self) -> &'static str {
            "null"
        }
        fn initialize(&mut self, ctx: &mut Ctx2d<'_>) {
            ctx.probe_all();
            ctx.broadcast(Region::All);
        }
        fn on_update(&mut self, _: StreamId, _: Point2, _: &mut Ctx2d<'_>) {}
        fn answer(&self) -> AnswerSet {
            AnswerSet::new()
        }
    }

    #[test]
    fn wildcard_broadcast_silences_everything() {
        let pts = [Point2::new(0.0, 0.0), Point2::new(5.0, 5.0)];
        let mut engine = Engine2d::new(&pts, Null);
        engine.initialize();
        let base = engine.ledger().total();
        assert_eq!(base, 4 + 2); // 2n probes + n broadcast
        engine.apply_event(MoveEvent {
            time: 1.0,
            stream: StreamId(0),
            to: Point2::new(100.0, 100.0),
        });
        assert_eq!(engine.ledger().total(), base);
        assert_eq!(engine.events_processed(), 1);
    }
}
