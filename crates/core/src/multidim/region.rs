//! 2-D filter constraints with the §3.1 crossing semantics.

use super::point::Point2;

/// A 2-D region used as a filter constraint. The violation rule is the
/// 1-D rule verbatim: a source reports exactly when its point's membership
/// changes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Region {
    /// No filter: every update is reported.
    ReportAll,
    /// Contains every point — the 2-D `[-∞, ∞]` wildcard ("false positive
    /// filter"); the source never reports.
    All,
    /// Contains no point — the 2-D `[∞, ∞]` suppressor ("false negative
    /// filter"); the source never reports.
    Empty,
    /// Closed disk around a centre — the k-NN bound `R`.
    Disk {
        /// Disk centre (the query point).
        center: Point2,
        /// Disk radius (>= 0).
        radius: f64,
    },
    /// Closed axis-aligned rectangle — the 2-D range (window) query.
    Rect {
        /// Lower-left corner.
        lo: Point2,
        /// Upper-right corner.
        hi: Point2,
    },
}

impl Region {
    /// A disk region.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite radius.
    pub fn disk(center: Point2, radius: f64) -> Self {
        assert!(radius.is_finite() && radius >= 0.0, "disk radius must be >= 0, got {radius}");
        Region::Disk { center, radius }
    }

    /// A rectangle region.
    ///
    /// # Panics
    ///
    /// Panics unless `lo.x <= hi.x && lo.y <= hi.y`.
    pub fn rect(lo: Point2, hi: Point2) -> Self {
        assert!(lo.x <= hi.x && lo.y <= hi.y, "rect requires lo <= hi, got {lo} .. {hi}");
        Region::Rect { lo, hi }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, p: Point2) -> bool {
        match *self {
            Region::ReportAll | Region::All => true,
            Region::Empty => false,
            Region::Disk { center, radius } => center.distance(p) <= radius,
            Region::Rect { lo, hi } => lo.x <= p.x && p.x <= hi.x && lo.y <= p.y && p.y <= hi.y,
        }
    }

    /// The §3.1 violation test.
    #[inline]
    pub fn violated(&self, last_reported: Point2, current: Point2) -> bool {
        match self {
            Region::ReportAll => true,
            _ => self.contains(last_reported) != self.contains(current),
        }
    }

    /// Distance from `p` to the region boundary (0 on the boundary) —
    /// the boundary-nearest selection score in 2-D.
    pub fn boundary_distance(&self, p: Point2) -> f64 {
        match *self {
            Region::ReportAll | Region::All | Region::Empty => f64::INFINITY,
            Region::Disk { center, radius } => (center.distance(p) - radius).abs(),
            Region::Rect { lo, hi } => {
                if self.contains(p) {
                    (p.x - lo.x).min(hi.x - p.x).min(p.y - lo.y).min(hi.y - p.y)
                } else {
                    // Distance to the closest point of the rectangle.
                    let cx = p.x.clamp(lo.x, hi.x);
                    let cy = p.y.clamp(lo.y, hi.y);
                    p.distance(Point2 { x: cx, y: cy })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn disk_membership_is_closed() {
        let d = Region::disk(p(0.0, 0.0), 5.0);
        assert!(d.contains(p(3.0, 4.0))); // on the boundary
        assert!(d.contains(p(0.0, 0.0)));
        assert!(!d.contains(p(3.1, 4.0)));
    }

    #[test]
    fn rect_membership_is_closed() {
        let r = Region::rect(p(0.0, 0.0), p(10.0, 5.0));
        assert!(r.contains(p(0.0, 0.0)) && r.contains(p(10.0, 5.0)));
        assert!(r.contains(p(5.0, 2.5)));
        assert!(!r.contains(p(10.1, 2.0)) && !r.contains(p(5.0, -0.1)));
    }

    #[test]
    fn violation_requires_crossing() {
        let d = Region::disk(p(0.0, 0.0), 5.0);
        assert!(!d.violated(p(1.0, 1.0), p(2.0, 2.0))); // inside -> inside
        assert!(!d.violated(p(10.0, 0.0), p(0.0, 10.0))); // outside -> outside
        assert!(d.violated(p(1.0, 1.0), p(10.0, 0.0)));
        assert!(d.violated(p(10.0, 0.0), p(1.0, 1.0)));
    }

    #[test]
    fn all_and_empty_never_report() {
        for region in [Region::All, Region::Empty] {
            assert!(!region.violated(p(0.0, 0.0), p(1e6, -1e6)));
        }
        assert!(Region::All.contains(p(1e9, 1e9)));
        assert!(!Region::Empty.contains(p(0.0, 0.0)));
    }

    #[test]
    fn report_all_always_reports() {
        assert!(Region::ReportAll.violated(p(1.0, 1.0), p(1.0, 1.0)));
    }

    #[test]
    fn disk_boundary_distance() {
        let d = Region::disk(p(0.0, 0.0), 5.0);
        assert_eq!(d.boundary_distance(p(3.0, 0.0)), 2.0); // inside
        assert_eq!(d.boundary_distance(p(8.0, 0.0)), 3.0); // outside
        assert_eq!(d.boundary_distance(p(5.0, 0.0)), 0.0);
    }

    #[test]
    fn rect_boundary_distance() {
        let r = Region::rect(p(0.0, 0.0), p(10.0, 10.0));
        assert_eq!(r.boundary_distance(p(1.0, 5.0)), 1.0); // inside, near left
        assert_eq!(r.boundary_distance(p(12.0, 5.0)), 2.0); // right of rect
        assert_eq!(r.boundary_distance(p(13.0, 14.0)), 5.0); // corner: 3-4-5
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn rejects_negative_radius() {
        Region::disk(p(0.0, 0.0), -1.0);
    }
}
