//! 2-D points for location streams.

/// A point in the plane (e.g. an object position in location monitoring).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point2 {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics on non-finite coordinates (stream values must be finite, as
    /// in the 1-D model).
    pub fn new(x: f64, y: f64) -> Self {
        assert!(x.is_finite() && y.is_finite(), "point coordinates must be finite: ({x}, {y})");
        Self { x, y }
    }

    /// Euclidean distance to another point — the 2-D rank key.
    #[inline]
    pub fn distance(&self, other: Point2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl std::fmt::Display for Point2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Point2::new(f64::NAN, 0.0);
    }
}
