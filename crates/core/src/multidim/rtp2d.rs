//! RTP in the plane: rank-tolerant continuous 2-D k-NN.
//!
//! The Figure-5 protocol with the interval geometry swapped for disks: the
//! bound `R` is a disk around the query point whose radius sits halfway
//! between the `(k+r)`-th and `(k+r+1)`-st nearest objects. Cases 1–3 and
//! the expansion search carry over unchanged because they only ever reason
//! about *membership of R* and *distance rank* — exactly what §7 of the
//! paper predicts ("our techniques can be generalized to higher dimension
//! cases").

use std::collections::BTreeSet;

use streamnet::StreamId;

use super::engine2d::{Ctx2d, Protocol2d};
use super::fleet::PointView;
use super::point::Point2;
use super::region::Region;
use crate::answer::AnswerSet;
use crate::error::ConfigError;
use crate::rank::cmp_key;

/// Rank-tolerant 2-D k-NN (RTP lifted to the plane).
pub struct Rtp2d {
    q: Point2,
    k: usize,
    r: usize,
    radius: f64,
    answer: AnswerSet,
    x: BTreeSet<StreamId>,
    reinits: u64,
    expansions: u64,
}

impl Rtp2d {
    /// Creates the protocol for the k nearest objects to `q` with rank
    /// slack `r`. Population size (`n > k + r`) is checked at
    /// initialization.
    pub fn new(q: Point2, k: usize, r: usize) -> Result<Self, ConfigError> {
        if k == 0 {
            return Err(ConfigError::InvalidQuery("k must be >= 1".into()));
        }
        Ok(Self {
            q,
            k,
            r,
            radius: f64::NAN,
            answer: AnswerSet::new(),
            x: BTreeSet::new(),
            reinits: 0,
            expansions: 0,
        })
    }

    /// `ε = k + r`.
    pub fn epsilon(&self) -> usize {
        self.k + self.r
    }

    /// The query point.
    pub fn query_point(&self) -> Point2 {
        self.q
    }

    /// Current bound radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Buffer set `X(t)`.
    pub fn x_set(&self) -> &BTreeSet<StreamId> {
        &self.x
    }

    /// Forced full re-initializations.
    pub fn reinits(&self) -> u64 {
        self.reinits
    }

    /// Expansion searches run.
    pub fn expansions(&self) -> u64 {
        self.expansions
    }

    fn key(&self, view: &PointView, id: StreamId) -> f64 {
        self.q.distance(view.get(id))
    }

    fn ranked(&self, view: &PointView) -> Vec<(f64, StreamId)> {
        assert!(view.all_known(), "cannot rank a partially-known view");
        let mut v: Vec<(f64, StreamId)> =
            view.iter_known().map(|(id, p)| (self.q.distance(p), id)).collect();
        v.sort_by(|&a, &b| cmp_key(a, b));
        v
    }

    fn full_recompute(&mut self, ctx: &mut Ctx2d<'_>) {
        let eps = self.epsilon();
        assert!(ctx.n() > eps, "Rtp2d requires n > k + r (= {eps}), got n = {}", ctx.n());
        let ranked = self.ranked(ctx.view());
        self.answer = ranked.iter().take(self.k).map(|&(_, id)| id).collect();
        self.x = ranked.iter().take(eps).map(|&(_, id)| id).collect();
        self.radius = (ranked[eps - 1].0 + ranked[eps].0) / 2.0;
        ctx.broadcast(Region::disk(self.q, self.radius));
    }

    fn answer_member_left(&mut self, id: StreamId, ctx: &mut Ctx2d<'_>) {
        self.answer.remove(id);
        self.x.remove(&id);
        if self.x.len() > self.answer.len() {
            let best = self
                .x
                .iter()
                .filter(|s| !self.answer.contains(**s))
                .map(|&s| (self.key(ctx.view(), s), s))
                .min_by(|&a, &b| cmp_key(a, b))
                .expect("X - A non-empty")
                .1;
            self.answer.insert(best);
        } else {
            self.expansion_search(ctx);
        }
    }

    fn expansion_search(&mut self, ctx: &mut Ctx2d<'_>) {
        self.expansions += 1;
        let ranked = self.ranked(ctx.view());
        let n = ranked.len();
        let mut probed: BTreeSet<StreamId> = BTreeSet::new();
        for j in (self.epsilon() + 1)..=n {
            let d_prime = ranked[j - 1].0;
            for &(_, id) in &ranked[..j] {
                if !self.answer.contains(id) && probed.insert(id) {
                    ctx.probe(id);
                }
            }
            let mut u: Vec<(f64, StreamId)> = probed
                .iter()
                .map(|&id| (self.key(ctx.view(), id), id))
                .filter(|&(key, _)| key <= d_prime)
                .collect();
            if u.len() >= 2 {
                u.sort_by(|&a, &b| cmp_key(a, b));
                self.answer.insert(u[0].1);
                self.x = self.answer.iter().collect();
                for &(_, id) in u.iter().take(self.r + 1) {
                    self.x.insert(id);
                }
                // Redeploy the bound between global view ranks eps, eps+1.
                let fresh = self.ranked(ctx.view());
                let eps = self.epsilon();
                self.radius = (fresh[eps - 1].0 + fresh[eps].0) / 2.0;
                ctx.broadcast(Region::disk(self.q, self.radius));
                return;
            }
        }
        self.reinits += 1;
        ctx.probe_all();
        self.full_recompute(ctx);
    }

    fn object_entered(&mut self, id: StreamId, ctx: &mut Ctx2d<'_>) {
        if self.x.len() < self.epsilon() {
            self.x.insert(id);
            return;
        }
        let members: Vec<StreamId> = self.x.iter().copied().collect();
        for m in members {
            ctx.probe(m);
        }
        let mut candidates: Vec<(f64, StreamId)> = self
            .x
            .iter()
            .copied()
            .chain(std::iter::once(id))
            .map(|s| (self.key(ctx.view(), s), s))
            .collect();
        candidates.sort_by(|&a, &b| cmp_key(a, b));
        self.answer = candidates.iter().take(self.k).map(|&(_, s)| s).collect();
        let eps = self.epsilon();
        self.x = candidates.iter().take(eps).map(|&(_, s)| s).collect();
        self.radius = (candidates[eps - 1].0 + candidates[eps].0) / 2.0;
        ctx.broadcast(Region::disk(self.q, self.radius));
    }
}

impl Protocol2d for Rtp2d {
    fn name(&self) -> &'static str {
        "RTP-2D"
    }

    fn initialize(&mut self, ctx: &mut Ctx2d<'_>) {
        ctx.probe_all();
        self.full_recompute(ctx);
    }

    fn on_update(&mut self, id: StreamId, p: Point2, ctx: &mut Ctx2d<'_>) {
        let inside = self.q.distance(p) <= self.radius;
        let in_a = self.answer.contains(id);
        let in_x = self.x.contains(&id);
        match (in_a, in_x, inside) {
            (true, _, false) => self.answer_member_left(id, ctx),
            (false, true, false) => {
                self.x.remove(&id);
            }
            (false, false, true) => self.object_entered(id, ctx),
            _ => {}
        }
    }

    fn answer(&self) -> AnswerSet {
        self.answer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multidim::engine2d::{Engine2d, MoveEvent};

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    /// 8 objects in a ring of growing radius around the origin.
    fn ring() -> Vec<Point2> {
        (0..8)
            .map(|i| {
                let angle = i as f64 * std::f64::consts::FRAC_PI_4;
                let radius = 5.0 + 5.0 * i as f64;
                p(radius * angle.cos(), radius * angle.sin())
            })
            .collect()
    }

    fn engine(k: usize, r: usize) -> Engine2d<Rtp2d> {
        let mut e = Engine2d::new(&ring(), Rtp2d::new(p(0.0, 0.0), k, r).unwrap());
        e.initialize();
        e
    }

    fn ev(t: f64, s: u32, to: Point2) -> MoveEvent {
        MoveEvent { time: t, stream: StreamId(s), to }
    }

    #[test]
    fn initialization_picks_nearest_disk() {
        let engine = engine(2, 2);
        // Distances are 5, 10, 15, ... so A = {S0, S1}, X = {S0..S3},
        // radius between 20 (S3) and 25 (S4) = 22.5.
        let a = engine.answer();
        assert!(a.contains(StreamId(0)) && a.contains(StreamId(1)));
        assert_eq!(engine.protocol().x_set().len(), 4);
        assert!((engine.protocol().radius() - 22.5).abs() < 1e-9);
    }

    #[test]
    fn interior_movement_is_silent() {
        let mut e = engine(2, 2);
        let base = e.ledger().total();
        // S0 moves within the disk (distance 8 < 22.5).
        e.apply_event(ev(1.0, 0, p(8.0, 0.0)));
        assert_eq!(e.ledger().total(), base);
    }

    #[test]
    fn answer_member_leaving_promotes_buffer() {
        let mut e = engine(2, 2);
        // S1 (answer) leaves the disk entirely.
        e.apply_event(ev(1.0, 1, p(100.0, 100.0)));
        let a = e.answer();
        assert_eq!(a.len(), 2);
        assert!(a.contains(StreamId(0)));
        assert!(a.contains(StreamId(2)), "nearest buffered object promoted");
    }

    #[test]
    fn rank_tolerance_holds_through_churn() {
        let mut e = engine(3, 2);
        let moves = [
            ev(1.0, 0, p(40.0, 0.0)),
            ev(2.0, 7, p(1.0, 1.0)),
            ev(3.0, 2, p(-60.0, 0.0)),
            ev(4.0, 4, p(2.0, -2.0)),
            ev(5.0, 1, p(0.0, 55.0)),
        ];
        for m in moves {
            e.apply_event(m);
            // Oracle: every answer member truly ranks <= k + r.
            let mut dists: Vec<(f64, StreamId)> =
                e.fleet().iter().map(|s| (p(0.0, 0.0).distance(s.position()), s.id())).collect();
            dists.sort_by(|&a, &b| cmp_key(a, b));
            let a = e.answer();
            assert_eq!(a.len(), 3, "at t={}", m.time);
            for member in a.iter() {
                let rank = dists.iter().position(|&(_, id)| id == member).unwrap() + 1;
                assert!(rank <= 5, "member {member} ranks {rank} > 5 at t={}", m.time);
            }
        }
    }

    #[test]
    fn rejects_k_zero() {
        assert!(Rtp2d::new(p(0.0, 0.0), 0, 3).is_err());
    }
}
