//! FT-NRP in the plane: fraction-tolerant rectangle (window) queries.
//!
//! The Figure-7 protocol with the query interval `[l, u]` replaced by an
//! axis-aligned rectangle — the "danger zone" of the paper's §3.4 example
//! in its natural 2-D form. Budgets, the `count` mechanism, and `Fix_Error`
//! are untouched: they never look at the geometry, only at membership.

use std::collections::BTreeSet;

use simkit::SimRng;
use streamnet::StreamId;

use super::engine2d::{Ctx2d, Protocol2d};
use super::point::Point2;
use super::region::Region;
use crate::answer::AnswerSet;
use crate::error::ConfigError;
use crate::protocol::heuristics::SelectionHeuristic;
use crate::tolerance::FractionTolerance;

/// Fraction-tolerant 2-D window query protocol (FT-NRP lifted to 2-D).
pub struct FtRect2d {
    rect: Region,
    tol: FractionTolerance,
    heuristic: SelectionHeuristic,
    rng: SimRng,
    answer: AnswerSet,
    count: u64,
    fp_filters: Vec<StreamId>,
    fn_filters: Vec<StreamId>,
    fix_errors: u64,
}

impl FtRect2d {
    /// Creates the protocol for the closed rectangle `[lo, hi]`.
    pub fn new(
        lo: Point2,
        hi: Point2,
        tol: FractionTolerance,
        heuristic: SelectionHeuristic,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if lo.x > hi.x || lo.y > hi.y {
            return Err(ConfigError::InvalidQuery(format!(
                "rectangle requires lo <= hi, got {lo} .. {hi}"
            )));
        }
        Ok(Self {
            rect: Region::rect(lo, hi),
            tol,
            heuristic,
            rng: SimRng::seed_from_u64(seed),
            answer: AnswerSet::new(),
            count: 0,
            fp_filters: Vec::new(),
            fn_filters: Vec::new(),
            fix_errors: 0,
        })
    }

    /// The window region.
    pub fn rect(&self) -> &Region {
        &self.rect
    }

    /// Live wildcard filters (`n⁺`).
    pub fn n_plus(&self) -> usize {
        self.fp_filters.len()
    }

    /// Live suppress filters (`n⁻`).
    pub fn n_minus(&self) -> usize {
        self.fn_filters.len()
    }

    /// `Fix_Error` executions.
    pub fn fix_errors(&self) -> u64 {
        self.fix_errors
    }

    fn deploy(&mut self, ctx: &mut Ctx2d<'_>) {
        self.answer.clear();
        self.fp_filters.clear();
        self.fn_filters.clear();
        self.count = 0;

        let mut inside = Vec::new();
        let mut outside = Vec::new();
        for (id, p) in ctx.view().iter_known() {
            if self.rect.contains(p) {
                inside.push(id);
            } else {
                outside.push(id);
            }
        }
        self.answer = inside.iter().copied().collect();

        let n_plus = self.tol.max_false_positive_filters(inside.len());
        let n_minus = self.tol.max_false_negative_filters(inside.len());
        let rect = self.rect;
        let view = ctx.view();
        let dist = |id: StreamId| rect.boundary_distance(view.get(id));
        self.fp_filters = self.heuristic.select(&inside, n_plus, dist, &mut self.rng);
        self.fn_filters = self.heuristic.select(&outside, n_minus, dist, &mut self.rng);

        let fp: BTreeSet<StreamId> = self.fp_filters.iter().copied().collect();
        let fn_: BTreeSet<StreamId> = self.fn_filters.iter().copied().collect();
        for id in inside {
            let f = if fp.contains(&id) { Region::All } else { self.rect };
            ctx.install(id, f);
        }
        for id in outside {
            let f = if fn_.contains(&id) { Region::Empty } else { self.rect };
            ctx.install(id, f);
        }
    }

    fn fix_error(&mut self, ctx: &mut Ctx2d<'_>) {
        self.fix_errors += 1;
        if let Some(sy) = self.fp_filters.pop() {
            let py = ctx.probe(sy);
            ctx.install(sy, self.rect);
            if self.rect.contains(py) {
                return;
            }
            self.answer.remove(sy);
        }
        if let Some(sz) = self.fn_filters.pop() {
            let pz = ctx.probe(sz);
            ctx.install(sz, self.rect);
            if self.rect.contains(pz) {
                self.answer.insert(sz);
            }
        }
    }
}

impl Protocol2d for FtRect2d {
    fn name(&self) -> &'static str {
        "FT-RECT-2D"
    }

    fn initialize(&mut self, ctx: &mut Ctx2d<'_>) {
        ctx.probe_all();
        self.deploy(ctx);
    }

    fn on_update(&mut self, id: StreamId, p: Point2, ctx: &mut Ctx2d<'_>) {
        if self.rect.contains(p) {
            if self.answer.insert(id) {
                self.count += 1;
            }
        } else if self.answer.remove(id) {
            if self.count > 0 {
                self.count -= 1;
            } else {
                self.fix_error(ctx);
            }
        }
    }

    fn answer(&self) -> AnswerSet {
        self.answer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multidim::engine2d::{Engine2d, MoveEvent};

    fn p(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    /// 10 inside a 10x10 window at the origin, 10 outside.
    fn positions() -> Vec<Point2> {
        let mut v: Vec<Point2> = (0..10).map(|i| p(1.0 + 0.8 * i as f64, 5.0)).collect();
        v.extend((0..10).map(|i| p(20.0 + i as f64, 20.0)));
        v
    }

    fn engine(eps: f64) -> Engine2d<FtRect2d> {
        let protocol = FtRect2d::new(
            p(0.0, 0.0),
            p(10.0, 10.0),
            FractionTolerance::symmetric(eps).unwrap(),
            SelectionHeuristic::Random,
            5,
        )
        .unwrap();
        let mut e = Engine2d::new(&positions(), protocol);
        e.initialize();
        e
    }

    fn ev(t: f64, s: u32, to: Point2) -> MoveEvent {
        MoveEvent { time: t, stream: StreamId(s), to }
    }

    #[test]
    fn initialization_budgets() {
        let e = engine(0.25);
        assert_eq!(e.answer().len(), 10);
        assert_eq!(e.protocol().n_plus(), 2);
        assert_eq!(e.protocol().n_minus(), 2);
    }

    #[test]
    fn silenced_objects_never_report() {
        let mut e = engine(0.25);
        let silenced: Vec<StreamId> =
            e.protocol().fp_filters.iter().chain(&e.protocol().fn_filters).copied().collect();
        let base = e.ledger().total();
        for (i, id) in silenced.into_iter().enumerate() {
            e.apply_event(ev(1.0 + i as f64, id.0, p(500.0, 500.0)));
        }
        assert_eq!(e.ledger().total(), base);
    }

    #[test]
    fn fraction_tolerance_holds_through_churn() {
        let tol = FractionTolerance::symmetric(0.25).unwrap();
        let mut e = engine(0.25);
        let rect = Region::rect(p(0.0, 0.0), p(10.0, 10.0));
        let moves = [
            ev(1.0, 0, p(50.0, 5.0)),
            ev(2.0, 12, p(5.0, 5.0)),
            ev(3.0, 3, p(5.0, 50.0)),
            ev(4.0, 1, p(-5.0, 5.0)),
            ev(5.0, 15, p(2.0, 2.0)),
        ];
        for m in moves {
            e.apply_event(m);
            let metrics = e.answer().fraction_metrics(e.fleet().len(), |id| {
                rect.contains(e.fleet().source(id).position())
            });
            assert!(
                metrics.within(&tol),
                "t={}: F+={:.3} F-={:.3}",
                m.time,
                metrics.f_plus(),
                metrics.f_minus()
            );
        }
    }

    #[test]
    fn rejects_inverted_rect() {
        assert!(FtRect2d::new(
            p(10.0, 0.0),
            p(0.0, 10.0),
            FractionTolerance::zero(),
            SelectionHeuristic::Random,
            1
        )
        .is_err());
    }
}
