//! Ranking utilities over server views and ground-truth values.
//!
//! The paper's `rank(S_i, t)` is the 1-based position of stream `i` when all
//! streams are ordered by rank key (§3.3, "the function rank depends on the
//! query"). Ties are broken by ascending stream id so the order is total —
//! see [`streamnet::StreamId`].
//!
//! Two implementations of the same order live here:
//!
//! * the **sort path** ([`rank_view`], [`rank_values`],
//!   [`midpoint_threshold`]) — the seed's behaviour: every call pays a full
//!   O(n log n) re-sort of the snapshot it is given;
//! * the **incremental path** ([`RankIndex`]) — an order-statistics treap
//!   over `(key, id)` pairs maintained by the engine as view updates land,
//!   so the per-report operations the protocols actually need are
//!   logarithmic.
//!
//! Both produce *byte-identical* results (the `(key, id)` tie-break order is
//! part of the contract); `tests/rank_differential.rs` proves it per
//! protocol and `tests/rank_index_prop.rs` per operation.
//!
//! ## Per-operation cost, seed (sort) vs. indexed
//!
//! | Operation | Seed (full sort) | [`RankIndex`] |
//! |-----------|------------------|---------------|
//! | apply one view update        | —          | O(log n) |
//! | full ranking (`ordered_ids`) | O(n log n) | O(n) |
//! | best `m` ids (`top_ids`)     | O(n log n) | O(m + log n) |
//! | rank of one stream (`rank_of`) | O(n log n) | O(log n) |
//! | `select(m)` / `midpoint(m)`  | O(n log n) | O(log n) |
//! | streams inside a ball (`count_in_ball`) | O(n) scan | O(log n) |
//! | rebuild after `probe_all`    | O(n log n) | sort + O(n) link ([`RankIndex::bulk_build`]) |
//!
//! The treap is deterministic: node priorities are drawn once per stream id
//! from a fixed-seed [`simkit::SimRng`] stream, so the structure — and
//! therefore every traversal — is identical across runs, engines, and the
//! sharded `asf-server` runtime.
//!
//! ## Bulk construction
//!
//! Initialization and every `Reinit` refresh the whole view at once
//! (`probe_all`), then need the index over all `n` fresh keys. Building
//! that by `n` incremental inserts costs O(n log n) *random-position*
//! pointer chases — the dominant cost of RTP/FT-RP initialization at large
//! `n`. [`RankIndex::bulk_build`] instead sorts the `(key, id)` pairs once
//! (cache-friendly) and links the treap left-to-right with a right-spine
//! stack in O(n); with distinct priorities the treap is unique, so the
//! incremental and bulk paths produce the same structure.
//!
//! ## The sharded forest
//!
//! What the engines actually maintain is a [`RankForest`]: strided
//! per-partition [`RankIndex`] treaps (`asf-server` uses one per shard;
//! the serial engine one total). Queries merge the parts lazily and are
//! byte-identical for any part count — the global `(key, id)` order is
//! unique — while maintenance partitions by ownership: a reinit storm's
//! delta refresh ([`RankForest::refresh_from_changed`]) re-keys only the
//! drifted streams, partition-parallel, so index upkeep scales with the
//! shard count instead of serializing on the coordinator.

use simkit::SimRng;
use streamnet::{ServerView, StreamId};

use crate::query::RankSpace;

/// Compares two `(key, id)` pairs: ascending key, ties by ascending id.
///
/// # Panics
///
/// Panics (in debug builds) on NaN keys; stream values are validated finite
/// at the sources, so keys are never NaN.
#[inline]
pub fn cmp_key(a: (f64, StreamId), b: (f64, StreamId)) -> std::cmp::Ordering {
    a.0.partial_cmp(&b.0).expect("rank keys must not be NaN").then(a.1.cmp(&b.1))
}

/// Ranks every stream in the server's view: returns ids sorted best-first.
///
/// # Panics
///
/// Panics if the view has streams the server has never learned — protocols
/// must initialize (probe all) before ranking.
pub fn rank_view(space: RankSpace, view: &ServerView) -> Vec<StreamId> {
    assert!(view.all_known(), "cannot rank a partially-known view");
    rank_values(
        space,
        (0..view.len()).map(|i| {
            let id = StreamId(i as u32);
            (id, view.get(id))
        }),
    )
}

/// Ranks an arbitrary `(id, value)` collection; returns ids sorted
/// best-first under `space` with deterministic tie-breaking.
pub fn rank_values(
    space: RankSpace,
    values: impl IntoIterator<Item = (StreamId, f64)>,
) -> Vec<StreamId> {
    let mut keyed: Vec<(f64, StreamId)> =
        values.into_iter().map(|(id, v)| (space.key(v), id)).collect();
    keyed.sort_by(|&a, &b| cmp_key(a, b));
    keyed.into_iter().map(|(_, id)| id).collect()
}

/// The 1-based rank of `id` within `values` under `space`.
///
/// This is the paper's `rank(S_i, t)` evaluated over whatever value
/// snapshot the caller supplies (server view for protocols, ground truth
/// for the oracle).
pub fn rank_of(
    space: RankSpace,
    values: impl IntoIterator<Item = (StreamId, f64)>,
    id: StreamId,
) -> Option<usize> {
    rank_values(space, values).iter().position(|&s| s == id).map(|p| p + 1)
}

/// The midpoint between the keys of ranks `m` and `m + 1` (1-based) —
/// the paper's `Deploy_bound` radius `d = (|V_x − q| + |V_y − q|)/2`
/// generalised to key space.
///
/// # Panics
///
/// Panics if fewer than `m + 1` streams are supplied or `m == 0`.
pub fn midpoint_threshold(
    space: RankSpace,
    values: impl IntoIterator<Item = (StreamId, f64)>,
    m: usize,
) -> f64 {
    assert!(m >= 1, "midpoint rank must be >= 1");
    let mut keys: Vec<f64> = values.into_iter().map(|(_, v)| space.key(v)).collect();
    assert!(
        keys.len() > m,
        "midpoint between ranks {m} and {} needs more than {m} streams, got {}",
        m + 1,
        keys.len()
    );
    keys.sort_by(|a, b| a.partial_cmp(b).expect("rank keys must not be NaN"));
    (keys[m - 1] + keys[m]) / 2.0
}

/// Sentinel index for "no child".
const NIL: u32 = u32::MAX;

/// Fixed seed of the priority stream — a constant so that every engine
/// (serial, sharded, any shard count) builds the identical treap.
const PRIORITY_SEED: u64 = 0xA5F0_DE7A_u64;

#[derive(Clone, Copy, Debug)]
struct Node {
    /// Current rank key (`space.key(value)`); valid iff `present`.
    key: f64,
    /// Heap priority, fixed per stream id at construction.
    prio: u64,
    left: u32,
    right: u32,
    /// Subtree size (this node included); valid iff linked into the tree.
    size: u32,
    /// Whether this stream is currently in the index.
    present: bool,
}

/// An incremental order-statistics index over `(rank key, stream id)`.
///
/// A treap (randomized BST with subtree counts) whose in-order traversal is
/// exactly the [`cmp_key`] order the sort path uses, holding at most one
/// entry per stream id of a fixed population `0..n`. Node storage is a flat
/// arena indexed by stream id — no allocation per operation — and node
/// priorities come from a fixed-seed [`SimRng`] stream, so the tree shape
/// is a pure function of the (key, id) set: deterministic and identical
/// across the serial engine and the sharded server.
///
/// All mutating operations are expected O(log n); see the module-level
/// complexity table.
#[derive(Clone, Debug)]
pub struct RankIndex {
    space: RankSpace,
    root: u32,
    nodes: Vec<Node>,
    len: usize,
}

impl RankIndex {
    /// Creates an empty index over a population of `n` stream ids under
    /// `space`.
    ///
    /// # Panics
    ///
    /// Panics if `n` cannot be addressed by a `u32` id space.
    pub fn new(space: RankSpace, n: usize) -> Self {
        assert!(u32::try_from(n).is_ok(), "population too large for u32 stream ids");
        let mut rng = SimRng::seed_from_u64(PRIORITY_SEED);
        let nodes = (0..n)
            .map(|_| Node {
                key: 0.0,
                prio: rng.next_u64(),
                left: NIL,
                right: NIL,
                size: 0,
                present: false,
            })
            .collect();
        Self { space, root: NIL, nodes, len: 0 }
    }

    /// The rank space the index orders by.
    pub fn space(&self) -> RankSpace {
        self.space
    }

    /// Number of streams currently indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no stream is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The population size `n` the index was created for.
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `id` is currently indexed.
    pub fn contains(&self, id: StreamId) -> bool {
        self.nodes[id.index()].present
    }

    /// The rank key stored for `id`, if indexed.
    pub fn key_of(&self, id: StreamId) -> Option<f64> {
        let node = &self.nodes[id.index()];
        node.present.then_some(node.key)
    }

    /// Indexes `id` with value `value` (key = `space.key(value)`).
    ///
    /// # Panics
    ///
    /// Panics if `id` is already indexed or the key is NaN.
    pub fn insert(&mut self, id: StreamId, value: f64) {
        let i = id.index();
        assert!(!self.nodes[i].present, "{id} is already indexed");
        let key = self.space.key(value);
        assert!(!key.is_nan(), "rank keys must not be NaN");
        let node = &mut self.nodes[i];
        node.key = key;
        node.left = NIL;
        node.right = NIL;
        node.size = 1;
        node.present = true;
        let (l, r) = self.split(self.root, (key, id));
        let lm = self.merge(l, i as u32);
        self.root = self.merge(lm, r);
        self.len += 1;
    }

    /// Removes `id` from the index.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not indexed.
    pub fn remove(&mut self, id: StreamId) {
        let i = id.index();
        assert!(self.nodes[i].present, "{id} is not indexed");
        let at = (self.nodes[i].key, id);
        self.root = self.remove_rec(self.root, at);
        self.nodes[i].present = false;
        self.len -= 1;
    }

    /// Re-keys `id` to `value`, inserting it if absent — the maintenance
    /// operation applied for every value that reaches the server.
    pub fn update(&mut self, id: StreamId, value: f64) {
        if self.nodes[id.index()].present {
            // A treap's shape is a pure function of its (key, priority)
            // set, so a bit-identical re-key is a structural no-op: skip
            // both tree passes (probes of unmoved streams and echoing
            // sync-reports hit this often).
            if self.nodes[id.index()].key.to_bits() == self.space.key(value).to_bits() {
                return;
            }
            self.remove(id);
        }
        self.insert(id, value);
    }

    /// Drops every entry (population and priorities are retained).
    pub fn clear(&mut self) {
        for node in &mut self.nodes {
            node.present = false;
        }
        self.root = NIL;
        self.len = 0;
    }

    /// Rebuilds the index from a fully-known server view — the
    /// Initialization / re-initialization step (`probe_all` refreshed every
    /// stream at once). Delegates to [`RankIndex::bulk_build`]: one sorted
    /// pass instead of `n` random-position inserts.
    ///
    /// # Panics
    ///
    /// Panics if the view population differs from the index population or
    /// the view is not fully known.
    pub fn rebuild_from_view(&mut self, view: &ServerView) {
        assert_eq!(view.len(), self.capacity(), "view/index population mismatch");
        assert!(view.all_known(), "cannot index a partially-known view");
        self.bulk_build((0..view.len()).map(|i| {
            let id = StreamId(i as u32);
            (id, view.get(id))
        }));
    }

    /// Replaces the whole index with `values` in one sorted pass: sort the
    /// `(key, id)` pairs, then link the treap left-to-right with a
    /// right-spine stack (the cartesian-tree construction) — O(n) tree
    /// building after the sort, instead of `n` random-position inserts
    /// costing O(n log n) pointer chases.
    ///
    /// The result is the same treap the incremental path produces: with
    /// distinct priorities the treap over a `(key, id, priority)` set is
    /// unique, so every traversal — and therefore every rank answer — is
    /// byte-identical to inserting one by one
    /// (`tests/rank_index_prop.rs` proves it per operation).
    ///
    /// # Panics
    ///
    /// Panics on NaN keys, out-of-population ids, or an id that appears
    /// twice.
    pub fn bulk_build(&mut self, values: impl IntoIterator<Item = (StreamId, f64)>) {
        self.clear();
        let mut pairs: Vec<(f64, StreamId)> = values
            .into_iter()
            .map(|(id, v)| {
                let key = self.space.key(v);
                assert!(!key.is_nan(), "rank keys must not be NaN");
                (key, id)
            })
            .collect();
        pairs.sort_unstable_by(|&a, &b| cmp_key(a, b));
        // Right spine of the tree built so far (root at the bottom). Each
        // new node enters as the deepest right descendant: nodes of lower
        // priority are popped below it (ties keep the earlier node on top,
        // exactly like `merge`).
        let mut spine: Vec<u32> = Vec::with_capacity(64);
        for &(key, id) in &pairs {
            let i = id.index();
            let node = &mut self.nodes[i];
            assert!(!node.present, "{id} appears twice in bulk_build");
            node.key = key;
            node.left = NIL;
            node.right = NIL;
            node.size = 1;
            node.present = true;
            let cur = i as u32;
            let mut popped = NIL;
            while let Some(&top) = spine.last() {
                if self.nodes[top as usize].prio >= self.nodes[cur as usize].prio {
                    break;
                }
                // `top`'s subtree is final once it leaves the spine: fix its
                // size now (its right chain was popped — and fixed — first).
                spine.pop();
                self.fix(top);
                popped = top;
            }
            self.nodes[cur as usize].left = popped;
            if let Some(&top) = spine.last() {
                self.nodes[top as usize].right = cur;
            }
            spine.push(cur);
        }
        // Finalize sizes bottom-up along the remaining spine; the last
        // element popped is the root.
        self.root = NIL;
        while let Some(top) = spine.pop() {
            self.fix(top);
            self.root = top;
        }
        self.len = pairs.len();
    }

    /// How many indexed `(key, id)` pairs order strictly before `at` —
    /// the descend-and-count half of a rank query, usable with an `at`
    /// that is not itself indexed (the forest's cross-part rank merge).
    pub fn count_before(&self, at: (f64, StreamId)) -> usize {
        let mut t = self.root;
        let mut count = 0usize;
        while t != NIL {
            let node = &self.nodes[t as usize];
            if cmp_key((node.key, StreamId(t)), at) == std::cmp::Ordering::Less {
                count += self.size(node.left) as usize + 1;
                t = node.right;
            } else {
                t = node.left;
            }
        }
        count
    }

    /// The 1-based rank of `id`, if indexed.
    pub fn rank_of(&self, id: StreamId) -> Option<usize> {
        let i = id.index();
        if !self.nodes[i].present {
            return None;
        }
        let at = (self.nodes[i].key, id);
        let mut t = self.root;
        let mut before = 0usize;
        loop {
            debug_assert_ne!(t, NIL, "present node must be reachable");
            let node = &self.nodes[t as usize];
            match cmp_key(at, (node.key, StreamId(t))) {
                std::cmp::Ordering::Less => t = node.left,
                std::cmp::Ordering::Equal => {
                    return Some(before + self.size(node.left) as usize + 1)
                }
                std::cmp::Ordering::Greater => {
                    before += self.size(node.left) as usize + 1;
                    t = node.right;
                }
            }
        }
    }

    /// The `(key, id)` pair of 1-based rank `m`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= m <= len`.
    pub fn select(&self, m: usize) -> (f64, StreamId) {
        assert!(m >= 1 && m <= self.len, "select rank {m} out of 1..={}", self.len);
        let mut t = self.root;
        let mut m = m;
        loop {
            let node = &self.nodes[t as usize];
            let left = self.size(node.left) as usize;
            match m.cmp(&(left + 1)) {
                std::cmp::Ordering::Equal => return (node.key, StreamId(t)),
                std::cmp::Ordering::Less => t = node.left,
                std::cmp::Ordering::Greater => {
                    m -= left + 1;
                    t = node.right;
                }
            }
        }
    }

    /// The midpoint between the keys of ranks `m` and `m + 1` — identical
    /// to [`midpoint_threshold`] over the same entries.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `m + 1` streams are indexed or `m == 0`.
    pub fn midpoint(&self, m: usize) -> f64 {
        assert!(m >= 1, "midpoint rank must be >= 1");
        assert!(
            self.len > m,
            "midpoint between ranks {m} and {} needs more than {m} streams, got {}",
            m + 1,
            self.len
        );
        (self.select(m).0 + self.select(m + 1).0) / 2.0
    }

    /// How many indexed streams lie inside the ball `{key <= d}` — the
    /// paper's "streams inside `R`" count against the server's view.
    ///
    /// # Panics
    ///
    /// Panics on NaN `d`.
    pub fn count_in_ball(&self, d: f64) -> usize {
        assert!(!d.is_nan(), "ball threshold must not be NaN");
        let mut t = self.root;
        let mut count = 0usize;
        while t != NIL {
            let node = &self.nodes[t as usize];
            if node.key <= d {
                count += self.size(node.left) as usize + 1;
                t = node.right;
            } else {
                t = node.left;
            }
        }
        count
    }

    /// The `m` best-ranked ids in order.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `m` streams are indexed.
    pub fn top_ids(&self, m: usize) -> Vec<StreamId> {
        assert!(m <= self.len, "asked for top {m} of {} indexed streams", self.len);
        let mut out = Vec::with_capacity(m);
        self.collect_ids(self.root, m, &mut out);
        out
    }

    /// Every indexed id, best-first — the indexed equivalent of
    /// [`rank_view`].
    pub fn ordered_ids(&self) -> Vec<StreamId> {
        self.top_ids(self.len)
    }

    /// Every indexed `(key, id)` pair, best-first.
    pub fn ordered_pairs(&self) -> Vec<(f64, StreamId)> {
        let mut out = Vec::with_capacity(self.len);
        self.collect_pairs(self.root, &mut out);
        out
    }

    /// A lazy in-order iterator over the indexed `(key, id)` pairs —
    /// O(log n) to open, O(1) amortized per step — so merging passes (the
    /// forest's cross-part walks) don't re-descend from the root per
    /// element or materialize per-part vectors.
    pub fn iter_inorder(&self) -> InorderIter<'_> {
        let mut iter = InorderIter { index: self, stack: Vec::with_capacity(48) };
        iter.descend_left(self.root);
        iter
    }

    #[inline]
    fn size(&self, t: u32) -> u32 {
        if t == NIL {
            0
        } else {
            self.nodes[t as usize].size
        }
    }

    #[inline]
    fn fix(&mut self, t: u32) {
        let (l, r) = {
            let node = &self.nodes[t as usize];
            (node.left, node.right)
        };
        self.nodes[t as usize].size = 1 + self.size(l) + self.size(r);
    }

    /// Splits subtree `t` into (`< at`, `>= at`) by `(key, id)` order.
    fn split(&mut self, t: u32, at: (f64, StreamId)) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        let pair = (self.nodes[t as usize].key, StreamId(t));
        if cmp_key(pair, at) == std::cmp::Ordering::Less {
            let (l, r) = self.split(self.nodes[t as usize].right, at);
            self.nodes[t as usize].right = l;
            self.fix(t);
            (t, r)
        } else {
            let (l, r) = self.split(self.nodes[t as usize].left, at);
            self.nodes[t as usize].left = r;
            self.fix(t);
            (l, t)
        }
    }

    /// Merges subtrees `l` and `r` where every pair in `l` precedes every
    /// pair in `r`.
    fn merge(&mut self, l: u32, r: u32) -> u32 {
        if l == NIL {
            return r;
        }
        if r == NIL {
            return l;
        }
        if self.nodes[l as usize].prio >= self.nodes[r as usize].prio {
            let m = self.merge(self.nodes[l as usize].right, r);
            self.nodes[l as usize].right = m;
            self.fix(l);
            l
        } else {
            let m = self.merge(l, self.nodes[r as usize].left);
            self.nodes[r as usize].left = m;
            self.fix(r);
            r
        }
    }

    fn remove_rec(&mut self, t: u32, at: (f64, StreamId)) -> u32 {
        debug_assert_ne!(t, NIL, "removed pair must be present");
        let pair = (self.nodes[t as usize].key, StreamId(t));
        match cmp_key(at, pair) {
            std::cmp::Ordering::Equal => {
                let (l, r) = (self.nodes[t as usize].left, self.nodes[t as usize].right);
                self.merge(l, r)
            }
            std::cmp::Ordering::Less => {
                let nl = self.remove_rec(self.nodes[t as usize].left, at);
                self.nodes[t as usize].left = nl;
                self.fix(t);
                t
            }
            std::cmp::Ordering::Greater => {
                let nr = self.remove_rec(self.nodes[t as usize].right, at);
                self.nodes[t as usize].right = nr;
                self.fix(t);
                t
            }
        }
    }

    fn collect_ids(&self, t: u32, limit: usize, out: &mut Vec<StreamId>) {
        if t == NIL || out.len() == limit {
            return;
        }
        let node = &self.nodes[t as usize];
        self.collect_ids(node.left, limit, out);
        if out.len() < limit {
            out.push(StreamId(t));
            self.collect_ids(node.right, limit, out);
        }
    }

    fn collect_pairs(&self, t: u32, out: &mut Vec<(f64, StreamId)>) {
        if t == NIL {
            return;
        }
        let node = &self.nodes[t as usize];
        self.collect_pairs(node.left, out);
        out.push((node.key, StreamId(t)));
        self.collect_pairs(node.right, out);
    }
}

/// Lazy in-order traversal of a [`RankIndex`] (see
/// [`RankIndex::iter_inorder`]).
pub struct InorderIter<'a> {
    index: &'a RankIndex,
    stack: Vec<u32>,
}

impl InorderIter<'_> {
    fn descend_left(&mut self, mut t: u32) {
        while t != NIL {
            self.stack.push(t);
            t = self.index.nodes[t as usize].left;
        }
    }
}

impl Iterator for InorderIter<'_> {
    type Item = (f64, StreamId);

    fn next(&mut self) -> Option<(f64, StreamId)> {
        let t = self.stack.pop()?;
        let node = &self.index.nodes[t as usize];
        self.descend_left(node.right);
        Some((node.key, StreamId(t)))
    }
}

/// Timing of one partition-parallel index maintenance pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct ForestTiming {
    /// Maximum per-part busy time, ns — what a parallel execution waits
    /// for.
    pub max_ns: u64,
    /// Total busy time across all parts, ns.
    pub sum_ns: u64,
}

/// A **sharded rank index**: `p` independent [`RankIndex`] treaps, part `p`
/// owning the global stream ids `≡ p (mod parts)` under local ids
/// `global / parts` — the same strided partitioning `asf-server` uses for
/// its worker shards.
///
/// The strided local↔global map is monotone within a part, so each part's
/// `(key, local id)` order is exactly the global `(key, id)` order
/// restricted to that part, and every query merges the parts without any
/// re-sorting: `select`/`top_ids`/ordered passes by a `parts`-way
/// **heap merge** over lazy per-part in-order cursors (O(log n) to open
/// each cursor, O(log parts) per emitted pair), ball counts and ranks by
/// summing per-part subtree counts. All outputs are **byte-identical** for any part count —
/// the global `(key, id)` order is unique — so the serial engine (one
/// part) and the sharded server (one part per shard) agree bit for bit.
///
/// The point of the split is *maintenance parallelism*: a reinit storm's
/// `probe_all` re-keys only the streams that drifted, and those re-keys
/// partition by ownership — [`RankForest::refresh_from_changed`] runs the
/// parts on scoped threads (when the batch is worth it) and reports per-
/// part busy time, so index maintenance scales with the shard count
/// instead of serializing on the coordinator. Smaller per-part arenas also
/// make every re-key cheaper (shallower treaps, cache-resident nodes).
#[derive(Debug)]
pub struct RankForest {
    space: RankSpace,
    parts: Vec<RankIndex>,
    stride: usize,
    n: usize,
    /// Pooled per-part `(local, value)` slices for refresh batches.
    refresh_scratch: Vec<Vec<(u32, f64)>>,
}

/// Below this many re-keys a partition-parallel refresh runs the parts on
/// the caller's thread — scoped-thread spawn overhead would exceed the
/// work. Purely a performance knob: results are identical either way.
const FOREST_SPAWN_THRESHOLD: usize = 1024;

impl RankForest {
    /// Creates an empty forest of `parts` strided partitions over a
    /// population of `n` ids under `space`.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero or exceeds `n`.
    pub fn new(space: RankSpace, n: usize, parts: usize) -> Self {
        assert!(parts >= 1, "need at least one rank partition");
        assert!(parts <= n.max(1), "more rank partitions ({parts}) than streams ({n})");
        let part_indexes = (0..parts)
            .map(|p| {
                let part_n = (n + parts - 1 - p) / parts; // ceil((n - p) / parts)
                RankIndex::new(space, part_n)
            })
            .collect();
        Self { space, parts: part_indexes, stride: parts, n, refresh_scratch: Vec::new() }
    }

    /// The rank space the forest orders by.
    pub fn space(&self) -> RankSpace {
        self.space
    }

    /// Number of partitions.
    pub fn parts(&self) -> usize {
        self.stride
    }

    /// Number of streams currently indexed.
    pub fn len(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// Whether no stream is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The population size `n` the forest was created for.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Whether every stream of the population is indexed (the delta-refresh
    /// precondition).
    pub fn is_fully_populated(&self) -> bool {
        self.len() == self.n
    }

    #[inline]
    fn part_of(&self, id: StreamId) -> (usize, StreamId) {
        ((id.index() % self.stride), StreamId(id.0 / self.stride as u32))
    }

    #[inline]
    fn global_of(&self, part: usize, local: StreamId) -> StreamId {
        StreamId(local.0 * self.stride as u32 + part as u32)
    }

    /// Whether `id` is currently indexed.
    pub fn contains(&self, id: StreamId) -> bool {
        let (p, l) = self.part_of(id);
        self.parts[p].contains(l)
    }

    /// The rank key stored for `id`, if indexed.
    pub fn key_of(&self, id: StreamId) -> Option<f64> {
        let (p, l) = self.part_of(id);
        self.parts[p].key_of(l)
    }

    /// Re-keys `id` to `value`, inserting it if absent — the maintenance
    /// operation applied for every value that reaches the server.
    pub fn update(&mut self, id: StreamId, value: f64) {
        let (p, l) = self.part_of(id);
        self.parts[p].update(l, value);
    }

    /// Rebuilds the whole forest from a fully-known view, each part by one
    /// sorted [`RankIndex::bulk_build`] pass over its stride slice.
    /// Returns per-part timing (the parts are independent).
    ///
    /// # Panics
    ///
    /// Panics if the view population differs from the forest population or
    /// the view is not fully known.
    pub fn rebuild_from_view(&mut self, view: &ServerView) -> ForestTiming {
        assert_eq!(view.len(), self.n, "view/forest population mismatch");
        assert!(view.all_known(), "cannot index a partially-known view");
        let stride = self.stride;
        let mut timing = ForestTiming::default();
        for (p, part) in self.parts.iter_mut().enumerate() {
            let t = std::time::Instant::now();
            part.bulk_build((0..part.capacity()).map(|l| {
                let g = StreamId((l * stride + p) as u32);
                (StreamId(l as u32), view.get(g))
            }));
            let ns = t.elapsed().as_nanos() as u64;
            timing.max_ns = timing.max_ns.max(ns);
            timing.sum_ns += ns;
        }
        timing
    }

    /// Re-keys exactly the `changed` ids to their current view values —
    /// the reinit-storm maintenance pass. The re-keys partition by
    /// ownership, so the parts run on scoped threads when the batch is
    /// large enough to amortize the spawns; per-part busy time is
    /// returned so callers can attribute the maximum as the parallel
    /// component of their scaling model. Results are byte-identical to
    /// calling [`RankForest::update`] per id in any order (the treap over
    /// a `(key, id, priority)` set is unique).
    ///
    /// # Panics
    ///
    /// Panics if the view population differs from the forest population or
    /// the forest is not fully populated (bulk-build first — a partially
    /// populated forest would silently answer wrong global ranks).
    pub fn refresh_from_changed(
        &mut self,
        view: &ServerView,
        changed: &[StreamId],
    ) -> ForestTiming {
        assert_eq!(view.len(), self.n, "view/forest population mismatch");
        assert!(
            self.is_fully_populated(),
            "delta refresh needs a fully-populated forest; rebuild first"
        );
        let stride = self.stride;
        while self.refresh_scratch.len() < stride {
            self.refresh_scratch.push(Vec::new());
        }
        let mut slices = std::mem::take(&mut self.refresh_scratch);
        for s in slices.iter_mut() {
            s.clear();
        }
        for &id in changed {
            let (p, l) = (id.index() % stride, id.0 / stride as u32);
            slices[p].push((l, view.get(id)));
        }
        let mut timing = ForestTiming::default();
        let record = |ns: u64, timing: &mut ForestTiming| {
            timing.max_ns = timing.max_ns.max(ns);
            timing.sum_ns += ns;
        };
        // Spawn only when real cores exist: on a single-CPU host the
        // scoped threads would interleave and each part's wall-clock would
        // measure the whole pass, corrupting the per-part busy attribution
        // (results are identical either way — this is a metering/
        // performance gate only).
        let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        if stride > 1 && cores > 1 && changed.len() >= FOREST_SPAWN_THRESHOLD {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .parts
                    .iter_mut()
                    .zip(slices.iter())
                    .map(|(part, slice)| {
                        scope.spawn(move || {
                            let t = std::time::Instant::now();
                            for &(l, v) in slice {
                                part.update(StreamId(l), v);
                            }
                            t.elapsed().as_nanos() as u64
                        })
                    })
                    .collect();
                for handle in handles {
                    record(handle.join().expect("rank part refresh panicked"), &mut timing);
                }
            });
        } else {
            for (part, slice) in self.parts.iter_mut().zip(slices.iter()) {
                let t = std::time::Instant::now();
                for &(l, v) in slice {
                    part.update(StreamId(l), v);
                }
                record(t.elapsed().as_nanos() as u64, &mut timing);
            }
        }
        self.refresh_scratch = slices;
        timing
    }

    /// The `(key, id)` pair of 1-based rank `m` — a `parts`-way cursor
    /// walk of per-part selections.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= m <= len`.
    pub fn select(&self, m: usize) -> (f64, StreamId) {
        let len = self.len();
        assert!(m >= 1 && m <= len, "select rank {m} out of 1..={len}");
        let mut out = (f64::NAN, StreamId(u32::MAX));
        self.top_walk(m, |pair| out = pair);
        out
    }

    /// The midpoint between the keys of ranks `m` and `m + 1`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `m + 1` streams are indexed or `m == 0`.
    pub fn midpoint(&self, m: usize) -> f64 {
        assert!(m >= 1, "midpoint rank must be >= 1");
        assert!(
            self.len() > m,
            "midpoint between ranks {m} and {} needs more than {m} streams, got {}",
            m + 1,
            self.len()
        );
        let mut keys = (0.0f64, 0.0f64);
        self.top_walk(m + 1, |pair| {
            keys = (keys.1, pair.0);
        });
        (keys.0 + keys.1) / 2.0
    }

    /// The `m` best-ranked ids in order.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `m` streams are indexed.
    pub fn top_ids(&self, m: usize) -> Vec<StreamId> {
        assert!(m <= self.len(), "asked for top {m} of {} indexed streams", self.len());
        let mut out = Vec::with_capacity(m);
        self.top_walk(m, |(_, id)| out.push(id));
        out
    }

    /// The `m` best-ranked `(key, id)` pairs in order — one walk serving
    /// both a bound position and its tracked set (protocols that need
    /// `midpoint(ε)` *and* the top ε ids pay a single pass).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `m` streams are indexed.
    pub fn top_pairs(&self, m: usize) -> Vec<(f64, StreamId)> {
        assert!(m <= self.len(), "asked for top {m} of {} indexed streams", self.len());
        let mut out = Vec::with_capacity(m);
        self.top_walk(m, |pair| out.push(pair));
        out
    }

    /// Walks the best `m` global `(key, id)` pairs in order, calling
    /// `visit` for each: one lazy in-order iterator per part (O(log n) to
    /// open, O(1) amortized to advance), merged through a min-heap of the
    /// per-part heads — O(m·log parts) comparisons instead of the
    /// O(m·parts) linear head scan, so walks stay cheap at 64+ parts. No
    /// re-descent, no materialization; ties are total under the global
    /// `(key, id)` order, so the merge is deterministic.
    fn top_walk(&self, m: usize, mut visit: impl FnMut((f64, StreamId))) {
        let mut iters: Vec<InorderIter<'_>> =
            self.parts.iter().map(|part| part.iter_inorder()).collect();
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<MergeHead>> =
            std::collections::BinaryHeap::with_capacity(iters.len());
        for (p, it) in iters.iter_mut().enumerate() {
            if let Some((key, l)) = it.next() {
                heap.push(std::cmp::Reverse(MergeHead { key, id: self.global_of(p, l), part: p }));
            }
        }
        for _ in 0..m {
            let std::cmp::Reverse(head) = heap.pop().expect("walk within len");
            visit((head.key, head.id));
            if let Some((key, l)) = iters[head.part].next() {
                heap.push(std::cmp::Reverse(MergeHead {
                    key,
                    id: self.global_of(head.part, l),
                    part: head.part,
                }));
            }
        }
    }

    /// Every indexed id, best-first.
    pub fn ordered_ids(&self) -> Vec<StreamId> {
        self.ordered_pairs().into_iter().map(|(_, id)| id).collect()
    }

    /// Every indexed `(key, id)` pair, best-first — a lazy merge of the
    /// per-part in-order traversals (each already in global order).
    pub fn ordered_pairs(&self) -> Vec<(f64, StreamId)> {
        let mut out = Vec::with_capacity(self.len());
        self.top_walk(self.len(), |pair| out.push(pair));
        out
    }

    /// How many indexed streams lie inside the ball `{key <= d}` — the
    /// sum of the per-part subtree counts.
    ///
    /// # Panics
    ///
    /// Panics on NaN `d`.
    pub fn count_in_ball(&self, d: f64) -> usize {
        self.parts.iter().map(|p| p.count_in_ball(d)).sum()
    }

    /// The 1-based rank of `id`, if indexed: one `count_before` descent
    /// per part against the global `(key, id)` cutoff.
    pub fn rank_of(&self, id: StreamId) -> Option<usize> {
        let key = self.key_of(id)?;
        Some(self.count_before((key, id)) + 1)
    }

    /// How many indexed entries order strictly before the global `(key, id)`
    /// pair under [`cmp_key`] — one `count_before` descent per part. The
    /// pair need not be indexed (nor indexed *at* that key), which is what
    /// lets multi-query rank routing locate a stream's **pre-update** rank
    /// after the forest has already been re-keyed.
    pub fn count_before(&self, at: (f64, StreamId)) -> usize {
        let (key, id) = at;
        let mut before = 0usize;
        for (p, part) in self.parts.iter().enumerate() {
            // Entries of part p order before (key, id) iff their key is
            // smaller, or equal with global id `l·parts + p < id`; the
            // local cutoff for that is ceil((id - p) / parts).
            let cut =
                if id.0 > p as u32 { (id.0 - p as u32).div_ceil(self.stride as u32) } else { 0 };
            before += part.count_before((key, StreamId(cut)));
        }
        before
    }
}

/// One partition's current head in a forest merge walk, ordered by the
/// global `(key, id)` pair ([`cmp_key`] — total, since keys are never NaN
/// and global ids are unique).
#[derive(Clone, Copy, Debug)]
struct MergeHead {
    key: f64,
    id: StreamId,
    part: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for MergeHead {}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        cmp_key((self.key, self.id), (other.key, other.id))
    }
}

/// One ranked pass over the server's current knowledge, handed to rank
/// protocols by [`crate::protocol::ServerCtx::ranks`].
///
/// Backed by the engine-maintained [`RankForest`] when incremental ranking
/// is on (the default), or by a single sort of the view (the seed path,
/// kept for differential testing). All accessors return byte-identical
/// results either way.
pub enum Ranks<'a> {
    /// The engine's incrementally maintained sharded index.
    Indexed(&'a RankForest),
    /// One full sort of the view snapshot (`(key, id)` ascending).
    Sorted(Vec<(f64, StreamId)>),
}

impl Ranks<'_> {
    /// Ranks a fully-known view by one sort — the seed's code path.
    pub fn from_view(space: RankSpace, view: &ServerView) -> Ranks<'static> {
        assert!(view.all_known(), "cannot rank a partially-known view");
        let mut pairs: Vec<(f64, StreamId)> = (0..view.len())
            .map(|i| {
                let id = StreamId(i as u32);
                (space.key(view.get(id)), id)
            })
            .collect();
        pairs.sort_by(|&a, &b| cmp_key(a, b));
        Ranks::Sorted(pairs)
    }

    /// Number of ranked streams.
    pub fn len(&self) -> usize {
        match self {
            Ranks::Indexed(index) => index.len(),
            Ranks::Sorted(pairs) => pairs.len(),
        }
    }

    /// Whether no stream is ranked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(key, id)` pair of 1-based rank `m`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= m <= len`.
    pub fn select(&self, m: usize) -> (f64, StreamId) {
        match self {
            Ranks::Indexed(index) => index.select(m),
            Ranks::Sorted(pairs) => {
                assert!(m >= 1 && m <= pairs.len(), "select rank {m} out of 1..={}", pairs.len());
                pairs[m - 1]
            }
        }
    }

    /// The midpoint between the keys of ranks `m` and `m + 1` — the
    /// paper's `Deploy_bound` position. Equals [`midpoint_threshold`] over
    /// the same entries.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `m + 1` streams are ranked or `m == 0`.
    pub fn midpoint(&self, m: usize) -> f64 {
        assert!(m >= 1, "midpoint rank must be >= 1");
        assert!(
            self.len() > m,
            "midpoint between ranks {m} and {} needs more than {m} streams, got {}",
            m + 1,
            self.len()
        );
        (self.select(m).0 + self.select(m + 1).0) / 2.0
    }

    /// The `m` best-ranked ids in order.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `m` streams are ranked.
    pub fn top_ids(&self, m: usize) -> Vec<StreamId> {
        match self {
            Ranks::Indexed(index) => index.top_ids(m),
            Ranks::Sorted(pairs) => {
                assert!(m <= pairs.len(), "asked for top {m} of {} ranked streams", pairs.len());
                pairs[..m].iter().map(|&(_, id)| id).collect()
            }
        }
    }

    /// The `m` best-ranked `(key, id)` pairs in order — one pass serving
    /// both a bound position (`pairs[m-1].0`) and the tracked id set.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `m` streams are ranked.
    pub fn top_pairs(&self, m: usize) -> Vec<(f64, StreamId)> {
        match self {
            Ranks::Indexed(index) => index.top_pairs(m),
            Ranks::Sorted(pairs) => {
                assert!(m <= pairs.len(), "asked for top {m} of {} ranked streams", pairs.len());
                pairs[..m].to_vec()
            }
        }
    }

    /// Every ranked id, best-first.
    pub fn ordered_ids(&self) -> Vec<StreamId> {
        self.top_ids(self.len())
    }

    /// Every ranked `(key, id)` pair, best-first.
    pub fn ordered_pairs(&self) -> Vec<(f64, StreamId)> {
        match self {
            Ranks::Indexed(index) => index.ordered_pairs(),
            Ranks::Sorted(pairs) => pairs.clone(),
        }
    }

    /// The 1-based rank of `id`, if ranked.
    pub fn rank_of(&self, id: StreamId) -> Option<usize> {
        match self {
            Ranks::Indexed(index) => index.rank_of(id),
            Ranks::Sorted(pairs) => pairs.iter().position(|&(_, pid)| pid == id).map(|pos| pos + 1),
        }
    }

    /// How many ranked entries order strictly before the `(key, id)` pair
    /// under [`cmp_key`]. The pair need not be ranked (nor ranked at that
    /// key) — see [`RankForest::count_before`].
    pub fn count_before(&self, at: (f64, StreamId)) -> usize {
        match self {
            Ranks::Indexed(index) => index.count_before(at),
            Ranks::Sorted(pairs) => {
                pairs.partition_point(|&p| cmp_key(p, at) == std::cmp::Ordering::Less)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(v: &[f64]) -> Vec<(StreamId, f64)> {
        v.iter().enumerate().map(|(i, &x)| (StreamId(i as u32), x)).collect()
    }

    #[test]
    fn knn_ranks_by_distance() {
        let space = RankSpace::Knn { q: 100.0 };
        // values: 90 (d=10), 150 (d=50), 105 (d=5), 300 (d=200)
        let order = rank_values(space, vals(&[90.0, 150.0, 105.0, 300.0]));
        assert_eq!(order, vec![StreamId(2), StreamId(0), StreamId(1), StreamId(3)]);
    }

    #[test]
    fn topk_ranks_descending() {
        let order = rank_values(RankSpace::TopK, vals(&[5.0, 9.0, 1.0]));
        assert_eq!(order, vec![StreamId(1), StreamId(0), StreamId(2)]);
    }

    #[test]
    fn ties_break_by_id() {
        let space = RankSpace::Knn { q: 0.0 };
        // ids 0 and 1 both at distance 10 (values -10 and 10).
        let order = rank_values(space, vals(&[-10.0, 10.0, 1.0]));
        assert_eq!(order, vec![StreamId(2), StreamId(0), StreamId(1)]);
    }

    #[test]
    fn rank_of_is_one_based() {
        let space = RankSpace::TopK;
        let v = vals(&[5.0, 9.0, 1.0]);
        assert_eq!(rank_of(space, v.clone(), StreamId(1)), Some(1));
        assert_eq!(rank_of(space, v.clone(), StreamId(2)), Some(3));
        assert_eq!(rank_of(space, v, StreamId(9)), None);
    }

    #[test]
    fn midpoint_threshold_between_ranks() {
        let space = RankSpace::Knn { q: 0.0 };
        // distances: 1, 2, 4, 8
        let v = vals(&[1.0, -2.0, 4.0, -8.0]);
        assert_eq!(midpoint_threshold(space, v.clone(), 1), 1.5);
        assert_eq!(midpoint_threshold(space, v.clone(), 2), 3.0);
        assert_eq!(midpoint_threshold(space, v, 3), 6.0);
    }

    #[test]
    fn midpoint_separates_the_ranks() {
        // The RTP invariant: exactly m streams lie inside ball(midpoint).
        let space = RankSpace::TopK;
        let values = vals(&[10.0, 50.0, 30.0, 20.0, 40.0]);
        for m in 1..5 {
            let d = midpoint_threshold(space, values.clone(), m);
            let inside = values.iter().filter(|&&(_, v)| space.in_ball(v, d)).count();
            assert_eq!(inside, m, "m={m}");
        }
    }

    #[test]
    #[should_panic(expected = "needs more than")]
    fn midpoint_requires_enough_streams() {
        midpoint_threshold(RankSpace::TopK, vals(&[1.0, 2.0]), 2);
    }

    #[test]
    fn rank_view_requires_full_knowledge() {
        let mut view = ServerView::new(2);
        view.set(StreamId(0), 1.0);
        let r = std::panic::catch_unwind(|| rank_view(RankSpace::TopK, &view));
        assert!(r.is_err());
        view.set(StreamId(1), 5.0);
        assert_eq!(rank_view(RankSpace::TopK, &view), vec![StreamId(1), StreamId(0)]);
    }

    fn filled_index(space: RankSpace, values: &[f64]) -> RankIndex {
        let mut index = RankIndex::new(space, values.len());
        for (i, &v) in values.iter().enumerate() {
            index.insert(StreamId(i as u32), v);
        }
        index
    }

    #[test]
    fn index_matches_sort_order() {
        let space = RankSpace::Knn { q: 100.0 };
        let values = [90.0, 150.0, 105.0, 300.0, 100.0];
        let index = filled_index(space, &values);
        assert_eq!(index.len(), 5);
        assert_eq!(index.ordered_ids(), rank_values(space, vals(&values)));
        assert_eq!(index.top_ids(2), rank_values(space, vals(&values))[..2].to_vec());
    }

    #[test]
    fn index_rank_of_and_select_agree() {
        let space = RankSpace::TopK;
        let values = [5.0, 9.0, 1.0, 9.0, 5.0]; // ties on purpose
        let index = filled_index(space, &values);
        let order = rank_values(space, vals(&values));
        for (pos, &id) in order.iter().enumerate() {
            assert_eq!(index.rank_of(id), Some(pos + 1));
            assert_eq!(index.select(pos + 1).1, id);
        }
        assert_eq!(
            index.rank_of(StreamId(4)),
            Some(order.iter().position(|&s| s.0 == 4).unwrap() + 1)
        );
    }

    #[test]
    fn index_update_rekeys() {
        let space = RankSpace::KMin;
        let mut index = filled_index(space, &[10.0, 20.0, 30.0]);
        index.update(StreamId(2), 5.0);
        assert_eq!(index.ordered_ids(), vec![StreamId(2), StreamId(0), StreamId(1)]);
        assert_eq!(index.key_of(StreamId(2)), Some(5.0));
        index.remove(StreamId(0));
        assert_eq!(index.len(), 2);
        assert_eq!(index.rank_of(StreamId(0)), None);
        assert!(!index.contains(StreamId(0)));
        // update inserts absent streams.
        index.update(StreamId(0), 1.0);
        assert_eq!(index.ordered_ids(), vec![StreamId(0), StreamId(2), StreamId(1)]);
    }

    #[test]
    fn index_midpoint_matches_sort_midpoint() {
        let space = RankSpace::Knn { q: 0.0 };
        let values = [1.0, -2.0, 4.0, -8.0];
        let index = filled_index(space, &values);
        for m in 1..4 {
            assert_eq!(index.midpoint(m), midpoint_threshold(space, vals(&values), m), "m={m}");
        }
    }

    #[test]
    fn index_count_in_ball() {
        let space = RankSpace::Knn { q: 0.0 };
        let index = filled_index(space, &[1.0, -2.0, 4.0, -8.0, 2.0]); // keys 1,2,4,8,2
        assert_eq!(index.count_in_ball(0.5), 0);
        assert_eq!(index.count_in_ball(1.0), 1);
        assert_eq!(index.count_in_ball(2.0), 3, "both key-2 entries count");
        assert_eq!(index.count_in_ball(100.0), 5);
    }

    #[test]
    fn index_rebuild_from_view() {
        let mut view = ServerView::new(3);
        for (i, v) in [30.0, 10.0, 20.0].iter().enumerate() {
            view.set(StreamId(i as u32), *v);
        }
        let mut index = RankIndex::new(RankSpace::TopK, 3);
        index.insert(StreamId(1), 999.0); // stale entry, wiped by rebuild
        index.rebuild_from_view(&view);
        assert_eq!(index.ordered_ids(), rank_view(RankSpace::TopK, &view));
    }

    #[test]
    fn bulk_build_matches_incremental_inserts() {
        let space = RankSpace::Knn { q: 50.0 };
        // Ties on purpose: 40 and 60 both at distance 10.
        let values = [40.0, 60.0, 50.0, 10.0, 90.0, 50.0];
        let incremental = filled_index(space, &values);
        let mut bulk = RankIndex::new(space, values.len());
        bulk.insert(StreamId(0), 777.0); // stale entry, wiped by the build
        bulk.bulk_build(values.iter().enumerate().map(|(i, &v)| (StreamId(i as u32), v)));
        assert_eq!(bulk.len(), incremental.len());
        assert_eq!(bulk.ordered_pairs(), incremental.ordered_pairs());
        for (i, &v) in values.iter().enumerate() {
            let id = StreamId(i as u32);
            assert_eq!(bulk.rank_of(id), incremental.rank_of(id));
            assert_eq!(bulk.key_of(id), Some(space.key(v)));
        }
        for m in 1..=values.len() {
            assert_eq!(bulk.select(m), incremental.select(m), "select {m}");
        }
    }

    #[test]
    fn bulk_build_of_nothing_is_empty() {
        let mut index = RankIndex::new(RankSpace::TopK, 4);
        index.insert(StreamId(1), 5.0);
        index.bulk_build(std::iter::empty());
        assert!(index.is_empty());
        assert_eq!(index.rank_of(StreamId(1)), None);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn bulk_build_rejects_duplicate_ids() {
        let mut index = RankIndex::new(RankSpace::TopK, 2);
        index.bulk_build([(StreamId(0), 1.0), (StreamId(0), 2.0)]);
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn index_double_insert_panics() {
        let mut index = RankIndex::new(RankSpace::TopK, 2);
        index.insert(StreamId(0), 1.0);
        index.insert(StreamId(0), 2.0);
    }

    #[test]
    #[should_panic(expected = "needs more than")]
    fn index_midpoint_requires_enough_streams() {
        let index = filled_index(RankSpace::TopK, &[1.0, 2.0]);
        index.midpoint(2);
    }

    fn filled_forest(space: RankSpace, values: &[f64], parts: usize) -> RankForest {
        let mut forest = RankForest::new(space, values.len(), parts);
        for (i, &v) in values.iter().enumerate() {
            forest.update(StreamId(i as u32), v);
        }
        forest
    }

    #[test]
    fn ranks_facade_paths_agree() {
        let space = RankSpace::Knn { q: 50.0 };
        let values = [10.0, 90.0, 50.0, 49.0, 51.0, 90.0];
        let mut view = ServerView::new(values.len());
        for (i, &v) in values.iter().enumerate() {
            view.set(StreamId(i as u32), v);
        }
        for parts in [1usize, 3] {
            let forest = filled_forest(space, &values, parts);
            let indexed = Ranks::Indexed(&forest);
            let sorted = Ranks::from_view(space, &view);
            assert_eq!(indexed.len(), sorted.len());
            assert_eq!(indexed.ordered_ids(), sorted.ordered_ids());
            assert_eq!(indexed.ordered_pairs(), sorted.ordered_pairs());
            for m in 1..values.len() {
                assert_eq!(indexed.select(m), sorted.select(m), "select {m} parts {parts}");
                assert_eq!(indexed.midpoint(m), sorted.midpoint(m), "midpoint {m} parts {parts}");
                assert_eq!(indexed.top_ids(m), sorted.top_ids(m), "top {m} parts {parts}");
            }
        }
    }

    #[test]
    fn forest_part_counts_are_byte_identical() {
        // Ties across parts on purpose: 40 and 60 both at distance 10 from
        // q = 50, landing in different strided partitions.
        let space = RankSpace::Knn { q: 50.0 };
        let values = [40.0, 60.0, 50.0, 10.0, 90.0, 50.0, 45.0, 55.0, 70.0];
        let single = filled_forest(space, &values, 1);
        for parts in [2usize, 3, 4, 9] {
            let forest = filled_forest(space, &values, parts);
            assert_eq!(forest.ordered_pairs(), single.ordered_pairs(), "parts {parts}");
            assert_eq!(forest.count_in_ball(10.0), single.count_in_ball(10.0), "parts {parts}");
            for (i, _) in values.iter().enumerate() {
                let id = StreamId(i as u32);
                assert_eq!(forest.rank_of(id), single.rank_of(id), "rank_of {id} parts {parts}");
                assert_eq!(forest.key_of(id), single.key_of(id));
            }
            for m in 1..=values.len() {
                assert_eq!(forest.select(m), single.select(m), "select {m} parts {parts}");
            }
        }
    }

    #[test]
    fn forest_refresh_from_changed_equals_rebuild() {
        let space = RankSpace::KMin;
        let n = 64;
        let mut view = ServerView::new(n);
        for i in 0..n {
            view.set(StreamId(i as u32), (i * 37 % 100) as f64);
        }
        let mut forest = RankForest::new(space, n, 4);
        forest.rebuild_from_view(&view);
        assert!(forest.is_fully_populated());
        // Drift a strided spread of streams, including ties.
        let changed: Vec<StreamId> = (0..n).step_by(5).map(|i| StreamId(i as u32)).collect();
        for &id in &changed {
            view.set(id, (id.0 * 13 % 50) as f64);
        }
        forest.refresh_from_changed(&view, &changed);
        let mut rebuilt = RankForest::new(space, n, 4);
        rebuilt.rebuild_from_view(&view);
        assert_eq!(forest.ordered_pairs(), rebuilt.ordered_pairs());
    }
}
