//! Ranking utilities over server views and ground-truth values.
//!
//! The paper's `rank(S_i, t)` is the 1-based position of stream `i` when all
//! streams are ordered by rank key (§3.3, "the function rank depends on the
//! query"). Ties are broken by ascending stream id so the order is total —
//! see [`streamnet::StreamId`].

use streamnet::{ServerView, StreamId};

use crate::query::RankSpace;

/// Compares two `(key, id)` pairs: ascending key, ties by ascending id.
///
/// # Panics
///
/// Panics (in debug builds) on NaN keys; stream values are validated finite
/// at the sources, so keys are never NaN.
#[inline]
pub fn cmp_key(a: (f64, StreamId), b: (f64, StreamId)) -> std::cmp::Ordering {
    a.0.partial_cmp(&b.0).expect("rank keys must not be NaN").then(a.1.cmp(&b.1))
}

/// Ranks every stream in the server's view: returns ids sorted best-first.
///
/// # Panics
///
/// Panics if the view has streams the server has never learned — protocols
/// must initialize (probe all) before ranking.
pub fn rank_view(space: RankSpace, view: &ServerView) -> Vec<StreamId> {
    assert!(view.all_known(), "cannot rank a partially-known view");
    rank_values(
        space,
        (0..view.len()).map(|i| {
            let id = StreamId(i as u32);
            (id, view.get(id))
        }),
    )
}

/// Ranks an arbitrary `(id, value)` collection; returns ids sorted
/// best-first under `space` with deterministic tie-breaking.
pub fn rank_values(
    space: RankSpace,
    values: impl IntoIterator<Item = (StreamId, f64)>,
) -> Vec<StreamId> {
    let mut keyed: Vec<(f64, StreamId)> =
        values.into_iter().map(|(id, v)| (space.key(v), id)).collect();
    keyed.sort_by(|&a, &b| cmp_key(a, b));
    keyed.into_iter().map(|(_, id)| id).collect()
}

/// The 1-based rank of `id` within `values` under `space`.
///
/// This is the paper's `rank(S_i, t)` evaluated over whatever value
/// snapshot the caller supplies (server view for protocols, ground truth
/// for the oracle).
pub fn rank_of(
    space: RankSpace,
    values: impl IntoIterator<Item = (StreamId, f64)>,
    id: StreamId,
) -> Option<usize> {
    rank_values(space, values).iter().position(|&s| s == id).map(|p| p + 1)
}

/// The midpoint between the keys of ranks `m` and `m + 1` (1-based) —
/// the paper's `Deploy_bound` radius `d = (|V_x − q| + |V_y − q|)/2`
/// generalised to key space.
///
/// # Panics
///
/// Panics if fewer than `m + 1` streams are supplied or `m == 0`.
pub fn midpoint_threshold(
    space: RankSpace,
    values: impl IntoIterator<Item = (StreamId, f64)>,
    m: usize,
) -> f64 {
    assert!(m >= 1, "midpoint rank must be >= 1");
    let mut keys: Vec<f64> = values.into_iter().map(|(_, v)| space.key(v)).collect();
    assert!(
        keys.len() > m,
        "midpoint between ranks {m} and {} needs more than {m} streams, got {}",
        m + 1,
        keys.len()
    );
    keys.sort_by(|a, b| a.partial_cmp(b).expect("rank keys must not be NaN"));
    (keys[m - 1] + keys[m]) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(v: &[f64]) -> Vec<(StreamId, f64)> {
        v.iter().enumerate().map(|(i, &x)| (StreamId(i as u32), x)).collect()
    }

    #[test]
    fn knn_ranks_by_distance() {
        let space = RankSpace::Knn { q: 100.0 };
        // values: 90 (d=10), 150 (d=50), 105 (d=5), 300 (d=200)
        let order = rank_values(space, vals(&[90.0, 150.0, 105.0, 300.0]));
        assert_eq!(order, vec![StreamId(2), StreamId(0), StreamId(1), StreamId(3)]);
    }

    #[test]
    fn topk_ranks_descending() {
        let order = rank_values(RankSpace::TopK, vals(&[5.0, 9.0, 1.0]));
        assert_eq!(order, vec![StreamId(1), StreamId(0), StreamId(2)]);
    }

    #[test]
    fn ties_break_by_id() {
        let space = RankSpace::Knn { q: 0.0 };
        // ids 0 and 1 both at distance 10 (values -10 and 10).
        let order = rank_values(space, vals(&[-10.0, 10.0, 1.0]));
        assert_eq!(order, vec![StreamId(2), StreamId(0), StreamId(1)]);
    }

    #[test]
    fn rank_of_is_one_based() {
        let space = RankSpace::TopK;
        let v = vals(&[5.0, 9.0, 1.0]);
        assert_eq!(rank_of(space, v.clone(), StreamId(1)), Some(1));
        assert_eq!(rank_of(space, v.clone(), StreamId(2)), Some(3));
        assert_eq!(rank_of(space, v, StreamId(9)), None);
    }

    #[test]
    fn midpoint_threshold_between_ranks() {
        let space = RankSpace::Knn { q: 0.0 };
        // distances: 1, 2, 4, 8
        let v = vals(&[1.0, -2.0, 4.0, -8.0]);
        assert_eq!(midpoint_threshold(space, v.clone(), 1), 1.5);
        assert_eq!(midpoint_threshold(space, v.clone(), 2), 3.0);
        assert_eq!(midpoint_threshold(space, v, 3), 6.0);
    }

    #[test]
    fn midpoint_separates_the_ranks() {
        // The RTP invariant: exactly m streams lie inside ball(midpoint).
        let space = RankSpace::TopK;
        let values = vals(&[10.0, 50.0, 30.0, 20.0, 40.0]);
        for m in 1..5 {
            let d = midpoint_threshold(space, values.clone(), m);
            let inside = values.iter().filter(|&&(_, v)| space.in_ball(v, d)).count();
            assert_eq!(inside, m, "m={m}");
        }
    }

    #[test]
    #[should_panic(expected = "needs more than")]
    fn midpoint_requires_enough_streams() {
        midpoint_threshold(RankSpace::TopK, vals(&[1.0, 2.0]), 2);
    }

    #[test]
    fn rank_view_requires_full_knowledge() {
        let mut view = ServerView::new(2);
        view.set(StreamId(0), 1.0);
        let r = std::panic::catch_unwind(|| rank_view(RankSpace::TopK, &view));
        assert!(r.is_err());
        view.set(StreamId(1), 5.0);
        assert_eq!(rank_view(RankSpace::TopK, &view), vec![StreamId(1), StreamId(0)]);
    }
}
