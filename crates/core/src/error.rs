//! Error types for configuration validation.

use std::fmt;

/// A query/tolerance/protocol configuration was rejected.
///
/// All protocol constructors validate their parameters up front so that a
/// simulation can never start from an incoherent configuration (e.g. a rank
/// requirement larger than the stream population, or a fraction tolerance
/// outside the paper's `< 0.5` assumption).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A tolerance parameter is out of its valid domain.
    InvalidTolerance(String),
    /// A query parameter is out of its valid domain.
    InvalidQuery(String),
    /// A protocol-level requirement on the configuration failed.
    InvalidProtocol(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidTolerance(msg) => write!(f, "invalid tolerance: {msg}"),
            ConfigError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            ConfigError::InvalidProtocol(msg) => write!(f, "invalid protocol config: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        let e = ConfigError::InvalidTolerance("eps must be <= 0.5".into());
        assert!(e.to_string().contains("eps must be <= 0.5"));
        assert!(e.to_string().contains("invalid tolerance"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ConfigError::InvalidQuery("bad".into()));
        assert!(e.to_string().contains("bad"));
    }
}
