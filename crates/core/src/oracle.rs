//! Ground-truth tolerance checking.
//!
//! The oracle sees what the server cannot: the actual current value of every
//! source. At quiescent points (the precondition of the paper's Correctness
//! Requirement 1) it evaluates the tolerance definitions §3.3/§3.4 against
//! ground truth. Tests and property tests drive it through
//! [`crate::engine::Engine::run_with_hook`], or — for long rank-protocol
//! runs — through [`crate::engine::Engine::run_with_event_hook`] with a
//! [`TruthRanks`] index, which keeps every per-quiescent-point Definition-1
//! check at O(k log n) instead of an O(n log n) ground-truth re-sort.

use streamnet::{SourceFleet, StreamId};

use crate::answer::AnswerSet;
use crate::query::{RangeQuery, RankQuery, RankSpace};
use crate::rank::{rank_values, RankIndex};
use crate::tolerance::{FractionTolerance, RankTolerance};
use crate::workload::UpdateEvent;

/// The true best-first ranking of all sources under a rank space.
pub fn true_ranking(space: RankSpace, fleet: &SourceFleet) -> Vec<StreamId> {
    rank_values(space, fleet.iter().map(|s| (s.id(), s.value())))
}

/// The true answer of a rank query (the k best sources).
pub fn true_rank_answer(query: RankQuery, fleet: &SourceFleet) -> AnswerSet {
    true_ranking(query.space(), fleet).into_iter().take(query.k()).collect()
}

/// The true answer of a range query.
pub fn true_range_answer(query: RangeQuery, fleet: &SourceFleet) -> AnswerSet {
    fleet.iter().filter(|s| query.contains(s.value())).map(|s| s.id()).collect()
}

/// Checks Definition 1 (rank-based tolerance) against ground truth.
/// Returns a violation description, or `None` if the answer is correct.
pub fn rank_violation(
    query: RankQuery,
    tol: RankTolerance,
    answer: &AnswerSet,
    fleet: &SourceFleet,
) -> Option<String> {
    if answer.len() != tol.k() {
        return Some(format!("|A| = {} but k = {}", answer.len(), tol.k()));
    }
    // One pass builds the id -> rank lookup; per-member checks are then
    // O(1) instead of an O(n) `.position()` scan each.
    let ranking = true_ranking(query.space(), fleet);
    let mut rank_of: Vec<Option<usize>> = vec![None; fleet.len()];
    for (pos, id) in ranking.into_iter().enumerate() {
        rank_of[id.index()] = Some(pos + 1);
    }
    for member in answer.iter() {
        let rank = rank_of.get(member.index()).copied().flatten()?;
        if rank > tol.epsilon() {
            return Some(format!(
                "{member} has true rank {rank} > epsilon {} (value {})",
                tol.epsilon(),
                fleet.true_value(member)
            ));
        }
    }
    None
}

/// An incrementally maintained ground-truth ranking for rank-query oracles.
///
/// Ground truth changes only through workload events, so feeding every
/// event to [`TruthRanks::apply`] (e.g. from
/// [`crate::engine::Engine::run_with_event_hook`]) keeps the index exact at
/// O(log n) per event, and each quiescent-point Definition-1 check costs
/// O(k log n) — the sort-based [`rank_violation`] pays an O(n log n)
/// ground-truth re-sort per check instead.
pub struct TruthRanks {
    index: RankIndex,
}

impl TruthRanks {
    /// Builds the index from the fleet's current ground truth.
    pub fn new(space: RankSpace, fleet: &SourceFleet) -> Self {
        let mut index = RankIndex::new(space, fleet.len());
        for s in fleet.iter() {
            index.insert(s.id(), s.value());
        }
        Self { index }
    }

    /// Applies one workload event (the only way ground truth changes).
    pub fn apply(&mut self, ev: &UpdateEvent) {
        self.index.update(ev.stream, ev.value);
    }

    /// The true 1-based rank of `id`.
    pub fn rank_of(&self, id: StreamId) -> Option<usize> {
        self.index.rank_of(id)
    }

    /// The true best-first ranking (O(n); prefer the per-member queries in
    /// hot loops).
    pub fn ranking(&self) -> Vec<StreamId> {
        self.index.ordered_ids()
    }

    /// The true answer of a rank query of size `k`.
    pub fn true_answer(&self, k: usize) -> AnswerSet {
        self.index.top_ids(k).into_iter().collect()
    }

    /// Checks Definition 1 against the maintained ground truth — the
    /// indexed equivalent of [`rank_violation`] (identical verdicts, proved
    /// by `tests/rank_differential.rs`).
    pub fn rank_violation(&self, tol: RankTolerance, answer: &AnswerSet) -> Option<String> {
        if answer.len() != tol.k() {
            return Some(format!("|A| = {} but k = {}", answer.len(), tol.k()));
        }
        for member in answer.iter() {
            let rank = self.rank_of(member)?;
            if rank > tol.epsilon() {
                return Some(format!(
                    "{member} has true rank {rank} > epsilon {} (key {})",
                    tol.epsilon(),
                    self.index.key_of(member).expect("ranked member has a key")
                ));
            }
        }
        None
    }
}

/// Checks Definition 3 (fraction-based tolerance) for a range query.
pub fn fraction_range_violation(
    query: RangeQuery,
    tol: FractionTolerance,
    answer: &AnswerSet,
    fleet: &SourceFleet,
) -> Option<String> {
    let m = answer.fraction_metrics(fleet.len(), |id| query.contains(fleet.true_value(id)));
    if m.within(&tol) {
        None
    } else {
        Some(format!(
            "F+ = {:.4} (eps+ = {}), F- = {:.4} (eps- = {}), |A| = {}, E+ = {}, E- = {}",
            m.f_plus(),
            tol.eps_plus(),
            m.f_minus(),
            tol.eps_minus(),
            m.answer_size,
            m.e_plus,
            m.e_minus
        ))
    }
}

/// Checks Definition 3 for a rank query: the "streams that satisfy Q" are
/// exactly the true k nearest (so the F⁻ denominator is `k`, Equation 5).
pub fn fraction_rank_violation(
    query: RankQuery,
    tol: FractionTolerance,
    answer: &AnswerSet,
    fleet: &SourceFleet,
) -> Option<String> {
    let truth = true_rank_answer(query, fleet);
    let m = answer.fraction_metrics(fleet.len(), |id| truth.contains(id));
    if m.within(&tol) {
        None
    } else {
        Some(format!(
            "F+ = {:.4} (eps+ = {}), F- = {:.4} (eps- = {}), |A| = {}, E+ = {}, E- = {}",
            m.f_plus(),
            tol.eps_plus(),
            m.f_minus(),
            tol.eps_minus(),
            m.answer_size,
            m.e_plus,
            m.e_minus
        ))
    }
}

/// Number of answer members that are not live — each is a *potential*
/// violation under degraded operation: the server cannot currently
/// substantiate the membership of a dead source, and the live-population
/// oracle checks surface them through this count.
pub fn dead_members(answer: &AnswerSet, is_live: impl Fn(StreamId) -> bool) -> usize {
    answer.iter().filter(|&id| !is_live(id)).count()
}

/// Zero-tolerance membership check restricted to the live population: every
/// live source must be in the answer exactly when its true value satisfies
/// the query. Dead sources are skipped (use [`dead_members`] to surface
/// them as potential violations); this is the in-fault guarantee of the
/// zero-tolerance protocols — exactness over every source the server can
/// currently vouch for.
pub fn live_range_exact_violation(
    query: RangeQuery,
    answer: &AnswerSet,
    fleet: &SourceFleet,
    is_live: impl Fn(StreamId) -> bool,
) -> Option<String> {
    for s in fleet.iter() {
        let id = s.id();
        if !is_live(id) {
            continue;
        }
        let in_truth = query.contains(s.value());
        let in_answer = answer.contains(id);
        if in_truth != in_answer {
            return Some(format!(
                "live {id} (value {}) is {} the answer but {} the range",
                s.value(),
                if in_answer { "in" } else { "not in" },
                if in_truth { "in" } else { "not in" },
            ));
        }
    }
    None
}

/// Definition-3 fraction check over the live population. Live sources are
/// scored normally; dead truth members leave the `F⁻` denominator (the
/// server cannot hear from them), while every dead *answer* member is
/// counted as a potential false positive in `E⁺` — a dead source the
/// server still serves is exactly the "potential violation" the degraded
/// tolerance accounting must absorb within `eps_plus`.
pub fn live_fraction_range_violation(
    query: RangeQuery,
    tol: FractionTolerance,
    answer: &AnswerSet,
    fleet: &SourceFleet,
    is_live: impl Fn(StreamId) -> bool,
) -> Option<String> {
    let mut e_plus = dead_members(answer, &is_live);
    let mut e_minus = 0usize;
    let mut live_truth = 0usize;
    for s in fleet.iter() {
        let id = s.id();
        if !is_live(id) {
            continue;
        }
        let in_truth = query.contains(s.value());
        let in_answer = answer.contains(id);
        if in_truth {
            live_truth += 1;
            if !in_answer {
                e_minus += 1;
            }
        } else if in_answer {
            e_plus += 1;
        }
    }
    let f_plus = if answer.is_empty() { 0.0 } else { e_plus as f64 / answer.len() as f64 };
    let f_minus = if live_truth == 0 { 0.0 } else { e_minus as f64 / live_truth as f64 };
    if f_plus <= tol.eps_plus() && f_minus <= tol.eps_minus() {
        None
    } else {
        Some(format!(
            "live F+ = {f_plus:.4} (eps+ = {}), F- = {f_minus:.4} (eps- = {}), \
             |A| = {}, E+ = {e_plus} (incl. {} dead members), E- = {e_minus}, live truth = {live_truth}",
            tol.eps_plus(),
            tol.eps_minus(),
            answer.len(),
            dead_members(answer, &is_live),
        ))
    }
}

/// Definition-1 rank check over the live population: the true ranking is
/// computed among live sources only, and every live answer member must rank
/// within `epsilon` of it. Dead answer members are skipped here and
/// surfaced via [`dead_members`]; the size precondition `|A| = k` still
/// applies to the whole answer (the server keeps serving `k` entries, some
/// of which it can no longer vouch for).
pub fn live_rank_violation(
    query: RankQuery,
    tol: RankTolerance,
    answer: &AnswerSet,
    fleet: &SourceFleet,
    is_live: impl Fn(StreamId) -> bool,
) -> Option<String> {
    if answer.len() != tol.k() {
        return Some(format!("|A| = {} but k = {}", answer.len(), tol.k()));
    }
    let ranking = rank_values(
        query.space(),
        fleet.iter().filter(|s| is_live(s.id())).map(|s| (s.id(), s.value())),
    );
    let mut rank_of: Vec<Option<usize>> = vec![None; fleet.len()];
    for (pos, id) in ranking.into_iter().enumerate() {
        rank_of[id.index()] = Some(pos + 1);
    }
    for member in answer.iter() {
        if !is_live(member) {
            continue;
        }
        let rank = rank_of.get(member.index()).copied().flatten()?;
        if rank > tol.epsilon() {
            return Some(format!(
                "live {member} has live-population rank {rank} > epsilon {} (value {})",
                tol.epsilon(),
                fleet.true_value(member)
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(values: &[f64]) -> SourceFleet {
        SourceFleet::from_values(values)
    }

    fn ids(v: &[u32]) -> AnswerSet {
        v.iter().map(|&i| StreamId(i)).collect()
    }

    #[test]
    fn true_ranking_orders_ground_truth() {
        let f = fleet(&[30.0, 10.0, 20.0]);
        assert_eq!(true_ranking(RankSpace::TopK, &f), vec![StreamId(0), StreamId(2), StreamId(1)]);
    }

    #[test]
    fn rank_violation_detects_size_and_rank() {
        let f = fleet(&[50.0, 40.0, 30.0, 20.0, 10.0]);
        let q = RankQuery::top_k(2).unwrap();
        let tol = RankTolerance::new(2, 1).unwrap();
        // {S0, S1} = true top 2: fine.
        assert_eq!(rank_violation(q, tol, &ids(&[0, 1]), &f), None);
        // {S0, S2}: S2 ranks 3 <= eps 3: fine.
        assert_eq!(rank_violation(q, tol, &ids(&[0, 2]), &f), None);
        // {S0, S3}: S3 ranks 4 > 3: violation.
        assert!(rank_violation(q, tol, &ids(&[0, 3]), &f).is_some());
        // Wrong size.
        assert!(rank_violation(q, tol, &ids(&[0]), &f).is_some());
    }

    #[test]
    fn truth_ranks_tracks_events_and_matches_sort_oracle() {
        use crate::workload::UpdateEvent;
        let mut f = fleet(&[50.0, 40.0, 30.0, 20.0, 10.0]);
        let q = RankQuery::top_k(2).unwrap();
        let tol = RankTolerance::new(2, 1).unwrap();
        let mut truth = TruthRanks::new(q.space(), &f);
        assert_eq!(truth.ranking(), true_ranking(q.space(), &f));
        assert_eq!(truth.true_answer(2), true_rank_answer(q, &f));

        // S4 jumps to the top; apply the event to both fleet and index.
        let ev = UpdateEvent { time: 1.0, stream: StreamId(4), value: 99.0 };
        let mut ledger = streamnet::Ledger::new();
        let mut view = streamnet::ServerView::new(5);
        f.deliver_update(ev.stream, ev.value, &mut ledger, &mut view);
        truth.apply(&ev);
        assert_eq!(truth.ranking(), true_ranking(q.space(), &f));
        assert_eq!(truth.rank_of(StreamId(4)), Some(1));

        for ans in [ids(&[0, 1]), ids(&[0, 2]), ids(&[0, 3]), ids(&[0])] {
            assert_eq!(
                truth.rank_violation(tol, &ans).is_some(),
                rank_violation(q, tol, &ans, &f).is_some(),
                "verdicts must agree for {ans:?}"
            );
        }
    }

    #[test]
    fn fraction_range_violation_thresholds() {
        let f = fleet(&[450.0, 460.0, 470.0, 480.0, 700.0]);
        let q = RangeQuery::new(400.0, 600.0).unwrap();
        // answer {0,1,2,4}: E+ = 1 (S4), E- = 1 (S3), truth = 4.
        let a = ids(&[0, 1, 2, 4]);
        let loose = FractionTolerance::new(0.25, 0.25).unwrap();
        assert_eq!(fraction_range_violation(q, loose, &a, &f), None);
        let tight = FractionTolerance::new(0.2, 0.25).unwrap();
        let v = fraction_range_violation(q, tight, &a, &f);
        assert!(v.is_some());
        assert!(v.unwrap().contains("F+"));
    }

    #[test]
    fn fraction_rank_violation_uses_k_denominator() {
        let f = fleet(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let q = RankQuery::knn(0.0, 2).unwrap(); // true 2-NN: S0, S1
                                                 // Answer {S0, S2}: E+ = 1, E- = 1, |A| = 2 -> F+ = 0.5, F- = 0.5.
        let a = ids(&[0, 2]);
        let half = FractionTolerance::new(0.5, 0.5).unwrap();
        assert_eq!(fraction_rank_violation(q, half, &a, &f), None);
        let tight = FractionTolerance::new(0.4, 0.5).unwrap();
        assert!(fraction_rank_violation(q, tight, &a, &f).is_some());
    }

    #[test]
    fn live_exact_check_skips_dead_sources() {
        let f = fleet(&[450.0, 700.0, 500.0]);
        let q = RangeQuery::new(400.0, 600.0).unwrap();
        // S1 (dead) is wrongly in the answer, S2 (dead) wrongly missing:
        // both are only *potential* violations.
        let a = ids(&[0, 1]);
        let live = |id: StreamId| id == StreamId(0);
        assert_eq!(live_range_exact_violation(q, &a, &f, live), None);
        assert_eq!(dead_members(&a, live), 1);
        // A live mismatch is a hard violation.
        let all_live = |_: StreamId| true;
        assert!(live_range_exact_violation(q, &a, &f, all_live).is_some());
    }

    #[test]
    fn live_fraction_check_counts_dead_answer_members_as_e_plus() {
        let f = fleet(&[450.0, 460.0, 470.0, 480.0]);
        let q = RangeQuery::new(400.0, 600.0).unwrap();
        let a = ids(&[0, 1, 2, 3]);
        let live = |id: StreamId| id != StreamId(3);
        // One dead member out of four: F+ = 0.25 against |A| = 4.
        assert_eq!(
            live_fraction_range_violation(
                q,
                FractionTolerance::new(0.25, 0.0).unwrap(),
                &a,
                &f,
                live
            ),
            None
        );
        let v = live_fraction_range_violation(
            q,
            FractionTolerance::new(0.2, 0.0).unwrap(),
            &a,
            &f,
            live,
        );
        assert!(v.is_some());
        assert!(v.unwrap().contains("dead members"));
    }

    #[test]
    fn live_rank_check_ranks_among_live_only() {
        let f = fleet(&[50.0, 40.0, 30.0, 20.0, 10.0]);
        let q = RankQuery::top_k(2).unwrap();
        let tol = RankTolerance::new(2, 1).unwrap(); // epsilon = k + 1 = 3
                                                     // With S0 dead, S3's live-population rank improves to 3 = epsilon.
        let live = |id: StreamId| id != StreamId(0);
        assert_eq!(live_rank_violation(q, tol, &ids(&[0, 3]), &f, live), None);
        // S4 ranks 4 among live: violation even degraded.
        assert!(live_rank_violation(q, tol, &ids(&[0, 4]), &f, live).is_some());
    }

    #[test]
    fn empty_answer_is_not_a_fraction_violation_by_definition() {
        // Degenerate but well-defined: F+ = 0; F- = 1 when truth exists.
        let f = fleet(&[450.0]);
        let q = RangeQuery::new(400.0, 600.0).unwrap();
        let tol = FractionTolerance::new(0.1, 0.1).unwrap();
        let v = fraction_range_violation(q, tol, &AnswerSet::new(), &f);
        assert!(v.is_some(), "missing the only true answer violates F-");
    }
}
