//! Fraction-based tolerance (paper Definitions 2–3).

use crate::error::ConfigError;

/// Fraction-based tolerance `(ε⁺, ε⁻)`.
///
/// With `E⁺(t)` the number of answer members that do not satisfy the query
/// and `E⁻(t)` the number of satisfying streams missing from the answer
/// (Definition 2):
///
/// ```text
/// F⁺(t) = E⁺(t) / |A(t)|                          ≤ ε⁺
/// F⁻(t) = E⁻(t) / (|A(t)| − E⁺(t) + E⁻(t))        ≤ ε⁻
/// ```
///
/// The paper assumes both tolerances are smaller than 0.5 ("users are not
/// interested in results with more incorrect answers than correct ones",
/// §3.4) — the assumption is also load-bearing in the FT-NRP correctness
/// proof. The evaluation sweeps tolerance up to 0.5 inclusive, so we accept
/// the closed domain `[0, 0.5]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FractionTolerance {
    eps_plus: f64,
    eps_minus: f64,
}

impl FractionTolerance {
    /// Creates a fraction tolerance; both parameters must lie in `[0, 0.5]`.
    pub fn new(eps_plus: f64, eps_minus: f64) -> Result<Self, ConfigError> {
        for (name, v) in [("eps_plus", eps_plus), ("eps_minus", eps_minus)] {
            if !v.is_finite() || !(0.0..=0.5).contains(&v) {
                return Err(ConfigError::InvalidTolerance(format!(
                    "{name} must be in [0, 0.5], got {v}"
                )));
            }
        }
        Ok(Self { eps_plus, eps_minus })
    }

    /// The zero tolerance (no false positives or negatives allowed).
    pub fn zero() -> Self {
        Self { eps_plus: 0.0, eps_minus: 0.0 }
    }

    /// Symmetric tolerance `ε⁺ = ε⁻ = eps` (how the evaluation sweeps it).
    pub fn symmetric(eps: f64) -> Result<Self, ConfigError> {
        Self::new(eps, eps)
    }

    /// Maximum false-positive fraction `ε⁺`.
    pub fn eps_plus(&self) -> f64 {
        self.eps_plus
    }

    /// Maximum false-negative fraction `ε⁻`.
    pub fn eps_minus(&self) -> f64 {
        self.eps_minus
    }

    /// Whether this is exactly the zero tolerance.
    pub fn is_zero(&self) -> bool {
        self.eps_plus == 0.0 && self.eps_minus == 0.0
    }

    /// `E^{max+}(t₀)`: the number of false-positive (wildcard) filters the
    /// FT protocols may hand out for an initial answer of `answer_size`
    /// streams. Equation 3 requires `E^{max+}/|A| ≤ ε⁺`, hence the floor.
    pub fn max_false_positive_filters(&self, answer_size: usize) -> usize {
        (answer_size as f64 * self.eps_plus).floor() as usize
    }

    /// `E^{max−}(t₀)`: the number of false-negative (suppress) filters for
    /// an initial answer of `answer_size` streams:
    /// `|A(t₀)| · ε⁻(1 − ε⁺)/(1 − ε⁻)` (from Equations 2–4), floored.
    pub fn max_false_negative_filters(&self, answer_size: usize) -> usize {
        if self.eps_minus >= 1.0 {
            // Unreachable given the [0, 0.5] domain; defensive.
            return answer_size;
        }
        let raw =
            answer_size as f64 * self.eps_minus * (1.0 - self.eps_plus) / (1.0 - self.eps_minus);
        raw.floor() as usize
    }

    /// Upper bound on the answer size for a fraction-tolerant k-NN query:
    /// `|A(t)| ≤ k / (1 − ε⁺)` (Equation 7).
    pub fn max_answer_size(&self, k: usize) -> f64 {
        k as f64 / (1.0 - self.eps_plus)
    }

    /// Lower bound on the answer size for a fraction-tolerant k-NN query:
    /// `|A(t)| ≥ k(1 − ε⁻)` (Equation 9).
    pub fn min_answer_size(&self, k: usize) -> f64 {
        k as f64 * (1.0 - self.eps_minus)
    }
}

/// Observed false-positive/false-negative state of an answer set at an
/// instant, per Definition 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FractionMetrics {
    /// `E⁺(t)`: answer members that do not satisfy the query.
    pub e_plus: usize,
    /// `E⁻(t)`: satisfying streams missing from the answer.
    pub e_minus: usize,
    /// `|A(t)|`.
    pub answer_size: usize,
}

impl FractionMetrics {
    /// `F⁺(t) = E⁺/|A|` (Equation 1); 0 when the answer is empty.
    pub fn f_plus(&self) -> f64 {
        if self.answer_size == 0 {
            0.0
        } else {
            self.e_plus as f64 / self.answer_size as f64
        }
    }

    /// `F⁻(t) = E⁻/(|A| − E⁺ + E⁻)` (Equation 2); 0 when there are no true
    /// answers at all (the denominator is the number of streams satisfying
    /// the query).
    pub fn f_minus(&self) -> f64 {
        let truth = self.answer_size - self.e_plus + self.e_minus;
        if truth == 0 {
            0.0
        } else {
            self.e_minus as f64 / truth as f64
        }
    }

    /// Whether both fractions are within `tol` (Definition 3), with a tiny
    /// epsilon for float round-off in the ratio comparison.
    pub fn within(&self, tol: &FractionTolerance) -> bool {
        const SLOP: f64 = 1e-12;
        self.f_plus() <= tol.eps_plus() + SLOP && self.f_minus() <= tol.eps_minus() + SLOP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_validation() {
        assert!(FractionTolerance::new(0.0, 0.0).is_ok());
        assert!(FractionTolerance::new(0.5, 0.5).is_ok());
        assert!(FractionTolerance::new(0.51, 0.1).is_err());
        assert!(FractionTolerance::new(-0.1, 0.1).is_err());
        assert!(FractionTolerance::new(f64::NAN, 0.1).is_err());
    }

    #[test]
    fn filter_budgets_floor() {
        let t = FractionTolerance::new(0.25, 0.25).unwrap();
        // |A| = 10: n+ = floor(2.5) = 2
        assert_eq!(t.max_false_positive_filters(10), 2);
        // n- = floor(10 * 0.25 * 0.75 / 0.75) = floor(2.5) = 2
        assert_eq!(t.max_false_negative_filters(10), 2);
    }

    #[test]
    fn zero_tolerance_has_no_budgets() {
        let t = FractionTolerance::zero();
        assert!(t.is_zero());
        assert_eq!(t.max_false_positive_filters(1000), 0);
        assert_eq!(t.max_false_negative_filters(1000), 0);
    }

    #[test]
    fn paper_example_ten_nn_with_ten_percent() {
        // Paper §3.4.1: k = 10, eps+ = 0.1 -> the system could return 11
        // streams with at most one incorrect.
        let t = FractionTolerance::new(0.1, 0.1).unwrap();
        let max = t.max_answer_size(10);
        assert!((max - 10.0 / 0.9).abs() < 1e-12);
        assert!(max >= 11.0);
        // Equation 8: |A| <= 2k always, because eps+ <= 0.5.
        let extreme = FractionTolerance::new(0.5, 0.5).unwrap();
        assert!(extreme.max_answer_size(10) <= 20.0 + 1e-12);
        // Equation 10: |A| >= k/2.
        assert!(extreme.min_answer_size(10) >= 5.0 - 1e-12);
    }

    #[test]
    fn metrics_fractions() {
        let m = FractionMetrics { e_plus: 1, e_minus: 2, answer_size: 10 };
        assert!((m.f_plus() - 0.1).abs() < 1e-12);
        // truth = 10 - 1 + 2 = 11
        assert!((m.f_minus() - 2.0 / 11.0).abs() < 1e-12);
        let tol = FractionTolerance::new(0.1, 0.2).unwrap();
        assert!(m.within(&tol));
        let tight = FractionTolerance::new(0.05, 0.2).unwrap();
        assert!(!m.within(&tight));
    }

    #[test]
    fn metrics_empty_answer_is_defined() {
        let m = FractionMetrics { e_plus: 0, e_minus: 0, answer_size: 0 };
        assert_eq!(m.f_plus(), 0.0);
        assert_eq!(m.f_minus(), 0.0);
    }

    #[test]
    fn metrics_no_true_answers() {
        // |A| = 2, both wrong, nothing satisfies the query: truth = 0.
        let m = FractionMetrics { e_plus: 2, e_minus: 0, answer_size: 2 };
        assert_eq!(m.f_plus(), 1.0);
        assert_eq!(m.f_minus(), 0.0);
    }
}
