//! Rank-based tolerance (paper Definition 1).

use crate::error::ConfigError;

/// Rank-based tolerance for a rank-based query with requirement `k`:
/// an answer set `A(t)` is correct iff `|A(t)| = k` and every member's true
/// rank is at most `ε_k^r = k + r` (Definition 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankTolerance {
    k: usize,
    r: usize,
}

impl RankTolerance {
    /// Creates a rank tolerance of `r` extra rank positions beyond `k`.
    pub fn new(k: usize, r: usize) -> Result<Self, ConfigError> {
        if k == 0 {
            return Err(ConfigError::InvalidTolerance("rank requirement k must be >= 1".into()));
        }
        Ok(Self { k, r })
    }

    /// The rank requirement `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The slack `r` (0 = exact ranks required).
    pub fn r(&self) -> usize {
        self.r
    }

    /// The maximum acceptable rank `ε_k^r = k + r`.
    pub fn epsilon(&self) -> usize {
        self.k + self.r
    }

    /// Checks Definition 1 given the answer size and the members' true
    /// ranks (1-based).
    pub fn is_correct(
        &self,
        answer_size: usize,
        true_ranks: impl IntoIterator<Item = usize>,
    ) -> bool {
        answer_size == self.k && true_ranks.into_iter().all(|rank| rank <= self.epsilon())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_is_k_plus_r() {
        let t = RankTolerance::new(3, 2).unwrap();
        assert_eq!(t.epsilon(), 5);
    }

    #[test]
    fn definition_1_example() {
        // Paper: k = 3, r = 2 — correct iff exactly three streams, all of
        // rank 5 or above.
        let t = RankTolerance::new(3, 2).unwrap();
        assert!(t.is_correct(3, [1, 4, 5]));
        assert!(!t.is_correct(3, [1, 2, 6]), "rank 6 exceeds epsilon 5");
        assert!(!t.is_correct(2, [1, 2]), "answer must have exactly k members");
        assert!(!t.is_correct(4, [1, 2, 3, 4]), "answer must have exactly k members");
    }

    #[test]
    fn zero_slack_requires_true_top_k() {
        let t = RankTolerance::new(2, 0).unwrap();
        assert!(t.is_correct(2, [1, 2]));
        assert!(!t.is_correct(2, [1, 3]));
    }

    #[test]
    fn rejects_zero_k() {
        assert!(RankTolerance::new(0, 5).is_err());
    }
}
