//! Derivation of the internal FT-NRP tolerances `(ρ⁺, ρ⁻)` used to answer a
//! fraction-tolerant k-NN query (paper §5.2.2, Equations 13–16).
//!
//! A k-NN query with user tolerance `(ε⁺, ε⁻)` cannot feed `(ε⁺, ε⁻)` to
//! FT-NRP directly: objects silently crossing the bound `R` create *both*
//! false positives and false negatives (Figure 8), so the internal budgets
//! must be discounted. Combining the two requirements gives Equation 15:
//!
//! ```text
//! ρ⁻ ≤ ρ⁺/(ε⁺ − 1) + min((1 − ε⁻)·ε⁺, ε⁻)
//! ```
//!
//! and tolerance is maximised on the equality line (Equation 16). Since
//! `ε⁺ − 1 < 0`, the line trades `ρ⁺` against `ρ⁻`:
//! `ρ⁻ = m − ρ⁺/(1 − ε⁺)` with `m = min((1 − ε⁻)·ε⁺, ε⁻)`. The paper does
//! not fix a point on the line; [`RhoPolicy`] picks one (DESIGN.md §3.4),
//! and `bin/ablation_rho` compares the choices.

use crate::error::ConfigError;
use crate::tolerance::FractionTolerance;

/// How to split the Equation-16 budget line between `ρ⁺` and `ρ⁻`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RhoPolicy {
    /// `ρ⁺ = ρ⁻` (default): both filter kinds get an equal fraction.
    #[default]
    Balanced,
    /// All budget on false-positive (wildcard) filters: `ρ⁻ = 0`.
    MaxPositive,
    /// All budget on false-negative (suppress) filters: `ρ⁺ = 0`.
    MaxNegative,
}

/// A `(ρ⁺, ρ⁻)` pair satisfying Equation 16 for some user tolerance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RhoPair {
    /// Internal false-positive tolerance `ρ⁺`.
    pub rho_plus: f64,
    /// Internal false-negative tolerance `ρ⁻`.
    pub rho_minus: f64,
}

impl RhoPair {
    /// The slack in Equation 15 for a given user tolerance: non-negative iff
    /// the pair is admissible. Zero (up to float error) on the Equation-16
    /// line.
    pub fn equation_15_slack(&self, tol: &FractionTolerance) -> f64 {
        let m = budget_m(tol);
        m - self.rho_plus / (1.0 - tol.eps_plus()) - self.rho_minus
    }
}

/// `m = min((1 − ε⁻)·ε⁺, ε⁻)` — the right-hand constant of Equations 15/16.
fn budget_m(tol: &FractionTolerance) -> f64 {
    ((1.0 - tol.eps_minus()) * tol.eps_plus()).min(tol.eps_minus())
}

/// Computes the `(ρ⁺, ρ⁻)` pair on the Equation-16 line under `policy`.
///
/// Both components come out in `[0, 0.5]`, so they always form a valid
/// [`FractionTolerance`] for the inner FT-NRP instance. Returns an error
/// only if the resulting pair fails that validation (impossible for the
/// implemented policies; kept for API robustness).
pub fn derive_rho(tol: &FractionTolerance, policy: RhoPolicy) -> Result<RhoPair, ConfigError> {
    let m = budget_m(tol);
    debug_assert!((0.0..=0.5).contains(&m));
    let pair = match policy {
        RhoPolicy::Balanced => {
            // rho = m - rho/(1-e+)  =>  rho = m(1-e+)/(2-e+)
            let rho = m * (1.0 - tol.eps_plus()) / (2.0 - tol.eps_plus());
            RhoPair { rho_plus: rho, rho_minus: rho }
        }
        RhoPolicy::MaxPositive => RhoPair { rho_plus: m * (1.0 - tol.eps_plus()), rho_minus: 0.0 },
        RhoPolicy::MaxNegative => RhoPair { rho_plus: 0.0, rho_minus: m },
    };
    // Sanity: the pair must itself be a valid fraction tolerance.
    FractionTolerance::new(pair.rho_plus, pair.rho_minus)?;
    Ok(pair)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tol(p: f64, m: f64) -> FractionTolerance {
        FractionTolerance::new(p, m).unwrap()
    }

    #[test]
    fn all_policies_sit_on_the_equation_16_line() {
        for eps in [0.05, 0.1, 0.2, 0.3, 0.4, 0.5] {
            let t = tol(eps, eps);
            for policy in [RhoPolicy::Balanced, RhoPolicy::MaxPositive, RhoPolicy::MaxNegative] {
                let pair = derive_rho(&t, policy).unwrap();
                let slack = pair.equation_15_slack(&t);
                assert!(slack.abs() < 1e-12, "policy {policy:?} eps {eps}: slack {slack}");
            }
        }
    }

    #[test]
    fn asymmetric_tolerances() {
        let t = tol(0.1, 0.4);
        // m = min((1 - 0.4) * 0.1, 0.4) = 0.06
        let pair = derive_rho(&t, RhoPolicy::MaxNegative).unwrap();
        assert!((pair.rho_minus - 0.06).abs() < 1e-12);
        assert_eq!(pair.rho_plus, 0.0);

        let t = tol(0.4, 0.1);
        // m = min((1 - 0.1) * 0.4, 0.1) = 0.1; rho+ = m * (1 - eps+) = 0.06
        let pair = derive_rho(&t, RhoPolicy::MaxPositive).unwrap();
        assert!((pair.rho_plus - 0.1 * 0.6).abs() < 1e-12);
    }

    #[test]
    fn balanced_components_are_equal_and_positive() {
        let t = tol(0.2, 0.2);
        let pair = derive_rho(&t, RhoPolicy::Balanced).unwrap();
        assert_eq!(pair.rho_plus, pair.rho_minus);
        // m = min(0.8*0.2, 0.2) = 0.16; rho = 0.16*0.8/1.8
        assert!((pair.rho_plus - 0.16 * 0.8 / 1.8).abs() < 1e-12);
        assert!(pair.rho_plus > 0.0);
    }

    #[test]
    fn zero_user_tolerance_gives_zero_rho() {
        for policy in [RhoPolicy::Balanced, RhoPolicy::MaxPositive, RhoPolicy::MaxNegative] {
            let pair = derive_rho(&FractionTolerance::zero(), policy).unwrap();
            assert_eq!(pair.rho_plus, 0.0);
            assert_eq!(pair.rho_minus, 0.0);
        }
        // One-sided zero also kills the budget: with eps+ = 0, any silent
        // crossing could create an intolerable false positive.
        let pair = derive_rho(&tol(0.0, 0.3), RhoPolicy::Balanced).unwrap();
        assert_eq!(pair.rho_plus, 0.0);
        assert_eq!(pair.rho_minus, 0.0);
    }

    #[test]
    fn rho_is_always_a_valid_tolerance() {
        for p in [0.0, 0.1, 0.25, 0.5] {
            for m in [0.0, 0.1, 0.25, 0.5] {
                for policy in [RhoPolicy::Balanced, RhoPolicy::MaxPositive, RhoPolicy::MaxNegative]
                {
                    let pair = derive_rho(&tol(p, m), policy).unwrap();
                    assert!(FractionTolerance::new(pair.rho_plus, pair.rho_minus).is_ok());
                }
            }
        }
    }

    #[test]
    fn internal_tolerance_is_strictly_tighter_than_user() {
        // The whole point of Eq. 16: rho <= eps, with slack for R-crossings.
        let t = tol(0.3, 0.3);
        let pair = derive_rho(&t, RhoPolicy::Balanced).unwrap();
        assert!(pair.rho_plus < t.eps_plus());
        assert!(pair.rho_minus < t.eps_minus());
    }
}
