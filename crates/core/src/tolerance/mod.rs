//! Non-value-based error tolerances (paper §3.3–3.4).

mod fraction;
mod rank;
mod rho;

pub use fraction::{FractionMetrics, FractionTolerance};
pub use rank::RankTolerance;
pub use rho::{derive_rho, RhoPair, RhoPolicy};
