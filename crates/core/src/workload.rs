//! Workload abstraction: time-ordered streams of value updates.
//!
//! Generators live in the `asf-workloads` crate; this module defines the
//! interface the [`crate::engine::Engine`] consumes plus a trivial in-memory
//! implementation for tests and examples.

use simkit::SimTime;
use streamnet::StreamId;

/// One value update produced by a workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UpdateEvent {
    /// Simulation time of the update.
    pub time: SimTime,
    /// Which stream's value changed.
    pub stream: StreamId,
    /// The new value.
    pub value: f64,
}

/// A reusable structure-of-arrays batch of update events: times, streams,
/// and values in three parallel columns.
///
/// This is the unit of ingestion shared by every consumer — the serial
/// [`crate::engine::Engine`], the differential baselines, and the sharded
/// `asf-server`, which wraps a filled batch in an `Arc` and *broadcasts*
/// it to its shards so each one selects its own events from the shared
/// columns instead of receiving a coordinator-built copy. Columnar layout
/// keeps that per-shard ownership scan sequential over dense `u32`/`f64`
/// arrays, and a cleared batch retains its capacity, so feeders can reuse
/// one allocation across rounds ([`Workload::next_batch`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventBatch {
    times: Vec<SimTime>,
    streams: Vec<StreamId>,
    values: Vec<f64>,
}

impl EventBatch {
    /// Payload bytes of one event across the three columns.
    pub const EVENT_BYTES: usize = std::mem::size_of::<SimTime>()
        + std::mem::size_of::<StreamId>()
        + std::mem::size_of::<f64>();

    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `n` events per column.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            times: Vec::with_capacity(n),
            streams: Vec::with_capacity(n),
            values: Vec::with_capacity(n),
        }
    }

    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the batch holds no events.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Drops all events, retaining the column capacities.
    pub fn clear(&mut self) {
        self.times.clear();
        self.streams.clear();
        self.values.clear();
    }

    /// Appends one event.
    pub fn push(&mut self, ev: UpdateEvent) {
        self.push_parts(ev.time, ev.stream, ev.value);
    }

    /// Appends one event given as its columns.
    pub fn push_parts(&mut self, time: SimTime, stream: StreamId, value: f64) {
        self.times.push(time);
        self.streams.push(stream);
        self.values.push(value);
    }

    /// Appends a slice of events (one pass per column).
    pub fn extend_from_events(&mut self, events: &[UpdateEvent]) {
        self.times.extend(events.iter().map(|ev| ev.time));
        self.streams.extend(events.iter().map(|ev| ev.stream));
        self.values.extend(events.iter().map(|ev| ev.value));
    }

    /// Appends the `start..end` range of another batch.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn extend_from_batch(&mut self, other: &EventBatch, start: usize, end: usize) {
        self.times.extend_from_slice(&other.times[start..end]);
        self.streams.extend_from_slice(&other.streams[start..end]);
        self.values.extend_from_slice(&other.values[start..end]);
    }

    /// The event at position `i`, reassembled from the columns.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> UpdateEvent {
        UpdateEvent { time: self.times[i], stream: self.streams[i], value: self.values[i] }
    }

    /// The time column.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// The stream-id column.
    pub fn streams(&self) -> &[StreamId] {
        &self.streams
    }

    /// The value column.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates the events in order.
    pub fn iter(&self) -> impl Iterator<Item = UpdateEvent> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Payload bytes of the three columns (capacity excluded) — what a
    /// copying scatter would have to move per consumer.
    pub fn byte_len(&self) -> usize {
        self.len() * Self::EVENT_BYTES
    }

    /// Serializes the batch column-by-column (times, streams, values) for
    /// the durability journal.
    pub fn encode(&self, w: &mut asf_persist::StateWriter) {
        w.put_u64(self.len() as u64);
        for &t in &self.times {
            w.put_f64(t);
        }
        for &s in &self.streams {
            w.put_u32(s.0);
        }
        for &v in &self.values {
            w.put_f64(v);
        }
    }

    /// Decodes a batch written by [`EventBatch::encode`], re-validating the
    /// workload invariants (time-ordered, finite values) so a corrupt
    /// journal entry is rejected instead of replayed.
    pub fn decode(r: &mut asf_persist::StateReader<'_>) -> asf_persist::Result<Self> {
        let n = r.get_u64()? as usize;
        if n > r.remaining() / Self::EVENT_BYTES + 1 {
            return Err(asf_persist::PersistError::corrupt("event batch length implausible"));
        }
        let mut batch = Self::with_capacity(n);
        let mut last = f64::NEG_INFINITY;
        for _ in 0..n {
            let t = r.get_f64()?;
            if t.is_nan() || t < last {
                return Err(asf_persist::PersistError::corrupt("journal events out of order"));
            }
            last = t;
            batch.times.push(t);
        }
        for _ in 0..n {
            batch.streams.push(StreamId(r.get_u32()?));
        }
        for _ in 0..n {
            let v = r.get_f64()?;
            if !v.is_finite() {
                return Err(asf_persist::PersistError::corrupt("journal value not finite"));
            }
            batch.values.push(v);
        }
        Ok(batch)
    }
}

/// A source of time-ordered update events.
///
/// Implementations must yield events with non-decreasing `time` and finite
/// values; the engine asserts both.
pub trait Workload {
    /// Number of streams in the population.
    fn num_streams(&self) -> usize;

    /// Initial values of all streams at time 0 (length = `num_streams`).
    fn initial_values(&self) -> Vec<f64>;

    /// Produces the next event, or `None` when the workload is exhausted.
    fn next_event(&mut self) -> Option<UpdateEvent>;

    /// Fills `out` (cleared first) with up to `max` events and returns how
    /// many were produced; `0` means the workload is exhausted (when
    /// `max > 0`). The default loops [`Workload::next_event`]; generators
    /// with columnar state override it to write the shared-window columns
    /// directly (see `asf-workloads`).
    fn next_batch(&mut self, max: usize, out: &mut EventBatch) -> usize {
        out.clear();
        while out.len() < max {
            match self.next_event() {
                Some(ev) => out.push(ev),
                None => break,
            }
        }
        out.len()
    }
}

/// A workload replaying a pre-built vector of events. Used by unit tests,
/// doc examples, and trace replay.
#[derive(Clone, Debug)]
pub struct VecWorkload {
    initial: Vec<f64>,
    events: std::vec::IntoIter<UpdateEvent>,
}

impl VecWorkload {
    /// Creates a replay workload.
    ///
    /// # Panics
    ///
    /// Panics if events are not time-ordered, reference unknown streams, or
    /// contain non-finite values — catching malformed traces at
    /// construction, not mid-simulation.
    pub fn new(initial: Vec<f64>, events: Vec<UpdateEvent>) -> Self {
        let n = initial.len();
        let mut last = f64::NEG_INFINITY;
        for ev in &events {
            assert!(ev.time >= last, "events must be time-ordered");
            assert!(ev.stream.index() < n, "event references unknown stream {}", ev.stream);
            assert!(ev.value.is_finite(), "event value must be finite");
            last = ev.time;
        }
        Self { initial, events: events.into_iter() }
    }
}

impl Workload for VecWorkload {
    fn num_streams(&self) -> usize {
        self.initial.len()
    }

    fn initial_values(&self) -> Vec<f64> {
        self.initial.clone()
    }

    fn next_event(&mut self) -> Option<UpdateEvent> {
        self.events.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_workload_replays_in_order() {
        let evs = vec![
            UpdateEvent { time: 1.0, stream: StreamId(0), value: 5.0 },
            UpdateEvent { time: 2.0, stream: StreamId(1), value: 6.0 },
        ];
        let mut w = VecWorkload::new(vec![0.0, 0.0], evs.clone());
        assert_eq!(w.num_streams(), 2);
        assert_eq!(w.initial_values(), vec![0.0, 0.0]);
        assert_eq!(w.next_event(), Some(evs[0]));
        assert_eq!(w.next_event(), Some(evs[1]));
        assert_eq!(w.next_event(), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_out_of_order_events() {
        VecWorkload::new(
            vec![0.0],
            vec![
                UpdateEvent { time: 2.0, stream: StreamId(0), value: 1.0 },
                UpdateEvent { time: 1.0, stream: StreamId(0), value: 2.0 },
            ],
        );
    }

    #[test]
    fn event_batch_roundtrips_columns() {
        let evs = vec![
            UpdateEvent { time: 1.0, stream: StreamId(3), value: 5.0 },
            UpdateEvent { time: 2.0, stream: StreamId(0), value: 6.5 },
        ];
        let mut batch = EventBatch::with_capacity(4);
        batch.extend_from_events(&evs);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.get(0), evs[0]);
        assert_eq!(batch.iter().collect::<Vec<_>>(), evs);
        assert_eq!(batch.streams(), &[StreamId(3), StreamId(0)]);
        assert_eq!(batch.byte_len(), 2 * (8 + 4 + 8));

        let mut tail = EventBatch::new();
        tail.extend_from_batch(&batch, 1, 2);
        assert_eq!(tail.iter().collect::<Vec<_>>(), &evs[1..]);

        batch.clear();
        assert!(batch.is_empty());
        batch.push(evs[1]);
        assert_eq!(batch.get(0), evs[1]);
    }

    #[test]
    fn next_batch_default_chunks_the_event_stream() {
        let evs: Vec<UpdateEvent> = (0..5)
            .map(|i| UpdateEvent { time: i as f64, stream: StreamId(0), value: i as f64 })
            .collect();
        let mut w = VecWorkload::new(vec![0.0], evs.clone());
        let mut batch = EventBatch::new();
        assert_eq!(w.next_batch(2, &mut batch), 2);
        assert_eq!(batch.iter().collect::<Vec<_>>(), &evs[..2]);
        assert_eq!(w.next_batch(2, &mut batch), 2);
        assert_eq!(batch.iter().collect::<Vec<_>>(), &evs[2..4]);
        assert_eq!(w.next_batch(2, &mut batch), 1, "tail batch is short");
        assert_eq!(batch.iter().collect::<Vec<_>>(), &evs[4..]);
        assert_eq!(w.next_batch(2, &mut batch), 0, "exhausted");
        assert!(batch.is_empty());
    }

    #[test]
    fn event_batch_encode_decode_round_trips() {
        let mut batch = EventBatch::new();
        batch.push(UpdateEvent { time: 1.0, stream: StreamId(3), value: 5.5 });
        batch.push(UpdateEvent { time: 2.5, stream: StreamId(0), value: -6.25 });
        let mut w = asf_persist::StateWriter::new();
        batch.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = asf_persist::StateReader::new(&bytes);
        let back = EventBatch::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, batch);

        // Out-of-order times and absurd lengths are corruption, not data.
        let mut w = asf_persist::StateWriter::new();
        w.put_u64(2);
        w.put_f64(2.0);
        w.put_f64(1.0);
        w.put_u32(0);
        w.put_u32(0);
        w.put_f64(0.0);
        w.put_f64(0.0);
        let bytes = w.into_bytes();
        assert!(EventBatch::decode(&mut asf_persist::StateReader::new(&bytes)).is_err());
        let mut w = asf_persist::StateWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(EventBatch::decode(&mut asf_persist::StateReader::new(&bytes)).is_err());
    }

    #[test]
    #[should_panic(expected = "unknown stream")]
    fn rejects_unknown_stream() {
        VecWorkload::new(
            vec![0.0],
            vec![UpdateEvent { time: 0.0, stream: StreamId(5), value: 1.0 }],
        );
    }
}
