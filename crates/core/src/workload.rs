//! Workload abstraction: time-ordered streams of value updates.
//!
//! Generators live in the `asf-workloads` crate; this module defines the
//! interface the [`crate::engine::Engine`] consumes plus a trivial in-memory
//! implementation for tests and examples.

use simkit::SimTime;
use streamnet::StreamId;

/// One value update produced by a workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UpdateEvent {
    /// Simulation time of the update.
    pub time: SimTime,
    /// Which stream's value changed.
    pub stream: StreamId,
    /// The new value.
    pub value: f64,
}

/// A source of time-ordered update events.
///
/// Implementations must yield events with non-decreasing `time` and finite
/// values; the engine asserts both.
pub trait Workload {
    /// Number of streams in the population.
    fn num_streams(&self) -> usize;

    /// Initial values of all streams at time 0 (length = `num_streams`).
    fn initial_values(&self) -> Vec<f64>;

    /// Produces the next event, or `None` when the workload is exhausted.
    fn next_event(&mut self) -> Option<UpdateEvent>;
}

/// A workload replaying a pre-built vector of events. Used by unit tests,
/// doc examples, and trace replay.
#[derive(Clone, Debug)]
pub struct VecWorkload {
    initial: Vec<f64>,
    events: std::vec::IntoIter<UpdateEvent>,
}

impl VecWorkload {
    /// Creates a replay workload.
    ///
    /// # Panics
    ///
    /// Panics if events are not time-ordered, reference unknown streams, or
    /// contain non-finite values — catching malformed traces at
    /// construction, not mid-simulation.
    pub fn new(initial: Vec<f64>, events: Vec<UpdateEvent>) -> Self {
        let n = initial.len();
        let mut last = f64::NEG_INFINITY;
        for ev in &events {
            assert!(ev.time >= last, "events must be time-ordered");
            assert!(ev.stream.index() < n, "event references unknown stream {}", ev.stream);
            assert!(ev.value.is_finite(), "event value must be finite");
            last = ev.time;
        }
        Self { initial, events: events.into_iter() }
    }
}

impl Workload for VecWorkload {
    fn num_streams(&self) -> usize {
        self.initial.len()
    }

    fn initial_values(&self) -> Vec<f64> {
        self.initial.clone()
    }

    fn next_event(&mut self) -> Option<UpdateEvent> {
        self.events.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_workload_replays_in_order() {
        let evs = vec![
            UpdateEvent { time: 1.0, stream: StreamId(0), value: 5.0 },
            UpdateEvent { time: 2.0, stream: StreamId(1), value: 6.0 },
        ];
        let mut w = VecWorkload::new(vec![0.0, 0.0], evs.clone());
        assert_eq!(w.num_streams(), 2);
        assert_eq!(w.initial_values(), vec![0.0, 0.0]);
        assert_eq!(w.next_event(), Some(evs[0]));
        assert_eq!(w.next_event(), Some(evs[1]));
        assert_eq!(w.next_event(), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_out_of_order_events() {
        VecWorkload::new(
            vec![0.0],
            vec![
                UpdateEvent { time: 2.0, stream: StreamId(0), value: 1.0 },
                UpdateEvent { time: 1.0, stream: StreamId(0), value: 2.0 },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "unknown stream")]
    fn rejects_unknown_stream() {
        VecWorkload::new(
            vec![0.0],
            vec![UpdateEvent { time: 0.0, stream: StreamId(5), value: 1.0 }],
        );
    }
}
