//! # asf-core — adaptive stream filters for entity-based queries
//!
//! Reproduction of *Cheng, Kao, Prabhakar, Kwan, Tu: "Adaptive Stream
//! Filters for Entity-based Queries with Non-Value Tolerance"* (VLDB 2005).
//!
//! A central server runs **continuous entity-based queries** — queries whose
//! answers are sets of stream identifiers — over `n` distributed stream
//! sources. To cut communication, the server installs **adaptive filters**
//! at the sources; a source only reports when its value crosses its filter
//! bound. Users bound the resulting error *non-numerically*:
//!
//! * [`tolerance::RankTolerance`] — every returned stream ranks `k + r` or
//!   better (Definition 1);
//! * [`tolerance::FractionTolerance`] — at most a fraction `ε⁺` of the
//!   answer is wrong and at most `ε⁻` of the truth is missing
//!   (Definitions 2–3).
//!
//! The six protocols of the paper live in [`protocol`]:
//!
//! | Type | Query | Tolerance |
//! |------|-------|-----------|
//! | [`protocol::NoFilter`] | any | none (baseline) |
//! | [`protocol::ZtNrp`]    | range | zero |
//! | [`protocol::FtNrp`]    | range | fraction |
//! | [`protocol::Rtp`]      | k-NN / top-k | rank |
//! | [`protocol::ZtRp`]     | k-NN / top-k | zero |
//! | [`protocol::FtRp`]     | k-NN / top-k | fraction (via Eq. 16) |
//! | [`protocol::VtMax`]    | maximum | numeric value `ε` (the §1 strawman) |
//!
//! The [`engine::Engine`] wires a protocol to a
//! [`streamnet::SourceFleet`] and drives it from a [`workload::Workload`];
//! the [`oracle`] checks the tolerance definitions against ground truth at
//! every quiescent point.
//!
//! ## Quick example
//!
//! ```
//! use asf_core::engine::Engine;
//! use asf_core::protocol::FtNrp;
//! use asf_core::query::RangeQuery;
//! use asf_core::tolerance::FractionTolerance;
//! use asf_core::workload::{UpdateEvent, VecWorkload};
//! use streamnet::StreamId;
//!
//! let initial = vec![450.0, 700.0, 500.0, 100.0];
//! let query = RangeQuery::new(400.0, 600.0).unwrap();
//! let tol = FractionTolerance::new(0.25, 0.25).unwrap();
//! let protocol = FtNrp::new(query, tol, Default::default(), 42).unwrap();
//!
//! let events = vec![UpdateEvent { time: 1.0, stream: StreamId(1), value: 550.0 }];
//! let mut engine = Engine::new(&initial, protocol);
//! engine.initialize();
//! engine.run(&mut VecWorkload::new(initial.clone(), events));
//! assert!(engine.ledger().total() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod engine;
pub mod error;
pub mod multi_query;
pub mod multi_rank;
pub mod multidim;
pub mod oracle;
pub mod protocol;
pub mod query;
pub mod rank;
pub mod telem;
pub mod tolerance;
pub mod workload;

pub use answer::{AnswerSet, IdSet};
pub use engine::{Engine, ProtocolCore, RankMode};
pub use error::ConfigError;
pub use query::{RangeQuery, RankQuery, RankSpace};
pub use tolerance::{FractionTolerance, RankTolerance};
