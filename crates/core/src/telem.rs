//! The engine core's telemetry state: per-cause message attribution and
//! the coordinator-side trace ring.
//!
//! Everything here is **observational**. The cause ledger is derived by
//! diffing the authoritative [`streamnet::Ledger`]'s kind counters around
//! each [`crate::protocol::ServerCtx`] fleet operation — it never writes
//! the ledger, so ledger equality (the differential suites' oracle) is
//! unaffected by telemetry being on, off, or at any trace depth. The trace
//! ring records wall-clock spans that no protocol decision ever reads.

use asf_telemetry::{Cause, CauseLedger, TraceRing};
use streamnet::MessageKind;

/// Slot of [`MessageKind::Update`] in [`streamnet::Ledger::kind_counts`]
/// (`MessageKind::ALL` order).
const UPDATE_SLOT: usize = 0;

/// Telemetry state owned by a [`crate::engine::ProtocolCore`] and threaded
/// through every [`crate::protocol::ServerCtx`].
#[derive(Debug)]
pub struct CoreTelemetry {
    /// Whether per-cause attribution runs (a pair of 5-counter snapshots
    /// per fleet operation when on; a single branch when off).
    pub(crate) causes_enabled: bool,
    /// The per-cause message matrix.
    pub(crate) causes: CauseLedger,
    /// The cause the *current* handler's messages are attributed to. The
    /// engine sets the handler's base cause; protocols refine it via
    /// [`crate::protocol::ServerCtx::set_cause`] at decision points.
    pub(crate) cause: Cause,
    /// The coordinator-side trace ring (engine handler spans, forest
    /// maintenance, deferred flushes). Disabled by default; `asf-server`
    /// replaces it with a ring sharing the server's trace epoch.
    pub trace: TraceRing,
}

impl Default for CoreTelemetry {
    fn default() -> Self {
        Self {
            causes_enabled: true,
            causes: CauseLedger::new(),
            cause: Cause::Init,
            trace: TraceRing::disabled(),
        }
    }
}

impl CoreTelemetry {
    /// Enables or disables per-cause attribution.
    pub fn set_causes_enabled(&mut self, enabled: bool) {
        self.causes_enabled = enabled;
    }

    /// Whether per-cause attribution is running.
    pub fn causes_enabled(&self) -> bool {
        self.causes_enabled
    }

    /// The per-cause message matrix accumulated so far.
    pub fn causes(&self) -> &CauseLedger {
        &self.causes
    }

    /// Multi-line per-cause breakdown with the streamnet message-kind
    /// labels.
    pub fn cause_breakdown(&self) -> String {
        let labels = [
            MessageKind::ALL[0].label(),
            MessageKind::ALL[1].label(),
            MessageKind::ALL[2].label(),
            MessageKind::ALL[3].label(),
            MessageKind::ALL[4].label(),
        ];
        self.causes.breakdown(&labels)
    }

    /// Attributes one handled report's `Update` message to
    /// [`Cause::SourceReport`] (sync-reports induced *inside* a handler are
    /// already covered by the fleet-op diffs of the op that induced them).
    #[inline]
    pub(crate) fn add_report_update(&mut self) {
        if self.causes_enabled {
            self.causes.add(Cause::SourceReport, UPDATE_SLOT, 1);
        }
    }
}
