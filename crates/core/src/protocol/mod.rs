//! The paper's filter-bound protocols (§4–§5).
//!
//! Every protocol is a server-side state machine implementing [`Protocol`]:
//! the engine calls [`Protocol::initialize`] once (the papers'
//! *Initialization phases*) and [`Protocol::on_update`] for every report
//! that reaches the server (the *Maintenance phases*). Protocols talk to
//! the sources exclusively through [`ServerCtx`], which meters every message
//! and defers induced sync-reports to the engine's pending queue
//! (DESIGN.md §3.2).

mod ctx;
mod ft_nrp;
mod ft_rp;
pub mod heuristics;
mod no_filter;
mod rtp;
mod vt_max;
mod zt_nrp;
mod zt_rp;

pub use ctx::{CtxStats, FleetScratch, ServerCtx};
pub use ft_nrp::{FtNrp, FtNrpConfig};
pub use ft_rp::{FtRp, FtRpConfig};
pub use heuristics::SelectionHeuristic;
pub use no_filter::NoFilter;
pub use rtp::Rtp;
pub use vt_max::VtMax;
pub use zt_nrp::ZtNrp;
pub use zt_rp::ZtRp;

use asf_persist::{PersistError, StateReader, StateWriter};
use streamnet::StreamId;

use crate::answer::AnswerSet;
use crate::query::RankSpace;

/// Encodes a `StreamId` list (length-prefixed) for protocol state.
pub(crate) fn put_ids(w: &mut StateWriter, ids: &[StreamId]) {
    w.put_u64(ids.len() as u64);
    for id in ids {
        w.put_u32(id.0);
    }
}

/// Decodes a `StreamId` list written by [`put_ids`].
pub(crate) fn get_ids(r: &mut StateReader<'_>) -> asf_persist::Result<Vec<StreamId>> {
    let n = r.get_u64()? as usize;
    if n > r.remaining() / 4 {
        return Err(PersistError::corrupt("id list longer than payload"));
    }
    (0..n).map(|_| r.get_u32().map(StreamId)).collect()
}

/// A server-side filter-bound protocol.
///
/// `Send + Sync` is part of the contract: protocol state must be plain data
/// (no `Rc`/`RefCell`/thread-local handles) so that a protocol core can be
/// moved into — or shared with — the concurrent `asf-server` runtime. The
/// trait is object-safe; the server holds protocols as `dyn Protocol` when
/// it needs to mix them.
pub trait Protocol: Send + Sync {
    /// Short name for reports ("RTP", "FT-NRP", …).
    fn name(&self) -> &'static str;

    /// The Initialization phase: collect stream values and deploy the
    /// initial filter constraints. Called exactly once, before any events.
    fn initialize(&mut self, ctx: &mut ServerCtx<'_>);

    /// The Maintenance phase: handle one report `(stream, value)` that
    /// reached the server (the `Update` message is already accounted and
    /// the server view already refreshed when this is called).
    fn on_update(&mut self, id: StreamId, value: f64, ctx: &mut ServerCtx<'_>);

    /// The current answer set `A(t)` returned to the user.
    fn answer(&self) -> AnswerSet;

    /// Degradation hook: the fault-tolerance layer detected that `dead`
    /// sources went silently dark (lease expired). The protocol may adjust
    /// its internal state — e.g. drop the sources from its answer set or
    /// widen remaining tolerance allocations — before the oracle re-checks
    /// bounds over the surviving live population.
    ///
    /// Dead sources cannot be probed (they do not answer), so
    /// implementations must not touch the fleet for members of `dead`. The
    /// default does nothing: the engine already excludes dead sources from
    /// the verified-live population, and the oracle accounts each dead
    /// answer member as a potential violation.
    fn on_fleet_degraded(&mut self, dead: &[StreamId], ctx: &mut ServerCtx<'_>) {
        let _ = (dead, ctx);
    }

    /// Serializes the protocol's **mutable** state into a checkpoint.
    ///
    /// Configuration (queries, tolerances, heuristics, seeds) is *not*
    /// written: recovery reconstructs the protocol from the same
    /// configuration and then loads the mutable state on top. The default
    /// writes nothing and is correct only for stateless protocols; every
    /// stateful protocol must override it (the recovery differential test
    /// fails loudly if one forgets).
    fn save_state(&self, w: &mut StateWriter) {
        let _ = w;
    }

    /// Restores the mutable state written by [`Protocol::save_state`] into
    /// a freshly configured protocol.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> asf_persist::Result<()> {
        let _ = r;
        Ok(())
    }

    /// The rank space this protocol orders streams by, if it is a
    /// rank-query protocol.
    ///
    /// When `Some`, the engine maintains an incremental
    /// [`crate::rank::RankIndex`] over the server view in this space and
    /// serves it through [`ServerCtx::ranks`], so per-report rank
    /// maintenance is O(log n) instead of a full re-sort. Range protocols
    /// keep the default `None` and pay nothing.
    fn rank_space(&self) -> Option<RankSpace> {
        None
    }
}

/// Compile-time proof that [`Protocol`] stays object-safe.
const _: fn(&dyn Protocol) = |_| {};
