//! ZT-NRP — zero-tolerance protocol for non-rank-based (range) queries
//! (paper §5.1).
//!
//! Every filter is assigned the query interval `[l, u]` itself, so each
//! filter evaluates the range query locally: a source speaks only when its
//! answer membership actually changes. Correctness is exact; the protocol
//! simply cannot exploit any tolerance.

use streamnet::StreamId;

use crate::answer::AnswerSet;
use crate::protocol::{Protocol, ServerCtx};
use crate::query::RangeQuery;

/// The zero-tolerance range-query protocol.
pub struct ZtNrp {
    query: RangeQuery,
    answer: AnswerSet,
}

impl ZtNrp {
    /// Creates the protocol for a range query.
    pub fn new(query: RangeQuery) -> Self {
        Self { query, answer: AnswerSet::new() }
    }

    /// The query being maintained.
    pub fn query(&self) -> RangeQuery {
        self.query
    }
}

impl Protocol for ZtNrp {
    fn name(&self) -> &'static str {
        "ZT-NRP"
    }

    fn initialize(&mut self, ctx: &mut ServerCtx<'_>) {
        ctx.probe_all();
        self.answer = ctx
            .view()
            .iter_known()
            .filter(|&(_, v)| self.query.contains(v))
            .map(|(id, _)| id)
            .collect();
        ctx.broadcast(self.query.as_filter());
    }

    fn on_update(&mut self, id: StreamId, value: f64, _ctx: &mut ServerCtx<'_>) {
        if self.query.contains(value) {
            self.answer.insert(id);
        } else {
            self.answer.remove(id);
        }
    }

    fn answer(&self) -> AnswerSet {
        self.answer.clone()
    }

    fn save_state(&self, w: &mut asf_persist::StateWriter) {
        self.answer.encode(w);
    }

    fn load_state(&mut self, r: &mut asf_persist::StateReader<'_>) -> asf_persist::Result<()> {
        self.answer = AnswerSet::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::workload::UpdateEvent;
    use streamnet::MessageKind;

    fn ev(t: f64, s: u32, v: f64) -> UpdateEvent {
        UpdateEvent { time: t, stream: StreamId(s), value: v }
    }

    fn query() -> RangeQuery {
        RangeQuery::new(400.0, 600.0).unwrap()
    }

    #[test]
    fn initial_answer_and_cost() {
        let initial = vec![450.0, 700.0, 500.0, 100.0];
        let mut engine = Engine::new(&initial, ZtNrp::new(query()));
        engine.initialize();
        let a = engine.answer();
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![StreamId(0), StreamId(2)]);
        // 2n probes + n broadcast
        assert_eq!(engine.ledger().total(), 8 + 4);
    }

    #[test]
    fn interior_moves_are_free_crossings_cost_one() {
        let initial = vec![450.0, 700.0];
        let mut engine = Engine::new(&initial, ZtNrp::new(query()));
        engine.initialize();
        let base = engine.ledger().total();

        engine.apply_event(ev(1.0, 0, 550.0)); // inside -> inside
        engine.apply_event(ev(2.0, 1, 900.0)); // outside -> outside
        assert_eq!(engine.ledger().total(), base, "non-crossing updates are silent");

        engine.apply_event(ev(3.0, 0, 650.0)); // leaves
        assert_eq!(engine.ledger().total(), base + 1);
        assert!(!engine.answer().contains(StreamId(0)));

        engine.apply_event(ev(4.0, 1, 410.0)); // enters
        assert_eq!(engine.ledger().total(), base + 2);
        assert!(engine.answer().contains(StreamId(1)));
        assert_eq!(engine.ledger().count(MessageKind::Update), 2);
    }

    #[test]
    fn answer_is_always_exact() {
        // ZT-NRP answers must match ground truth at every quiescent point.
        let initial = vec![500.0, 300.0, 610.0];
        let q = query();
        let mut engine = Engine::new(&initial, ZtNrp::new(q));
        engine.initialize();
        let events = vec![
            ev(1.0, 1, 420.0),
            ev(2.0, 0, 399.0),
            ev(3.0, 2, 600.0),
            ev(4.0, 1, 401.0),
            ev(5.0, 0, 500.5),
        ];
        for e in events {
            engine.apply_event(e);
            let truth: AnswerSet = (0..3)
                .map(StreamId)
                .filter(|&id| q.contains(engine.fleet().true_value(id)))
                .collect();
            assert_eq!(engine.answer(), truth, "at t={}", engine.now());
        }
    }
}
