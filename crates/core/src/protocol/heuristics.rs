//! Selection heuristics for placing false-positive/false-negative filters
//! (paper §6.2, Figure 14).
//!
//! During FT-NRP/FT-RP initialization the server must pick which answer
//! streams receive `[-∞, ∞]` filters and which non-answer streams receive
//! `[∞, ∞]` filters. The paper compares **random** placement against
//! **boundary-nearest** — give the special filters to the streams whose
//! values are closest to the query boundary, because those are the
//! likeliest to cross it and generate updates.

use simkit::SimRng;
use streamnet::StreamId;

use crate::rank::cmp_key;

/// Strategy for choosing which streams get the special silent filters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SelectionHeuristic {
    /// Streams are drawn uniformly at random.
    #[default]
    Random,
    /// Streams with values closest to the query boundary are chosen first.
    BoundaryNearest,
}

impl SelectionHeuristic {
    /// Picks `count` streams from `candidates`.
    ///
    /// `boundary_distance` maps a stream to its distance from the query
    /// boundary (used by [`SelectionHeuristic::BoundaryNearest`]; smaller =
    /// chosen first, ties by id). `count` is clamped to the candidate pool
    /// size.
    pub fn select(
        &self,
        candidates: &[StreamId],
        count: usize,
        boundary_distance: impl Fn(StreamId) -> f64,
        rng: &mut SimRng,
    ) -> Vec<StreamId> {
        let count = count.min(candidates.len());
        if count == 0 {
            return Vec::new();
        }
        match self {
            SelectionHeuristic::Random => rng
                .sample_indices(candidates.len(), count)
                .into_iter()
                .map(|i| candidates[i])
                .collect(),
            SelectionHeuristic::BoundaryNearest => {
                let mut scored: Vec<(f64, StreamId)> =
                    candidates.iter().map(|&id| (boundary_distance(id), id)).collect();
                scored.sort_by(|&a, &b| cmp_key(a, b));
                scored.into_iter().take(count).map(|(_, id)| id).collect()
            }
        }
    }

    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SelectionHeuristic::Random => "random",
            SelectionHeuristic::BoundaryNearest => "boundary-nearest",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<StreamId> {
        v.iter().map(|&i| StreamId(i)).collect()
    }

    #[test]
    fn boundary_nearest_picks_smallest_distances() {
        let mut rng = SimRng::seed_from_u64(1);
        let cands = ids(&[0, 1, 2, 3]);
        // distances: id0 -> 30, id1 -> 5, id2 -> 10, id3 -> 1
        let dist = |id: StreamId| [30.0, 5.0, 10.0, 1.0][id.index()];
        let picked = SelectionHeuristic::BoundaryNearest.select(&cands, 2, dist, &mut rng);
        assert_eq!(picked, ids(&[3, 1]));
    }

    #[test]
    fn boundary_nearest_ties_break_by_id() {
        let mut rng = SimRng::seed_from_u64(1);
        let cands = ids(&[5, 2, 9]);
        let picked = SelectionHeuristic::BoundaryNearest.select(&cands, 2, |_| 1.0, &mut rng);
        assert_eq!(picked, ids(&[2, 5]));
    }

    #[test]
    fn random_picks_distinct_members() {
        let mut rng = SimRng::seed_from_u64(7);
        let cands = ids(&[10, 20, 30, 40, 50]);
        let picked = SelectionHeuristic::Random.select(&cands, 3, |_| 0.0, &mut rng);
        assert_eq!(picked.len(), 3);
        let mut d = picked.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 3);
        assert!(picked.iter().all(|id| cands.contains(id)));
    }

    #[test]
    fn count_is_clamped() {
        let mut rng = SimRng::seed_from_u64(7);
        let cands = ids(&[1, 2]);
        let picked = SelectionHeuristic::Random.select(&cands, 10, |_| 0.0, &mut rng);
        assert_eq!(picked.len(), 2);
        let none = SelectionHeuristic::BoundaryNearest.select(&[], 3, |_| 0.0, &mut rng);
        assert!(none.is_empty());
    }

    #[test]
    fn zero_count_selects_nothing() {
        let mut rng = SimRng::seed_from_u64(7);
        assert!(SelectionHeuristic::Random.select(&ids(&[1]), 0, |_| 0.0, &mut rng).is_empty());
    }
}
