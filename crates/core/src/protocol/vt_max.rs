//! VT-MAX — a value-based tolerance baseline for maximum queries
//! (the strawman of the paper's introduction / Figure 1).
//!
//! Prior filter work (Olston et al., SIGMOD 2003) bounds the error of a
//! *value*: each source holds a window `[v' − ε/2, v' + ε/2]` around its
//! last report, so the server knows every value within `±ε/2` and the
//! returned maximum's value is within `ε` of the true maximum. The paper's
//! introduction argues this is the wrong interface for entity-based
//! queries: the user must guess a numeric `ε` with knowledge of the data
//! spread, and
//!
//! * too large an `ε` lets the returned stream "rank far from the true
//!   maximum" (Figure 1's `ε_l`) — the value guarantee says nothing about
//!   *rank*;
//! * too small an `ε` "cannot fully benefit from the tolerance protocol"
//!   (Figure 1's `ε_s`) — every wiggle escapes the window.
//!
//! `bin/motivation_fig01` quantifies both failure modes against RTP.
//!
//! Correctness (checked by a property test at every quiescent point): at
//! quiescence every true value lies within `±ε/2` of the server's view, so
//! `answer_true ≥ answer_view − ε/2 ≥ view_max − ε/2 ≥ true_max − ε`.

use streamnet::{Filter, StreamId};

use crate::answer::AnswerSet;
use crate::error::ConfigError;
use crate::protocol::{Protocol, ServerCtx};
use crate::rank::cmp_key;

/// Value-tolerant continuous maximum query: the returned stream's value is
/// guaranteed `>= true_max − ε` at every quiescent point.
pub struct VtMax {
    epsilon: f64,
    /// Current answer (the stream with the largest last-reported value).
    answer_stream: Option<StreamId>,
    /// Per-source window re-installations so far.
    reinstalls: u64,
}

impl VtMax {
    /// Creates the protocol with value tolerance `ε >= 0`.
    pub fn new(epsilon: f64) -> Result<Self, ConfigError> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(ConfigError::InvalidTolerance(format!(
                "value tolerance must be a finite non-negative number, got {epsilon}"
            )));
        }
        Ok(Self { epsilon, answer_stream: None, reinstalls: 0 })
    }

    /// The value tolerance `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Window re-installations so far.
    pub fn reinstalls(&self) -> u64 {
        self.reinstalls
    }

    fn window(&self, center: f64) -> Filter {
        Filter::interval(center - self.epsilon / 2.0, center + self.epsilon / 2.0)
    }

    fn recompute_answer(&mut self, ctx: &ServerCtx<'_>) {
        self.answer_stream = ctx
            .view()
            .iter_known()
            .min_by(|a, b| cmp_key((-a.1, a.0), (-b.1, b.0)))
            .map(|(id, _)| id);
    }
}

impl Protocol for VtMax {
    fn name(&self) -> &'static str {
        "VT-MAX"
    }

    fn initialize(&mut self, ctx: &mut ServerCtx<'_>) {
        ctx.probe_all();
        // One batch deployment of the per-stream windows (shard-parallel on
        // the sharded backend).
        let installs: Vec<(StreamId, Filter)> =
            ctx.view().iter_known().map(|(id, v)| (id, self.window(v))).collect();
        ctx.install_many(&installs);
        self.recompute_answer(ctx);
    }

    fn on_update(&mut self, id: StreamId, value: f64, ctx: &mut ServerCtx<'_>) {
        // The source escaped its window: recentre it (1 message) and
        // refresh the believed maximum.
        self.reinstalls += 1;
        ctx.install(id, self.window(value));
        self.recompute_answer(ctx);
    }

    fn answer(&self) -> AnswerSet {
        self.answer_stream.into_iter().collect()
    }

    fn save_state(&self, w: &mut asf_persist::StateWriter) {
        match self.answer_stream {
            None => w.put_bool(false),
            Some(id) => {
                w.put_bool(true);
                w.put_u32(id.0);
            }
        }
        w.put_u64(self.reinstalls);
    }

    fn load_state(&mut self, r: &mut asf_persist::StateReader<'_>) -> asf_persist::Result<()> {
        self.answer_stream = if r.get_bool()? { Some(StreamId(r.get_u32()?)) } else { None };
        self.reinstalls = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::workload::UpdateEvent;

    fn ev(t: f64, s: u32, v: f64) -> UpdateEvent {
        UpdateEvent { time: t, stream: StreamId(s), value: v }
    }

    fn engine(eps: f64) -> Engine<VtMax> {
        let initial = vec![10.0, 50.0, 30.0, 45.0];
        let mut e = Engine::new(&initial, VtMax::new(eps).unwrap());
        e.initialize();
        e
    }

    #[test]
    fn initial_answer_is_the_maximum() {
        let e = engine(10.0);
        assert_eq!(e.answer().iter().collect::<Vec<_>>(), vec![StreamId(1)]);
        // 2n probes + n installs.
        assert_eq!(e.ledger().total(), 12);
    }

    #[test]
    fn in_window_drift_is_silent() {
        let mut e = engine(10.0);
        let base = e.ledger().total();
        e.apply_event(ev(1.0, 1, 52.0)); // within [45, 55]
        e.apply_event(ev(2.0, 0, 13.0)); // within [5, 15]
        assert_eq!(e.ledger().total(), base);
        assert_eq!(e.answer().iter().collect::<Vec<_>>(), vec![StreamId(1)]);
    }

    #[test]
    fn window_escape_recentres_and_updates_answer() {
        let mut e = engine(10.0);
        let base = e.ledger().total();
        // S3 jumps from 45 to 70: escapes [40, 50], becomes the answer.
        e.apply_event(ev(1.0, 3, 70.0));
        assert_eq!(e.ledger().total(), base + 2, "one report + one reinstall");
        assert_eq!(e.answer().iter().collect::<Vec<_>>(), vec![StreamId(3)]);
        assert_eq!(e.protocol().reinstalls(), 1);
    }

    #[test]
    fn value_guarantee_holds_at_quiescence() {
        let mut e = engine(10.0);
        let events = vec![
            ev(1.0, 1, 44.0),
            ev(2.0, 3, 46.0),
            ev(3.0, 0, 43.0),
            ev(4.0, 2, 55.0),
            ev(5.0, 1, 20.0),
        ];
        for event in events {
            e.apply_event(event);
            let answer = e.answer().iter().next().unwrap();
            let answer_value = e.fleet().true_value(answer);
            let true_max =
                (0..4).map(|i| e.fleet().true_value(StreamId(i))).fold(f64::NEG_INFINITY, f64::max);
            assert!(
                answer_value >= true_max - 10.0 - 1e-9,
                "answer {answer_value} vs max {true_max} at t={}",
                e.now()
            );
        }
    }

    #[test]
    fn large_epsilon_can_return_a_deep_rank() {
        // The Figure-1 argument: with eps larger than the value spread the
        // windows swallow every movement; the stale answer can sink to the
        // bottom rank while the value guarantee still holds.
        let mut e = engine(1000.0);
        let base = e.ledger().total();
        e.apply_event(ev(1.0, 0, 49.0));
        e.apply_event(ev(2.0, 2, 48.0));
        e.apply_event(ev(3.0, 3, 47.0));
        e.apply_event(ev(4.0, 1, 5.0)); // the answer quietly becomes the minimum
        assert_eq!(e.ledger().total(), base, "everything inside the huge windows");
        let answer = e.answer().iter().next().unwrap();
        assert_eq!(answer, StreamId(1), "stale answer kept");
        let rank = (0..4)
            .filter(|&i| e.fleet().true_value(StreamId(i)) > e.fleet().true_value(answer))
            .count()
            + 1;
        assert_eq!(rank, 4, "the returned 'maximum' truly ranks last");
    }

    #[test]
    fn zero_epsilon_reports_every_change() {
        let mut e = engine(0.0);
        let base = e.ledger().total();
        e.apply_event(ev(1.0, 0, 10.5));
        assert_eq!(e.ledger().total(), base + 2);
        // With eps = 0 the answer is always the true maximum.
        e.apply_event(ev(2.0, 0, 60.0));
        assert_eq!(e.answer().iter().collect::<Vec<_>>(), vec![StreamId(0)]);
    }

    #[test]
    fn rejects_negative_epsilon() {
        assert!(VtMax::new(-1.0).is_err());
        assert!(VtMax::new(f64::NAN).is_err());
    }
}
