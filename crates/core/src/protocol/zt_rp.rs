//! ZT-RP — zero-tolerance k-NN via the range-query transformation
//! (paper §5.2.1).
//!
//! The k-NN query is viewed as a range query over the bound `R` that
//! encloses exactly the k nearest objects (threshold halfway between ranks
//! `k` and `k+1`). `R` is every source's filter, so the server hears every
//! boundary crossing — and because **no** error is allowed, each crossing
//! forces `R` to be recomputed and re-announced to every stream. This
//! per-crossing broadcast is the drawback FT-RP exists to fix.

use streamnet::StreamId;

use crate::answer::AnswerSet;
use crate::error::ConfigError;
use crate::protocol::{Protocol, ServerCtx};
use crate::query::{RankQuery, RankSpace};

/// The zero-tolerance rank-query protocol.
pub struct ZtRp {
    query: RankQuery,
    d: f64,
    answer: AnswerSet,
    recomputes: u64,
}

impl ZtRp {
    /// Creates ZT-RP; requires (checked at initialization) `n > k`.
    pub fn new(query: RankQuery) -> Result<Self, ConfigError> {
        Ok(Self { query, d: f64::NAN, answer: AnswerSet::new(), recomputes: 0 })
    }

    /// The query.
    pub fn query(&self) -> RankQuery {
        self.query
    }

    /// Current ball threshold.
    pub fn threshold(&self) -> f64 {
        self.d
    }

    /// How many times `R` was recomputed and re-broadcast.
    pub fn recomputes(&self) -> u64 {
        self.recomputes
    }

    fn recompute(&mut self, ctx: &mut ServerCtx<'_>) {
        let k = self.query.k();
        assert!(ctx.n() > k, "ZT-RP requires n > k, got n = {}", ctx.n());
        self.recomputes += 1;
        // One ranked pass yields the answer and the bound position:
        // O(k log n) on the maintained index (the broadcast below still
        // costs n messages — that is the protocol's drawback, not the
        // server's).
        let top = ctx.ranks(self.query.space()).top_pairs(k + 1);
        self.answer = top[..k].iter().map(|&(_, id)| id).collect();
        self.d = (top[k - 1].0 + top[k].0) / 2.0;
        ctx.broadcast(self.query.space().ball(self.d));
    }
}

impl Protocol for ZtRp {
    fn name(&self) -> &'static str {
        "ZT-RP"
    }

    fn initialize(&mut self, ctx: &mut ServerCtx<'_>) {
        ctx.probe_all();
        self.recompute(ctx);
    }

    fn on_update(&mut self, _id: StreamId, _value: f64, ctx: &mut ServerCtx<'_>) {
        // Any crossing invalidates R: recompute and re-announce.
        ctx.set_cause(asf_telemetry::Cause::BoundRecompute);
        self.recompute(ctx);
    }

    fn answer(&self) -> AnswerSet {
        self.answer.clone()
    }

    fn save_state(&self, w: &mut asf_persist::StateWriter) {
        w.put_f64(self.d);
        self.answer.encode(w);
        w.put_u64(self.recomputes);
    }

    fn load_state(&mut self, r: &mut asf_persist::StateReader<'_>) -> asf_persist::Result<()> {
        self.d = r.get_f64()?;
        self.answer = AnswerSet::decode(r)?;
        self.recomputes = r.get_u64()?;
        Ok(())
    }

    fn rank_space(&self) -> Option<RankSpace> {
        Some(self.query.space())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::workload::UpdateEvent;
    use streamnet::MessageKind;

    fn ev(t: f64, s: u32, v: f64) -> UpdateEvent {
        UpdateEvent { time: t, stream: StreamId(s), value: v }
    }

    fn engine5() -> Engine<ZtRp> {
        // distances from q=100: S0:5 S1:10 S2:20 S3:30 S4:45
        let initial = vec![105.0, 90.0, 120.0, 70.0, 145.0];
        let query = RankQuery::knn(100.0, 2).unwrap();
        let mut e = Engine::new(&initial, ZtRp::new(query).unwrap());
        e.initialize();
        e
    }

    #[test]
    fn initial_bound_between_ranks_k_and_k_plus_1() {
        let engine = engine5();
        // d between 10 (S1) and 20 (S2) = 15.
        assert!((engine.protocol().threshold() - 15.0).abs() < 1e-12);
        let a = engine.answer();
        assert!(a.contains(StreamId(0)) && a.contains(StreamId(1)));
    }

    #[test]
    fn interior_movement_is_silent() {
        let mut engine = engine5();
        let base = engine.ledger().total();
        engine.apply_event(ev(1.0, 0, 97.0)); // d 5 -> 3: still inside
        engine.apply_event(ev(2.0, 4, 160.0)); // d 45 -> 60: still outside
        assert_eq!(engine.ledger().total(), base);
    }

    #[test]
    fn every_crossing_broadcasts() {
        let mut engine = engine5();
        let bops = engine.ledger().broadcast_ops();
        // S2 (d=20) moves to d=12: crosses into R.
        engine.apply_event(ev(1.0, 2, 112.0));
        assert!(engine.ledger().broadcast_ops() > bops, "crossing must re-announce R");
        // Answer is now exact: S0 (5), S1 (10) vs S2 (12)? S0=5, S1=10 stay
        // the two nearest.
        let a = engine.answer();
        assert!(a.contains(StreamId(0)) && a.contains(StreamId(1)));
        // New bound separates rank 2 (10) from rank 3 (12): d = 11.
        assert!((engine.protocol().threshold() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn answer_tracks_truth_exactly_at_quiescence() {
        let mut engine = engine5();
        let events = vec![
            ev(1.0, 2, 101.0), // S2 becomes nearest (d=1)
            ev(2.0, 0, 400.0), // S0 leaves far away
            ev(3.0, 3, 99.0),  // S3 becomes d=1
            ev(4.0, 1, 250.0), // S1 leaves
        ];
        for e in events {
            engine.apply_event(e);
            // Compute the true 2-NN.
            let truth = crate::rank::rank_values(
                engine.protocol().query().space(),
                (0..5).map(|i| (StreamId(i), engine.fleet().true_value(StreamId(i)))),
            );
            let expected: AnswerSet = truth.into_iter().take(2).collect();
            assert_eq!(engine.answer(), expected, "at t={}", engine.now());
        }
    }

    #[test]
    fn stale_interior_drift_is_resolved_by_sync() {
        let mut engine = engine5();
        // S0 drifts inside R silently: 105 -> 95 (d=5). Silent.
        engine.apply_event(ev(1.0, 0, 95.0));
        let updates_before = engine.ledger().count(MessageKind::Update);
        assert_eq!(updates_before, 0);
        // S2 crosses in; recompute ranks S0 by its stale view value (105).
        // The re-broadcast may sync-report stale sources; either way the
        // final answer matches ground truth.
        engine.apply_event(ev(2.0, 2, 108.0));
        let truth = crate::rank::rank_values(
            engine.protocol().query().space(),
            (0..5).map(|i| (StreamId(i), engine.fleet().true_value(StreamId(i)))),
        );
        let expected: AnswerSet = truth.into_iter().take(2).collect();
        assert_eq!(engine.answer(), expected);
    }
}
