//! The no-filter baseline (§6: "the case when no filter is used at all").
//!
//! Every source reports every update, so the server's view is always exact
//! and the answer is always the true answer. The communication cost is one
//! `Update` message per workload event — the paper's reference line.

use streamnet::StreamId;

use crate::answer::AnswerSet;
use crate::protocol::{Protocol, ServerCtx};
use crate::query::{RangeQuery, RankQuery, RankSpace};

/// Which query the baseline is answering.
#[derive(Clone, Copy, Debug)]
enum QueryKind {
    Range(RangeQuery),
    Rank(RankQuery),
}

/// Exact continuous query answering with no filters installed.
pub struct NoFilter {
    kind: QueryKind,
    /// Current answer, recomputed from the (always fresh) view after every
    /// report.
    answer: Option<AnswerSet>,
    n: usize,
}

impl NoFilter {
    /// Baseline for a range query.
    pub fn range(query: RangeQuery) -> Self {
        Self { kind: QueryKind::Range(query), answer: None, n: 0 }
    }

    /// Baseline for a rank-based query.
    pub fn rank(query: RankQuery) -> Self {
        Self { kind: QueryKind::Rank(query), answer: None, n: 0 }
    }

    fn compute_answer(&self, ctx: &ServerCtx<'_>) -> AnswerSet {
        match self.kind {
            QueryKind::Range(q) => {
                ctx.view().iter_known().filter(|&(_, v)| q.contains(v)).map(|(id, _)| id).collect()
            }
            // O(k log n) off the maintained index — the baseline's per-event
            // server computation no longer re-sorts all n streams. Unlike
            // the filter protocols, the baseline accepts k > n and answers
            // with every stream.
            QueryKind::Rank(q) => {
                let ranks = ctx.ranks(q.space());
                ranks.top_ids(q.k().min(ranks.len())).into_iter().collect()
            }
        }
    }
}

impl Protocol for NoFilter {
    fn name(&self) -> &'static str {
        "no-filter"
    }

    fn initialize(&mut self, ctx: &mut ServerCtx<'_>) {
        self.n = ctx.n();
        // The server still needs the initial values to answer at t0; sources
        // keep their default report-all behaviour (no filter installed).
        ctx.probe_all();
        self.answer = Some(self.compute_answer(ctx));
    }

    fn on_update(&mut self, _id: StreamId, _value: f64, ctx: &mut ServerCtx<'_>) {
        // The view is already refreshed; just recompute the exact answer.
        self.answer = Some(self.compute_answer(ctx));
    }

    fn answer(&self) -> AnswerSet {
        self.answer.clone().unwrap_or_default()
    }

    fn save_state(&self, w: &mut asf_persist::StateWriter) {
        match &self.answer {
            None => w.put_bool(false),
            Some(a) => {
                w.put_bool(true);
                a.encode(w);
            }
        }
        w.put_u64(self.n as u64);
    }

    fn load_state(&mut self, r: &mut asf_persist::StateReader<'_>) -> asf_persist::Result<()> {
        self.answer = if r.get_bool()? { Some(AnswerSet::decode(r)?) } else { None };
        self.n = r.get_u64()? as usize;
        Ok(())
    }

    fn rank_space(&self) -> Option<RankSpace> {
        match self.kind {
            QueryKind::Range(_) => None,
            QueryKind::Rank(q) => Some(q.space()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::workload::{UpdateEvent, VecWorkload};

    fn ev(t: f64, s: u32, v: f64) -> UpdateEvent {
        UpdateEvent { time: t, stream: StreamId(s), value: v }
    }

    #[test]
    fn range_baseline_tracks_exactly() {
        let initial = vec![450.0, 700.0, 500.0];
        let q = RangeQuery::new(400.0, 600.0).unwrap();
        let mut engine = Engine::new(&initial, NoFilter::range(q));
        engine.initialize();
        let a = engine.answer();
        assert!(a.contains(StreamId(0)) && a.contains(StreamId(2)) && !a.contains(StreamId(1)));

        engine.apply_event(ev(1.0, 1, 420.0)); // 1 enters
        engine.apply_event(ev(2.0, 0, 100.0)); // 0 leaves
        let a = engine.answer();
        assert!(!a.contains(StreamId(0)) && a.contains(StreamId(1)) && a.contains(StreamId(2)));
    }

    #[test]
    fn every_update_costs_one_message() {
        let initial = vec![1.0, 2.0];
        let q = RangeQuery::new(0.0, 10.0).unwrap();
        let mut engine = Engine::new(&initial, NoFilter::range(q));
        let events = vec![ev(1.0, 0, 1.1), ev(2.0, 0, 1.2), ev(3.0, 1, 2.1), ev(4.0, 1, 2.1)];
        let mut w = VecWorkload::new(initial.clone(), events);
        engine.run(&mut w);
        // 2n init probes + 4 updates.
        assert_eq!(engine.ledger().total(), 4 + 4);
        assert_eq!(
            engine.ledger().count(streamnet::MessageKind::Update),
            4,
            "every update reported, even value-identical ones"
        );
    }

    #[test]
    fn topk_baseline_tracks_rank_changes() {
        let initial = vec![10.0, 20.0, 30.0, 40.0];
        let q = RankQuery::top_k(2).unwrap();
        let mut engine = Engine::new(&initial, NoFilter::rank(q));
        engine.initialize();
        let a = engine.answer();
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![StreamId(2), StreamId(3)]);

        engine.apply_event(ev(1.0, 0, 99.0)); // 0 becomes the max
        let a = engine.answer();
        assert!(a.contains(StreamId(0)) && a.contains(StreamId(3)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn rank_baseline_accepts_k_larger_than_population() {
        let initial = vec![10.0, 20.0, 30.0];
        let q = RankQuery::top_k(10).unwrap();
        let mut engine = Engine::new(&initial, NoFilter::rank(q));
        engine.initialize();
        assert_eq!(engine.answer().len(), 3, "baseline answers with every stream");
        engine.apply_event(ev(1.0, 0, 99.0));
        assert_eq!(engine.answer().len(), 3);
    }

    #[test]
    fn knn_baseline() {
        let initial = vec![100.0, 480.0, 520.0, 900.0];
        let q = RankQuery::knn(500.0, 2).unwrap();
        let mut engine = Engine::new(&initial, NoFilter::rank(q));
        engine.initialize();
        let a = engine.answer();
        assert!(a.contains(StreamId(1)) && a.contains(StreamId(2)));
        engine.apply_event(ev(1.0, 3, 501.0)); // 3 jumps next to q
        let a = engine.answer();
        assert!(a.contains(StreamId(3)) && a.contains(StreamId(1)));
    }
}
