//! FT-RP — fraction-based tolerance for k-NN/top-k queries
//! (paper §5.2.2–5.2.3).
//!
//! The k-NN query is transformed to a range query over the bound `R`
//! enclosing the k nearest objects, and FT-NRP machinery runs over `R` —
//! but with the **internal** tolerances `(ρ⁺, ρ⁻)` of Equation 16 instead
//! of the user's `(ε⁺, ε⁻)`: silent crossings of `R` manufacture false
//! positives *and* false negatives (Figure 8), so the budgets must be
//! discounted. `⌊kρ⁺⌋` answer streams get wildcard filters, `⌊kρ⁻⌋`
//! non-answer streams get suppress filters.
//!
//! Unlike ZT-RP, `R` is **not** recomputed when objects cross it; it is an
//! estimate that is only rebuilt when the answer size leaves the window
//! `k(1−ε⁻) ≤ |A(t)| ≤ k/(1−ε⁺)` (Equations 7 and 9) — i.e. when `R` has
//! become "too tight" or "too loose".

use std::collections::BTreeSet;

use simkit::SimRng;
use streamnet::{Filter, StreamId};

use crate::answer::AnswerSet;
use crate::error::ConfigError;
use crate::protocol::heuristics::SelectionHeuristic;
use crate::protocol::{Protocol, ServerCtx};
use crate::query::{RankQuery, RankSpace};
use crate::tolerance::{derive_rho, FractionTolerance, RhoPair, RhoPolicy};

/// Tunables beyond the paper's required parameters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FtRpConfig {
    /// Placement of the special silent filters.
    pub heuristic: SelectionHeuristic,
    /// Where on the Equation-16 line to sit (see `bin/ablation_rho`).
    pub rho_policy: RhoPolicy,
}

/// The fraction-tolerant rank-query protocol.
pub struct FtRp {
    query: RankQuery,
    tol: FractionTolerance,
    rho: RhoPair,
    config: FtRpConfig,
    rng: SimRng,
    /// Current ball threshold defining `R`.
    d: f64,
    answer: AnswerSet,
    count: u64,
    fp_filters: Vec<StreamId>,
    fn_filters: Vec<StreamId>,
    reinits: u64,
    fix_errors: u64,
}

impl FtRp {
    /// Creates FT-RP; `seed` drives the random selection heuristic.
    ///
    /// Requires (checked at initialization) `n > k`.
    pub fn new(
        query: RankQuery,
        tol: FractionTolerance,
        config: FtRpConfig,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        let rho = derive_rho(&tol, config.rho_policy)?;
        Ok(Self {
            query,
            tol,
            rho,
            config,
            rng: SimRng::seed_from_u64(seed),
            d: f64::NAN,
            answer: AnswerSet::new(),
            count: 0,
            fp_filters: Vec::new(),
            fn_filters: Vec::new(),
            reinits: 0,
            fix_errors: 0,
        })
    }

    /// The query.
    pub fn query(&self) -> RankQuery {
        self.query
    }

    /// The internal `(ρ⁺, ρ⁻)` pair in use.
    pub fn rho(&self) -> RhoPair {
        self.rho
    }

    /// Current ball threshold.
    pub fn threshold(&self) -> f64 {
        self.d
    }

    /// Live wildcard filters (`n⁺`).
    pub fn n_plus(&self) -> usize {
        self.fp_filters.len()
    }

    /// Live suppress filters (`n⁻`).
    pub fn n_minus(&self) -> usize {
        self.fn_filters.len()
    }

    /// Bound recomputations forced by the answer-size window.
    pub fn reinits(&self) -> u64 {
        self.reinits
    }

    /// `Fix_Error` executions.
    pub fn fix_errors(&self) -> u64 {
        self.fix_errors
    }

    fn region(&self) -> Filter {
        self.query.space().ball(self.d)
    }

    fn in_region(&self, v: f64) -> bool {
        self.query.space().in_ball(v, self.d)
    }

    /// Finds `R` and deploys filters from a fully-known view (§5.2.2).
    fn deploy(&mut self, ctx: &mut ServerCtx<'_>) {
        let k = self.query.k();
        assert!(ctx.n() > k, "FT-RP requires n > k, got n = {}", ctx.n());
        self.answer.clear();
        self.fp_filters.clear();
        self.fn_filters.clear();
        self.count = 0;

        let n_plus = (k as f64 * self.rho.rho_plus).floor() as usize;
        let n_minus = (k as f64 * self.rho.rho_minus).floor() as usize;

        // No special-filter budgets (small k·ρ, e.g. zero tolerance): every
        // stream gets the *same* region filter, which is exactly one
        // broadcast — O(k log n) coordinator work plus a shard-parallel
        // fleet-wide install, instead of ranking all n streams and building
        // an n-entry install plan. This is the reinit-storm hot path.
        if n_plus == 0 && n_minus == 0 {
            let top = ctx.ranks(self.query.space()).top_pairs(k + 1);
            self.d = (top[k - 1].0 + top[k].0) / 2.0;
            self.answer = top[..k].iter().map(|&(_, id)| id).collect();
            ctx.broadcast(self.region());
            return;
        }

        // One ranked pass produces both R's position and the inside/outside
        // split (the full order is needed — every stream gets a filter, in
        // rank order).
        let ranks = ctx.ranks(self.query.space());
        let ranked = ranks.ordered_ids();
        self.d = ranks.midpoint(k);
        let inside: Vec<StreamId> = ranked[..k].to_vec();
        let outside: Vec<StreamId> = ranked[k..].to_vec();
        self.answer = inside.iter().copied().collect();

        // Boundary distance in key space: |key(v) - d|.
        let space = self.query.space();
        let d = self.d;
        let view = ctx.view();
        let dist = |id: StreamId| (space.key(view.get(id)) - d).abs();
        self.fp_filters = self.config.heuristic.select(&inside, n_plus, dist, &mut self.rng);
        self.fn_filters = self.config.heuristic.select(&outside, n_minus, dist, &mut self.rng);

        let fp: BTreeSet<StreamId> = self.fp_filters.iter().copied().collect();
        let fn_: BTreeSet<StreamId> = self.fn_filters.iter().copied().collect();
        // One batch deployment in rank order (insiders then outsiders, as
        // the scalar loops did), queued on the deferred-op queue: the
        // engine flushes it as a single shard-parallel `install_many` when
        // this handler returns, so a reinit storm costs one scatter/gather
        // however it was triggered — and the engine's pooled queue buffer
        // replaces a fresh n-entry plan allocation per storm. Nothing reads
        // the affected view entries before the handler returns, so the
        // deferral is observation-equivalent to installing here.
        for id in inside {
            let f = if fp.contains(&id) { Filter::wildcard() } else { self.region() };
            ctx.install_later(id, f);
        }
        for id in outside {
            let f = if fn_.contains(&id) { Filter::suppress() } else { self.region() };
            ctx.install_later(id, f);
        }
    }

    /// FT-NRP's `Fix_Error`, over the region `R` instead of `[l, u]`.
    fn fix_error(&mut self, ctx: &mut ServerCtx<'_>) {
        self.fix_errors += 1;
        ctx.set_cause(asf_telemetry::Cause::FixError);
        if let Some(sy) = self.fp_filters.pop() {
            let vy = ctx.probe(sy);
            ctx.install(sy, self.region());
            if self.in_region(vy) {
                return;
            }
            self.answer.remove(sy);
        }
        if let Some(sz) = self.fn_filters.pop() {
            let vz = ctx.probe(sz);
            ctx.install(sz, self.region());
            if self.in_region(vz) {
                self.answer.insert(sz);
            }
        }
    }

    /// §5.2.3(2): when `|A|` exits the Equations-7/9 window, `R` is no
    /// longer a usable estimate — rebuild everything.
    fn answer_size_out_of_window(&self) -> bool {
        const SLOP: f64 = 1e-9;
        let sz = self.answer.len() as f64;
        let k = self.query.k();
        sz > self.tol.max_answer_size(k) + SLOP || sz < self.tol.min_answer_size(k) - SLOP
    }
}

impl Protocol for FtRp {
    fn name(&self) -> &'static str {
        "FT-RP"
    }

    fn initialize(&mut self, ctx: &mut ServerCtx<'_>) {
        ctx.probe_all();
        self.deploy(ctx);
    }

    fn on_update(&mut self, id: StreamId, value: f64, ctx: &mut ServerCtx<'_>) {
        if self.in_region(value) {
            if self.answer.insert(id) {
                self.count += 1;
            }
        } else if self.answer.remove(id) {
            if self.count > 0 {
                self.count -= 1;
            } else {
                self.fix_error(ctx);
            }
        }
        if self.answer_size_out_of_window() {
            self.reinits += 1;
            ctx.set_cause(asf_telemetry::Cause::ReinitStorm);
            ctx.probe_all();
            self.deploy(ctx);
        }
    }

    fn answer(&self) -> AnswerSet {
        self.answer.clone()
    }

    fn save_state(&self, w: &mut asf_persist::StateWriter) {
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_f64(self.d);
        self.answer.encode(w);
        w.put_u64(self.count);
        crate::protocol::put_ids(w, &self.fp_filters);
        crate::protocol::put_ids(w, &self.fn_filters);
        w.put_u64(self.reinits);
        w.put_u64(self.fix_errors);
    }

    fn load_state(&mut self, r: &mut asf_persist::StateReader<'_>) -> asf_persist::Result<()> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.get_u64()?;
        }
        self.rng = SimRng::from_state(s);
        self.d = r.get_f64()?;
        self.answer = AnswerSet::decode(r)?;
        self.count = r.get_u64()?;
        self.fp_filters = crate::protocol::get_ids(r)?;
        self.fn_filters = crate::protocol::get_ids(r)?;
        self.reinits = r.get_u64()?;
        self.fix_errors = r.get_u64()?;
        Ok(())
    }

    fn rank_space(&self) -> Option<RankSpace> {
        Some(self.query.space())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::workload::UpdateEvent;

    fn ev(t: f64, s: u32, v: f64) -> UpdateEvent {
        UpdateEvent { time: t, stream: StreamId(s), value: v }
    }

    /// 20 streams at distances 1..=20 from q = 0 (values 1..=20).
    fn initial_20() -> Vec<f64> {
        (1..=20).map(|i| i as f64).collect()
    }

    fn make(k: usize, eps: f64) -> FtRp {
        FtRp::new(
            RankQuery::knn(0.0, k).unwrap(),
            FractionTolerance::symmetric(eps).unwrap(),
            FtRpConfig { heuristic: SelectionHeuristic::Random, rho_policy: RhoPolicy::Balanced },
            11,
        )
        .unwrap()
    }

    #[test]
    fn initialization_bounds_and_budgets() {
        let mut engine = Engine::new(&initial_20(), make(10, 0.4));
        engine.initialize();
        // R between ranks 10 (d=10) and 11 (d=11).
        assert!((engine.protocol().threshold() - 10.5).abs() < 1e-12);
        assert_eq!(engine.answer().len(), 10);
        // rho balanced for eps 0.4: m = min(0.6*0.4, 0.4) = 0.24;
        // rho = 0.24*0.6/1.6 = 0.09; floor(10 * 0.09) = 0.
        // Budgets are small by design at small k — Figure 15's point.
        let p = engine.protocol();
        let expected = (10.0 * p.rho().rho_plus).floor() as usize;
        assert_eq!(p.n_plus(), expected);
        assert_eq!(p.n_minus(), expected);
    }

    #[test]
    fn r_is_not_recomputed_on_ordinary_crossings() {
        let mut engine = Engine::new(&initial_20(), make(10, 0.4));
        engine.initialize();
        let d = engine.protocol().threshold();
        let reinits = engine.protocol().reinits();
        // One stream leaves R, one enters: |A| stays inside the window
        // [6, 16.6], so R must not move.
        engine.apply_event(ev(1.0, 0, 100.0)); // d=1 -> 100, leaves
        engine.apply_event(ev(2.0, 14, 3.5)); // d=15 -> 3.5, enters
        assert_eq!(engine.protocol().threshold(), d);
        assert_eq!(engine.protocol().reinits(), reinits);
    }

    #[test]
    fn too_loose_answer_forces_recompute() {
        let mut engine = Engine::new(&initial_20(), make(10, 0.2));
        engine.initialize();
        // Window: [k(1-0.2), k/(1-0.2)] = [8, 12.5]. Push outsiders in
        // until |A| exceeds 12.
        let d = engine.protocol().threshold(); // 10.5
        assert!((d - 10.5).abs() < 1e-12);
        let mut t = 1.0;
        for s in 10..13u32 {
            // streams at d=11..13 move inside R
            engine.apply_event(ev(t, s, 1.0 + 0.1 * s as f64));
            t += 1.0;
        }
        // After the third insertion |A| = 13 > 12.5: recompute fired.
        assert!(engine.protocol().reinits() >= 1);
        assert_eq!(engine.answer().len(), 10, "recompute restores |A| = k");
        assert!(engine.protocol().threshold() < d, "R tightened around the new k nearest");
    }

    #[test]
    fn too_tight_answer_forces_recompute() {
        let mut engine = Engine::new(&initial_20(), make(10, 0.2));
        engine.initialize();
        // Window lower bound: 8. Kick answer members out until |A| < 8.
        let mut t = 1.0;
        for s in 0..3u32 {
            engine.apply_event(ev(t, s, 500.0 + s as f64));
            t += 1.0;
        }
        assert!(engine.protocol().reinits() >= 1);
        assert_eq!(engine.answer().len(), 10);
    }

    #[test]
    fn budgets_exist_at_large_k() {
        // k = 100 over 300 streams, eps = 0.3: rho = (0.21)(0.7)/1.7 ≈ 0.0865
        // -> floor(100 * 0.0865) = 8 filters of each kind.
        let initial: Vec<f64> = (1..=300).map(|i| i as f64).collect();
        let mut engine = Engine::new(&initial, {
            FtRp::new(
                RankQuery::knn(0.0, 100).unwrap(),
                FractionTolerance::symmetric(0.3).unwrap(),
                FtRpConfig::default(),
                3,
            )
            .unwrap()
        });
        engine.initialize();
        assert!(engine.protocol().n_plus() >= 8);
        assert!(engine.protocol().n_minus() >= 8);
        // Silenced streams cost nothing even when they wander.
        let silenced: Vec<StreamId> = engine
            .protocol()
            .fp_filters
            .iter()
            .chain(&engine.protocol().fn_filters)
            .copied()
            .collect();
        let base = engine.ledger().total();
        let mut t = 1.0;
        for id in silenced {
            engine.apply_event(ev(t, id.0, 10_000.0));
            t += 1.0;
        }
        assert_eq!(engine.ledger().total(), base);
    }

    #[test]
    fn zero_tolerance_recomputes_every_crossing() {
        let mut engine = Engine::new(&initial_20(), make(10, 0.0));
        engine.initialize();
        let reinits = engine.protocol().reinits();
        // Window degenerates to [10, 10]: any crossing recomputes.
        engine.apply_event(ev(1.0, 0, 100.0));
        assert_eq!(engine.protocol().reinits(), reinits + 1);
        assert_eq!(engine.answer().len(), 10);
    }
}
