//! The server's metered gateway to the source fleet.

use std::collections::VecDeque;

use streamnet::{Filter, FleetOps, Ledger, ServerView, StreamId};

/// Everything a protocol may do during initialization or maintenance:
/// consult its (possibly stale) view, and pay messages to probe sources or
/// (re)deploy filters.
///
/// Constraint resolution is synchronous — the paper's Correctness
/// Requirement 2 assumes values do not change while it runs — so
/// [`ServerCtx::probe`] returns the ground-truth value immediately (and
/// charges the round trip). Filter (re)deployments may find a source whose
/// actual state is inconsistent with the server's knowledge; such sources
/// sync-report, and the reports are queued for the engine to feed back into
/// the protocol after the current handler returns (never re-entrantly).
///
/// The context is backed by any [`FleetOps`] implementation: the in-process
/// [`streamnet::SourceFleet`] in the single-threaded engine, or the sharded
/// routing fleet of `asf-server` — protocols cannot tell the difference.
pub struct ServerCtx<'a> {
    fleet: &'a mut dyn FleetOps,
    view: &'a mut ServerView,
    ledger: &'a mut Ledger,
    pending: &'a mut VecDeque<(StreamId, f64)>,
}

impl<'a> ServerCtx<'a> {
    pub(crate) fn new(
        fleet: &'a mut dyn FleetOps,
        view: &'a mut ServerView,
        ledger: &'a mut Ledger,
        pending: &'a mut VecDeque<(StreamId, f64)>,
    ) -> Self {
        Self { fleet, view, ledger, pending }
    }

    /// Number of streams `n`.
    pub fn n(&self) -> usize {
        self.fleet.len()
    }

    /// The server's current view of last-known values.
    pub fn view(&self) -> &ServerView {
        self.view
    }

    /// Read-only ledger access (e.g. for protocols logging their own cost).
    pub fn ledger(&self) -> &Ledger {
        self.ledger
    }

    /// Probes one source for its current value (2 messages); refreshes the
    /// view and returns the value.
    pub fn probe(&mut self, id: StreamId) -> f64 {
        self.fleet.probe(id, self.ledger, self.view)
    }

    /// Probes every source (`2n` messages) — the Initialization phases'
    /// "request all streams to send their values".
    pub fn probe_all(&mut self) {
        self.fleet.probe_all(self.ledger, self.view);
    }

    /// Installs a filter at one source (1 message). Any induced sync-report
    /// is queued for the engine.
    pub fn install(&mut self, id: StreamId, filter: Filter) {
        if let Some(v) = self.fleet.install(id, filter, self.ledger, self.view) {
            self.pending.push_back((id, v));
        }
    }

    /// Broadcasts a filter to all sources (`n` messages). Induced
    /// sync-reports are queued for the engine.
    pub fn broadcast(&mut self, filter: Filter) {
        for sync in self.fleet.broadcast(filter, self.ledger, self.view) {
            self.pending.push_back(sync);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamnet::{MessageKind, SourceFleet};

    fn setup() -> (SourceFleet, ServerView, Ledger, VecDeque<(StreamId, f64)>) {
        (
            SourceFleet::from_values(&[100.0, 500.0, 900.0]),
            ServerView::new(3),
            Ledger::new(),
            VecDeque::new(),
        )
    }

    #[test]
    fn probe_meters_and_refreshes() {
        let (mut fleet, mut view, mut ledger, mut pending) = setup();
        let mut ctx = ServerCtx::new(&mut fleet, &mut view, &mut ledger, &mut pending);
        assert_eq!(ctx.n(), 3);
        let v = ctx.probe(StreamId(1));
        assert_eq!(v, 500.0);
        assert_eq!(ctx.view().get(StreamId(1)), 500.0);
        assert_eq!(ctx.ledger().total(), 2);
    }

    #[test]
    fn install_queues_sync_reports() {
        let (mut fleet, mut view, mut ledger, mut pending) = setup();
        {
            let mut ctx = ServerCtx::new(&mut fleet, &mut view, &mut ledger, &mut pending);
            ctx.probe_all();
            ctx.install(StreamId(0), Filter::interval(0.0, 1000.0));
        }
        // Silent drift: 100 -> 700 stays inside [0, 1000].
        fleet.deliver_update(StreamId(0), 700.0, &mut ledger, &mut view);
        {
            let mut ctx = ServerCtx::new(&mut fleet, &mut view, &mut ledger, &mut pending);
            // New filter separates believed 100 from true 700.
            ctx.install(StreamId(0), Filter::interval(600.0, 800.0));
        }
        assert_eq!(pending.pop_front(), Some((StreamId(0), 700.0)));
        assert!(pending.is_empty());
    }

    #[test]
    fn broadcast_meters_n_messages() {
        let (mut fleet, mut view, mut ledger, mut pending) = setup();
        let mut ctx = ServerCtx::new(&mut fleet, &mut view, &mut ledger, &mut pending);
        ctx.probe_all();
        ctx.broadcast(Filter::interval(0.0, 1000.0));
        assert_eq!(ctx.ledger().count(MessageKind::FilterBroadcast), 3);
    }
}
